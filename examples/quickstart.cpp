/**
 * @file
 * Quickstart: simulate the Social Network microservice application under
 * a utilization autoscaler and print what happened.
 *
 * This demonstrates the minimal public API surface:
 *   - BuildSocialNetwork() gives an Application (tiers + request types);
 *   - RunManaged() drives a resource manager against the simulated
 *     cluster under a load shape;
 *   - RunResult carries the QoS / CPU accounting.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "harness/harness.h"

int
main()
{
    using namespace sinan;

    // The 28-tier Social Network of the Sinan paper (Fig. 2), with a
    // 500 ms p99 QoS target.
    const Application app = BuildSocialNetwork();
    std::printf("application: %s (%zu tiers, QoS %.0f ms p99)\n",
                app.name.c_str(), app.tiers.size(), app.qos_ms);

    // An industry-standard step autoscaler as the resource manager.
    AutoScaler manager = MakeAutoScaleCons();

    // 200 emulated users, each issuing ~1 request per second.
    ConstantLoad load(200.0);

    RunConfig cfg;
    cfg.duration_s = 120.0;
    cfg.warmup_s = 20.0;
    const RunResult result = RunManaged(app, manager, load, cfg);

    std::printf("\nafter %.0f simulated seconds under %s:\n",
                cfg.duration_s, manager.Name());
    std::printf("  P(meet QoS)         : %.3f\n", result.qos_meet_prob);
    std::printf("  mean CPU allocation : %.1f cores\n", result.mean_cpu);
    std::printf("  max CPU allocation  : %.1f cores\n", result.max_cpu);
    std::printf("  mean p99 latency    : %.1f ms\n", result.mean_p99_ms);

    std::printf("\nlast five intervals:\n");
    std::printf("  %6s %8s %9s %10s\n", "t(s)", "rps", "p99(ms)",
                "CPU(cores)");
    const size_t n = result.timeline.size();
    for (size_t i = n - 5; i < n; ++i) {
        const IntervalRecord& rec = result.timeline[i];
        std::printf("  %6.0f %8.0f %9.1f %10.1f\n", rec.time_s, rec.rps,
                    rec.p99_ms, rec.total_cpu);
    }
    return 0;
}
