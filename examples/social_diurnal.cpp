/**
 * @file
 * Sinan tracking a diurnal load pattern on the Social Network: the
 * user population swings between 100 and 300 over a ten-minute "day",
 * and the scheduler reshapes per-tier allocations to follow it while
 * holding the 500 ms p99 QoS (the paper's Figure 12 scenario).
 */
#include <cstdio>

#include "app/apps.h"
#include "core/scheduler.h"
#include "harness/harness.h"

int
main()
{
    using namespace sinan;

    const Application app = BuildSocialNetwork();
    std::printf("== training Sinan for %s ==\n", app.name.c_str());
    PipelineConfig pcfg;
    pcfg.collect_s = 800.0;
    pcfg.users_min = 50.0;
    pcfg.users_max = 450.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = 8;
    pcfg.seed = 5;
    const TrainedSinan trained = TrainSinanForApp(app, pcfg);
    std::printf("CNN val RMSE %.1f ms; BT val acc %.1f%%\n\n",
                trained.report.cnn.val_rmse_ms,
                100.0 * trained.report.bt_val_accuracy);

    SinanScheduler sinan(*trained.model, SchedulerConfig{});
    DiurnalLoad load(100.0, 300.0, 600.0);
    RunConfig cfg;
    cfg.duration_s = 600.0;
    cfg.warmup_s = 20.0;
    const RunResult r = RunManaged(app, sinan, load, cfg);

    std::printf("diurnal run (one 600 s period, 100..300 users):\n");
    std::printf("%6s %6s %9s %10s %8s %10s\n", "t(s)", "rps", "p99(ms)",
                "pred(ms)", "P(viol)", "CPU(cores)");
    for (size_t i = 0; i < r.timeline.size(); i += 30) {
        const IntervalRecord& rec = r.timeline[i];
        std::printf("%6.0f %6.0f %9.1f %10.1f %8.2f %10.1f\n",
                    rec.time_s, rec.rps, rec.p99_ms,
                    rec.predicted_p99_ms, rec.predicted_violation,
                    rec.total_cpu);
    }
    std::printf("\nP(meet QoS)=%.3f  mean CPU=%.1f  max CPU=%.1f\n",
                r.qos_meet_prob, r.mean_cpu, r.max_cpu);

    // The interesting property: allocation at the trough vs the peak.
    double trough = 1e18, peak = 0.0;
    for (const IntervalRecord& rec : r.timeline) {
        if (rec.time_s < cfg.warmup_s)
            continue;
        trough = std::min(trough, rec.total_cpu);
        peak = std::max(peak, rec.total_cpu);
    }
    std::printf("allocation range across the day: %.1f .. %.1f cores\n",
                trough, peak);
    return 0;
}
