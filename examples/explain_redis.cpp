/**
 * @file
 * Explainable-ML workflow (paper Sec. 5.6): the Social Network's tail
 * latency shows periodic spikes; instead of debugging tens of tiers by
 * hand, ask the trained latency predictor which tiers and which
 * resources its predictions hinge on at the violation timesteps.
 *
 * With the social-graph Redis minutely log persistence enabled, LIME
 * points at graph-redis and its memory channels — the fork-and-copy
 * stall — mirroring how the paper's authors found and fixed the issue.
 */
#include <cstdio>

#include "app/apps.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "explain/lime.h"
#include "harness/harness.h"

int
main()
{
    using namespace sinan;

    SocialOptions opts;
    opts.redis_log_sync = true; // the buggy deployment
    const Application app = BuildSocialNetwork(opts);

    std::printf("== training on the deployment with Redis log sync ==\n");
    PipelineConfig pcfg;
    pcfg.collect_s = 800.0;
    pcfg.users_min = 50.0;
    pcfg.users_max = 350.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = 8;
    pcfg.seed = 9;

    // Collect on the buggy app: TrainSinanForApp builds its own cluster
    // from `app`, which carries the log-sync tier spec.
    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.qos_ms = app.qos_ms;
    CollectionConfig col;
    col.duration_s = pcfg.collect_s;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = f;
    col.seed = pcfg.seed;
    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    const Dataset all = Collect(app, bandit, col);
    Rng rng(11);
    auto [train, valid] = all.Split(0.9, rng);
    HybridModel model(f, pcfg.hybrid, 13);
    model.Train(train, valid);

    // Gather samples from the timesteps where QoS violations occur.
    std::vector<Sample> suspicious;
    for (const Sample& s : train.samples) {
        if (s.p99_ms > app.qos_ms) {
            suspicious.push_back(s);
            if (suspicious.size() >= 24)
                break;
        }
    }
    std::printf("explaining %zu violation timesteps with LIME...\n\n",
                suspicious.size());

    LimeExplainer lime(model.Cnn(), f);
    const LimeExplanation tiers = lime.ExplainTiersAveraged(suspicious);
    std::printf("top-5 tiers driving the predicted tail latency:\n");
    for (int idx : tiers.TopK(5)) {
        std::printf("  %-22s weight %.4f\n", app.tiers[idx].name.c_str(),
                    tiers.weights[idx]);
    }

    const int redis = app.TierIndex("graph-redis");
    const LimeExplanation res =
        lime.ExplainResources(suspicious.front(), redis);
    static const char* kChannels[] = {"cpu limit", "cpu used", "RSS",
                                      "cache memory", "rx packets",
                                      "tx packets"};
    std::printf("\ngraph-redis resource channels by importance:\n");
    for (int idx : res.TopK(FeatureConfig::kChannels)) {
        std::printf("  %-14s weight %.4f\n", kChannels[idx],
                    res.weights[idx]);
    }
    std::printf("\nIf RSS/cache dominate for a Redis tier, check its "
                "persistence settings — that is the paper's log-sync "
                "diagnosis.\n");
    return 0;
}
