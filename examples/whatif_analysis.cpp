/**
 * @file
 * What-if analysis: after training Sinan on the Social Network, freeze
 * a live system state and ask the hybrid model how the predicted tail
 * latency and violation risk respond to one tier's allocation — the
 * interactive counterpart of the paper's explainability workflow, and a
 * practical way for an operator to size a tier before changing it.
 */
#include <cstdio>

#include "app/apps.h"
#include "explain/whatif.h"
#include "harness/harness.h"
#include "sim/simulator.h"
#include "workload/workload.h"

int
main()
{
    using namespace sinan;

    const Application app = BuildSocialNetwork();
    std::printf("== training Sinan on %s ==\n", app.name.c_str());
    PipelineConfig pcfg;
    pcfg.collect_s = 800.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = 8;
    pcfg.seed = 23;
    const TrainedSinan trained = TrainSinanForApp(app, pcfg);
    std::printf("CNN val RMSE %.1f ms\n\n",
                trained.report.cnn.val_rmse_ms);

    // Drive the cluster to a steady state at 250 users and freeze it.
    Cluster cluster(app, ClusterConfig{}, 3);
    ConstantLoad load(250.0);
    WorkloadGenerator gen(cluster, load, 7);
    Simulator sim;
    MetricWindow window(trained.features);
    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t, double now) {
        window.Push(cluster.Harvest(now, 1.0));
    });
    sim.RunFor(30.0);

    const std::vector<double> alloc = cluster.Allocation();
    std::printf("frozen state: 250 users, %.1f total cores\n\n",
                [&] {
                    double t = 0;
                    for (double a : alloc)
                        t += a;
                    return t;
                }());

    // Sweep the ML filter tier — the expensive one — and a cache tier.
    for (const char* name : {"mediaFilter", "postStore-memc"}) {
        const int tier = app.TierIndex(name);
        const WhatIfCurve curve = SweepTierAllocation(
            *trained.model, window, alloc, tier,
            app.tiers[tier].min_cpu, app.tiers[tier].max_cpu, 8);
        std::printf("what-if: %s (currently %.1f cores)\n", name,
                    alloc[tier]);
        std::printf("  %8s %12s %10s\n", "cores", "pred p99(ms)",
                    "P(viol)");
        for (const WhatIfPoint& p : curve.points) {
            std::printf("  %8.2f %12.1f %10.3f\n", p.cpu,
                        p.predicted_p99_ms, p.p_violation);
        }
        const double safe = curve.MinSafeCpu(app.qos_ms, 0.15);
        if (safe >= 0.0) {
            std::printf("  -> smallest safe allocation: %.2f cores\n\n",
                        safe);
        } else {
            std::printf("  -> no safe allocation in range (other tiers "
                        "are the bottleneck)\n\n");
        }
    }
    return 0;
}
