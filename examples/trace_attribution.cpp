/**
 * @file
 * Distributed-trace attribution: sample a fraction of requests on the
 * Social Network (the simulator's Jaeger stand-in), then break the
 * end-to-end latency down by tier — which tiers hold requests longest,
 * and where the queueing (as opposed to service) time goes. This is the
 * trace-level view that complements the model-level explanations of
 * examples/explain_redis.cpp.
 */
#include <algorithm>
#include <cstdio>

#include "app/apps.h"
#include "cluster/cluster.h"
#include "cluster/tracing.h"
#include "sim/simulator.h"
#include "workload/workload.h"

int
main()
{
    using namespace sinan;

    const Application app = BuildSocialNetwork();
    ClusterConfig cfg;
    cfg.trace_sample = 0.10; // trace 10% of requests
    Cluster cluster(app, cfg, 11);

    // A deliberately tight allocation so queueing is visible.
    std::vector<double> alloc;
    for (const TierSpec& t : app.tiers)
        alloc.push_back(std::min(t.max_cpu, t.init_cpu * 1.2));
    cluster.SetAllocation(alloc);

    ConstantLoad load(250.0);
    WorkloadGenerator gen(cluster, load, 13);
    Simulator sim;
    std::vector<Trace> traces;
    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t, double now) {
        cluster.Harvest(now, 1.0);
        std::vector<Trace> batch = cluster.TakeTraces();
        traces.insert(traces.end(),
                      std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
    });
    sim.RunFor(60.0);

    std::printf("collected %zu traces at 250 users (10%% sampling)\n\n",
                traces.size());

    // Slowest traced request, span by span.
    const Trace* slowest = nullptr;
    for (const Trace& t : traces) {
        if (!slowest || t.LatencyMs() > slowest->LatencyMs())
            slowest = &t;
    }
    if (slowest) {
        std::printf("slowest trace: %s, %.1f ms end-to-end\n",
                    app.request_types[slowest->request_type].name.c_str(),
                    slowest->LatencyMs());
        const int hot = slowest->SlowestSyncSpan();
        for (const Span& s : slowest->spans) {
            std::printf("  %-22s %s dur=%6.1f ms wait=%5.1f ms%s\n",
                        app.tiers[s.tier].name.c_str(),
                        s.async ? "(async)" : "       ",
                        1000.0 * s.DurationS(),
                        1000.0 * s.QueueWaitS(),
                        s.span_id == slowest->spans[hot].span_id
                            ? "   <- longest sync span"
                            : "");
        }
    }

    // Aggregate attribution across all traces.
    const auto attr =
        AttributeByTier(traces, static_cast<int>(app.tiers.size()));
    std::vector<TierAttribution> ranked = attr;
    std::sort(ranked.begin(), ranked.end(),
              [](const TierAttribution& a, const TierAttribution& b) {
                  return a.sync_time_s > b.sync_time_s;
              });
    std::printf("\ntop tiers by total synchronous span time:\n");
    std::printf("  %-22s %10s %12s %8s\n", "tier", "span-s",
                "queue-wait-s", "spans");
    for (int i = 0; i < 8 && i < static_cast<int>(ranked.size()); ++i) {
        const TierAttribution& a = ranked[i];
        if (a.spans == 0)
            break;
        std::printf("  %-22s %10.2f %12.2f %8lld\n",
                    app.tiers[a.tier].name.c_str(), a.sync_time_s,
                    a.queue_wait_s, static_cast<long long>(a.spans));
    }
    return 0;
}
