/**
 * @file
 * End-to-end Sinan on the Hotel Reservation application: collect
 * training data with the multi-armed-bandit explorer, train the hybrid
 * CNN + Boosted-Trees model, then manage the cluster online and compare
 * against the conservative autoscaler.
 *
 * (Scaled-down collection/training settings so the example runs in
 * about a minute; the bench suite uses the full pipeline.)
 */
#include <cstdio>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "core/scheduler.h"
#include "harness/harness.h"

int
main()
{
    using namespace sinan;

    const Application app = BuildHotelReservation();
    std::printf("== offline phase: explore + train ==\n");

    PipelineConfig pcfg;
    pcfg.collect_s = 800.0; // simulated seconds of bandit exploration
    pcfg.users_min = 500.0;
    pcfg.users_max = 3700.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = 8;
    pcfg.seed = 3;

    const TrainedSinan trained = TrainSinanForApp(app, pcfg);
    std::printf("dataset: %zu train samples (violation rate %.2f)\n",
                trained.train.samples.size(),
                trained.train.ViolationRate());
    std::printf("CNN validation RMSE: %.1f ms (sub-QoS: %.1f ms)\n",
                trained.report.cnn.val_rmse_ms,
                trained.report.cnn.val_rmse_subqos_ms);
    std::printf("BT validation accuracy: %.1f%% (%d trees)\n",
                100.0 * trained.report.bt_val_accuracy,
                trained.report.bt_trees);

    std::printf("\n== online phase: manage 2500 users ==\n");
    ConstantLoad load(2500.0);
    RunConfig rcfg;
    rcfg.duration_s = 120.0;
    rcfg.warmup_s = 20.0;

    SinanScheduler sinan(*trained.model, SchedulerConfig{});
    const RunResult rs = RunManaged(app, sinan, load, rcfg);

    AutoScaler cons = MakeAutoScaleCons();
    const RunResult rc = RunManaged(app, cons, load, rcfg);

    std::printf("%-14s  P(meet QoS)  mean CPU  max CPU\n", "manager");
    std::printf("%-14s  %11.3f  %8.1f  %7.1f\n", "Sinan",
                rs.qos_meet_prob, rs.mean_cpu, rs.max_cpu);
    std::printf("%-14s  %11.3f  %8.1f  %7.1f\n", "AutoScaleCons",
                rc.qos_meet_prob, rc.mean_cpu, rc.max_cpu);
    if (rs.qos_meet_prob >= rc.qos_meet_prob - 0.02 &&
        rs.mean_cpu < rc.mean_cpu) {
        std::printf("\nSinan met QoS with %.0f%% less CPU.\n",
                    100.0 * (1.0 - rs.mean_cpu / rc.mean_cpu));
    }
    return 0;
}
