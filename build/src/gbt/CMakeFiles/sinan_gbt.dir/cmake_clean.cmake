file(REMOVE_RECURSE
  "CMakeFiles/sinan_gbt.dir/boosted_trees.cc.o"
  "CMakeFiles/sinan_gbt.dir/boosted_trees.cc.o.d"
  "libsinan_gbt.a"
  "libsinan_gbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
