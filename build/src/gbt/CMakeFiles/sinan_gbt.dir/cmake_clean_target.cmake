file(REMOVE_RECURSE
  "libsinan_gbt.a"
)
