# Empty dependencies file for sinan_gbt.
# This may be replaced when dependencies are built.
