file(REMOVE_RECURSE
  "libsinan_common.a"
)
