# Empty compiler generated dependencies file for sinan_common.
# This may be replaced when dependencies are built.
