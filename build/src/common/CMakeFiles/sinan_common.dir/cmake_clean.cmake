file(REMOVE_RECURSE
  "CMakeFiles/sinan_common.dir/stats.cc.o"
  "CMakeFiles/sinan_common.dir/stats.cc.o.d"
  "CMakeFiles/sinan_common.dir/table.cc.o"
  "CMakeFiles/sinan_common.dir/table.cc.o.d"
  "libsinan_common.a"
  "libsinan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
