
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/baseline_nets.cc" "src/models/CMakeFiles/sinan_models.dir/baseline_nets.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/baseline_nets.cc.o.d"
  "/root/repo/src/models/feature_selection.cc" "src/models/CMakeFiles/sinan_models.dir/feature_selection.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/feature_selection.cc.o.d"
  "/root/repo/src/models/features.cc" "src/models/CMakeFiles/sinan_models.dir/features.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/features.cc.o.d"
  "/root/repo/src/models/hybrid.cc" "src/models/CMakeFiles/sinan_models.dir/hybrid.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/hybrid.cc.o.d"
  "/root/repo/src/models/multitask.cc" "src/models/CMakeFiles/sinan_models.dir/multitask.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/multitask.cc.o.d"
  "/root/repo/src/models/sinan_cnn.cc" "src/models/CMakeFiles/sinan_models.dir/sinan_cnn.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/sinan_cnn.cc.o.d"
  "/root/repo/src/models/trainer.cc" "src/models/CMakeFiles/sinan_models.dir/trainer.cc.o" "gcc" "src/models/CMakeFiles/sinan_models.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/sinan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/gbt/CMakeFiles/sinan_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sinan_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sinan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
