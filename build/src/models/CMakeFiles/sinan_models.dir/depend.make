# Empty dependencies file for sinan_models.
# This may be replaced when dependencies are built.
