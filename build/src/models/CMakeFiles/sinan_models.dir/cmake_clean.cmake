file(REMOVE_RECURSE
  "CMakeFiles/sinan_models.dir/baseline_nets.cc.o"
  "CMakeFiles/sinan_models.dir/baseline_nets.cc.o.d"
  "CMakeFiles/sinan_models.dir/feature_selection.cc.o"
  "CMakeFiles/sinan_models.dir/feature_selection.cc.o.d"
  "CMakeFiles/sinan_models.dir/features.cc.o"
  "CMakeFiles/sinan_models.dir/features.cc.o.d"
  "CMakeFiles/sinan_models.dir/hybrid.cc.o"
  "CMakeFiles/sinan_models.dir/hybrid.cc.o.d"
  "CMakeFiles/sinan_models.dir/multitask.cc.o"
  "CMakeFiles/sinan_models.dir/multitask.cc.o.d"
  "CMakeFiles/sinan_models.dir/sinan_cnn.cc.o"
  "CMakeFiles/sinan_models.dir/sinan_cnn.cc.o.d"
  "CMakeFiles/sinan_models.dir/trainer.cc.o"
  "CMakeFiles/sinan_models.dir/trainer.cc.o.d"
  "libsinan_models.a"
  "libsinan_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
