file(REMOVE_RECURSE
  "libsinan_models.a"
)
