file(REMOVE_RECURSE
  "CMakeFiles/sinan_collect.dir/bandit.cc.o"
  "CMakeFiles/sinan_collect.dir/bandit.cc.o.d"
  "CMakeFiles/sinan_collect.dir/collector.cc.o"
  "CMakeFiles/sinan_collect.dir/collector.cc.o.d"
  "libsinan_collect.a"
  "libsinan_collect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_collect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
