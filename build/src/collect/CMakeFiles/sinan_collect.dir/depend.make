# Empty dependencies file for sinan_collect.
# This may be replaced when dependencies are built.
