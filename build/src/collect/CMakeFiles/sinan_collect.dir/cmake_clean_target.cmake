file(REMOVE_RECURSE
  "libsinan_collect.a"
)
