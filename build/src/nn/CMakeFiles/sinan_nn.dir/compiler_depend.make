# Empty compiler generated dependencies file for sinan_nn.
# This may be replaced when dependencies are built.
