file(REMOVE_RECURSE
  "CMakeFiles/sinan_nn.dir/adam.cc.o"
  "CMakeFiles/sinan_nn.dir/adam.cc.o.d"
  "CMakeFiles/sinan_nn.dir/dropout.cc.o"
  "CMakeFiles/sinan_nn.dir/dropout.cc.o.d"
  "CMakeFiles/sinan_nn.dir/layers.cc.o"
  "CMakeFiles/sinan_nn.dir/layers.cc.o.d"
  "CMakeFiles/sinan_nn.dir/loss.cc.o"
  "CMakeFiles/sinan_nn.dir/loss.cc.o.d"
  "CMakeFiles/sinan_nn.dir/lstm.cc.o"
  "CMakeFiles/sinan_nn.dir/lstm.cc.o.d"
  "CMakeFiles/sinan_nn.dir/optimizer.cc.o"
  "CMakeFiles/sinan_nn.dir/optimizer.cc.o.d"
  "libsinan_nn.a"
  "libsinan_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
