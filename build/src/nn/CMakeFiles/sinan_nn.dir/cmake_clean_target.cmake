file(REMOVE_RECURSE
  "libsinan_nn.a"
)
