# Empty dependencies file for sinan_sim.
# This may be replaced when dependencies are built.
