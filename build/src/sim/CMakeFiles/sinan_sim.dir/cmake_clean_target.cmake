file(REMOVE_RECURSE
  "libsinan_sim.a"
)
