file(REMOVE_RECURSE
  "CMakeFiles/sinan_sim.dir/simulator.cc.o"
  "CMakeFiles/sinan_sim.dir/simulator.cc.o.d"
  "libsinan_sim.a"
  "libsinan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
