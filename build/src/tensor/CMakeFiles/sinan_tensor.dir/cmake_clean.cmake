file(REMOVE_RECURSE
  "CMakeFiles/sinan_tensor.dir/tensor.cc.o"
  "CMakeFiles/sinan_tensor.dir/tensor.cc.o.d"
  "libsinan_tensor.a"
  "libsinan_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
