file(REMOVE_RECURSE
  "libsinan_tensor.a"
)
