# Empty dependencies file for sinan_tensor.
# This may be replaced when dependencies are built.
