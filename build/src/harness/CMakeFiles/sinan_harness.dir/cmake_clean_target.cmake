file(REMOVE_RECURSE
  "libsinan_harness.a"
)
