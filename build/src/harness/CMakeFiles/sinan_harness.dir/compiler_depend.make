# Empty compiler generated dependencies file for sinan_harness.
# This may be replaced when dependencies are built.
