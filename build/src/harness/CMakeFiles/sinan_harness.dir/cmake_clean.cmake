file(REMOVE_RECURSE
  "CMakeFiles/sinan_harness.dir/harness.cc.o"
  "CMakeFiles/sinan_harness.dir/harness.cc.o.d"
  "CMakeFiles/sinan_harness.dir/runlog.cc.o"
  "CMakeFiles/sinan_harness.dir/runlog.cc.o.d"
  "libsinan_harness.a"
  "libsinan_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
