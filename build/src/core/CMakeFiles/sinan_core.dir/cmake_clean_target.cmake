file(REMOVE_RECURSE
  "libsinan_core.a"
)
