# Empty compiler generated dependencies file for sinan_core.
# This may be replaced when dependencies are built.
