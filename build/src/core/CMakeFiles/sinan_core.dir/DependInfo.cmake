
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/memory_provisioner.cc" "src/core/CMakeFiles/sinan_core.dir/memory_provisioner.cc.o" "gcc" "src/core/CMakeFiles/sinan_core.dir/memory_provisioner.cc.o.d"
  "/root/repo/src/core/retrain_monitor.cc" "src/core/CMakeFiles/sinan_core.dir/retrain_monitor.cc.o" "gcc" "src/core/CMakeFiles/sinan_core.dir/retrain_monitor.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/sinan_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/sinan_core.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/sinan_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sinan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sinan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gbt/CMakeFiles/sinan_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sinan_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
