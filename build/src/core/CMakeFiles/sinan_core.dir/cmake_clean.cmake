file(REMOVE_RECURSE
  "CMakeFiles/sinan_core.dir/memory_provisioner.cc.o"
  "CMakeFiles/sinan_core.dir/memory_provisioner.cc.o.d"
  "CMakeFiles/sinan_core.dir/retrain_monitor.cc.o"
  "CMakeFiles/sinan_core.dir/retrain_monitor.cc.o.d"
  "CMakeFiles/sinan_core.dir/scheduler.cc.o"
  "CMakeFiles/sinan_core.dir/scheduler.cc.o.d"
  "libsinan_core.a"
  "libsinan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
