file(REMOVE_RECURSE
  "libsinan_explain.a"
)
