file(REMOVE_RECURSE
  "CMakeFiles/sinan_explain.dir/lime.cc.o"
  "CMakeFiles/sinan_explain.dir/lime.cc.o.d"
  "CMakeFiles/sinan_explain.dir/whatif.cc.o"
  "CMakeFiles/sinan_explain.dir/whatif.cc.o.d"
  "libsinan_explain.a"
  "libsinan_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
