# Empty compiler generated dependencies file for sinan_explain.
# This may be replaced when dependencies are built.
