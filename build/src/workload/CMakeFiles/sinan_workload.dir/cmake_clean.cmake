file(REMOVE_RECURSE
  "CMakeFiles/sinan_workload.dir/workload.cc.o"
  "CMakeFiles/sinan_workload.dir/workload.cc.o.d"
  "libsinan_workload.a"
  "libsinan_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
