# Empty compiler generated dependencies file for sinan_workload.
# This may be replaced when dependencies are built.
