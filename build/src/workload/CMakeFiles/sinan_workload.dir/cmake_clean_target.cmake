file(REMOVE_RECURSE
  "libsinan_workload.a"
)
