file(REMOVE_RECURSE
  "libsinan_app.a"
)
