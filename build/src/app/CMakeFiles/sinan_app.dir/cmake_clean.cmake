file(REMOVE_RECURSE
  "CMakeFiles/sinan_app.dir/hotel.cc.o"
  "CMakeFiles/sinan_app.dir/hotel.cc.o.d"
  "CMakeFiles/sinan_app.dir/social.cc.o"
  "CMakeFiles/sinan_app.dir/social.cc.o.d"
  "libsinan_app.a"
  "libsinan_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
