
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/hotel.cc" "src/app/CMakeFiles/sinan_app.dir/hotel.cc.o" "gcc" "src/app/CMakeFiles/sinan_app.dir/hotel.cc.o.d"
  "/root/repo/src/app/social.cc" "src/app/CMakeFiles/sinan_app.dir/social.cc.o" "gcc" "src/app/CMakeFiles/sinan_app.dir/social.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/sinan_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
