# Empty compiler generated dependencies file for sinan_app.
# This may be replaced when dependencies are built.
