# Empty compiler generated dependencies file for sinan_baselines.
# This may be replaced when dependencies are built.
