file(REMOVE_RECURSE
  "CMakeFiles/sinan_baselines.dir/autoscale.cc.o"
  "CMakeFiles/sinan_baselines.dir/autoscale.cc.o.d"
  "CMakeFiles/sinan_baselines.dir/powerchief.cc.o"
  "CMakeFiles/sinan_baselines.dir/powerchief.cc.o.d"
  "libsinan_baselines.a"
  "libsinan_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
