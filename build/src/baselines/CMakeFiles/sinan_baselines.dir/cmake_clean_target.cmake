file(REMOVE_RECURSE
  "libsinan_baselines.a"
)
