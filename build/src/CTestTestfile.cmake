# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("cluster")
subdirs("app")
subdirs("workload")
subdirs("tensor")
subdirs("nn")
subdirs("gbt")
subdirs("models")
subdirs("explain")
subdirs("collect")
subdirs("core")
subdirs("baselines")
subdirs("harness")
