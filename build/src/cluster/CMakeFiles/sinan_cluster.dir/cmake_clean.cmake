file(REMOVE_RECURSE
  "CMakeFiles/sinan_cluster.dir/cluster.cc.o"
  "CMakeFiles/sinan_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/sinan_cluster.dir/tracing.cc.o"
  "CMakeFiles/sinan_cluster.dir/tracing.cc.o.d"
  "libsinan_cluster.a"
  "libsinan_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
