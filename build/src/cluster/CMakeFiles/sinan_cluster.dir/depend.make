# Empty dependencies file for sinan_cluster.
# This may be replaced when dependencies are built.
