file(REMOVE_RECURSE
  "libsinan_cluster.a"
)
