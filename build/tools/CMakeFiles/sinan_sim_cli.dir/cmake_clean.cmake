file(REMOVE_RECURSE
  "CMakeFiles/sinan_sim_cli.dir/sinan_sim.cc.o"
  "CMakeFiles/sinan_sim_cli.dir/sinan_sim.cc.o.d"
  "sinan_sim"
  "sinan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
