# Empty dependencies file for sinan_sim_cli.
# This may be replaced when dependencies are built.
