# Empty compiler generated dependencies file for explain_redis.
# This may be replaced when dependencies are built.
