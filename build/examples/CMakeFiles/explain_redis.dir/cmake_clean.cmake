file(REMOVE_RECURSE
  "CMakeFiles/explain_redis.dir/explain_redis.cpp.o"
  "CMakeFiles/explain_redis.dir/explain_redis.cpp.o.d"
  "explain_redis"
  "explain_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
