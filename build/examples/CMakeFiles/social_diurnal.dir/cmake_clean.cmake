file(REMOVE_RECURSE
  "CMakeFiles/social_diurnal.dir/social_diurnal.cpp.o"
  "CMakeFiles/social_diurnal.dir/social_diurnal.cpp.o.d"
  "social_diurnal"
  "social_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
