file(REMOVE_RECURSE
  "CMakeFiles/trace_attribution.dir/trace_attribution.cpp.o"
  "CMakeFiles/trace_attribution.dir/trace_attribution.cpp.o.d"
  "trace_attribution"
  "trace_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
