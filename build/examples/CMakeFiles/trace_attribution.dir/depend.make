# Empty dependencies file for trace_attribution.
# This may be replaced when dependencies are built.
