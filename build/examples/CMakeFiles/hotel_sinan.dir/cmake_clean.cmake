file(REMOVE_RECURSE
  "CMakeFiles/hotel_sinan.dir/hotel_sinan.cpp.o"
  "CMakeFiles/hotel_sinan.dir/hotel_sinan.cpp.o.d"
  "hotel_sinan"
  "hotel_sinan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotel_sinan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
