# Empty compiler generated dependencies file for hotel_sinan.
# This may be replaced when dependencies are built.
