file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_collection.dir/bench_fig10_collection.cc.o"
  "CMakeFiles/bench_fig10_collection.dir/bench_fig10_collection.cc.o.d"
  "bench_fig10_collection"
  "bench_fig10_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
