# Empty compiler generated dependencies file for bench_fig10_collection.
# This may be replaced when dependencies are built.
