file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_retrain.dir/bench_fig13_retrain.cc.o"
  "CMakeFiles/bench_fig13_retrain.dir/bench_fig13_retrain.cc.o.d"
  "bench_fig13_retrain"
  "bench_fig13_retrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_retrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
