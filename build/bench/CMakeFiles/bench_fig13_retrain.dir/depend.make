# Empty dependencies file for bench_fig13_retrain.
# This may be replaced when dependencies are built.
