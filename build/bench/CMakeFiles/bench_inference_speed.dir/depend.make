# Empty dependencies file for bench_inference_speed.
# This may be replaced when dependencies are built.
