file(REMOVE_RECURSE
  "CMakeFiles/bench_inference_speed.dir/bench_inference_speed.cc.o"
  "CMakeFiles/bench_inference_speed.dir/bench_inference_speed.cc.o.d"
  "bench_inference_speed"
  "bench_inference_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inference_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
