# Empty dependencies file for bench_fig11_endtoend.
# This may be replaced when dependencies are built.
