file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_redis.dir/bench_fig16_redis.cc.o"
  "CMakeFiles/bench_fig16_redis.dir/bench_fig16_redis.cc.o.d"
  "bench_fig16_redis"
  "bench_fig16_redis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_redis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
