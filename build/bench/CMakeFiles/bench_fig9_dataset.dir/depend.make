# Empty dependencies file for bench_fig9_dataset.
# This may be replaced when dependencies are built.
