# Empty dependencies file for bench_table3_bt.
# This may be replaced when dependencies are built.
