file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_bt.dir/bench_table3_bt.cc.o"
  "CMakeFiles/bench_table3_bt.dir/bench_table3_bt.cc.o.d"
  "bench_table3_bt"
  "bench_table3_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
