# Empty dependencies file for bench_fig14_gce_mixes.
# This may be replaced when dependencies are built.
