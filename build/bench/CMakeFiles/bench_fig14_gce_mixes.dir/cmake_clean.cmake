file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gce_mixes.dir/bench_fig14_gce_mixes.cc.o"
  "CMakeFiles/bench_fig14_gce_mixes.dir/bench_fig14_gce_mixes.cc.o.d"
  "bench_fig14_gce_mixes"
  "bench_fig14_gce_mixes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gce_mixes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
