file(REMOVE_RECURSE
  "libsinan_bench_util.a"
)
