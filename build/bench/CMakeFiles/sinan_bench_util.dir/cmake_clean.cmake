file(REMOVE_RECURSE
  "CMakeFiles/sinan_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sinan_bench_util.dir/bench_util.cc.o.d"
  "libsinan_bench_util.a"
  "libsinan_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinan_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
