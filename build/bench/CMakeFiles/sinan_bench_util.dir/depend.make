# Empty dependencies file for sinan_bench_util.
# This may be replaced when dependencies are built.
