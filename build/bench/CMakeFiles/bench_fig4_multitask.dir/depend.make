# Empty dependencies file for bench_fig4_multitask.
# This may be replaced when dependencies are built.
