file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_delayed_queueing.dir/bench_fig3_delayed_queueing.cc.o"
  "CMakeFiles/bench_fig3_delayed_queueing.dir/bench_fig3_delayed_queueing.cc.o.d"
  "bench_fig3_delayed_queueing"
  "bench_fig3_delayed_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_delayed_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
