# Empty compiler generated dependencies file for bench_fig3_delayed_queueing.
# This may be replaced when dependencies are built.
