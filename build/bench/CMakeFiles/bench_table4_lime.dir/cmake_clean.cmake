file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_lime.dir/bench_table4_lime.cc.o"
  "CMakeFiles/bench_table4_lime.dir/bench_table4_lime.cc.o.d"
  "bench_table4_lime"
  "bench_table4_lime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_lime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
