# Empty dependencies file for bench_table4_lime.
# This may be replaced when dependencies are built.
