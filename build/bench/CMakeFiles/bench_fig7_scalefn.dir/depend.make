# Empty dependencies file for bench_fig7_scalefn.
# This may be replaced when dependencies are built.
