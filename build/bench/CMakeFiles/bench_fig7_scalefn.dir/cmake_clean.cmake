file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_scalefn.dir/bench_fig7_scalefn.cc.o"
  "CMakeFiles/bench_fig7_scalefn.dir/bench_fig7_scalefn.cc.o.d"
  "bench_fig7_scalefn"
  "bench_fig7_scalefn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_scalefn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
