# Empty dependencies file for nn_extras_test.
# This may be replaced when dependencies are built.
