file(REMOVE_RECURSE
  "CMakeFiles/nn_extras_test.dir/nn_extras_test.cc.o"
  "CMakeFiles/nn_extras_test.dir/nn_extras_test.cc.o.d"
  "nn_extras_test"
  "nn_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
