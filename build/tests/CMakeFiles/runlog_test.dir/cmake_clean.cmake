file(REMOVE_RECURSE
  "CMakeFiles/runlog_test.dir/runlog_test.cc.o"
  "CMakeFiles/runlog_test.dir/runlog_test.cc.o.d"
  "runlog_test"
  "runlog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runlog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
