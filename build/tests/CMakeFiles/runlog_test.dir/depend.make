# Empty dependencies file for runlog_test.
# This may be replaced when dependencies are built.
