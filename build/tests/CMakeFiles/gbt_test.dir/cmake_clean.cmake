file(REMOVE_RECURSE
  "CMakeFiles/gbt_test.dir/gbt_test.cc.o"
  "CMakeFiles/gbt_test.dir/gbt_test.cc.o.d"
  "gbt_test"
  "gbt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
