# Empty dependencies file for lime_test.
# This may be replaced when dependencies are built.
