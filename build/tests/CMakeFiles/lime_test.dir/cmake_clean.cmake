file(REMOVE_RECURSE
  "CMakeFiles/lime_test.dir/lime_test.cc.o"
  "CMakeFiles/lime_test.dir/lime_test.cc.o.d"
  "lime_test"
  "lime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
