
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/feature_selection_test.cc" "tests/CMakeFiles/feature_selection_test.dir/feature_selection_test.cc.o" "gcc" "tests/CMakeFiles/feature_selection_test.dir/feature_selection_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/sinan_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/explain/CMakeFiles/sinan_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/collect/CMakeFiles/sinan_collect.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sinan_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sinan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sinan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/sinan_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/sinan_app.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/sinan_models.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/sinan_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/sinan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/sinan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/gbt/CMakeFiles/sinan_gbt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sinan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
