file(REMOVE_RECURSE
  "CMakeFiles/collect_test.dir/collect_test.cc.o"
  "CMakeFiles/collect_test.dir/collect_test.cc.o.d"
  "collect_test"
  "collect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
