#include "harness/telemetry_log.h"

#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace sinan {

namespace {

constexpr int kPercentiles = 5; // p95..p99, matching LatencyQuantiles()

void
AppendEntryPrefix(std::ostringstream& out, const DecisionTraceEntry& e)
{
    out << e.time_s << ',' << e.interval << ',' << ToString(e.kind)
        << ',' << e.observed_p99_ms << ',' << (e.violated ? 1 : 0)
        << ',' << (e.trust_reduced ? 1 : 0) << ',' << e.mispredictions
        << ',' << e.healthy_streak << ',' << e.consecutive_violations
        << ',' << (e.trust_lost ? 1 : 0) << ','
        << (e.trust_restored ? 1 : 0) << ',' << ToString(e.telemetry)
        << ',' << e.silent_intervals << ',' << e.margin_ms << ','
        << (e.may_reclaim ? 1 : 0) << ',' << e.confidence << ','
        << e.uncertainty_margin_ms << ',';
    // The per-tier confidence vector is one CSV cell: '|'-separated so
    // the column count stays fixed across tier counts.
    for (size_t i = 0; i < e.tier_confidence.size(); ++i) {
        if (i)
            out << '|';
        out << e.tier_confidence[i];
    }
}

bool
EndsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

} // namespace

std::string
DecisionTraceToCsv(const DecisionTrace& trace)
{
    std::ostringstream out;
    out << "time_s,interval,decision,observed_p99_ms,violated,"
           "trust_reduced,mispredictions,healthy_streak,"
           "consecutive_violations,trust_lost,trust_restored,telemetry,"
           "silent_intervals,margin_ms,may_reclaim,"
           "confidence,uncertainty_margin_ms,tier_confidence,"
           "candidate,action,total_cpu";
    for (int p = 0; p < kPercentiles; ++p)
        out << ",pred_p" << (95 + p) << "_ms";
    out << ",p_violation,outcome\n";
    out.setf(std::ios::fixed);
    out.precision(4);
    for (const DecisionTraceEntry& e : trace.intervals) {
        if (e.candidates.empty()) {
            AppendEntryPrefix(out, e);
            out << ",-1,,";
            for (int p = 0; p <= kPercentiles; ++p)
                out << ',';
            out << ",\n";
            continue;
        }
        SINAN_CHECK_BOUNDS(e.chosen, -1,
                           static_cast<int>(e.candidates.size()) - 1);
        for (size_t c = 0; c < e.candidates.size(); ++c) {
            const CandidateTrace& ct = e.candidates[c];
            // Wider-than-schema prediction vectors would be silently
            // truncated to kPercentiles columns.
            SINAN_CHECK_LE(ct.latency_ms.size(),
                           static_cast<size_t>(kPercentiles));
            AppendEntryPrefix(out, e);
            out << ',' << c << ',' << ToString(ct.kind) << ','
                << ct.total_cpu;
            for (int p = 0; p < kPercentiles; ++p) {
                out << ',';
                if (p < static_cast<int>(ct.latency_ms.size()))
                    out << ct.latency_ms[p];
            }
            out << ',' << ct.p_violation << ',' << ToString(ct.outcome)
                << '\n';
        }
    }
    return out.str();
}

std::string
DecisionTraceToJson(const DecisionTrace& trace)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(4);
    out << "[\n";
    for (size_t i = 0; i < trace.intervals.size(); ++i) {
        const DecisionTraceEntry& e = trace.intervals[i];
        out << "  {\"time_s\": " << e.time_s
            << ", \"interval\": " << e.interval << ", \"decision\": \""
            << ToString(e.kind)
            << "\", \"observed_p99_ms\": " << e.observed_p99_ms
            << ", \"violated\": " << (e.violated ? "true" : "false")
            << ", \"trust_reduced\": "
            << (e.trust_reduced ? "true" : "false")
            << ", \"mispredictions\": " << e.mispredictions
            << ", \"healthy_streak\": " << e.healthy_streak
            << ", \"consecutive_violations\": "
            << e.consecutive_violations << ", \"trust_lost\": "
            << (e.trust_lost ? "true" : "false")
            << ", \"trust_restored\": "
            << (e.trust_restored ? "true" : "false")
            << ", \"telemetry\": \"" << ToString(e.telemetry)
            << "\", \"silent_intervals\": " << e.silent_intervals
            << ", \"margin_ms\": " << e.margin_ms
            << ", \"may_reclaim\": "
            << (e.may_reclaim ? "true" : "false")
            << ", \"confidence\": " << e.confidence
            << ", \"uncertainty_margin_ms\": " << e.uncertainty_margin_ms
            << ", \"tier_confidence\": [";
        for (size_t t = 0; t < e.tier_confidence.size(); ++t)
            out << (t ? ", " : "") << e.tier_confidence[t];
        out << "], \"chosen\": " << e.chosen << ",\n   \"candidates\": [";
        for (size_t c = 0; c < e.candidates.size(); ++c) {
            const CandidateTrace& ct = e.candidates[c];
            out << (c ? ",\n     " : "\n     ") << "{\"action\": \""
                << ToString(ct.kind)
                << "\", \"total_cpu\": " << ct.total_cpu
                << ", \"latency_ms\": [";
            for (size_t p = 0; p < ct.latency_ms.size(); ++p)
                out << (p ? ", " : "") << ct.latency_ms[p];
            out << "], \"p_violation\": " << ct.p_violation
                << ", \"outcome\": \"" << ToString(ct.outcome) << "\"}";
        }
        out << (e.candidates.empty() ? "]}" : "\n   ]}")
            << (i + 1 < trace.intervals.size() ? ",\n" : "\n");
    }
    out << "]\n";
    return out.str();
}

void
WriteDecisionTrace(const std::string& path, const DecisionTrace& trace)
{
    WriteFile(path, EndsWith(path, ".json")
                        ? DecisionTraceToJson(trace)
                        : DecisionTraceToCsv(trace));
}

void
WriteMetrics(const std::string& path, const MetricsRegistry& reg)
{
    WriteFile(path,
              EndsWith(path, ".json") ? reg.ToJson() : reg.ToCsv());
}

double
TelemetrySummary::PredictionAccuracy() const
{
    if (predictions == 0)
        return 1.0;
    return 1.0 - static_cast<double>(mispredictions) /
                     static_cast<double>(predictions);
}

double
TelemetrySummary::FallbackRate() const
{
    if (decisions == 0)
        return 0.0;
    return static_cast<double>(fallbacks) /
           static_cast<double>(decisions);
}

TelemetrySummary
SummarizeTelemetry(const MetricsRegistry& reg)
{
    TelemetrySummary s;
    s.decisions = reg.Counter("sinan.scheduler.decisions");
    s.warmup = reg.Counter("sinan.scheduler.warmup");
    s.fallbacks = reg.Counter("sinan.scheduler.fallbacks");
    s.escalations = reg.Counter("sinan.scheduler.escalations");
    s.model_decisions = reg.Counter("sinan.scheduler.model_decisions");
    s.no_feasible = reg.Counter("sinan.scheduler.no_feasible");
    s.candidates = reg.Counter("sinan.scheduler.candidates");
    s.predictions = reg.Counter("sinan.scheduler.predictions");
    s.mispredictions = reg.Counter("sinan.scheduler.mispredictions");
    s.trust_lost = reg.Counter("sinan.scheduler.trust_lost");
    s.trust_restored = reg.Counter("sinan.scheduler.trust_restored");
    s.degraded = reg.Counter("sinan.scheduler.degraded");
    s.degraded_model = reg.Counter("sinan.scheduler.degraded_model");
    s.degraded_heuristic =
        reg.Counter("sinan.scheduler.degraded_heuristic");
    s.degraded_hold = reg.Counter("sinan.scheduler.degraded_hold");
    s.watchdog_upscales = reg.Counter("sinan.scheduler.watchdog");
    s.uncertain = reg.Counter("sinan.scheduler.uncertain");
    s.uncertain_model = reg.Counter("sinan.scheduler.uncertain_model");
    return s;
}

} // namespace sinan
