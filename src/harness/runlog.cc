#include "harness/runlog.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/table.h"

namespace sinan {

std::string
RunLogToCsv(const RunResult& result, const Application& app)
{
    std::ostringstream out;
    out << "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
           "total_cpu";
    for (const TierSpec& t : app.tiers)
        out << ",cpu:" << t.name;
    out << '\n';
    out.setf(std::ios::fixed);
    out.precision(4);
    for (const IntervalRecord& rec : result.timeline) {
        // A record whose allocation width drifted from the tier list
        // would silently shift every column after total_cpu.
        SINAN_CHECK_EQ(rec.alloc.size(), app.tiers.size());
        SINAN_CHECK_FINITE(rec.p99_ms);
        out << rec.time_s << ',' << rec.rps << ',' << rec.p99_ms << ','
            << rec.predicted_p99_ms << ',' << rec.predicted_violation
            << ',' << rec.total_cpu;
        for (double a : rec.alloc)
            out << ',' << a;
        out << '\n';
    }
    return out.str();
}

void
WriteRunLog(const std::string& path, const RunResult& result,
            const Application& app)
{
    WriteFile(path, RunLogToCsv(result, app));
}

namespace {

/** Parses one CSV cell as a double; reports line/column on failure. */
double
ParseCell(const std::string& cell, int line_no, size_t col)
{
    size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(cell, &consumed);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != cell.size() || cell.empty()) {
        throw std::invalid_argument(
            "ParseRunLog: line " + std::to_string(line_no) +
            ", column " + std::to_string(col) + ": bad numeric cell '" +
            cell + "'");
    }
    return v;
}

} // namespace

std::vector<RunLogRow>
ParseRunLog(const std::string& csv)
{
    // Logs written on (or round-tripped through) Windows tooling carry
    // CRLF line endings; a run cut short mid-write ends without a
    // trailing newline. Both used to surface as a confusing "bad
    // numeric cell" / column-count mismatch on an otherwise-valid file.
    const bool ends_mid_line = !csv.empty() && csv.back() != '\n';

    std::istringstream in(csv);
    std::string line;
    auto strip_cr = [](std::string& s) {
        if (!s.empty() && s.back() == '\r')
            s.pop_back();
    };
    if (!std::getline(in, line))
        throw std::invalid_argument("ParseRunLog: empty input");
    strip_cr(line);
    if (line.rfind("time_s,", 0) != 0)
        throw std::invalid_argument("ParseRunLog: bad header");
    const size_t header_cols =
        1 + static_cast<size_t>(
                std::count(line.begin(), line.end(), ','));

    std::vector<RunLogRow> rows;
    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        strip_cr(line);
        if (line.empty())
            continue;
        const bool truncated = ends_mid_line && in.eof();
        const std::string truncation_hint =
            truncated ? " (the file ends without a newline — the final "
                        "row appears truncated)"
                      : "";
        std::istringstream ls(line);
        std::string cell;
        std::vector<double> values;
        while (std::getline(ls, cell, ',')) {
            try {
                values.push_back(
                    ParseCell(cell, line_no, values.size() + 1));
            } catch (const std::invalid_argument& e) {
                throw std::invalid_argument(e.what() + truncation_hint);
            }
        }
        if (values.size() < 6) {
            throw std::invalid_argument(
                "ParseRunLog: line " + std::to_string(line_no) +
                ": short row (" + std::to_string(values.size()) +
                " columns, need at least 6)" + truncation_hint);
        }
        // The alloc columns must agree with the header's tier list; a
        // truncated or over-long row would otherwise silently shift
        // per-tier allocations.
        if (values.size() != header_cols) {
            throw std::invalid_argument(
                "ParseRunLog: line " + std::to_string(line_no) + ": " +
                std::to_string(values.size()) +
                " columns but the header has " +
                std::to_string(header_cols) + truncation_hint);
        }
        RunLogRow row;
        row.time_s = values[0];
        row.rps = values[1];
        row.p99_ms = values[2];
        row.predicted_p99_ms = values[3];
        row.predicted_violation = values[4];
        row.total_cpu = values[5];
        row.alloc.assign(values.begin() + 6, values.end());
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<RunLogRow>
LoadRunLog(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("LoadRunLog: cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return ParseRunLog(buf.str());
}

RunLogSummary
SummarizeRunLog(const std::vector<RunLogRow>& rows, double qos_ms,
                double warmup_s)
{
    RunLogSummary s;
    size_t met = 0;
    for (const RunLogRow& row : rows) {
        if (row.time_s <= warmup_s)
            continue;
        ++s.intervals;
        met += row.p99_ms <= qos_ms;
        s.mean_cpu += row.total_cpu;
        s.mean_p99_ms += row.p99_ms;
        s.max_cpu = std::max(s.max_cpu, row.total_cpu);
        s.max_p99_ms = std::max(s.max_p99_ms, row.p99_ms);
    }
    if (s.intervals) {
        s.qos_meet_prob =
            static_cast<double>(met) / static_cast<double>(s.intervals);
        s.mean_cpu /= static_cast<double>(s.intervals);
        s.mean_p99_ms /= static_cast<double>(s.intervals);
    }
    return s;
}

} // namespace sinan
