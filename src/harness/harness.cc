#include "harness/harness.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "collect/bandit.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace sinan {

ManagedRun::ManagedRun(const Application& app, ResourceManager& manager,
                       const LoadShape& load, const RunConfig& cfg)
    : app_(app), manager_(manager), cfg_(cfg), sim_(cfg.sim),
      cluster_(app, cfg.cluster, cfg.seed),
      gen_(cluster_, load, cfg.seed ^ 0xfeed, 1.0, cfg.bursts)
{
    // Intervals completed within the configured duration; trailing
    // ticks shorter than a full interval produce no record (exactly
    // the intervals a single RunFor(duration_s) would report).
    const int64_t total_ticks = static_cast<int64_t>(
        std::llround(cfg.duration_s / cfg.sim.tick_s));
    const int64_t ticks_per_interval = static_cast<int64_t>(
        std::llround(cfg.sim.interval_s / cfg.sim.tick_s));
    total_intervals_ = total_ticks / std::max<int64_t>(
        ticks_per_interval, 1);

    manager_.Reset();
    manager_.AttachTelemetry(&result_.decision_trace,
                             &result_.metrics);

    // Deterministic fault injection (see sim/fault_injector.h). The
    // injector perturbs the cluster before each interval starts and
    // corrupts only the manager's copy of the harvested observation;
    // IntervalRecord and the QoS accounting always see the truth.
    if (!cfg.faults.Empty()) {
        ValidateFaultSchedule(cfg.faults,
                              static_cast<int>(app.tiers.size()));
        injector_ = std::make_unique<FaultInjector>(
            cfg.faults, cfg.sim.interval_s);
        injector_->AttachMetrics(&result_.metrics);
        injector_->ApplyClusterFaults(0, 0.0, cluster_);
        gen_.SetRateMultiplier(injector_->RateMultiplierAt(0));
    }

    sim_.AddTickable(
        [this](double now, double dt) { gen_.Tick(now, dt); });
    sim_.AddTickable(
        [this](double now, double dt) { cluster_.Tick(now, dt); });
}

void
ManagedRun::AdvanceInterval()
{
    SINAN_CHECK_MSG(!pending_, "ManagedRun: AdvanceInterval called "
                                "twice without DecideAndApply");
    SINAN_CHECK_MSG(!Done() && !finished_,
                    "ManagedRun: AdvanceInterval on a finished run");
    sim_.RunFor(cfg_.sim.interval_s);
    const double now = sim_.Now();
    const int64_t interval = intervals_done_;

    const std::vector<double> alloc = cluster_.Allocation();
    const IntervalObservation obs =
        cluster_.Harvest(now, cfg_.sim.interval_s);

    pending_rec_ = IntervalRecord{};
    pending_rec_.time_s = now;
    pending_rec_.rps = obs.rps;
    pending_rec_.p99_ms = obs.P99();
    pending_rec_.total_cpu = obs.TotalCpuLimit();
    pending_rec_.alloc = alloc;

    pending_managed_ = obs;
    if (injector_) {
        switch (injector_->FilterTelemetry(interval, pending_managed_)) {
        case TelemetryFate::kDeliver:
            last_delivered_ = pending_managed_;
            have_delivered_ = true;
            break;
        case TelemetryFate::kDrop:
            // Blank observation: no tiers, no percentiles — the
            // scheduler's guard classifies it as absent.
            pending_managed_ = IntervalObservation{};
            pending_managed_.time_s = now;
            break;
        case TelemetryFate::kDelay:
            // The pipeline redelivers the newest already-delivered
            // observation (stale), or nothing at all if the outage
            // started before anything got through.
            if (have_delivered_) {
                pending_managed_ = last_delivered_;
            } else {
                pending_managed_ = IntervalObservation{};
                pending_managed_.time_s = now;
            }
            break;
        }
    }
    pending_now_ = now;
    pending_ = true;
}

void
ManagedRun::DecideAndApply()
{
    SINAN_CHECK_MSG(pending_,
                    "ManagedRun: DecideAndApply without "
                    "AdvanceInterval");
    const double now = pending_now_;
    const int64_t interval = intervals_done_;

    const size_t traced = result_.decision_trace.intervals.size();
    const std::vector<double> next =
        manager_.Decide(pending_managed_, pending_rec_.alloc, app_);
    cluster_.SetAllocation(next);
    if (injector_) {
        injector_->ApplyClusterFaults(interval + 1, now, cluster_);
        // Flash-crowd events multiply the arrival rate for the coming
        // interval (the cluster-side counterpart is applied above).
        gen_.SetRateMultiplier(
            injector_->RateMultiplierAt(interval + 1));
    }
    // Stamp the simulation time onto whatever the manager traced
    // for this decision (the scheduler has no notion of time).
    for (size_t i = traced;
         i < result_.decision_trace.intervals.size(); ++i)
        result_.decision_trace.intervals[i].time_s = now;
    pending_rec_.predicted_p99_ms = manager_.LastPredictedP99();
    pending_rec_.predicted_violation = manager_.LastViolationProb();
    result_.timeline.push_back(std::move(pending_rec_));
    pending_ = false;
    ++intervals_done_;
}

const IntervalRecord&
ManagedRun::LastRecord() const
{
    SINAN_CHECK_MSG(!result_.timeline.empty(),
                    "ManagedRun: LastRecord before the first interval");
    return result_.timeline.back();
}

RunResult
ManagedRun::Finish()
{
    SINAN_CHECK_MSG(!finished_, "ManagedRun: Finish called twice");
    finished_ = true;
    intervals_done_ = total_intervals_;
    // The sinks move with the result; detach before returning.
    manager_.AttachTelemetry(nullptr, nullptr);

    // Aggregate post-warmup metrics.
    RunResult result = std::move(result_);
    size_t met = 0, measured = 0;
    double cpu_acc = 0.0, p99_acc = 0.0;
    for (const IntervalRecord& rec : result.timeline) {
        if (rec.time_s <= cfg_.warmup_s)
            continue;
        ++measured;
        if (rec.p99_ms <= app_.qos_ms)
            ++met;
        cpu_acc += rec.total_cpu;
        p99_acc += rec.p99_ms;
        result.max_cpu = std::max(result.max_cpu, rec.total_cpu);
        result.p99_series_ms.push_back(rec.p99_ms);
    }
    if (measured) {
        result.qos_meet_prob =
            static_cast<double>(met) / static_cast<double>(measured);
        result.mean_cpu = cpu_acc / static_cast<double>(measured);
        result.mean_p99_ms = p99_acc / static_cast<double>(measured);
    }
    return result;
}

RunResult
RunManaged(const Application& app, ResourceManager& manager,
           const LoadShape& load, const RunConfig& cfg)
{
    ManagedRun run(app, manager, load, cfg);
    while (!run.Done()) {
        run.AdvanceInterval();
        run.DecideAndApply();
    }
    return run.Finish();
}

int
RecoveryIntervals(const RunResult& result, double fault_end_s,
                  double qos_ms)
{
    int waited = 0;
    for (const IntervalRecord& rec : result.timeline) {
        if (rec.time_s <= fault_end_s)
            continue;
        if (rec.p99_ms <= qos_ms)
            return waited;
        ++waited;
    }
    return -1;
}

std::vector<RunResult>
RunSweep(const Application& app, const std::vector<SweepJob>& jobs)
{
    std::vector<RunResult> results(jobs.size());
    ParallelFor(0, static_cast<int64_t>(jobs.size()), 1,
                [&](int64_t lo, int64_t hi) {
        for (int64_t j = lo; j < hi; ++j) {
            const SweepJob& job = jobs[j];
            if (!job.make_manager || !job.make_load)
                throw std::invalid_argument(
                    "RunSweep: job factories must be set");
            const std::unique_ptr<ResourceManager> manager =
                job.make_manager();
            const std::unique_ptr<LoadShape> load = job.make_load();
            results[j] = RunManaged(app, *manager, *load, job.cfg);
        }
    });
    return results;
}

HybridConfig
DefaultHybridConfig()
{
    HybridConfig cfg;
    cfg.cnn = SinanCnnConfig{};
    cfg.bt.n_trees = 250;
    cfg.bt.max_depth = 4;
    cfg.bt.learning_rate = 0.12;
    cfg.bt.early_stop_rounds = 12;
    cfg.train.epochs = 18;
    cfg.train.batch_size = 64;
    cfg.train.lr = 0.02;
    cfg.train.lr_decay = 0.93;
    cfg.train.scaled_loss = true;
    cfg.train.loss_knee = 1.0;
    cfg.train.loss_alpha = 5.0;
    return cfg;
}

TrainedSinan
TrainSinanForApp(const Application& app, const PipelineConfig& cfg)
{
    TrainedSinan out;
    out.features.n_tiers = static_cast<int>(app.tiers.size());
    out.features.history = cfg.history;
    out.features.violation_lookahead = cfg.violation_lookahead;
    out.features.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = cfg.collect_s;
    col.users_min = cfg.users_min;
    col.users_max = cfg.users_max;
    col.features = out.features;
    col.cluster = cfg.cluster;
    col.seed = cfg.seed;

    BanditConfig bandit_cfg;
    bandit_cfg.qos_ms = app.qos_ms;
    bandit_cfg.seed = cfg.seed ^ 0xbad17;
    BanditExplorer bandit(bandit_cfg);

    const Dataset all = Collect(app, bandit, col);
    Rng rng(cfg.seed ^ 0x5eed);
    auto [train, valid] = all.Split(0.9, rng);
    out.train = std::move(train);
    out.valid = std::move(valid);

    out.model = std::make_unique<HybridModel>(out.features, cfg.hybrid,
                                              cfg.seed ^ 0xcafe);
    out.report = out.model->Train(out.train, out.valid);
    // Calibrate unconditionally (a few ms on the training set) so
    // every trained model can serve int8 and every Save carries the
    // activation scales; the mode itself stays off until requested.
    out.model->CalibrateInt8(out.train);
    return out;
}

} // namespace sinan
