#include "harness/harness.h"

#include <algorithm>
#include <stdexcept>

#include "collect/bandit.h"
#include "common/thread_pool.h"

namespace sinan {

RunResult
RunManaged(const Application& app, ResourceManager& manager,
           const LoadShape& load, const RunConfig& cfg)
{
    Simulator sim(cfg.sim);
    Cluster cluster(app, cfg.cluster, cfg.seed);
    WorkloadGenerator gen(cluster, load, cfg.seed ^ 0xfeed, 1.0,
                          cfg.bursts);

    manager.Reset();
    RunResult result;
    manager.AttachTelemetry(&result.decision_trace, &result.metrics);

    // Deterministic fault injection (see sim/fault_injector.h). The
    // injector perturbs the cluster before each interval starts and
    // corrupts only the manager's copy of the harvested observation;
    // IntervalRecord and the QoS accounting below always see the truth.
    std::unique_ptr<FaultInjector> injector;
    IntervalObservation last_delivered;
    bool have_delivered = false;
    if (!cfg.faults.Empty()) {
        ValidateFaultSchedule(cfg.faults,
                              static_cast<int>(app.tiers.size()));
        injector = std::make_unique<FaultInjector>(cfg.faults,
                                                   cfg.sim.interval_s);
        injector->AttachMetrics(&result.metrics);
        injector->ApplyClusterFaults(0, 0.0, cluster);
    }

    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t interval, double now) {
        const std::vector<double> alloc = cluster.Allocation();
        const IntervalObservation obs =
            cluster.Harvest(now, cfg.sim.interval_s);

        IntervalRecord rec;
        rec.time_s = now;
        rec.rps = obs.rps;
        rec.p99_ms = obs.P99();
        rec.total_cpu = obs.TotalCpuLimit();
        rec.alloc = alloc;

        IntervalObservation managed = obs;
        if (injector) {
            switch (injector->FilterTelemetry(interval, managed)) {
            case TelemetryFate::kDeliver:
                last_delivered = managed;
                have_delivered = true;
                break;
            case TelemetryFate::kDrop:
                // Blank observation: no tiers, no percentiles — the
                // scheduler's guard classifies it as absent.
                managed = IntervalObservation{};
                managed.time_s = now;
                break;
            case TelemetryFate::kDelay:
                // The pipeline redelivers the newest already-delivered
                // observation (stale), or nothing at all if the outage
                // started before anything got through.
                if (have_delivered) {
                    managed = last_delivered;
                } else {
                    managed = IntervalObservation{};
                    managed.time_s = now;
                }
                break;
            }
        }

        const size_t traced = result.decision_trace.intervals.size();
        const std::vector<double> next =
            manager.Decide(managed, alloc, app);
        cluster.SetAllocation(next);
        if (injector)
            injector->ApplyClusterFaults(interval + 1, now, cluster);
        // Stamp the simulation time onto whatever the manager traced
        // for this decision (the scheduler has no notion of time).
        for (size_t i = traced;
             i < result.decision_trace.intervals.size(); ++i)
            result.decision_trace.intervals[i].time_s = now;
        rec.predicted_p99_ms = manager.LastPredictedP99();
        rec.predicted_violation = manager.LastViolationProb();
        result.timeline.push_back(std::move(rec));
    });

    sim.RunFor(cfg.duration_s);
    // The sinks move with the result; detach before returning.
    manager.AttachTelemetry(nullptr, nullptr);

    // Aggregate post-warmup metrics.
    size_t met = 0, measured = 0;
    double cpu_acc = 0.0, p99_acc = 0.0;
    for (const IntervalRecord& rec : result.timeline) {
        if (rec.time_s <= cfg.warmup_s)
            continue;
        ++measured;
        if (rec.p99_ms <= app.qos_ms)
            ++met;
        cpu_acc += rec.total_cpu;
        p99_acc += rec.p99_ms;
        result.max_cpu = std::max(result.max_cpu, rec.total_cpu);
        result.p99_series_ms.push_back(rec.p99_ms);
    }
    if (measured) {
        result.qos_meet_prob =
            static_cast<double>(met) / static_cast<double>(measured);
        result.mean_cpu = cpu_acc / static_cast<double>(measured);
        result.mean_p99_ms = p99_acc / static_cast<double>(measured);
    }
    return result;
}

int
RecoveryIntervals(const RunResult& result, double fault_end_s,
                  double qos_ms)
{
    int waited = 0;
    for (const IntervalRecord& rec : result.timeline) {
        if (rec.time_s <= fault_end_s)
            continue;
        if (rec.p99_ms <= qos_ms)
            return waited;
        ++waited;
    }
    return -1;
}

std::vector<RunResult>
RunSweep(const Application& app, const std::vector<SweepJob>& jobs)
{
    std::vector<RunResult> results(jobs.size());
    ParallelFor(0, static_cast<int64_t>(jobs.size()), 1,
                [&](int64_t lo, int64_t hi) {
        for (int64_t j = lo; j < hi; ++j) {
            const SweepJob& job = jobs[j];
            if (!job.make_manager || !job.make_load)
                throw std::invalid_argument(
                    "RunSweep: job factories must be set");
            const std::unique_ptr<ResourceManager> manager =
                job.make_manager();
            const std::unique_ptr<LoadShape> load = job.make_load();
            results[j] = RunManaged(app, *manager, *load, job.cfg);
        }
    });
    return results;
}

HybridConfig
DefaultHybridConfig()
{
    HybridConfig cfg;
    cfg.cnn = SinanCnnConfig{};
    cfg.bt.n_trees = 250;
    cfg.bt.max_depth = 4;
    cfg.bt.learning_rate = 0.12;
    cfg.bt.early_stop_rounds = 12;
    cfg.train.epochs = 18;
    cfg.train.batch_size = 64;
    cfg.train.lr = 0.02;
    cfg.train.lr_decay = 0.93;
    cfg.train.scaled_loss = true;
    cfg.train.loss_knee = 1.0;
    cfg.train.loss_alpha = 5.0;
    return cfg;
}

TrainedSinan
TrainSinanForApp(const Application& app, const PipelineConfig& cfg)
{
    TrainedSinan out;
    out.features.n_tiers = static_cast<int>(app.tiers.size());
    out.features.history = cfg.history;
    out.features.violation_lookahead = cfg.violation_lookahead;
    out.features.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = cfg.collect_s;
    col.users_min = cfg.users_min;
    col.users_max = cfg.users_max;
    col.features = out.features;
    col.cluster = cfg.cluster;
    col.seed = cfg.seed;

    BanditConfig bandit_cfg;
    bandit_cfg.qos_ms = app.qos_ms;
    bandit_cfg.seed = cfg.seed ^ 0xbad17;
    BanditExplorer bandit(bandit_cfg);

    const Dataset all = Collect(app, bandit, col);
    Rng rng(cfg.seed ^ 0x5eed);
    auto [train, valid] = all.Split(0.9, rng);
    out.train = std::move(train);
    out.valid = std::move(valid);

    out.model = std::make_unique<HybridModel>(out.features, cfg.hybrid,
                                              cfg.seed ^ 0xcafe);
    out.report = out.model->Train(out.train, out.valid);
    return out;
}

} // namespace sinan
