/**
 * @file
 * Experiment harness: runs a resource manager against a simulated
 * application under a load shape and accounts the paper's evaluation
 * metrics (probability of meeting QoS, mean/max aggregate CPU
 * allocation, and full timelines for the figure benches). Also bundles
 * the end-to-end "collect with the bandit, train the hybrid model"
 * pipeline that every Sinan experiment starts from.
 */
#ifndef SINAN_HARNESS_HARNESS_H
#define SINAN_HARNESS_HARNESS_H

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "collect/collector.h"
#include "core/manager.h"
#include "models/hybrid.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {

/** One managed run's parameters. */
struct RunConfig {
    double duration_s = 120.0;
    /** Intervals excluded from the aggregate metrics. */
    double warmup_s = 15.0;
    SimConfig sim;
    ClusterConfig cluster;
    /** Traffic micro-bursts (enabled: managers must keep headroom). */
    BurstOptions bursts = DefaultBursts();
    /** Deterministic fault schedule (empty: no faults). Cluster faults
     *  perturb the ground truth; telemetry faults corrupt only the
     *  manager's copy of each observation — QoS accounting always uses
     *  the true observation. See sim/fault_injector.h. */
    FaultSchedule faults;
    uint64_t seed = 1;

    static BurstOptions
    DefaultBursts()
    {
        BurstOptions b;
        b.enabled = true;
        return b;
    }
};

/** Timeline entry captured each interval. */
struct IntervalRecord {
    double time_s = 0.0;
    double rps = 0.0;
    double p99_ms = 0.0;
    double total_cpu = 0.0;
    double predicted_p99_ms = -1.0;
    double predicted_violation = -1.0;
    std::vector<double> alloc;
};

/** Aggregated result of one run. */
struct RunResult {
    /** Fraction of measured intervals with p99 <= QoS. */
    double qos_meet_prob = 0.0;
    /** Mean / max aggregate CPU allocation (cores, post-warmup). */
    double mean_cpu = 0.0;
    double max_cpu = 0.0;
    /** Mean p99 over measured intervals, ms. */
    double mean_p99_ms = 0.0;
    /** All per-interval p99 values (for distribution figures). */
    std::vector<double> p99_series_ms;
    /** Full timeline (includes warmup). */
    std::vector<IntervalRecord> timeline;
    /**
     * Per-decision telemetry, filled by managers that implement the
     * AttachTelemetry() hook (SinanScheduler): the structured decision
     * trace with interval times stamped by the harness, and the
     * `sinan.scheduler.*` metric registry. Empty for managers without
     * telemetry. Serializers live in harness/telemetry_log.h.
     */
    DecisionTrace decision_trace;
    MetricsRegistry metrics;
};

/** Runs @p manager on @p app under @p load. */
RunResult RunManaged(const Application& app, ResourceManager& manager,
                     const LoadShape& load, const RunConfig& cfg);

/**
 * Recovery time after a fault run: intervals past @p fault_end_s until
 * the first measured interval with p99 <= @p qos_ms. 0 means the first
 * post-fault interval already met QoS; -1 means the run never recovered
 * (or ended before the faults did).
 */
int RecoveryIntervals(const RunResult& result, double fault_end_s,
                      double qos_ms);

/**
 * One run of a concurrent sweep. The factories are invoked inside the
 * worker executing the job, so every run owns a private manager and
 * load instance — managers are stateful and must not be shared across
 * concurrent runs (Sinan jobs should clone the hybrid model, see
 * HybridModel::Clone()).
 */
struct SweepJob {
    std::function<std::unique_ptr<ResourceManager>()> make_manager;
    std::function<std::unique_ptr<LoadShape>()> make_load;
    RunConfig cfg;
};

/**
 * Runs every job (concurrently on the global thread pool when it has
 * threads; see SetNumThreads()/SINAN_THREADS). Results are returned in
 * job order, and each simulation is fully seeded, so the output is
 * identical to running the jobs serially.
 */
std::vector<RunResult> RunSweep(const Application& app,
                                const std::vector<SweepJob>& jobs);

/** Everything needed to evaluate Sinan on one application. */
struct TrainedSinan {
    FeatureConfig features;
    std::unique_ptr<HybridModel> model;
    Dataset train;
    Dataset valid;
    HybridReport report;
};

/** Data-collection + training knobs of the end-to-end pipeline. */
struct PipelineConfig {
    /** Simulated collection time (≈ samples before windowing). */
    double collect_s = 2200.0;
    double users_min = 50.0;
    double users_max = 450.0;
    int history = 5;
    int violation_lookahead = 5;
    HybridConfig hybrid;
    ClusterConfig cluster;
    uint64_t seed = 42;
};

/**
 * Collects a dataset with the bandit explorer and trains the hybrid
 * model — the offline phase preceding every deployment experiment.
 */
TrainedSinan TrainSinanForApp(const Application& app,
                              const PipelineConfig& cfg);

/** Default hybrid/train hyper-parameters used across the benches. */
HybridConfig DefaultHybridConfig();

} // namespace sinan

#endif // SINAN_HARNESS_HARNESS_H
