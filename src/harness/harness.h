/**
 * @file
 * Experiment harness: runs a resource manager against a simulated
 * application under a load shape and accounts the paper's evaluation
 * metrics (probability of meeting QoS, mean/max aggregate CPU
 * allocation, and full timelines for the figure benches). Also bundles
 * the end-to-end "collect with the bandit, train the hybrid model"
 * pipeline that every Sinan experiment starts from.
 */
#ifndef SINAN_HARNESS_HARNESS_H
#define SINAN_HARNESS_HARNESS_H

#include <functional>
#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "collect/collector.h"
#include "core/manager.h"
#include "models/hybrid.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {

/** One managed run's parameters. */
struct RunConfig {
    double duration_s = 120.0;
    /** Intervals excluded from the aggregate metrics. */
    double warmup_s = 15.0;
    SimConfig sim;
    ClusterConfig cluster;
    /** Traffic micro-bursts (enabled: managers must keep headroom). */
    BurstOptions bursts = DefaultBursts();
    /** Deterministic fault schedule (empty: no faults). Cluster faults
     *  perturb the ground truth; telemetry faults corrupt only the
     *  manager's copy of each observation — QoS accounting always uses
     *  the true observation. See sim/fault_injector.h. */
    FaultSchedule faults;
    uint64_t seed = 1;

    static BurstOptions
    DefaultBursts()
    {
        BurstOptions b;
        b.enabled = true;
        return b;
    }
};

/** Timeline entry captured each interval. */
struct IntervalRecord {
    double time_s = 0.0;
    double rps = 0.0;
    double p99_ms = 0.0;
    double total_cpu = 0.0;
    double predicted_p99_ms = -1.0;
    double predicted_violation = -1.0;
    std::vector<double> alloc;
};

/** Aggregated result of one run. */
struct RunResult {
    /** Fraction of measured intervals with p99 <= QoS. */
    double qos_meet_prob = 0.0;
    /** Mean / max aggregate CPU allocation (cores, post-warmup). */
    double mean_cpu = 0.0;
    double max_cpu = 0.0;
    /** Mean p99 over measured intervals, ms. */
    double mean_p99_ms = 0.0;
    /** All per-interval p99 values (for distribution figures). */
    std::vector<double> p99_series_ms;
    /** Full timeline (includes warmup). */
    std::vector<IntervalRecord> timeline;
    /**
     * Per-decision telemetry, filled by managers that implement the
     * AttachTelemetry() hook (SinanScheduler): the structured decision
     * trace with interval times stamped by the harness, and the
     * `sinan.scheduler.*` metric registry. Empty for managers without
     * telemetry. Serializers live in harness/telemetry_log.h.
     */
    DecisionTrace decision_trace;
    MetricsRegistry metrics;
};

/** Runs @p manager on @p app under @p load. */
RunResult RunManaged(const Application& app, ResourceManager& manager,
                     const LoadShape& load, const RunConfig& cfg);

/**
 * One managed run decomposed into externally driven interval steps.
 *
 * Each decision interval splits into two phases:
 *   A. AdvanceInterval() — tick the simulation to the next interval
 *      boundary and harvest (and fault-filter) the observation;
 *   B. DecideAndApply()  — run the manager on the pending observation
 *      and apply the returned allocation (plus next-interval cluster
 *      faults).
 *
 * RunManaged() drives one instance to completion; the fleet harness
 * (src/fleet) advances many instances concurrently in phase A and
 * batches phase B under the centralized FleetManager. The per-interval
 * operation sequence on the run's own state is exactly RunManaged's,
 * so a cluster stepped inside a fleet produces byte-identical
 * telemetry to the same configuration run solo.
 *
 * Instances are pinned to their construction address (the simulator's
 * tick callbacks capture member references): neither copyable nor
 * movable. The application, manager, and load must outlive the run.
 */
class ManagedRun {
  public:
    ManagedRun(const Application& app, ResourceManager& manager,
               const LoadShape& load, const RunConfig& cfg);

    ManagedRun(const ManagedRun&) = delete;
    ManagedRun& operator=(const ManagedRun&) = delete;

    /** Decision intervals the configured duration spans. */
    int64_t TotalIntervals() const { return total_intervals_; }

    /** Intervals fully processed (both phases). */
    int64_t IntervalsDone() const { return intervals_done_; }

    bool Done() const { return intervals_done_ >= total_intervals_; }

    /** Phase A (see class comment). Call only while !Done(), and
     *  never twice without a DecideAndApply() in between. */
    void AdvanceInterval();

    /** Phase B (see class comment). Must follow AdvanceInterval(). */
    void DecideAndApply();

    const Application& App() const { return app_; }
    ResourceManager& Manager() { return manager_; }
    const RunConfig& Config() const { return cfg_; }

    /** Newest timeline record (valid once an interval completed). */
    const IntervalRecord& LastRecord() const;

    /**
     * Detaches the telemetry sinks, aggregates the post-warmup
     * metrics, and surrenders the result. The run is spent afterwards
     * (Done() is forced true); call exactly once.
     */
    RunResult Finish();

  private:
    const Application& app_;
    ResourceManager& manager_;
    RunConfig cfg_;
    Simulator sim_;
    Cluster cluster_;
    WorkloadGenerator gen_;
    std::unique_ptr<FaultInjector> injector_;

    RunResult result_;
    int64_t total_intervals_ = 0;
    int64_t intervals_done_ = 0;
    bool pending_ = false;
    bool finished_ = false;

    /** Phase-A products consumed by phase B. */
    double pending_now_ = 0.0;
    IntervalRecord pending_rec_;
    IntervalObservation pending_managed_;

    /** Telemetry-delay redelivery state (see sim/fault_injector.h). */
    IntervalObservation last_delivered_;
    bool have_delivered_ = false;
};

/**
 * Recovery time after a fault run: intervals past @p fault_end_s until
 * the first measured interval with p99 <= @p qos_ms. 0 means the first
 * post-fault interval already met QoS; -1 means the run never recovered
 * (or ended before the faults did).
 */
int RecoveryIntervals(const RunResult& result, double fault_end_s,
                      double qos_ms);

/**
 * One run of a concurrent sweep. The factories are invoked inside the
 * worker executing the job, so every run owns a private manager and
 * load instance — managers are stateful and must not be shared across
 * concurrent runs (Sinan jobs should clone the hybrid model, see
 * HybridModel::Clone()).
 */
struct SweepJob {
    std::function<std::unique_ptr<ResourceManager>()> make_manager;
    std::function<std::unique_ptr<LoadShape>()> make_load;
    RunConfig cfg;
};

/**
 * Runs every job (concurrently on the global thread pool when it has
 * threads; see SetNumThreads()/SINAN_THREADS). Results are returned in
 * job order, and each simulation is fully seeded, so the output is
 * identical to running the jobs serially.
 */
std::vector<RunResult> RunSweep(const Application& app,
                                const std::vector<SweepJob>& jobs);

/** Everything needed to evaluate Sinan on one application. */
struct TrainedSinan {
    FeatureConfig features;
    std::unique_ptr<HybridModel> model;
    Dataset train;
    Dataset valid;
    HybridReport report;
};

/** Data-collection + training knobs of the end-to-end pipeline. */
struct PipelineConfig {
    /** Simulated collection time (≈ samples before windowing). */
    double collect_s = 2200.0;
    double users_min = 50.0;
    double users_max = 450.0;
    int history = 5;
    int violation_lookahead = 5;
    HybridConfig hybrid;
    ClusterConfig cluster;
    uint64_t seed = 42;
};

/**
 * Collects a dataset with the bandit explorer and trains the hybrid
 * model — the offline phase preceding every deployment experiment.
 */
TrainedSinan TrainSinanForApp(const Application& app,
                              const PipelineConfig& cfg);

/** Default hybrid/train hyper-parameters used across the benches. */
HybridConfig DefaultHybridConfig();

} // namespace sinan

#endif // SINAN_HARNESS_HARNESS_H
