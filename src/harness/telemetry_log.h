/**
 * @file
 * Serialization of the scheduler's decision telemetry (see
 * core/decision_trace.h and common/metrics.h), emitted next to the run
 * log: a flat CSV with one row per candidate per decision interval (the
 * format the acceptance tooling and the figure post-processing consume)
 * and a nested JSON form for ad-hoc inspection. Both renderings are
 * deterministic: equal traces produce byte-identical output, which is
 * what the 1-vs-N-thread parity tests compare.
 */
#ifndef SINAN_HARNESS_TELEMETRY_LOG_H
#define SINAN_HARNESS_TELEMETRY_LOG_H

#include <string>

#include "common/metrics.h"
#include "core/decision_trace.h"

namespace sinan {

/**
 * Flat CSV: header plus one row per candidate, and one row with
 * candidate = -1 for intervals decided on a safety path (warm-up,
 * fallback) where no candidates were evaluated. Columns:
 *   time_s, interval, decision, observed_p99_ms, violated,
 *   trust_reduced, mispredictions, healthy_streak,
 *   consecutive_violations, trust_lost, trust_restored, telemetry,
 *   silent_intervals, margin_ms, may_reclaim, confidence,
 *   uncertainty_margin_ms, tier_confidence ('|'-separated vector),
 *   candidate, action, total_cpu, pred_p95_ms..pred_p99_ms,
 *   p_violation, outcome
 */
std::string DecisionTraceToCsv(const DecisionTrace& trace);

/** Nested JSON: an array of interval objects with their candidates. */
std::string DecisionTraceToJson(const DecisionTrace& trace);

/**
 * Writes the trace to @p path (creating parent directories); a path
 * ending in ".json" selects the JSON rendering, anything else CSV.
 */
void WriteDecisionTrace(const std::string& path,
                        const DecisionTrace& trace);

/** Writes a metrics registry to @p path (".json" selects JSON). */
void WriteMetrics(const std::string& path, const MetricsRegistry& reg);

/** Summary counters derived from a run's metric registry. */
struct TelemetrySummary {
    uint64_t decisions = 0;
    uint64_t warmup = 0;
    uint64_t fallbacks = 0;
    uint64_t escalations = 0;
    uint64_t model_decisions = 0;
    uint64_t no_feasible = 0;
    uint64_t candidates = 0;
    uint64_t predictions = 0;
    uint64_t mispredictions = 0;
    uint64_t trust_lost = 0;
    uint64_t trust_restored = 0;
    /** Degraded-telemetry intervals (stale/non-finite/absent input),
     *  split by path, plus watchdog-forced upscales. */
    uint64_t degraded = 0;
    uint64_t degraded_model = 0;
    uint64_t degraded_heuristic = 0;
    uint64_t degraded_hold = 0;
    uint64_t watchdog_upscales = 0;
    /** Uncertainty-aware intervals (partially-trusted telemetry with
     *  the graded policy enabled), and the subset decided by a
     *  model-filtered candidate. */
    uint64_t uncertain = 0;
    uint64_t uncertain_model = 0;

    /** Fraction of evaluated predictions that proved out (1 when the
     *  manager made no predictions). */
    double PredictionAccuracy() const;

    /** Fallback intervals (incl. escalations) per decision. */
    double FallbackRate() const;
};

/** Reads the `sinan.scheduler.*` counters out of @p reg. */
TelemetrySummary SummarizeTelemetry(const MetricsRegistry& reg);

} // namespace sinan

#endif // SINAN_HARNESS_TELEMETRY_LOG_H
