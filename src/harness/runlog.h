/**
 * @file
 * Execution logs, mirroring the paper artifact's output format: per
 * decision interval, the system's performance and resource telemetry
 * (CPU usage and end-to-end tail latencies "collected periodically over
 * the execution's duration"). Writers emit CSV; the loader reads it back
 * for the processing utilities.
 */
#ifndef SINAN_HARNESS_RUNLOG_H
#define SINAN_HARNESS_RUNLOG_H

#include <string>
#include <vector>

#include "harness/harness.h"

namespace sinan {

/** One parsed log row (a superset of IntervalRecord's aggregates). */
struct RunLogRow {
    double time_s = 0.0;
    double rps = 0.0;
    double p99_ms = 0.0;
    double predicted_p99_ms = -1.0;
    double predicted_violation = -1.0;
    double total_cpu = 0.0;
    std::vector<double> alloc;
};

/** Serializes a run's timeline to CSV (header + one row per interval). */
std::string RunLogToCsv(const RunResult& result,
                        const Application& app);

/** Writes RunLogToCsv output to @p path (creating directories). */
void WriteRunLog(const std::string& path, const RunResult& result,
                 const Application& app);

/** Parses a CSV produced by RunLogToCsv. Throws on malformed input. */
std::vector<RunLogRow> ParseRunLog(const std::string& csv);

/** Loads and parses a run-log file. */
std::vector<RunLogRow> LoadRunLog(const std::string& path);

/** Summary statistics computed from a parsed log (processing script). */
struct RunLogSummary {
    double qos_meet_prob = 0.0;
    double mean_cpu = 0.0;
    double max_cpu = 0.0;
    double mean_p99_ms = 0.0;
    double max_p99_ms = 0.0;
    size_t intervals = 0;
};

/** Aggregates rows with time >= warmup_s against the QoS target. */
RunLogSummary SummarizeRunLog(const std::vector<RunLogRow>& rows,
                              double qos_ms, double warmup_s = 0.0);

} // namespace sinan

#endif // SINAN_HARNESS_RUNLOG_H
