/**
 * @file
 * Training-data collection runs: drives the simulated cluster with a
 * policy (the bandit explorer, or the autoscaling / random baselines of
 * the paper's Figure 10), sweeps the load through a randomized schedule,
 * and post-processes the interval log into labeled Samples (next-interval
 * latency percentiles + violation-within-k flag).
 */
#ifndef SINAN_COLLECT_COLLECTOR_H
#define SINAN_COLLECT_COLLECTOR_H

#include <memory>

#include "cluster/cluster.h"
#include "core/manager.h"
#include "models/features.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {

/** Collection-run parameters. */
struct CollectionConfig {
    /** Simulated collection time in seconds (~ samples collected). */
    double duration_s = 2000.0;
    /** Load schedule range (emulated users). */
    double users_min = 50.0;
    double users_max = 450.0;
    /** Dwell time per random load level. */
    double dwell_min_s = 20.0;
    double dwell_max_s = 45.0;
    /** Feature space (history T, lookahead k, QoS). */
    FeatureConfig features;
    SimConfig sim;
    ClusterConfig cluster;
    /** Micro-bursts on by default so the dataset covers transients. */
    BurstOptions bursts = DefaultBursts();
    uint64_t seed = 42;

    static BurstOptions
    DefaultBursts()
    {
        BurstOptions b;
        b.enabled = true;
        return b;
    }
};

/**
 * Load shape that holds a uniformly random user count for a random dwell
 * and then jumps — covers the rps dimension of the state space.
 */
class RandomStepLoad : public LoadShape {
  public:
    RandomStepLoad(double users_min, double users_max, double dwell_min_s,
                   double dwell_max_s, double duration_s, uint64_t seed);

    double UsersAt(double t) const override;

  private:
    std::vector<std::pair<double, double>> steps_; // (start, users)
};

/**
 * Uniform-random allocation policy — the paper's "random data collection"
 * straw man (Fig. 10b).
 */
class RandomExplorer : public ResourceManager {
  public:
    explicit RandomExplorer(uint64_t seed) : rng_(seed) {}

    std::vector<double> Decide(const IntervalObservation& obs,
                               const std::vector<double>& alloc,
                               const Application& app) override;

    const char* Name() const override { return "RandomExplorer"; }

  private:
    Rng rng_;
};

/**
 * Runs @p policy against @p app for the configured duration and returns
 * the labeled dataset. The first T+k intervals produce no samples (no
 * full window / lookahead).
 */
Dataset Collect(const Application& app, ResourceManager& policy,
                const CollectionConfig& cfg);

/**
 * Builds samples out of an interval log: windows of T observations,
 * the allocation applied in the following interval, that interval's
 * latency percentiles as the target, and the violation-within-k label.
 * @p allocs[i] must be the allocation in force during observation i.
 */
Dataset BuildDataset(const std::vector<IntervalObservation>& obs,
                     const std::vector<std::vector<double>>& allocs,
                     const FeatureConfig& fcfg);

} // namespace sinan

#endif // SINAN_COLLECT_COLLECTOR_H
