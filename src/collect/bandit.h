/**
 * @file
 * The paper's training-data collection algorithm (Sec. 4.2): a
 * multi-armed bandit in which every tier is an independent arm. The
 * mapping from a tier's resource level to "end-to-end QoS met" is modeled
 * as a Bernoulli distribution per (running state, resource level); each
 * interval the explorer picks, per tier, the operation maximizing the
 * expected reduction of the Bernoulli confidence interval (Eq. 3), scaled
 * by per-operation coefficients C_op that encourage meeting QoS while
 * discouraging overprovisioning.
 *
 * Guard rails (paper Sec. 4.2): operations come from a fixed set
 * (+-0.2..1.0 CPU, +-10%/30%), a per-tier utilization cap blocks overly
 * aggressive downsizing, reclamation is disabled while the tail latency
 * exceeds the QoS, and exploration is confined to the [0, QoS*(1+alpha)]
 * latency region, upscale being forced beyond it.
 */
#ifndef SINAN_COLLECT_BANDIT_H
#define SINAN_COLLECT_BANDIT_H

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/manager.h"

namespace sinan {

/** Bandit explorer configuration. */
struct BanditConfig {
    /** End-to-end QoS target, ms. */
    double qos_ms = 500.0;
    /** Exploration overshoot: allowed region is QoS * (1 + alpha). */
    double alpha = 0.2;
    /** Per-tier CPU utilization cap above which downsizing is blocked. */
    double util_cap = 0.8;
    /** CPU allocation quantum (paper: 0.2 CPU). */
    double quantum = 0.2;
    /** Intervals with downsizing disabled after a QoS violation, so the
     *  drained system stabilizes before exploration resumes. */
    int recovery_hold = 5;
    /** Probability that a tier may pick a down op in a given interval;
     *  throttles the collective descent rate toward the boundary so the
     *  system does not oscillate across it every few seconds. */
    double down_eligibility = 0.35;
    /** Eligibility used instead when a tier is nearly idle (utilization
     *  below idle_util): heavily overprovisioned tiers may shed CPU
     *  quickly or the descent never reaches the low-load boundary
     *  within one load-dwell. */
    double idle_down_eligibility = 0.8;
    double idle_util = 0.25;
    /** Per-tier cap on recovery upscaling, as a multiple of the tier's
     *  allocation when the violation episode began (prevents the
     *  multiplicative recovery from overshooting far past the
     *  boundary). */
    double recovery_cap = 2.2;
    /** Upscale factor applied to loaded tiers while QoS is violated
     *  inside the exploration region. Deliberately moderate: a heavier
     *  hand drifts the whole trajectory to high allocations and the
     *  dataset loses its boundary coverage. */
    double violation_boost = 1.15;
    /** RNG seed for tie-breaking. */
    uint64_t seed = 11;
};

/** Bandit-driven explorer; plugs in as a ResourceManager. */
class BanditExplorer : public ResourceManager {
  public:
    explicit BanditExplorer(const BanditConfig& cfg);

    std::vector<double> Decide(const IntervalObservation& obs,
                               const std::vector<double>& alloc,
                               const Application& app) override;

    const char* Name() const override { return "BanditExplorer"; }

    void Reset() override;

    /** Number of distinct (tier,state,level) cells visited. */
    size_t CellsVisited() const { return stats_.size(); }

  private:
    struct Cell {
        int n = 0;
        int successes = 0;
    };

    /** Discretizes the running state (rps, lat_cur, lat_diff). */
    int StateOf(const IntervalObservation& obs) const;

    /** Confidence-interval reduction of Eq. 3 for one cell. */
    double InfoGain(const Cell& cell) const;

    static uint64_t
    KeyOf(int tier, int state, int level)
    {
        return (static_cast<uint64_t>(tier) << 40) ^
               (static_cast<uint64_t>(state) << 20) ^
               static_cast<uint64_t>(level);
    }

    BanditConfig cfg_;
    Rng rng_;
    std::unordered_map<uint64_t, Cell> stats_;

    /** Pending (state, level) per tier, updated on the next outcome. */
    std::vector<std::pair<int, int>> pending_;
    /** Remaining intervals of the post-violation no-reclaim hold. */
    int hold_left_ = 0;
    /** Per-tier allocation at the start of the violation episode. */
    std::vector<double> anchor_;
    double prev_p99_ = 0.0;
    bool has_prev_ = false;
};

} // namespace sinan

#endif // SINAN_COLLECT_BANDIT_H
