#include "collect/collector.h"

#include <algorithm>
#include <stdexcept>

namespace sinan {

RandomStepLoad::RandomStepLoad(double users_min, double users_max,
                               double dwell_min_s, double dwell_max_s,
                               double duration_s, uint64_t seed)
{
    if (users_max < users_min || dwell_max_s < dwell_min_s)
        throw std::invalid_argument("RandomStepLoad: inverted ranges");
    Rng rng(seed);
    double t = 0.0;
    while (t < duration_s) {
        steps_.emplace_back(t, rng.Uniform(users_min, users_max));
        t += rng.Uniform(dwell_min_s, dwell_max_s);
    }
}

double
RandomStepLoad::UsersAt(double t) const
{
    double users = steps_.front().second;
    for (const auto& [start, u] : steps_) {
        if (t >= start)
            users = u;
        else
            break;
    }
    return users;
}

std::vector<double>
RandomExplorer::Decide(const IntervalObservation& /*obs*/,
                       const std::vector<double>& alloc,
                       const Application& app)
{
    std::vector<double> next(alloc.size());
    for (size_t i = 0; i < alloc.size(); ++i) {
        const TierSpec& spec = app.tiers[i];
        next[i] = rng_.Uniform(spec.min_cpu, spec.max_cpu);
    }
    return next;
}

Dataset
Collect(const Application& app, ResourceManager& policy,
        const CollectionConfig& cfg)
{
    Simulator sim(cfg.sim);
    Cluster cluster(app, cfg.cluster, cfg.seed);
    RandomStepLoad load(cfg.users_min, cfg.users_max, cfg.dwell_min_s,
                        cfg.dwell_max_s, cfg.duration_s, cfg.seed ^ 0x5a5a);
    WorkloadGenerator gen(cluster, load, cfg.seed ^ 0xc0ffee, 1.0,
                          cfg.bursts);

    std::vector<IntervalObservation> log;
    std::vector<std::vector<double>> allocs;

    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t, double now) {
        allocs.push_back(cluster.Allocation());
        IntervalObservation obs =
            cluster.Harvest(now, cfg.sim.interval_s);
        const std::vector<double> next =
            policy.Decide(obs, cluster.Allocation(), app);
        cluster.SetAllocation(next);
        log.push_back(std::move(obs));
    });

    sim.RunFor(cfg.duration_s);
    return BuildDataset(log, allocs, cfg.features);
}

Dataset
BuildDataset(const std::vector<IntervalObservation>& obs,
             const std::vector<std::vector<double>>& allocs,
             const FeatureConfig& fcfg)
{
    if (obs.size() != allocs.size())
        throw std::invalid_argument("BuildDataset: log length mismatch");
    Dataset data;
    const int t_len = fcfg.history;
    const int k = fcfg.violation_lookahead;
    const int n = static_cast<int>(obs.size());
    if (n < t_len + k + 1)
        return data;

    MetricWindow window(fcfg);
    for (int t = 0; t < n; ++t) {
        window.Push(obs[t]);
        // Need a full history window ending at t, the allocation applied
        // during t+1, and k future intervals for the violation label.
        if (!window.Ready() || t + k >= n)
            continue;
        Sample s = BuildInput(window, allocs[t + 1]);
        const IntervalObservation& next = obs[t + 1];
        s.y_latency.resize(fcfg.n_percentiles);
        for (int p = 0; p < fcfg.n_percentiles; ++p) {
            const double lat =
                p < static_cast<int>(next.latency_ms.size())
                    ? next.latency_ms[p]
                    : 0.0;
            // Targets are clipped at 2x QoS: beyond that every latency
            // is equally unacceptable, and unbounded queueing spikes
            // would otherwise dominate the squared loss and the RMSE.
            s.y_latency[p] = static_cast<float>(
                std::min(lat / fcfg.qos_ms, 2.0));
        }
        s.p99_ms = next.P99();
        s.violation = 0.0f;
        // Violation-within-k label, conditioned on allocation stability:
        // the label answers "does *this* allocation lead to a violation
        // within k intervals". If the exploration policy reclaims CPU
        // later in the window, a subsequent violation is attributable to
        // that reclaim rather than to the labeled allocation, so the
        // scan stops there (otherwise nearly every sample of a bandit
        // trajectory is labeled violating and the BT degenerates).
        double base_total = 0.0;
        for (double a : allocs[t + 1])
            base_total += a;
        for (int j = 1; j <= k && t + j < n; ++j) {
            double total_j = 0.0;
            for (double a : allocs[t + j])
                total_j += a;
            if (total_j < 0.98 * base_total)
                break;
            if (obs[t + j].P99() > fcfg.qos_ms) {
                s.violation = 1.0f;
                break;
            }
        }
        data.samples.push_back(std::move(s));
    }
    return data;
}

} // namespace sinan
