#include "collect/bandit.h"

#include <algorithm>
#include <cmath>

namespace sinan {

namespace {

/** Candidate per-tier operations: absolute core deltas and ratios. */
struct Op {
    double delta_cores = 0.0; // absolute change
    double ratio = 0.0;       // relative change (applied to current)
    bool is_up = false;
    bool is_down = false;
};

std::vector<Op>
OpSet()
{
    std::vector<Op> ops;
    ops.push_back(Op{}); // hold
    for (double d = 0.2; d <= 1.0 + 1e-9; d += 0.2) {
        ops.push_back(Op{d, 0.0, true, false});
        ops.push_back(Op{-d, 0.0, false, true});
    }
    ops.push_back(Op{0.0, 0.10, true, false});
    ops.push_back(Op{0.0, 0.30, true, false});
    ops.push_back(Op{0.0, -0.10, false, true});
    ops.push_back(Op{0.0, -0.30, false, true});
    return ops;
}

} // namespace

BanditExplorer::BanditExplorer(const BanditConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
}

void
BanditExplorer::Reset()
{
    stats_.clear();
    pending_.clear();
    prev_p99_ = 0.0;
    has_prev_ = false;
    hold_left_ = 0;
    anchor_.clear();
}

int
BanditExplorer::StateOf(const IntervalObservation& obs) const
{
    // rps on a log2 scale, tail latency in thirds of QoS (capped), and
    // the latency trend in {draining, stable, accumulating}.
    const int rps_b = static_cast<int>(std::log2(obs.rps + 2.0));
    const double lat = obs.P99();
    const int lat_b =
        std::min(5, static_cast<int>(lat / (cfg_.qos_ms / 3.0)));
    const double diff = has_prev_ ? lat - prev_p99_ : 0.0;
    int diff_b = 1;
    if (diff < -0.05 * cfg_.qos_ms)
        diff_b = 0;
    else if (diff > 0.05 * cfg_.qos_ms)
        diff_b = 2;
    return (rps_b * 6 + lat_b) * 3 + diff_b;
}

double
BanditExplorer::InfoGain(const Cell& cell) const
{
    // Smoothed Bernoulli estimates (Beta(1,1) prior).
    const double n = cell.n;
    const double p = (cell.successes + 1.0) / (n + 2.0);
    const double p_pos = (cell.successes + 2.0) / (n + 3.0);
    const double p_neg = (cell.successes + 1.0) / (n + 3.0);
    const double ci_now = std::sqrt(p * (1.0 - p) / (n + 1.0));
    const double ci_pos = std::sqrt(p_pos * (1.0 - p_pos) / (n + 2.0));
    const double ci_neg = std::sqrt(p_neg * (1.0 - p_neg) / (n + 2.0));
    return ci_now - p * ci_pos - (1.0 - p) * ci_neg;
}

std::vector<double>
BanditExplorer::Decide(const IntervalObservation& obs,
                       const std::vector<double>& alloc,
                       const Application& app)
{
    const int n_tiers = static_cast<int>(alloc.size());

    // 1. Credit the previous interval's choice with this outcome.
    const bool met = obs.P99() <= cfg_.qos_ms;
    if (!pending_.empty()) {
        for (int i = 0; i < n_tiers; ++i) {
            Cell& cell = stats_[KeyOf(i, pending_[i].first,
                                      pending_[i].second)];
            ++cell.n;
            if (met)
                ++cell.successes;
        }
    }

    const int state = StateOf(obs);
    const double lat = obs.P99();

    std::vector<double> next(alloc);
    pending_.assign(n_tiers, {state, 0});

    // Anchor the start of a violation episode so recovery upscaling has
    // a reference to cap against.
    if (lat > cfg_.qos_ms && anchor_.empty())
        anchor_ = alloc;
    else if (lat <= cfg_.qos_ms)
        anchor_.clear();
    auto recovery_target = [&](int i, double factor, double add) {
        double cap = app.tiers[i].max_cpu;
        if (!anchor_.empty())
            cap = std::min(cap, anchor_[i] * cfg_.recovery_cap + 0.2);
        return std::min(cap, std::max(alloc[i],
                                      alloc[i] * factor + add));
    };

    // 2. Out of the exploration region: force recovery so latency comes
    // back under QoS*(1+alpha) quickly (paper's region guard).
    if (lat > cfg_.qos_ms * (1.0 + cfg_.alpha)) {
        for (int i = 0; i < n_tiers; ++i) {
            next[i] = recovery_target(i, 1.3, 0.2);
            pending_[i].second =
                static_cast<int>(std::lround(next[i] / cfg_.quantum));
        }
        prev_p99_ = lat;
        has_prev_ = true;
        return next;
    }

    // 3. QoS currently violated (but within the exploration region):
    // reclamation is disabled and loaded tiers are upscaled decisively so
    // built-up queues drain quickly (paper rule 3). Lightly-used tiers
    // keep exploring upward via the bandit below.
    const bool violating = lat > cfg_.qos_ms;
    if (violating)
        hold_left_ = cfg_.recovery_hold;
    else if (hold_left_ > 0)
        --hold_left_;
    if (violating) {
        for (int i = 0; i < n_tiers; ++i) {
            if (obs.tiers[i].Utilization() > 0.6) {
                next[i] = recovery_target(i, cfg_.violation_boost, 0.1);
                pending_[i].second = static_cast<int>(
                    std::lround(next[i] / cfg_.quantum));
            }
        }
    }

    // 4. Bandit step per tier (each tier is an independent arm).
    static const std::vector<Op> kOps = OpSet();
    for (int i = 0; i < n_tiers; ++i) {
        const TierSpec& spec = app.tiers[i];
        const double util = obs.tiers[i].Utilization();
        if (violating && util > 0.6)
            continue; // already force-upscaled above

        // Down ops are rationed: blocked during the post-violation hold
        // and granted to a random tier subset each interval otherwise.
        // Nearly idle tiers shed CPU with high probability so the
        // trajectory reaches the boundary even at low loads.
        const double p_down = util < cfg_.idle_util
                                  ? cfg_.idle_down_eligibility
                                  : cfg_.down_eligibility;
        const bool may_down = !violating && hold_left_ == 0 &&
                              util <= cfg_.util_cap &&
                              rng_.Bernoulli(p_down);

        double best_score = -1e18;
        double best_cpu = alloc[i];
        for (const Op& op : kOps) {
            if (op.is_down && !may_down)
                continue;
            double cpu = alloc[i] + op.delta_cores +
                         alloc[i] * op.ratio;
            cpu = std::clamp(cpu, spec.min_cpu, spec.max_cpu);
            const int level =
                static_cast<int>(std::lround(cpu / cfg_.quantum));

            // C_op: bias exploration toward the QoS boundary.
            double coeff;
            if (lat > cfg_.qos_ms) {
                coeff = op.is_up ? 2.0 : 0.5; // recover
            } else if (op.is_down) {
                coeff = 1.5; // hunt for the minimum allocation
            } else if (op.is_up) {
                coeff = 0.6;
            } else {
                coeff = 0.8;
            }

            const auto it = stats_.find(KeyOf(i, state, level));
            const Cell cell = it == stats_.end() ? Cell{} : it->second;
            const double score =
                coeff * InfoGain(cell) + 1e-6 * rng_.Uniform();
            if (score > best_score) {
                best_score = score;
                best_cpu = cpu;
            }
        }
        next[i] = best_cpu;
        pending_[i].second =
            static_cast<int>(std::lround(best_cpu / cfg_.quantum));
    }

    prev_p99_ = lat;
    has_prev_ = true;
    return next;
}

} // namespace sinan
