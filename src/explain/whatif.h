/**
 * @file
 * What-if analysis on the hybrid model: sweep one tier's CPU allocation
 * while holding everything else at the observed state and report the
 * predicted tail latency and violation probability at each point. This
 * is the interactive counterpart of LIME (Sec. 5.6): instead of asking
 * "which tier mattered", an operator asks "what would happen if I gave
 * tier X more or less CPU right now".
 */
#ifndef SINAN_EXPLAIN_WHATIF_H
#define SINAN_EXPLAIN_WHATIF_H

#include <vector>

#include "cluster/spec.h"
#include "models/hybrid.h"

namespace sinan {

/** One point of a what-if sweep. */
struct WhatIfPoint {
    /** CPU given to the swept tier (cores). */
    double cpu = 0.0;
    /** Predicted next-interval p99, ms. */
    double predicted_p99_ms = 0.0;
    /** Predicted violation probability within k intervals. */
    double p_violation = 0.0;
};

/** Result of sweeping one tier. */
struct WhatIfCurve {
    int tier = -1;
    std::vector<WhatIfPoint> points;

    /**
     * Smallest swept allocation whose predictions satisfy both
     * thresholds, or -1 when none does.
     */
    double MinSafeCpu(double qos_ms, double max_violation_prob) const;
};

/**
 * Sweeps @p tier's allocation from @p cpu_min to @p cpu_max in
 * @p steps points (inclusive), holding the other tiers at
 * @p base_alloc. @p window must be Ready().
 */
WhatIfCurve SweepTierAllocation(HybridModel& model,
                                const MetricWindow& window,
                                const std::vector<double>& base_alloc,
                                int tier, double cpu_min, double cpu_max,
                                int steps);

/**
 * Convenience: what-if curves for every tier over its spec range,
 * useful for spotting the tier whose allocation the model is most
 * sensitive to at the current state.
 */
std::vector<WhatIfCurve>
SweepAllTiers(HybridModel& model, const MetricWindow& window,
              const std::vector<double>& base_alloc,
              const Application& app, int steps = 8);

} // namespace sinan

#endif // SINAN_EXPLAIN_WHATIF_H
