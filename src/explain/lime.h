/**
 * @file
 * LIME-style interpretability for the latency predictor (paper Sec. 5.6).
 *
 * Following the paper's procedure: take an input X from a timestep of
 * interest (e.g., where QoS violations occur), generate perturbed samples
 * by multiplying a tier's (or a resource channel's) utilization history
 * with constants, label them with the model, fit a linear surrogate from
 * the perturbation coefficients to the predicted p99, and rank features
 * by the magnitude of their regression weights.
 */
#ifndef SINAN_EXPLAIN_LIME_H
#define SINAN_EXPLAIN_LIME_H

#include <functional>
#include <string>
#include <vector>

#include "models/latency_model.h"

namespace sinan {

/** Perturbation / regression knobs. */
struct LimeConfig {
    /** Number of perturbed samples per explanation. */
    int n_samples = 256;
    /** Multipliers are drawn uniformly from [low, high]. */
    double multiplier_low = 0.5;
    double multiplier_high = 1.5;
    /** Ridge regularization of the linear surrogate. */
    double ridge_lambda = 1e-3;
    uint64_t seed = 7;
};

/** One explanation: weights per group, ranked accessors. */
struct LimeExplanation {
    /** |weight| per group, aligned with the group naming used to build. */
    std::vector<double> weights;

    /** Indices of the top-k groups by |weight|. */
    std::vector<int> TopK(int k) const;
};

/** Perturbation-based linear surrogate explainer. */
class LimeExplainer {
  public:
    LimeExplainer(LatencyModel& model, const FeatureConfig& fcfg,
                  const LimeConfig& cfg = LimeConfig());

    /**
     * Importance of each tier for the prediction at @p x: all resource
     * channels of a tier's history are perturbed together. Returns one
     * weight per tier.
     */
    LimeExplanation ExplainTiers(const Sample& x);

    /**
     * Importance of each resource channel of @p tier (CPU limit, CPU
     * used, RSS, cache memory, RX, TX). Returns one weight per channel.
     */
    LimeExplanation ExplainResources(const Sample& x, int tier);

    /**
     * Averaged tier importance over several samples (the paper sums
     * weights over the violation timesteps it explains).
     */
    LimeExplanation ExplainTiersAveraged(const std::vector<Sample>& xs);

  private:
    /**
     * Core routine: @p n_groups perturbation variables; @p apply scales
     * group g of a sample copy by m. Fits ridge regression of predicted
     * p99 on the multipliers.
     */
    LimeExplanation
    Explain(const Sample& x, int n_groups,
            const std::function<void(Sample&, int, double)>& apply);

    LatencyModel& model_;
    FeatureConfig fcfg_;
    LimeConfig cfg_;
};

/**
 * Solves (A + lambda I) w = b for symmetric positive semi-definite A via
 * Gaussian elimination with partial pivoting. Exposed for testing.
 */
std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double lambda);

} // namespace sinan

#endif // SINAN_EXPLAIN_LIME_H
