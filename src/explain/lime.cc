#include "explain/lime.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace sinan {

std::vector<double>
SolveRidge(std::vector<std::vector<double>> a, std::vector<double> b,
           double lambda)
{
    const size_t n = a.size();
    if (b.size() != n)
        throw std::invalid_argument("SolveRidge: dimension mismatch");
    for (size_t i = 0; i < n; ++i) {
        if (a[i].size() != n)
            throw std::invalid_argument("SolveRidge: non-square matrix");
        a[i][i] += lambda;
    }
    // Gaussian elimination with partial pivoting.
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r) {
            if (std::abs(a[r][col]) > std::abs(a[pivot][col]))
                pivot = r;
        }
        if (std::abs(a[pivot][col]) < 1e-12)
            throw std::runtime_error("SolveRidge: singular system");
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / a[col][col];
            if (f == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> w(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (size_t c = i + 1; c < n; ++c)
            acc -= a[i][c] * w[c];
        w[i] = acc / a[i][i];
    }
    return w;
}

std::vector<int>
LimeExplanation::TopK(int k) const
{
    std::vector<int> order(weights.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return weights[x] > weights[y];
    });
    if (k < static_cast<int>(order.size()))
        order.resize(k);
    return order;
}

LimeExplainer::LimeExplainer(LatencyModel& model, const FeatureConfig& fcfg,
                             const LimeConfig& cfg)
    : model_(model), fcfg_(fcfg), cfg_(cfg)
{
}

LimeExplanation
LimeExplainer::Explain(
    const Sample& x, int n_groups,
    const std::function<void(Sample&, int, double)>& apply)
{
    Rng rng(cfg_.seed);
    const int n = cfg_.n_samples;

    // Perturbation design matrix: multipliers, centered at 1.
    std::vector<std::vector<double>> z(
        n, std::vector<double>(static_cast<size_t>(n_groups) + 1, 1.0));
    std::vector<Sample> perturbed;
    perturbed.reserve(n);
    for (int i = 0; i < n; ++i) {
        Sample s = x;
        for (int g = 0; g < n_groups; ++g) {
            const double m =
                rng.Uniform(cfg_.multiplier_low, cfg_.multiplier_high);
            z[i][g] = m - 1.0; // centered so the intercept absorbs X
            apply(s, g, m);
        }
        z[i][n_groups] = 1.0; // intercept column
        perturbed.push_back(std::move(s));
    }

    // Model labels (predicted p99, normalized) in chunks.
    std::vector<double> y(n, 0.0);
    constexpr size_t kChunk = 128;
    for (size_t begin = 0; begin < perturbed.size(); begin += kChunk) {
        const size_t end =
            std::min(begin + kChunk, perturbed.size());
        std::vector<const Sample*> ptrs;
        for (size_t i = begin; i < end; ++i)
            ptrs.push_back(&perturbed[i]);
        const Tensor pred = model_.Forward(StackSamples(ptrs));
        const int m = pred.Dim(1);
        for (size_t i = begin; i < end; ++i)
            y[i] = pred.At(static_cast<int>(i - begin), m - 1);
    }

    // Ridge regression: w = (Z^T Z + lambda I)^-1 Z^T y.
    const size_t d = static_cast<size_t>(n_groups) + 1;
    std::vector<std::vector<double>> ata(d, std::vector<double>(d, 0.0));
    std::vector<double> aty(d, 0.0);
    for (int i = 0; i < n; ++i) {
        for (size_t r = 0; r < d; ++r) {
            aty[r] += z[i][r] * y[i];
            for (size_t c = r; c < d; ++c)
                ata[r][c] += z[i][r] * z[i][c];
        }
    }
    for (size_t r = 0; r < d; ++r)
        for (size_t c = 0; c < r; ++c)
            ata[r][c] = ata[c][r];
    const std::vector<double> w = SolveRidge(ata, aty, cfg_.ridge_lambda);

    LimeExplanation exp;
    exp.weights.resize(n_groups);
    for (int g = 0; g < n_groups; ++g)
        exp.weights[g] = std::abs(w[g]);
    return exp;
}

LimeExplanation
LimeExplainer::ExplainTiers(const Sample& x)
{
    const int t_len = fcfg_.history;
    return Explain(x, fcfg_.n_tiers, [&](Sample& s, int tier, double m) {
        for (int c = 0; c < FeatureConfig::kChannels; ++c)
            for (int t = 0; t < t_len; ++t)
                s.xrh.At(c, tier, t) *= static_cast<float>(m);
    });
}

LimeExplanation
LimeExplainer::ExplainResources(const Sample& x, int tier)
{
    const int t_len = fcfg_.history;
    return Explain(x, FeatureConfig::kChannels,
                   [&](Sample& s, int channel, double m) {
                       for (int t = 0; t < t_len; ++t)
                           s.xrh.At(channel, tier, t) *=
                               static_cast<float>(m);
                   });
}

LimeExplanation
LimeExplainer::ExplainTiersAveraged(const std::vector<Sample>& xs)
{
    if (xs.empty())
        throw std::invalid_argument("ExplainTiersAveraged: no samples");
    LimeExplanation total;
    total.weights.assign(fcfg_.n_tiers, 0.0);
    for (const Sample& x : xs) {
        const LimeExplanation e = ExplainTiers(x);
        for (size_t i = 0; i < total.weights.size(); ++i)
            total.weights[i] += e.weights[i];
    }
    for (double& w : total.weights)
        w /= static_cast<double>(xs.size());
    return total;
}

} // namespace sinan
