#include "explain/whatif.h"

#include <stdexcept>

namespace sinan {

double
WhatIfCurve::MinSafeCpu(double qos_ms, double max_violation_prob) const
{
    for (const WhatIfPoint& p : points) {
        if (p.predicted_p99_ms <= qos_ms &&
            p.p_violation <= max_violation_prob) {
            return p.cpu;
        }
    }
    return -1.0;
}

WhatIfCurve
SweepTierAllocation(HybridModel& model, const MetricWindow& window,
                    const std::vector<double>& base_alloc, int tier,
                    double cpu_min, double cpu_max, int steps)
{
    if (tier < 0 || tier >= static_cast<int>(base_alloc.size()))
        throw std::out_of_range("SweepTierAllocation: bad tier");
    if (steps < 2 || cpu_max < cpu_min)
        throw std::invalid_argument("SweepTierAllocation: bad sweep");

    std::vector<std::vector<double>> allocations;
    allocations.reserve(steps);
    for (int i = 0; i < steps; ++i) {
        std::vector<double> a = base_alloc;
        a[tier] = cpu_min + (cpu_max - cpu_min) * i /
                               static_cast<double>(steps - 1);
        allocations.push_back(std::move(a));
    }
    const std::vector<Prediction> preds =
        model.Evaluate(window, allocations);

    WhatIfCurve curve;
    curve.tier = tier;
    curve.points.reserve(steps);
    for (int i = 0; i < steps; ++i) {
        WhatIfPoint p;
        p.cpu = allocations[i][tier];
        p.predicted_p99_ms = preds[i].P99();
        p.p_violation = preds[i].p_violation;
        curve.points.push_back(p);
    }
    return curve;
}

std::vector<WhatIfCurve>
SweepAllTiers(HybridModel& model, const MetricWindow& window,
              const std::vector<double>& base_alloc,
              const Application& app, int steps)
{
    std::vector<WhatIfCurve> curves;
    curves.reserve(app.tiers.size());
    for (size_t t = 0; t < app.tiers.size(); ++t) {
        curves.push_back(SweepTierAllocation(
            model, window, base_alloc, static_cast<int>(t),
            app.tiers[t].min_cpu, app.tiers[t].max_cpu, steps));
    }
    return curves;
}

} // namespace sinan
