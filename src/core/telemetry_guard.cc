#include "core/telemetry_guard.h"

#include <stdexcept>

namespace sinan {

TelemetryGuard::TelemetryGuard(int expected_tiers)
    : expected_tiers_(expected_tiers)
{
    if (expected_tiers <= 0)
        throw std::invalid_argument(
            "TelemetryGuard: expected_tiers must be > 0");
}

TelemetryHealth
TelemetryGuard::Classify(const IntervalObservation& obs) const
{
    if (static_cast<int>(obs.tiers.size()) != expected_tiers_ ||
        obs.latency_ms.empty())
        return TelemetryHealth::kAbsent;
    if (!ObservationFinite(obs))
        return TelemetryHealth::kNonFinite;
    // Staleness needs a reference point; the very first observation is
    // trusted on the payload checks alone.
    if (has_last_good_ && obs.time_s <= last_good_.time_s)
        return TelemetryHealth::kStale;
    return TelemetryHealth::kFresh;
}

void
TelemetryGuard::CommitFresh(const IntervalObservation& obs)
{
    last_good_ = obs;
    has_last_good_ = true;
    silent_ = 0;
}

void
TelemetryGuard::CommitDegraded()
{
    ++silent_;
}

void
TelemetryGuard::Reset()
{
    last_good_ = IntervalObservation{};
    has_last_good_ = false;
    silent_ = 0;
}

} // namespace sinan
