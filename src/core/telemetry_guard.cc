#include "core/telemetry_guard.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

TelemetryGuard::TelemetryGuard(int expected_tiers)
    : expected_tiers_(expected_tiers)
{
    if (expected_tiers <= 0)
        throw std::invalid_argument(
            "TelemetryGuard: expected_tiers must be > 0");
}

TelemetryHealth
TelemetryGuard::Classify(const IntervalObservation& obs) const
{
    if (static_cast<int>(obs.tiers.size()) != expected_tiers_ ||
        obs.latency_ms.empty())
        return TelemetryHealth::kAbsent;
    if (!ObservationFinite(obs))
        return TelemetryHealth::kNonFinite;
    // Staleness needs a reference point; the very first observation is
    // trusted on the payload checks alone.
    if (has_last_good_ && obs.time_s <= last_good_.time_s)
        return TelemetryHealth::kStale;
    return TelemetryHealth::kFresh;
}

TelemetryAssessment
TelemetryGuard::Assess(const IntervalObservation& obs,
                       double stale_decay) const
{
    SINAN_CHECK_BOUNDS(stale_decay, 0.0, 1.0);
    TelemetryAssessment a;
    a.health = Classify(obs);
    a.tier_confidence.assign(static_cast<size_t>(expected_tiers_), 0.0);

    switch (a.health) {
    case TelemetryHealth::kFresh:
        for (double& c : a.tier_confidence)
            c = 1.0;
        a.latency_fresh = true;
        a.confidence = 1.0;
        break;
    case TelemetryHealth::kStale: {
        // Classify() already established a finite payload; the frame
        // is a coherent old picture, stale by k intervals counting
        // this one (the guard advances its counter at commit time).
        const double c =
            std::pow(stale_decay, static_cast<double>(silent_ + 1));
        for (double& tc : a.tier_confidence)
            tc = c;
        a.latency_fresh = false;
        a.confidence = c;
        break;
    }
    case TelemetryHealth::kNonFinite: {
        // Grade per channel: a NaN-poisoned global frame invalidates
        // everything, but tier-targeted poisoning leaves the other
        // tiers — and possibly the latency percentiles — usable.
        if (!std::isfinite(obs.time_s) || !std::isfinite(obs.rps) ||
            !std::isfinite(obs.completed_rps))
            break;
        double sum = 0.0;
        for (int i = 0; i < expected_tiers_; ++i) {
            const double c =
                TierMetricsFinite(obs.tiers[static_cast<size_t>(i)])
                    ? 1.0
                    : 0.0;
            a.tier_confidence[static_cast<size_t>(i)] = c;
            sum += c;
        }
        bool lat_ok = true;
        for (double v : obs.latency_ms)
            lat_ok = lat_ok && std::isfinite(v);
        a.latency_fresh = lat_ok;
        a.confidence = ((lat_ok ? 1.0 : 0.0) + sum) /
                       static_cast<double>(expected_tiers_ + 1);
        break;
    }
    case TelemetryHealth::kAbsent:
        break;
    }
    return a;
}

IntervalObservation
TelemetryGuard::Repair(const IntervalObservation& obs,
                       const TelemetryAssessment& a) const
{
    SINAN_CHECK(has_last_good_);
    IntervalObservation out = obs;
    if (a.health != TelemetryHealth::kNonFinite)
        return out;
    if (!std::isfinite(out.rps))
        out.rps = last_good_.rps;
    if (!std::isfinite(out.completed_rps))
        out.completed_rps = last_good_.completed_rps;
    for (size_t i = 0; i < out.tiers.size(); ++i) {
        if (i < a.tier_confidence.size() && a.tier_confidence[i] <= 0.0)
            out.tiers[i] = last_good_.tiers[i];
    }
    if (!a.latency_fresh)
        out.latency_ms = last_good_.latency_ms;
    return out;
}

void
TelemetryGuard::CommitFresh(const IntervalObservation& obs)
{
    last_good_ = obs;
    has_last_good_ = true;
    silent_ = 0;
}

void
TelemetryGuard::CommitDegraded()
{
    ++silent_;
}

void
TelemetryGuard::Reset()
{
    last_good_ = IntervalObservation{};
    has_last_good_ = false;
    silent_ = 0;
}

} // namespace sinan
