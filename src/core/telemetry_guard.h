/**
 * @file
 * Input validation between the telemetry pipeline and the scheduler.
 *
 * The paper's scheduler assumes a clean observation every decision
 * interval; real collection pipelines drop intervals, redeliver stale
 * ones, and occasionally emit NaN (and the fault injector reproduces
 * all three). The guard classifies each observation before it reaches
 * HybridModel::Evaluate, remembers the last known-good one as the
 * degraded path's reference, and counts consecutive degraded intervals
 * so the scheduler's watchdog can force a blanket scale-up instead of
 * flying blind forever.
 *
 * Classify() is const and throws nothing; the scheduler only commits
 * the result (CommitFresh/CommitDegraded) after the rest of the
 * decision has succeeded, which is what preserves Decide()'s strong
 * exception guarantee.
 */
#ifndef SINAN_CORE_TELEMETRY_GUARD_H
#define SINAN_CORE_TELEMETRY_GUARD_H

#include "common/telemetry.h"
#include "core/decision_trace.h"

namespace sinan {

/**
 * Graded, per-tier view of one observation's quality — the
 * uncertainty-aware extension of the binary Classify() verdict.
 *
 * `health` is exactly what Classify() returns for the same
 * observation, so the trace's telemetry column keeps its meaning.
 * `tier_confidence[i]` grades tier i in [0,1]: 1 for a fresh finite
 * tier, 0 for a non-finite or absent one, and decay^k for an
 * observation that is stale by k intervals (k counts this interval,
 * i.e. k = SilentIntervals() + 1 at assessment time). `confidence`
 * aggregates the latency channel and the tiers with equal weight:
 *   (latency_fresh + sum(tier_confidence)) / (n_tiers + 1),
 * so a single NaN tier in a 6-tier observation with real latency
 * scores 6/7, while a fully blind interval scores 0.
 */
struct TelemetryAssessment {
    /** Binary classification (identical to Classify()). */
    TelemetryHealth health = TelemetryHealth::kAbsent;
    /** Per-tier confidence in [0,1]; size = expected tier count. */
    std::vector<double> tier_confidence;
    /** True when the latency percentiles were delivered this interval
     *  and are finite (the QoS channel is trustworthy). */
    bool latency_fresh = false;
    /** Scalar confidence in [0,1] (see struct comment). */
    double confidence = 0.0;
};

/** See file comment. One instance per scheduler. */
class TelemetryGuard {
  public:
    /** @param expected_tiers tier count a usable observation carries. */
    explicit TelemetryGuard(int expected_tiers);

    /** Classifies without mutating any state. */
    TelemetryHealth Classify(const IntervalObservation& obs) const;

    /**
     * Grades @p obs per tier without mutating any state.
     * @param stale_decay per-interval staleness decay in [0,1]: a
     *   stale-by-k observation's confidence is stale_decay^k, so runs
     *   of redelivered telemetry sink toward 0 and (below the
     *   scheduler's confidence floor) re-enter the binary ladder.
     */
    TelemetryAssessment Assess(const IntervalObservation& obs,
                               double stale_decay) const;

    /**
     * Copy of @p obs with every zero-confidence piece imputed from the
     * last known-good observation: non-finite tiers are replaced
     * wholesale, and a missing/non-finite latency vector is replaced
     * by the last good one. Requires HasLastGood(); stale or fresh
     * observations pass through unchanged (a stale frame is a coherent
     * old picture, not a corrupt one).
     */
    IntervalObservation Repair(const IntervalObservation& obs,
                               const TelemetryAssessment& a) const;

    /** Records a fresh observation: new last-known-good, silent
     *  counter cleared. */
    void CommitFresh(const IntervalObservation& obs);

    /** Records a degraded interval: silent counter advances. */
    void CommitDegraded();

    bool HasLastGood() const { return has_last_good_; }

    /** Last known-good observation; only valid when HasLastGood(). */
    const IntervalObservation& LastGood() const { return last_good_; }

    /** Consecutive degraded intervals committed since the last fresh
     *  one. */
    int SilentIntervals() const { return silent_; }

    void Reset();

  private:
    int expected_tiers_;
    IntervalObservation last_good_;
    bool has_last_good_ = false;
    int silent_ = 0;
};

} // namespace sinan

#endif // SINAN_CORE_TELEMETRY_GUARD_H
