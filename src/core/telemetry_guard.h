/**
 * @file
 * Input validation between the telemetry pipeline and the scheduler.
 *
 * The paper's scheduler assumes a clean observation every decision
 * interval; real collection pipelines drop intervals, redeliver stale
 * ones, and occasionally emit NaN (and the fault injector reproduces
 * all three). The guard classifies each observation before it reaches
 * HybridModel::Evaluate, remembers the last known-good one as the
 * degraded path's reference, and counts consecutive degraded intervals
 * so the scheduler's watchdog can force a blanket scale-up instead of
 * flying blind forever.
 *
 * Classify() is const and throws nothing; the scheduler only commits
 * the result (CommitFresh/CommitDegraded) after the rest of the
 * decision has succeeded, which is what preserves Decide()'s strong
 * exception guarantee.
 */
#ifndef SINAN_CORE_TELEMETRY_GUARD_H
#define SINAN_CORE_TELEMETRY_GUARD_H

#include "common/telemetry.h"
#include "core/decision_trace.h"

namespace sinan {

/** See file comment. One instance per scheduler. */
class TelemetryGuard {
  public:
    /** @param expected_tiers tier count a usable observation carries. */
    explicit TelemetryGuard(int expected_tiers);

    /** Classifies without mutating any state. */
    TelemetryHealth Classify(const IntervalObservation& obs) const;

    /** Records a fresh observation: new last-known-good, silent
     *  counter cleared. */
    void CommitFresh(const IntervalObservation& obs);

    /** Records a degraded interval: silent counter advances. */
    void CommitDegraded();

    bool HasLastGood() const { return has_last_good_; }

    /** Last known-good observation; only valid when HasLastGood(). */
    const IntervalObservation& LastGood() const { return last_good_; }

    /** Consecutive degraded intervals committed since the last fresh
     *  one. */
    int SilentIntervals() const { return silent_; }

    void Reset();

  private:
    int expected_tiers_;
    IntervalObservation last_good_;
    bool has_last_good_ = false;
    int silent_ = 0;
};

} // namespace sinan

#endif // SINAN_CORE_TELEMETRY_GUARD_H
