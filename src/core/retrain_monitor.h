/**
 * @file
 * Online retraining trigger (paper Sec. 4.2, "Incremental and Transfer
 * Learning"): in deployment, retraining is triggered periodically in the
 * background or when prediction accuracy drops below expected
 * thresholds. The monitor tracks the scheduler's per-interval latency
 * predictions against the measured outcomes over a sliding window and
 * raises a flag when the rolling RMSE exceeds a multiple of the model's
 * validation RMSE, or when the periodic budget elapses.
 */
#ifndef SINAN_CORE_RETRAIN_MONITOR_H
#define SINAN_CORE_RETRAIN_MONITOR_H

#include <cstdint>
#include <deque>

namespace sinan {

/** Retraining-trigger policy knobs. */
struct RetrainMonitorConfig {
    /** Sliding window length in decision intervals. */
    int window = 120;
    /** Minimum observations before accuracy triggering is considered. */
    int min_observations = 30;
    /** Trigger when rolling RMSE exceeds this multiple of the model's
     *  validation RMSE. */
    double rmse_degradation_factor = 2.0;
    /** Periodic background retraining cadence in intervals
     *  (0 disables periodic triggering). */
    int periodic_intervals = 0;
    /** Intervals to suppress re-triggering after a trigger fires. */
    int cooldown = 120;
};

/** Tracks online prediction error and decides when to retrain. */
class RetrainMonitor {
  public:
    /**
     * @param cfg policy knobs.
     * @param val_rmse_ms the deployed model's validation RMSE.
     */
    RetrainMonitor(const RetrainMonitorConfig& cfg, double val_rmse_ms);

    /**
     * Records one interval's prediction vs outcome (pass a negative
     * prediction to record "no prediction this interval", which still
     * advances the periodic clock).
     * @return true when a retraining should be launched now.
     */
    bool Observe(double predicted_p99_ms, double measured_p99_ms);

    /** Rolling RMSE over the current window (0 if empty). */
    double RollingRmseMs() const;

    /** Updates the reference after a retraining completes. */
    void OnRetrained(double new_val_rmse_ms);

    int TriggerCount() const { return triggers_; }

  private:
    RetrainMonitorConfig cfg_;
    double val_rmse_ms_;
    std::deque<double> sq_errors_;
    double sq_sum_ = 0.0;
    int64_t intervals_ = 0;
    int64_t last_trigger_at_ = -1;
    int triggers_ = 0;
};

} // namespace sinan

#endif // SINAN_CORE_RETRAIN_MONITOR_H
