/**
 * @file
 * Memory provisioning (paper Secs. 2.1 and 4.2): Sinan focuses its
 * dynamic control on CPU and "provisions each tier with the maximum
 * profiled memory usage to eliminate out-of-memory errors" — memory
 * behaves like a threshold resource, so a static reservation derived
 * from profiling suffices. The provisioner aggregates per-tier memory
 * telemetry across profiling runs and emits reservations with a safety
 * headroom.
 */
#ifndef SINAN_CORE_MEMORY_PROVISIONER_H
#define SINAN_CORE_MEMORY_PROVISIONER_H

#include <vector>

#include "common/telemetry.h"
#include "cluster/spec.h"

namespace sinan {

/** Provisioning knobs. */
struct MemoryProvisionerConfig {
    /** Multiplier over the maximum profiled usage. */
    double headroom = 1.2;
    /** Round reservations up to this granularity (MB). */
    double granularity_mb = 64.0;
};

/** Per-tier memory reservation. */
struct MemoryReservation {
    /** Maximum profiled RSS + cache, MB. */
    double peak_mb = 0.0;
    /** Reservation after headroom and rounding, MB. */
    double reserved_mb = 0.0;
};

/** Accumulates profiled memory usage and derives static reservations. */
class MemoryProvisioner {
  public:
    explicit MemoryProvisioner(
        int n_tiers,
        const MemoryProvisionerConfig& cfg = MemoryProvisionerConfig());

    /** Folds one interval's telemetry into the per-tier peaks. */
    void Observe(const IntervalObservation& obs);

    /** Number of intervals observed. */
    int64_t Observations() const { return observations_; }

    /** Reservations for all tiers (peak * headroom, rounded up). */
    std::vector<MemoryReservation> Reservations() const;

    /** Total reserved MB across tiers. */
    double TotalReservedMb() const;

  private:
    MemoryProvisionerConfig cfg_;
    std::vector<double> peak_mb_;
    int64_t observations_ = 0;
};

} // namespace sinan

#endif // SINAN_CORE_MEMORY_PROVISIONER_H
