/**
 * @file
 * Structured per-interval decision trace of the online scheduler: every
 * candidate the scheduler considered, the model's predictions for it,
 * and the reason it was rejected or chosen, together with the trust
 * state and the safety-path events (warm-up, fallback, escalation).
 *
 * The trace is what makes the scheduler's behaviour inspectable — the
 * paper's fallback/trust mechanics are otherwise invisible in a run log
 * that only records the final allocation. A ResourceManager fills the
 * trace through the AttachTelemetry() hook; the harness owns the
 * buffers, stamps wall-clock interval times, and serializes them next
 * to the run log (see harness/telemetry_log.h).
 *
 * Determinism: entries are appended only from Decide(), which the
 * harness calls serially per run, and every recorded value is derived
 * from the deterministic simulation and model evaluation — so the trace
 * is bit-identical across thread-pool sizes.
 */
#ifndef SINAN_CORE_DECISION_TRACE_H
#define SINAN_CORE_DECISION_TRACE_H

#include <vector>

namespace sinan {

/** Candidate action families (paper Table 1). */
enum class ActionKind {
    kHold,
    kScaleDown,
    kScaleDownBatch,
    kScaleUp,
    kScaleUpAll,
    kScaleUpVictims,
};

/**
 * The scheduler's classification of an interval's telemetry (see
 * core/telemetry_guard.h). Anything but kFresh routes the decision
 * through the graceful-degradation path instead of the model.
 */
enum class TelemetryHealth {
    /** Complete, finite, and newer than the last good observation. */
    kFresh,
    /** Timestamp not newer than the last good observation (delayed or
     *  repeated delivery). */
    kStale,
    /** Contains NaN/Inf fields (broken exporter). */
    kNonFinite,
    /** Missing or incomplete payload (dropped interval). */
    kAbsent,
};

/** Why a candidate was (not) applied. */
enum class CandidateOutcome {
    /** Passed every filter and had the least total CPU. */
    kChosen,
    /** Down-action rejected: healthy streak too short to reclaim. */
    kRejectedHysteresis,
    /** Down-action rejected: a tier would exceed post_down_util_cap. */
    kRejectedPostDownSaturation,
    /** Predicted p99 above QoS minus the (trust-scaled) margin. */
    kRejectedLatencyMargin,
    /** Predicted violation probability above p_d / p_u. */
    kRejectedViolationProb,
    /** Down-action rejected: deciding on degraded (last-known-good)
     *  telemetry, where reclaiming would be flying blind. */
    kRejectedDegradedTelemetry,
    /** Down-action rejected on the uncertainty-aware path: its CPU
     *  reduction exceeds the confidence-scaled step-down budget. */
    kRejectedUncertaintyStep,
    /** Passed every filter but a cheaper candidate won. */
    kNotCheapest,
};

/** Which path produced the interval's allocation. */
enum class DecisionKind {
    /** History window not full: conservative utilization stepping. */
    kWarmup,
    /** Observed QoS violation: blanket safety upscale. */
    kFallback,
    /** Persistent violation: escalated safety upscale (trust lost). */
    kEscalatedFallback,
    /** Normal path: a model-filtered candidate was applied. */
    kModel,
    /** Normal path, but no candidate passed: scale-up-all. */
    kNoFeasibleUpscale,
    /** Degraded telemetry: model consulted on the last-known-good
     *  window, down-actions disabled. */
    kDegradedModel,
    /** Degraded telemetry before the window is ready: utilization
     *  stepping on the last good observation. */
    kDegradedHeuristic,
    /** Degraded telemetry with no usable history at all: hold. */
    kDegradedHold,
    /** Watchdog: telemetry silent for too many consecutive intervals,
     *  forced blanket scale-up. */
    kWatchdogUpscale,
    /** Uncertainty-aware path: partially-trusted telemetry repaired
     *  from the last-known-good observation, model consulted with a
     *  widened margin and a confidence-scaled step-down budget. */
    kUncertainModel,
};

const char* ToString(ActionKind kind);
const char* ToString(CandidateOutcome outcome);
const char* ToString(DecisionKind kind);
const char* ToString(TelemetryHealth health);

/** One candidate considered by one decision. */
struct CandidateTrace {
    ActionKind kind = ActionKind::kHold;
    /** Total CPU (cores) of the candidate allocation. */
    double total_cpu = 0.0;
    /** Predicted latency percentiles, ms (p95..p99); empty on
     *  safety-path intervals where the model was not consulted. */
    std::vector<double> latency_ms;
    /** Predicted violation probability. */
    double p_violation = 0.0;
    CandidateOutcome outcome = CandidateOutcome::kNotCheapest;

    double P99() const
    {
        return latency_ms.empty() ? 0.0 : latency_ms.back();
    }
};

/** One decision interval. */
struct DecisionTraceEntry {
    /** Simulation time of the decision; stamped by the harness (-1
     *  when the scheduler is driven directly). */
    double time_s = -1.0;
    /** 0-based decision index since Reset(). */
    int interval = 0;
    DecisionKind kind = DecisionKind::kWarmup;

    /** Observed p99 of the finished interval, and whether it violated
     *  QoS. -1 on degraded intervals, where the observation is
     *  missing or untrusted. */
    double observed_p99_ms = 0.0;
    bool violated = false;

    /** Telemetry classification that routed this decision. */
    TelemetryHealth telemetry = TelemetryHealth::kFresh;
    /** Consecutive degraded intervals including this one (0 when
     *  fresh); the watchdog trips when it reaches the config's
     *  watchdog_silent_after. */
    int silent_intervals = 0;

    /** Trust state after this interval's bookkeeping. */
    bool trust_reduced = false;
    int mispredictions = 0;
    int healthy_streak = 0;
    int consecutive_violations = 0;
    /** Trust transitions that happened on this interval. */
    bool trust_lost = false;
    bool trust_restored = false;

    /** Latency filter margin (ms) used on the model path; -1 on the
     *  safety paths. */
    double margin_ms = -1.0;
    /** Whether hysteresis permitted reclaim this interval. */
    bool may_reclaim = false;

    /** Scheduler's confidence in this interval's telemetry: 1 on the
     *  fresh path, the graded scalar on the uncertainty-aware paths,
     *  0 on the binary degraded ladder. */
    double confidence = 1.0;
    /** Extra latency margin (ms) the uncertainty policy derived for
     *  this interval (margin_frac * QoS * (1 - confidence)); 0 outside
     *  the uncertainty-aware path. */
    double uncertainty_margin_ms = 0.0;
    /** Per-tier confidence vector; empty when no per-tier assessment
     *  ran (fresh path, or uncertainty policy disabled). */
    std::vector<double> tier_confidence;

    /** Index of the chosen candidate, -1 when none was applied. */
    int chosen = -1;
    std::vector<CandidateTrace> candidates;
};

/** A full run's decision trace. */
struct DecisionTrace {
    std::vector<DecisionTraceEntry> intervals;

    void Clear() { intervals.clear(); }
};

} // namespace sinan

#endif // SINAN_CORE_DECISION_TRACE_H
