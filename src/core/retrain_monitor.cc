#include "core/retrain_monitor.h"

#include <cmath>
#include <stdexcept>

namespace sinan {

RetrainMonitor::RetrainMonitor(const RetrainMonitorConfig& cfg,
                               double val_rmse_ms)
    : cfg_(cfg), val_rmse_ms_(val_rmse_ms)
{
    if (cfg.window <= 0 || cfg.min_observations <= 0)
        throw std::invalid_argument("RetrainMonitor: bad window");
    if (val_rmse_ms <= 0.0)
        throw std::invalid_argument("RetrainMonitor: bad reference RMSE");
}

double
RetrainMonitor::RollingRmseMs() const
{
    if (sq_errors_.empty())
        return 0.0;
    return std::sqrt(sq_sum_ /
                     static_cast<double>(sq_errors_.size()));
}

bool
RetrainMonitor::Observe(double predicted_p99_ms, double measured_p99_ms)
{
    ++intervals_;
    if (predicted_p99_ms >= 0.0) {
        const double e = predicted_p99_ms - measured_p99_ms;
        sq_errors_.push_back(e * e);
        sq_sum_ += e * e;
        while (static_cast<int>(sq_errors_.size()) > cfg_.window) {
            sq_sum_ -= sq_errors_.front();
            sq_errors_.pop_front();
        }
    }

    const bool in_cooldown =
        last_trigger_at_ >= 0 &&
        intervals_ - last_trigger_at_ < cfg_.cooldown;
    if (in_cooldown)
        return false;

    bool trigger = false;
    if (static_cast<int>(sq_errors_.size()) >= cfg_.min_observations &&
        RollingRmseMs() >
            cfg_.rmse_degradation_factor * val_rmse_ms_) {
        trigger = true;
    }
    if (cfg_.periodic_intervals > 0 &&
        intervals_ % cfg_.periodic_intervals == 0) {
        trigger = true;
    }
    if (trigger) {
        last_trigger_at_ = intervals_;
        ++triggers_;
    }
    return trigger;
}

void
RetrainMonitor::OnRetrained(double new_val_rmse_ms)
{
    if (new_val_rmse_ms > 0.0)
        val_rmse_ms_ = new_val_rmse_ms;
    sq_errors_.clear();
    sq_sum_ = 0.0;
}

} // namespace sinan
