#include "core/decision_trace.h"

namespace sinan {

const char*
ToString(ActionKind kind)
{
    switch (kind) {
    case ActionKind::kHold:
        return "hold";
    case ActionKind::kScaleDown:
        return "scale_down";
    case ActionKind::kScaleDownBatch:
        return "scale_down_batch";
    case ActionKind::kScaleUp:
        return "scale_up";
    case ActionKind::kScaleUpAll:
        return "scale_up_all";
    case ActionKind::kScaleUpVictims:
        return "scale_up_victims";
    }
    return "unknown";
}

const char*
ToString(CandidateOutcome outcome)
{
    switch (outcome) {
    case CandidateOutcome::kChosen:
        return "chosen";
    case CandidateOutcome::kRejectedHysteresis:
        return "hysteresis";
    case CandidateOutcome::kRejectedPostDownSaturation:
        return "post_down_saturation";
    case CandidateOutcome::kRejectedLatencyMargin:
        return "latency_margin";
    case CandidateOutcome::kRejectedViolationProb:
        return "violation_prob";
    case CandidateOutcome::kRejectedDegradedTelemetry:
        return "degraded_telemetry";
    case CandidateOutcome::kRejectedUncertaintyStep:
        return "uncertainty_step";
    case CandidateOutcome::kNotCheapest:
        return "not_cheapest";
    }
    return "unknown";
}

const char*
ToString(DecisionKind kind)
{
    switch (kind) {
    case DecisionKind::kWarmup:
        return "warmup";
    case DecisionKind::kFallback:
        return "fallback";
    case DecisionKind::kEscalatedFallback:
        return "escalated_fallback";
    case DecisionKind::kModel:
        return "model";
    case DecisionKind::kNoFeasibleUpscale:
        return "no_feasible_upscale";
    case DecisionKind::kDegradedModel:
        return "degraded_model";
    case DecisionKind::kDegradedHeuristic:
        return "degraded_heuristic";
    case DecisionKind::kDegradedHold:
        return "degraded_hold";
    case DecisionKind::kWatchdogUpscale:
        return "watchdog_upscale";
    case DecisionKind::kUncertainModel:
        return "uncertain_model";
    }
    return "unknown";
}

const char*
ToString(TelemetryHealth health)
{
    switch (health) {
    case TelemetryHealth::kFresh:
        return "fresh";
    case TelemetryHealth::kStale:
        return "stale";
    case TelemetryHealth::kNonFinite:
        return "non_finite";
    case TelemetryHealth::kAbsent:
        return "absent";
    }
    return "unknown";
}

} // namespace sinan
