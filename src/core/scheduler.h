/**
 * @file
 * Sinan's online scheduler (paper Sec. 4.3 and Table 1).
 *
 * Every decision interval it enumerates a pruned set of candidate
 * actions — hold, scale down one tier or a batch of the least-utilized
 * tiers, scale up one tier, all tiers, or the recently-downsized
 * "victim" tiers — queries the hybrid model for each candidate's
 * predicted tail latency and violation probability, filters with
 *   predicted p99 <= QoS - RMSE_valid, and
 *   p_V < p_d (downscale) / p_V < p_u (hold, upscale),
 * and applies the acceptable action using the least total CPU. A safety
 * mechanism upscales every tier after an observed (mispredicted) QoS
 * violation and tracks the model's trust.
 */
#ifndef SINAN_CORE_SCHEDULER_H
#define SINAN_CORE_SCHEDULER_H

#include <deque>

#include "core/manager.h"
#include "core/telemetry_guard.h"
#include "models/hybrid.h"

namespace sinan {

/**
 * Graded telemetry-confidence policy (the ROADMAP's
 * telemetry-uncertainty-aware scheduling). Disabled by default: the
 * binary fresh/degraded ladder stays the baseline behaviour, and
 * `--uncertainty=off` maps to enabled=false, so every pre-existing
 * decision sequence is reproduced bit-for-bit unless a run opts in.
 *
 * When enabled, Decide() grades each observation with
 * TelemetryGuard::Assess and, for confidence in [floor, 1):
 *  - widens the latency filter by margin_frac * QoS * (1 - confidence)
 *    and the violation-probability thresholds by
 *    margin_frac * (1 - confidence),
 *  - caps the per-interval CPU reclaim at confidence times the largest
 *    step-down on offer (aggressiveness proportional to confidence),
 *  - repairs zero-confidence tiers from the last-known-good picture.
 * Below the floor the existing degradation ladder takes over — the
 * ladder is the limit case of zero confidence, not a separate mode.
 */
struct UncertaintyConfig {
    bool enabled = false;
    /** Extra margin at zero confidence, as a fraction of QoS (latency
     *  filter) and as an absolute probability widening (p_d / p_u). */
    double margin_frac = 0.15;
    /** Confidence floor below which the binary ladder handles the
     *  interval (degraded model / heuristic / hold / watchdog). */
    double floor = 0.35;
    /** Per-silent-interval staleness decay: an observation stale by k
     *  intervals has confidence decay^k. */
    double decay = 0.6;
};

/** Scheduler thresholds and action-space knobs. */
struct SchedulerConfig {
    /** Violation-probability threshold enabling scale-down actions. */
    double p_down = 0.08;
    /** Threshold above which holding is unacceptable (scale up). */
    double p_up = 0.50;
    /** Single-tier CPU step sizes evaluated (cores). */
    std::vector<double> cpu_steps = {0.2, 0.6};
    /** Batch scale-down ratio applied to the k least-utilized tiers. */
    double batch_down_ratio = 0.10;
    /** Scale-up-all ratio (AWS step-scaling inspired). */
    double up_all_ratio = 0.30;
    /** Look-back window (intervals) defining "victim" tiers. */
    int victim_window = 3;
    /** Utilization above which a tier is never scaled down. */
    double util_cap = 0.90;
    /** A scale-down candidate is rejected if it would push any tier's
     *  utilization (current usage / candidate limit) above this. */
    double post_down_util_cap = 0.85;
    /** Consecutive comfortably-healthy intervals (p99 below
     *  healthy_frac * QoS) required before reclaiming resources —
     *  hysteresis against reclaiming into a transient burst. */
    int reclaim_after_healthy = 3;
    double healthy_frac = 0.8;
    /** Consecutive observed violations before the full-max fallback. */
    int max_fallback_after = 3;
    /** Mispredictions tolerated before trust is reduced. */
    int trust_threshold = 25;
    /** Every this many consecutive comfortably-healthy intervals, one
     *  recorded misprediction is forgiven (0 disables decay). The paper
     *  restores trust as predictions prove out; without decay a single
     *  bad phase early in a long run would keep the doubled margin
     *  forever. */
    int trust_decay_every = 3;
    /** Consecutive comfortably-healthy intervals after which reduced
     *  trust is restored (once mispredictions have decayed back to the
     *  threshold); 0 disables restoration. */
    int trust_restore_healthy = 8;
    /** Upper bound on the latency filter margin as a fraction of QoS
     *  (the paper subtracts RMSE_valid; with the simulator's unbounded
     *  queueing spikes the raw RMSE can exceed QoS, which would filter
     *  out every action). */
    double margin_cap_frac = 0.3;
    /** Consecutive degraded-telemetry intervals (absent, stale, or
     *  non-finite observations) after which the watchdog forces a
     *  blanket scale-up every further silent interval — the last
     *  resort against load shifting under a frozen allocation while
     *  the manager is blind. 0 disables the watchdog. */
    int watchdog_silent_after = 3;
    /** Graded-confidence policy (off by default; see above). */
    UncertaintyConfig uncertainty;
    /** Inference precision of the hybrid model's Evaluate calls
     *  (--quant). kInt8 requires a calibrated model — the scheduler
     *  constructor applies the mode and surfaces the model's error if
     *  the calibration is missing. kOff (default) is byte-identical to
     *  a build without the quantized path. */
    QuantMode quant = QuantMode::kOff;
};

/** The Sinan resource manager. */
class SinanScheduler : public ResourceManager {
  public:
    /**
     * @param model trained hybrid model (not owned; must outlive this).
     * @param cfg thresholds and action-space knobs.
     */
    SinanScheduler(HybridModel& model, const SchedulerConfig& cfg);

    std::vector<double> Decide(const IntervalObservation& obs,
                               const std::vector<double>& alloc,
                               const Application& app) override;

    const char* Name() const override { return "Sinan"; }

    void Reset() override;

    double LastPredictedP99() const override { return last_pred_p99_; }
    double LastViolationProb() const override { return last_pred_pv_; }

    /** Observed mispredictions (for the trust mechanism's report). */
    int Mispredictions() const { return mispredictions_; }

    /** True while reduced-trust conservatism is active. */
    bool TrustReduced() const { return trust_reduced_; }

    /** Consecutive degraded-telemetry intervals handled so far (0 on
     *  the fresh path; see TelemetryGuard). */
    int SilentIntervals() const { return guard_.SilentIntervals(); }

    /**
     * Swaps the hybrid model consulted by subsequent Decide() calls.
     * The replacement must be weight-identical to the original (a
     * Clone()) — the fleet harness rebinds each shard's scheduler to a
     * per-worker clone for the duration of one batched decision, so
     * concurrent shards never share Evaluate() workspaces. Decisions
     * are unaffected because Evaluate() output depends only on the
     * weights and inputs, never on workspace residue. The scheduler's
     * quant mode is re-applied so a clone evaluates with the same
     * precision as the original.
     */
    void RebindModel(HybridModel& model)
    {
        model.SetQuantMode(cfg_.quant);
        model_ = &model;
    }

    /**
     * Attaches per-decision telemetry sinks: every Decide() appends
     * one DecisionTraceEntry (candidates, rejection reasons, trust
     * state) and updates the `sinan.scheduler.*` counters/histograms.
     * Telemetry is observational only — it never changes a decision —
     * and is bit-identical across thread-pool sizes.
     */
    void AttachTelemetry(DecisionTrace* trace,
                         MetricsRegistry* metrics) override
    {
        trace_ = trace;
        metrics_ = metrics;
    }

  private:
    struct Candidate {
        std::vector<double> alloc;
        ActionKind kind = ActionKind::kHold;
        double total_cpu = 0.0;

        bool
        IsDown() const
        {
            return kind == ActionKind::kScaleDown ||
                   kind == ActionKind::kScaleDownBatch;
        }
        bool IsHold() const { return kind == ActionKind::kHold; }
    };

    /** Builds the Table-1 candidate action set. */
    std::vector<Candidate>
    BuildCandidates(const IntervalObservation& obs,
                    const std::vector<double>& alloc,
                    const Application& app) const;

    /** Normal path: fresh telemetry (warm-up / fallback / model). */
    std::vector<double> DecideFresh(const IntervalObservation& obs,
                                    const std::vector<double>& alloc,
                                    const Application& app);

    /**
     * Graceful degradation on stale/non-finite/absent telemetry:
     * model on the last-known-good window with reclaim disabled, then
     * utilization stepping on the last good observation, then hold —
     * and the blanket-upscale watchdog once the silence persists.
     */
    std::vector<double> DecideDegraded(TelemetryHealth health,
                                       const std::vector<double>& alloc,
                                       const Application& app,
                                       const TelemetryAssessment* assess);

    /**
     * Uncertainty-aware path for partially-trusted telemetry
     * (confidence in [floor, 1)): the observation is repaired from the
     * last-known-good picture, the model is consulted with the filter
     * margins widened by the uncertainty margin, and the step-down
     * budget shrinks proportionally to confidence. Trust scoring stays
     * frozen (predictions made on repaired data are never graded), and
     * the guard's silent counter advances so persistent staleness
     * decays into the binary ladder.
     */
    std::vector<double> DecideUncertain(const TelemetryAssessment& assess,
                                        const IntervalObservation& obs,
                                        const std::vector<double>& alloc,
                                        const Application& app);

    /** AutoScaleCons-style utilization stepping (warm-up and the
     *  degraded heuristic); @p aggressive grows every tier. */
    std::vector<double> UtilStep(const IntervalObservation& ref,
                                 const std::vector<double>& alloc,
                                 const Application& app,
                                 bool aggressive) const;

    /** Never null; rebindable (see RebindModel). */
    HybridModel* model_;
    SchedulerConfig cfg_;
    MetricWindow window_;
    TelemetryGuard guard_;

    /** Scratch for the per-interval Evaluate call: reused across
     *  intervals so the candidate allocation list does not rebuild
     *  its inner vectors every decision (the model side is
     *  allocation-free in steady state; see CnnEvalWorkspace). */
    std::vector<std::vector<double>> eval_allocs_;

    /** Tiers scaled down in the last victim_window intervals. */
    std::deque<std::vector<int>> recent_victims_;

    double last_pred_p99_ = -1.0;
    double last_pred_pv_ = -1.0;
    int healthy_streak_ = 0;
    /** Prediction made for the interval being observed next. */
    double pending_pred_p99_ = -1.0;
    int consecutive_violations_ = 0;
    int mispredictions_ = 0;
    bool trust_reduced_ = false;

    /** Decisions made since Reset() (trace interval index). */
    int interval_idx_ = 0;
    /** Telemetry sinks (not owned; may be null). */
    DecisionTrace* trace_ = nullptr;
    MetricsRegistry* metrics_ = nullptr;
};

} // namespace sinan

#endif // SINAN_CORE_SCHEDULER_H
