/**
 * @file
 * The resource-manager interface shared by Sinan and the baselines
 * (autoscaling, PowerChief): once per decision interval the manager
 * receives the cluster-wide telemetry of the finished interval and
 * returns the per-tier CPU allocation for the next one.
 */
#ifndef SINAN_CORE_MANAGER_H
#define SINAN_CORE_MANAGER_H

#include <vector>

#include "common/telemetry.h"
#include "cluster/spec.h"
#include "common/metrics.h"
#include "core/decision_trace.h"

namespace sinan {

/** Per-interval resource-allocation policy. */
class ResourceManager {
  public:
    virtual ~ResourceManager() = default;

    /**
     * Decides the allocation for the next interval.
     * @param obs finished interval's telemetry.
     * @param alloc allocation currently in force (cores per tier).
     * @param app the managed application (for per-tier bounds).
     * @return new allocation vector (clamped by the caller per spec).
     */
    virtual std::vector<double> Decide(const IntervalObservation& obs,
                                       const std::vector<double>& alloc,
                                       const Application& app) = 0;

    /** Display name used in reports. */
    virtual const char* Name() const = 0;

    /** Resets manager state between runs. */
    virtual void Reset() {}

    /**
     * Predicted p99 (ms) for the chosen action, when the manager is
     * model-driven; negative when unavailable. Lets the harness plot the
     * paper's predicted-vs-actual timelines (Fig. 12).
     */
    virtual double LastPredictedP99() const { return -1.0; }

    /** Predicted violation probability of the chosen action, or -1. */
    virtual double LastViolationProb() const { return -1.0; }

    /**
     * Attaches decision telemetry sinks owned by the caller (the
     * harness attaches per-run buffers and detaches them before the
     * run result is returned). Either pointer may be null; managers
     * without an introspectable decision process ignore the hook.
     * Sinks must outlive every subsequent Decide() call.
     */
    virtual void
    AttachTelemetry(DecisionTrace* trace, MetricsRegistry* metrics)
    {
        (void)trace;
        (void)metrics;
    }
};

} // namespace sinan

#endif // SINAN_CORE_MANAGER_H
