#include "core/memory_provisioner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinan {

MemoryProvisioner::MemoryProvisioner(int n_tiers,
                                     const MemoryProvisionerConfig& cfg)
    : cfg_(cfg), peak_mb_(static_cast<size_t>(n_tiers), 0.0)
{
    if (n_tiers <= 0)
        throw std::invalid_argument("MemoryProvisioner: no tiers");
    if (cfg.headroom < 1.0 || cfg.granularity_mb <= 0.0)
        throw std::invalid_argument("MemoryProvisioner: bad config");
}

void
MemoryProvisioner::Observe(const IntervalObservation& obs)
{
    if (obs.tiers.size() != peak_mb_.size())
        throw std::invalid_argument(
            "MemoryProvisioner::Observe: tier count mismatch");
    for (size_t i = 0; i < peak_mb_.size(); ++i) {
        peak_mb_[i] = std::max(peak_mb_[i], obs.tiers[i].rss_mb +
                                                obs.tiers[i].cache_mb);
    }
    ++observations_;
}

std::vector<MemoryReservation>
MemoryProvisioner::Reservations() const
{
    std::vector<MemoryReservation> out(peak_mb_.size());
    for (size_t i = 0; i < peak_mb_.size(); ++i) {
        out[i].peak_mb = peak_mb_[i];
        const double raw = peak_mb_[i] * cfg_.headroom;
        out[i].reserved_mb =
            std::ceil(raw / cfg_.granularity_mb) * cfg_.granularity_mb;
    }
    return out;
}

double
MemoryProvisioner::TotalReservedMb() const
{
    double total = 0.0;
    for (const MemoryReservation& r : Reservations())
        total += r.reserved_mb;
    return total;
}

} // namespace sinan
