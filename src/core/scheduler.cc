#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace sinan {

namespace {

/** Histogram bucket bounds for predicted/observed tail latency (ms). */
const std::vector<double>&
LatencyBounds()
{
    static const std::vector<double> b = {1,   2,   5,    10,   20,  50,
                                          100, 200, 500,  1000, 2000};
    return b;
}

/** Histogram bucket bounds for violation probability. */
const std::vector<double>&
ProbabilityBounds()
{
    static const std::vector<double> b = {0.01, 0.02, 0.05, 0.1,
                                          0.2,  0.5,  0.9,  1.0};
    return b;
}

} // namespace

SinanScheduler::SinanScheduler(HybridModel& model,
                               const SchedulerConfig& cfg)
    : model_(&model), cfg_(cfg), window_(model.Features()),
      guard_(model.Features().n_tiers)
{
    // Applies the configured inference precision up front; throws with
    // a clear message if int8 is requested on an uncalibrated model.
    model.SetQuantMode(cfg_.quant);
}

void
SinanScheduler::Reset()
{
    window_.Clear();
    guard_.Reset();
    recent_victims_.clear();
    last_pred_p99_ = -1.0;
    last_pred_pv_ = -1.0;
    pending_pred_p99_ = -1.0;
    consecutive_violations_ = 0;
    mispredictions_ = 0;
    trust_reduced_ = false;
    healthy_streak_ = 0;
    interval_idx_ = 0;
}

std::vector<SinanScheduler::Candidate>
SinanScheduler::BuildCandidates(const IntervalObservation& obs,
                                const std::vector<double>& alloc,
                                const Application& app) const
{
    const int n = static_cast<int>(alloc.size());
    std::vector<Candidate> cands;

    auto clamp_alloc = [&](std::vector<double> a) {
        for (int i = 0; i < n; ++i)
            a[i] = std::clamp(a[i], app.tiers[i].min_cpu,
                              app.tiers[i].max_cpu);
        return a;
    };
    auto add = [&](std::vector<double> a, ActionKind kind) {
        Candidate c;
        c.alloc = clamp_alloc(std::move(a));
        c.kind = kind;
        // A non-hold candidate whose clamped allocation equals the
        // current one is a phantom: it would duplicate Hold, waste an
        // Evaluate slot, and — flagged as a down action — let a no-op
        // masquerade as a reclaim (e.g. a batch down where every
        // selected tier sits above util_cap).
        if (kind != ActionKind::kHold && c.alloc == alloc)
            return;
        c.total_cpu =
            std::accumulate(c.alloc.begin(), c.alloc.end(), 0.0);
        cands.push_back(std::move(c));
    };

    // Hold.
    add(alloc, ActionKind::kHold);

    // Scale Down: single tiers (skipping saturated ones).
    for (int i = 0; i < n; ++i) {
        if (obs.tiers[i].Utilization() > cfg_.util_cap)
            continue;
        for (double step : cfg_.cpu_steps) {
            if (alloc[i] - step < app.tiers[i].min_cpu - 1e-9)
                continue;
            std::vector<double> a = alloc;
            a[i] -= step;
            add(std::move(a), ActionKind::kScaleDown);
        }
    }

    // Scale Down Batch: the k least-utilized tiers by 10%.
    {
        std::vector<int> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int x, int y) {
            return obs.tiers[x].Utilization() < obs.tiers[y].Utilization();
        });
        for (int k : {2, n / 4, n / 2, n}) {
            if (k < 2 || k > n)
                continue;
            std::vector<double> a = alloc;
            for (int j = 0; j < k; ++j) {
                const int tier = order[j];
                if (obs.tiers[tier].Utilization() > cfg_.util_cap)
                    continue;
                a[tier] *= 1.0 - cfg_.batch_down_ratio;
            }
            add(std::move(a), ActionKind::kScaleDownBatch);
        }
    }

    // Scale Up: single tiers.
    for (int i = 0; i < n; ++i) {
        for (double step : cfg_.cpu_steps) {
            std::vector<double> a = alloc;
            a[i] += step;
            add(std::move(a), ActionKind::kScaleUp);
        }
    }

    // Scale Up All.
    {
        std::vector<double> a = alloc;
        for (int i = 0; i < n; ++i)
            a[i] = a[i] * (1.0 + cfg_.up_all_ratio) + 0.2;
        add(std::move(a), ActionKind::kScaleUpAll);
    }

    // Scale Up Victims: tiers scaled down within the look-back window.
    if (!recent_victims_.empty()) {
        std::vector<bool> victim(n, false);
        bool any = false;
        for (const auto& tiers : recent_victims_) {
            for (int t : tiers) {
                victim[t] = true;
                any = true;
            }
        }
        if (any) {
            std::vector<double> a = alloc;
            for (int i = 0; i < n; ++i) {
                if (victim[i])
                    a[i] += cfg_.cpu_steps.back();
            }
            add(std::move(a), ActionKind::kScaleUpVictims);
        }
    }
#ifndef SINAN_DISABLE_DCHECKS
    // Postcondition: every candidate stays within the per-tier action
    // bounds of Table 1 — clamp_alloc guarantees it, and the contract
    // keeps any future candidate generator honest.
    for (const Candidate& c : cands) {
        SINAN_DCHECK_EQ(c.alloc.size(), alloc.size());
        for (int i = 0; i < n; ++i) {
            SINAN_DCHECK_BOUNDS(c.alloc[i], app.tiers[i].min_cpu - 1e-9,
                                app.tiers[i].max_cpu + 1e-9);
        }
    }
#endif
    return cands;
}

std::vector<double>
SinanScheduler::UtilStep(const IntervalObservation& ref,
                         const std::vector<double>& alloc,
                         const Application& app, bool aggressive) const
{
    const int n = static_cast<int>(alloc.size());
    std::vector<double> a = alloc;
    for (int i = 0; i < n; ++i) {
        const double util = ref.tiers[i].Utilization();
        if (util >= 0.5 || aggressive)
            a[i] *= 1.3;
        else if (util >= 0.3)
            a[i] *= 1.1;
        a[i] = std::clamp(a[i], app.tiers[i].min_cpu,
                          app.tiers[i].max_cpu);
    }
    return a;
}

std::vector<double>
SinanScheduler::Decide(const IntervalObservation& obs,
                       const std::vector<double>& alloc,
                       const Application& app)
{
    const int n = static_cast<int>(alloc.size());
    // The allocation is the caller's own bookkeeping: a malformed one
    // is a programming error and throws. Malformed *telemetry* is an
    // environment fault and is routed through the degradation path
    // below instead — no ContractViolation may escape because a
    // collection pipeline hiccuped.
    SINAN_CHECK_EQ(alloc.size(), app.tiers.size());
    for (int i = 0; i < n; ++i) {
        SINAN_CHECK_BOUNDS(alloc[i], app.tiers[i].min_cpu - 1e-9,
                           app.tiers[i].max_cpu + 1e-9);
    }

    if (cfg_.uncertainty.enabled) {
        const TelemetryAssessment assess =
            guard_.Assess(obs, cfg_.uncertainty.decay);
        if (assess.health == TelemetryHealth::kFresh)
            return DecideFresh(obs, alloc, app);
        // The graded path needs a repair reference and a full model
        // window; below the confidence floor (or without either) the
        // binary ladder handles the interval — the ladder is the
        // limit case of zero confidence.
        if (assess.confidence >= cfg_.uncertainty.floor &&
            assess.confidence > 0.0 && guard_.HasLastGood() &&
            window_.Ready())
            return DecideUncertain(assess, obs, alloc, app);
        return DecideDegraded(assess.health, alloc, app, &assess);
    }
    const TelemetryHealth health = guard_.Classify(obs);
    if (health != TelemetryHealth::kFresh)
        return DecideDegraded(health, alloc, app, nullptr);
    return DecideFresh(obs, alloc, app);
}

std::vector<double>
SinanScheduler::DecideFresh(const IntervalObservation& obs,
                            const std::vector<double>& alloc,
                            const Application& app)
{
    const double qos = model_->Features().qos_ms;
    const int n = static_cast<int>(alloc.size());

    // ---- analysis phase ----------------------------------------------
    // Trust bookkeeping is computed into locals and only written back
    // in commit() below, after every fallible step (most importantly
    // the model evaluation) has succeeded — a throw out of Decide()
    // leaves the scheduler exactly as it was (strong guarantee).
    const bool violated = obs.P99() > qos;
    const bool scored = pending_pred_p99_ >= 0.0;
    const bool mispredicted =
        scored && pending_pred_p99_ <= qos && violated;
    int mispred = mispredictions_ + (mispredicted ? 1 : 0);
    bool trust_reduced = trust_reduced_;
    bool trust_lost = false;
    bool trust_restored = false;
    if (scored && !trust_reduced && mispred > cfg_.trust_threshold) {
        trust_reduced = true;
        trust_lost = true;
    }
    const int consecutive = violated ? consecutive_violations_ + 1 : 0;
    int healthy =
        obs.P99() <= cfg_.healthy_frac * qos ? healthy_streak_ + 1 : 0;

    // Trust restoration (the paper's counterpart to losing it): a
    // sustained healthy streak first decays the misprediction count,
    // then lifts the reduced-trust conservatism once the count is back
    // under the threshold.
    if (healthy > 0) {
        if (cfg_.trust_decay_every > 0 && mispred > 0 &&
            healthy % cfg_.trust_decay_every == 0) {
            --mispred;
        }
        if (trust_reduced && cfg_.trust_restore_healthy > 0 &&
            healthy >= cfg_.trust_restore_healthy &&
            mispred <= cfg_.trust_threshold) {
            trust_reduced = false;
            trust_restored = true;
        }
    }

    auto count = [&](const char* name) {
        if (metrics_)
            metrics_->Inc(name);
    };

    // ---- commit ------------------------------------------------------
    // Writes the interval's bookkeeping back and appends the trace
    // entry; every return path calls it exactly once, after the
    // fallible work is done.
    auto commit = [&](DecisionKind kind) -> DecisionTraceEntry* {
        mispredictions_ = mispred;
        trust_reduced_ = trust_reduced;
        consecutive_violations_ = consecutive;
        healthy_streak_ = healthy;
        guard_.CommitFresh(obs);

        DecisionTraceEntry* ent = nullptr;
        if (trace_) {
            trace_->intervals.emplace_back();
            ent = &trace_->intervals.back();
            ent->interval = interval_idx_;
            ent->kind = kind;
            ent->observed_p99_ms = obs.P99();
            ent->violated = violated;
            ent->telemetry = TelemetryHealth::kFresh;
            ent->silent_intervals = 0;
            ent->trust_reduced = trust_reduced_;
            ent->mispredictions = mispredictions_;
            ent->healthy_streak = healthy_streak_;
            ent->consecutive_violations = consecutive_violations_;
            ent->trust_lost = trust_lost;
            ent->trust_restored = trust_restored;
        }
        ++interval_idx_;
        count("sinan.scheduler.decisions");
        if (scored)
            count("sinan.scheduler.predictions");
        if (mispredicted)
            count("sinan.scheduler.mispredictions");
        if (trust_lost)
            count("sinan.scheduler.trust_lost");
        if (trust_restored)
            count("sinan.scheduler.trust_restored");
        if (metrics_) {
            metrics_->Observe("sinan.scheduler.observed_p99_ms",
                              obs.P99(), LatencyBounds());
            metrics_->Set("sinan.scheduler.trust_reduced",
                          trust_reduced_ ? 1.0 : 0.0);
            metrics_->Set("sinan.scheduler.mispredictions_current",
                          mispredictions_);
            metrics_->Set("sinan.scheduler.healthy_streak",
                          healthy_streak_);
            metrics_->Set("sinan.scheduler.silent_intervals", 0.0);
        }
        return ent;
    };

    // The window including this observation is prepared as a copy so
    // the decision (including the model evaluation, the only step that
    // can throw past this point) runs before any member is touched.
    MetricWindow next_window = window_;
    next_window.Push(obs);

    // Warm-up: no full history window yet. Falling back to conservative
    // utilization stepping keeps the cluster alive if the run starts
    // underprovisioned (holding a starved allocation for T intervals
    // builds a queue that takes far longer to drain).
    if (!next_window.Ready()) {
        const std::vector<double> a = UtilStep(obs, alloc, app, violated);
        window_ = std::move(next_window);
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        pending_pred_p99_ = -1.0;
        commit(DecisionKind::kWarmup);
        count("sinan.scheduler.warmup");
        return a;
    }

    // Safety: an observed violation triggers an immediate blanket
    // upscale; a persistent one escalates more aggressively. (The paper
    // describes scaling "to the max amount"; with the simulator's large
    // per-tier maxima a single escalation to max dominates the max-CPU
    // accounting, so we escalate multiplicatively instead — it reaches
    // the maxima within a few intervals if the violation persists.)
    if (violated) {
        const bool escalate =
            consecutive >= cfg_.max_fallback_after;
        // A violation the model failed to avert for this many intervals
        // also costs it trust: future decisions use the doubled latency
        // margin until it is restored by a healthy streak (or Reset()).
        if (escalate && !trust_reduced) {
            trust_reduced = true;
            trust_lost = true;
        }
        std::vector<double> a = alloc;
        for (int i = 0; i < n; ++i) {
            // Saturated tiers get a stronger kick so the built-up queue
            // drains in as few intervals as possible.
            const bool hot = obs.tiers[i].Utilization() > 0.7;
            double factor = hot ? 1.5 : 1.0 + cfg_.up_all_ratio;
            double add = 0.2;
            if (escalate) {
                factor = 1.6;
                add = 0.4;
            }
            a[i] =
                std::min(app.tiers[i].max_cpu, a[i] * factor + add);
        }
        window_ = std::move(next_window);
        recent_victims_.clear();
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        pending_pred_p99_ = -1.0;
        commit(escalate ? DecisionKind::kEscalatedFallback
                        : DecisionKind::kFallback);
        count("sinan.scheduler.fallbacks");
        if (escalate)
            count("sinan.scheduler.escalations");
        return a;
    }

    // Model path.
    const std::vector<Candidate> cands =
        BuildCandidates(obs, alloc, app);
    eval_allocs_.resize(cands.size());
    for (size_t i = 0; i < cands.size(); ++i)
        eval_allocs_[i] = cands[i].alloc;
    const std::vector<Prediction> preds =
        model_->Evaluate(next_window, eval_allocs_);
    SINAN_CHECK_EQ(preds.size(), cands.size());
    for (const Prediction& p : preds) {
        // A NaN prediction would silently poison every margin
        // comparison below (NaN <= x is false, so the candidate is
        // rejected and the scheduler degrades to blanket upscaling
        // without ever reporting the model fault).
        SINAN_CHECK_FINITE(p.P99());
        SINAN_CHECK_BOUNDS(p.p_violation, 0.0, 1.0);
    }

    // Reduced trust makes the latency margin twice as conservative.
    const double margin =
        std::min(model_->ValRmseSubQosMs(), cfg_.margin_cap_frac * qos) *
        (trust_reduced ? 2.0 : 1.0);

    // Hysteresis: only reclaim after a streak of comfortable intervals.
    const bool may_reclaim = healthy >= cfg_.reclaim_after_healthy;

    int best = -1;
    int hold_idx = -1;
    std::vector<CandidateOutcome> outcomes(
        cands.size(), CandidateOutcome::kNotCheapest);
    for (size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].IsHold())
            hold_idx = static_cast<int>(i);
        if (cands[i].IsDown()) {
            if (!may_reclaim) {
                outcomes[i] = CandidateOutcome::kRejectedHysteresis;
                continue;
            }
            // Reject downs that would immediately saturate a tier.
            bool saturates = false;
            for (int j = 0; j < n && !saturates; ++j) {
                saturates = obs.tiers[j].cpu_used >
                            cfg_.post_down_util_cap *
                                cands[i].alloc[j];
            }
            if (saturates) {
                outcomes[i] =
                    CandidateOutcome::kRejectedPostDownSaturation;
                continue;
            }
        }
        const bool latency_ok = preds[i].P99() <= qos - margin;
        const double pv = preds[i].p_violation;
        const bool prob_ok =
            cands[i].IsDown() ? pv < cfg_.p_down : pv < cfg_.p_up;
        if (!latency_ok) {
            outcomes[i] = CandidateOutcome::kRejectedLatencyMargin;
            continue;
        }
        if (!prob_ok) {
            outcomes[i] = CandidateOutcome::kRejectedViolationProb;
            continue;
        }
        if (best < 0 || cands[i].total_cpu < cands[best].total_cpu)
            best = static_cast<int>(i);
    }
    if (best >= 0)
        outcomes[best] = CandidateOutcome::kChosen;

    // ---- commit (model path) ----------------------------------------
    window_ = std::move(next_window);
    DecisionTraceEntry* ent = commit(
        best >= 0 ? DecisionKind::kModel
                  : DecisionKind::kNoFeasibleUpscale);

    if (metrics_) {
        metrics_->Inc("sinan.scheduler.candidates", cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
            metrics_->Inc(std::string("sinan.scheduler.outcome.") +
                          ToString(outcomes[i]));
            metrics_->Observe("sinan.scheduler.pred_p99_ms",
                              preds[i].P99(), LatencyBounds());
            metrics_->Observe("sinan.scheduler.pred_p_violation",
                              preds[i].p_violation,
                              ProbabilityBounds());
        }
        if (best >= 0) {
            metrics_->Inc(std::string("sinan.scheduler.chosen.") +
                          ToString(cands[best].kind));
        }
    }
    if (ent) {
        ent->margin_ms = margin;
        ent->may_reclaim = may_reclaim;
        ent->chosen = best;
        ent->candidates.reserve(cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
            CandidateTrace ct;
            ct.kind = cands[i].kind;
            ct.total_cpu = cands[i].total_cpu;
            ct.latency_ms = preds[i].latency_ms;
            ct.p_violation = preds[i].p_violation;
            ct.outcome = outcomes[i];
            ent->candidates.push_back(std::move(ct));
        }
    }

    std::vector<double> chosen;
    if (best >= 0) {
        chosen = cands[best].alloc;
        last_pred_p99_ = preds[best].P99();
        last_pred_pv_ = preds[best].p_violation;
        pending_pred_p99_ = last_pred_p99_;
        count("sinan.scheduler.model_decisions");
    } else {
        // No acceptable action: scale everything up.
        chosen.resize(n);
        for (int i = 0; i < n; ++i) {
            chosen[i] = std::min(app.tiers[i].max_cpu,
                                 alloc[i] * (1.0 + cfg_.up_all_ratio) +
                                     0.2);
        }
        if (hold_idx >= 0) {
            last_pred_p99_ = preds[hold_idx].P99();
            last_pred_pv_ = preds[hold_idx].p_violation;
        }
        pending_pred_p99_ = -1.0;
        count("sinan.scheduler.no_feasible");
    }

#ifndef SINAN_DISABLE_DCHECKS
    for (int i = 0; i < n; ++i) {
        SINAN_DCHECK_BOUNDS(chosen[i], app.tiers[i].min_cpu - 1e-9,
                            app.tiers[i].max_cpu + 1e-9);
    }
#endif

    // Record this interval's victims for Scale Up Victim.
    std::vector<int> victims;
    for (int i = 0; i < n; ++i) {
        if (chosen[i] < alloc[i] - 1e-9)
            victims.push_back(i);
    }
    recent_victims_.push_back(std::move(victims));
    while (static_cast<int>(recent_victims_.size()) > cfg_.victim_window)
        recent_victims_.pop_front();

    return chosen;
}

std::vector<double>
SinanScheduler::DecideDegraded(TelemetryHealth health,
                               const std::vector<double>& alloc,
                               const Application& app,
                               const TelemetryAssessment* assess)
{
    const double qos = model_->Features().qos_ms;
    const int n = static_cast<int>(alloc.size());
    // Including this interval; the guard advances in commit().
    const int silent = guard_.SilentIntervals() + 1;
    const bool watchdog = cfg_.watchdog_silent_after > 0 &&
                          silent >= cfg_.watchdog_silent_after;

    auto count = [&](const char* name) {
        if (metrics_)
            metrics_->Inc(name);
    };

    // Shared commit tail. The trust machinery freezes while blind —
    // there is no observation to score predictions against — except
    // the healthy streak, which resets: silence is not evidence of
    // comfort, and a pre-outage streak must not authorize a reclaim
    // the moment telemetry returns.
    auto commit = [&](DecisionKind kind) -> DecisionTraceEntry* {
        guard_.CommitDegraded();
        healthy_streak_ = 0;
        pending_pred_p99_ = -1.0;

        DecisionTraceEntry* ent = nullptr;
        if (trace_) {
            trace_->intervals.emplace_back();
            ent = &trace_->intervals.back();
            ent->interval = interval_idx_;
            ent->kind = kind;
            ent->observed_p99_ms = -1.0; // unknown or untrusted
            ent->violated = false;
            ent->telemetry = health;
            ent->silent_intervals = silent;
            ent->trust_reduced = trust_reduced_;
            ent->mispredictions = mispredictions_;
            ent->healthy_streak = healthy_streak_;
            ent->consecutive_violations = consecutive_violations_;
            // On the binary ladder the telemetry is not trusted at
            // all; with the graded policy active the assessment that
            // routed the interval here is recorded as-is.
            ent->confidence = assess ? assess->confidence : 0.0;
            if (assess)
                ent->tier_confidence = assess->tier_confidence;
        }
        ++interval_idx_;
        count("sinan.scheduler.decisions");
        count("sinan.scheduler.degraded");
        if (metrics_) {
            metrics_->Inc(std::string("sinan.scheduler.telemetry.") +
                          ToString(health));
            metrics_->Set("sinan.scheduler.silent_intervals", silent);
            metrics_->Set("sinan.scheduler.healthy_streak", 0.0);
        }
        return ent;
    };

    // Ages the victim look-back like any other interval (degraded
    // paths never scale down, so the entry is empty).
    auto age_victims = [&] {
        recent_victims_.emplace_back();
        while (static_cast<int>(recent_victims_.size()) >
               cfg_.victim_window)
            recent_victims_.pop_front();
    };

    // Watchdog: after k consecutive silent intervals stop trusting the
    // frozen picture entirely and grow everything until telemetry (or
    // the per-tier maxima) returns.
    if (watchdog) {
        std::vector<double> a = alloc;
        for (int i = 0; i < n; ++i) {
            a[i] = std::min(app.tiers[i].max_cpu,
                            a[i] * (1.0 + cfg_.up_all_ratio) + 0.2);
        }
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        recent_victims_.clear();
        commit(DecisionKind::kWatchdogUpscale);
        count("sinan.scheduler.watchdog");
        return a;
    }

    // Stale or non-finite telemetry with a full window: consult the
    // model on the last-known-good features. Reclaims are disabled —
    // shrinking a tier based on a picture that may no longer hold is
    // how a blind manager causes its own violation.
    if (window_.Ready()) {
        const IntervalObservation& ref = window_.Newest();
        const std::vector<Candidate> cands =
            BuildCandidates(ref, alloc, app);
        eval_allocs_.resize(cands.size());
        for (size_t i = 0; i < cands.size(); ++i)
            eval_allocs_[i] = cands[i].alloc;
        const std::vector<Prediction> preds =
            model_->Evaluate(window_, eval_allocs_);
        SINAN_CHECK_EQ(preds.size(), cands.size());
        for (const Prediction& p : preds) {
            SINAN_CHECK_FINITE(p.P99());
            SINAN_CHECK_BOUNDS(p.p_violation, 0.0, 1.0);
        }
        const double margin = std::min(model_->ValRmseSubQosMs(),
                                       cfg_.margin_cap_frac * qos) *
                              (trust_reduced_ ? 2.0 : 1.0);

        int best = -1;
        std::vector<CandidateOutcome> outcomes(
            cands.size(), CandidateOutcome::kNotCheapest);
        for (size_t i = 0; i < cands.size(); ++i) {
            if (cands[i].IsDown()) {
                outcomes[i] =
                    CandidateOutcome::kRejectedDegradedTelemetry;
                continue;
            }
            const bool latency_ok = preds[i].P99() <= qos - margin;
            const bool prob_ok = preds[i].p_violation < cfg_.p_up;
            if (!latency_ok) {
                outcomes[i] = CandidateOutcome::kRejectedLatencyMargin;
                continue;
            }
            if (!prob_ok) {
                outcomes[i] = CandidateOutcome::kRejectedViolationProb;
                continue;
            }
            if (best < 0 || cands[i].total_cpu < cands[best].total_cpu)
                best = static_cast<int>(i);
        }
        if (best >= 0)
            outcomes[best] = CandidateOutcome::kChosen;

        DecisionTraceEntry* ent = commit(DecisionKind::kDegradedModel);
        count("sinan.scheduler.degraded_model");
        if (metrics_) {
            metrics_->Inc("sinan.scheduler.candidates", cands.size());
            for (const CandidateOutcome& o : outcomes) {
                metrics_->Inc(
                    std::string("sinan.scheduler.outcome.") +
                    ToString(o));
            }
            if (best >= 0) {
                metrics_->Inc(std::string("sinan.scheduler.chosen.") +
                              ToString(cands[best].kind));
            }
        }
        if (ent) {
            ent->margin_ms = margin;
            ent->may_reclaim = false;
            ent->chosen = best;
            ent->candidates.reserve(cands.size());
            for (size_t i = 0; i < cands.size(); ++i) {
                CandidateTrace ct;
                ct.kind = cands[i].kind;
                ct.total_cpu = cands[i].total_cpu;
                ct.latency_ms = preds[i].latency_ms;
                ct.p_violation = preds[i].p_violation;
                ct.outcome = outcomes[i];
                ent->candidates.push_back(std::move(ct));
            }
        }

        std::vector<double> chosen;
        if (best >= 0) {
            chosen = cands[best].alloc;
            last_pred_p99_ = preds[best].P99();
            last_pred_pv_ = preds[best].p_violation;
        } else {
            chosen.resize(n);
            for (int i = 0; i < n; ++i) {
                chosen[i] =
                    std::min(app.tiers[i].max_cpu,
                             alloc[i] * (1.0 + cfg_.up_all_ratio) +
                                 0.2);
            }
            last_pred_p99_ = -1.0;
            last_pred_pv_ = -1.0;
            count("sinan.scheduler.no_feasible");
        }
        age_victims();
        return chosen;
    }

    // No full window yet, but at least one good observation: the
    // AutoScaleCons-style utilization heuristic on the last good
    // picture (never reclaims while blind).
    if (guard_.HasLastGood()) {
        const std::vector<double> a =
            UtilStep(guard_.LastGood(), alloc, app, false);
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        commit(DecisionKind::kDegradedHeuristic);
        count("sinan.scheduler.degraded_heuristic");
        age_victims();
        return a;
    }

    // Telemetry degraded before anything useful was ever seen: hold.
    last_pred_p99_ = -1.0;
    last_pred_pv_ = -1.0;
    commit(DecisionKind::kDegradedHold);
    count("sinan.scheduler.degraded_hold");
    age_victims();
    return alloc;
}

std::vector<double>
SinanScheduler::DecideUncertain(const TelemetryAssessment& assess,
                                const IntervalObservation& obs,
                                const std::vector<double>& alloc,
                                const Application& app)
{
    const double qos = model_->Features().qos_ms;
    const int n = static_cast<int>(alloc.size());
    // Including this interval; the guard advances in commit(), so a
    // run of partially-trusted intervals keeps decaying the stale
    // confidence until the ladder takes over.
    const int silent = guard_.SilentIntervals() + 1;

    // ---- analysis ----------------------------------------------------
    // Zero-confidence channels are imputed from the last-known-good
    // picture; everything else is the delivered frame.
    const IntervalObservation repaired = guard_.Repair(obs, assess);
    const double umargin = cfg_.uncertainty.margin_frac * qos *
                           (1.0 - assess.confidence);
    const double pv_widen =
        cfg_.uncertainty.margin_frac * (1.0 - assess.confidence);

    // The QoS channel is only actionable when the latency percentiles
    // were genuinely delivered this interval (tier-targeted NaN leaves
    // them real; a stale or imputed vector proves nothing).
    const bool violated = assess.latency_fresh && repaired.P99() > qos;
    const int healthy = (assess.latency_fresh &&
                         repaired.P99() <= cfg_.healthy_frac * qos)
                            ? healthy_streak_ + 1
                            : 0;

    auto count = [&](const char* name) {
        if (metrics_)
            metrics_->Inc(name);
    };

    // ---- commit ------------------------------------------------------
    // Trust scoring freezes like the degraded path: predictions made
    // on repaired data are never graded against later observations,
    // and the repaired frame is never committed to the fresh-only
    // history window. The healthy streak, unlike the blind ladder, may
    // keep advancing — a real delivered latency below the comfort
    // threshold is evidence, whatever the tier channels did.
    auto commit = [&](DecisionKind kind) -> DecisionTraceEntry* {
        guard_.CommitDegraded();
        healthy_streak_ = healthy;
        pending_pred_p99_ = -1.0;

        DecisionTraceEntry* ent = nullptr;
        if (trace_) {
            trace_->intervals.emplace_back();
            ent = &trace_->intervals.back();
            ent->interval = interval_idx_;
            ent->kind = kind;
            ent->observed_p99_ms =
                assess.latency_fresh ? repaired.P99() : -1.0;
            ent->violated = violated;
            ent->telemetry = assess.health;
            ent->silent_intervals = silent;
            ent->trust_reduced = trust_reduced_;
            ent->mispredictions = mispredictions_;
            ent->healthy_streak = healthy_streak_;
            ent->consecutive_violations = consecutive_violations_;
            ent->confidence = assess.confidence;
            ent->tier_confidence = assess.tier_confidence;
            ent->uncertainty_margin_ms = umargin;
        }
        ++interval_idx_;
        count("sinan.scheduler.decisions");
        count("sinan.scheduler.uncertain");
        if (metrics_) {
            metrics_->Inc(std::string("sinan.scheduler.telemetry.") +
                          ToString(assess.health));
            metrics_->Set("sinan.scheduler.silent_intervals", silent);
            metrics_->Set("sinan.scheduler.healthy_streak",
                          healthy_streak_);
            metrics_->Set("sinan.scheduler.confidence",
                          assess.confidence);
            if (assess.latency_fresh) {
                metrics_->Observe("sinan.scheduler.observed_p99_ms",
                                  repaired.P99(), LatencyBounds());
            }
        }
        return ent;
    };

    // Safety first: a genuinely observed violation gets the fresh
    // path's blanket upscale. It never escalates here — escalation
    // counts consecutive violations, and that counter only advances on
    // the fresh path where the full observation backs it.
    if (violated) {
        std::vector<double> a = alloc;
        for (int i = 0; i < n; ++i) {
            const bool hot = repaired.tiers[i].Utilization() > 0.7;
            const double factor = hot ? 1.5 : 1.0 + cfg_.up_all_ratio;
            a[i] = std::min(app.tiers[i].max_cpu, a[i] * factor + 0.2);
        }
        recent_victims_.clear();
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        commit(DecisionKind::kFallback);
        count("sinan.scheduler.fallbacks");
        return a;
    }

    // Model path on the repaired observation. The evaluation window is
    // the fresh-only history plus the repaired frame — except when the
    // frame is stale, in which case it already *is* the newest
    // committed picture and pushing it again would double-count it.
    MetricWindow eval_window = window_;
    if (assess.health != TelemetryHealth::kStale)
        eval_window.Push(repaired);

    const std::vector<Candidate> cands =
        BuildCandidates(repaired, alloc, app);
    eval_allocs_.resize(cands.size());
    for (size_t i = 0; i < cands.size(); ++i)
        eval_allocs_[i] = cands[i].alloc;
    const std::vector<Prediction> preds =
        model_->Evaluate(eval_window, eval_allocs_);
    SINAN_CHECK_EQ(preds.size(), cands.size());
    for (const Prediction& p : preds) {
        SINAN_CHECK_FINITE(p.P99());
        SINAN_CHECK_BOUNDS(p.p_violation, 0.0, 1.0);
    }

    // The fresh path's margin, widened by the uncertainty margin: the
    // less the frame is trusted, the more headroom a candidate must
    // predict before it is acceptable.
    const double margin =
        std::min(model_->ValRmseSubQosMs(), cfg_.margin_cap_frac * qos) *
            (trust_reduced_ ? 2.0 : 1.0) +
        umargin;

    const bool may_reclaim = healthy >= cfg_.reclaim_after_healthy;

    // Aggressiveness proportional to confidence: the CPU reclaim on
    // offer this interval is capped at confidence times the largest
    // step-down among the candidates, so a half-trusted fleet reclaims
    // in small steps instead of either fully or not at all.
    const double cur_total =
        std::accumulate(alloc.begin(), alloc.end(), 0.0);
    double max_down = 0.0;
    for (const Candidate& c : cands) {
        if (c.IsDown())
            max_down = std::max(max_down, cur_total - c.total_cpu);
    }
    const double down_budget = assess.confidence * max_down;

    int best = -1;
    std::vector<CandidateOutcome> outcomes(
        cands.size(), CandidateOutcome::kNotCheapest);
    for (size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].IsDown()) {
            if (!may_reclaim) {
                outcomes[i] = CandidateOutcome::kRejectedHysteresis;
                continue;
            }
            if (cur_total - cands[i].total_cpu > down_budget + 1e-9) {
                outcomes[i] =
                    CandidateOutcome::kRejectedUncertaintyStep;
                continue;
            }
            bool saturates = false;
            for (int j = 0; j < n && !saturates; ++j) {
                saturates = repaired.tiers[j].cpu_used >
                            cfg_.post_down_util_cap * cands[i].alloc[j];
            }
            if (saturates) {
                outcomes[i] =
                    CandidateOutcome::kRejectedPostDownSaturation;
                continue;
            }
        }
        const bool latency_ok = preds[i].P99() <= qos - margin;
        const double pv = preds[i].p_violation + pv_widen;
        const bool prob_ok =
            cands[i].IsDown() ? pv < cfg_.p_down : pv < cfg_.p_up;
        if (!latency_ok) {
            outcomes[i] = CandidateOutcome::kRejectedLatencyMargin;
            continue;
        }
        if (!prob_ok) {
            outcomes[i] = CandidateOutcome::kRejectedViolationProb;
            continue;
        }
        if (best < 0 || cands[i].total_cpu < cands[best].total_cpu)
            best = static_cast<int>(i);
    }
    if (best >= 0)
        outcomes[best] = CandidateOutcome::kChosen;

    // ---- commit (model path) ----------------------------------------
    DecisionTraceEntry* ent = commit(
        best >= 0 ? DecisionKind::kUncertainModel
                  : DecisionKind::kNoFeasibleUpscale);

    if (metrics_) {
        metrics_->Inc("sinan.scheduler.candidates", cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
            metrics_->Inc(std::string("sinan.scheduler.outcome.") +
                          ToString(outcomes[i]));
            metrics_->Observe("sinan.scheduler.pred_p99_ms",
                              preds[i].P99(), LatencyBounds());
            metrics_->Observe("sinan.scheduler.pred_p_violation",
                              preds[i].p_violation, ProbabilityBounds());
        }
        if (best >= 0) {
            metrics_->Inc(std::string("sinan.scheduler.chosen.") +
                          ToString(cands[best].kind));
        }
    }
    if (ent) {
        ent->margin_ms = margin;
        ent->may_reclaim = may_reclaim;
        ent->chosen = best;
        ent->candidates.reserve(cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
            CandidateTrace ct;
            ct.kind = cands[i].kind;
            ct.total_cpu = cands[i].total_cpu;
            ct.latency_ms = preds[i].latency_ms;
            ct.p_violation = preds[i].p_violation;
            ct.outcome = outcomes[i];
            ent->candidates.push_back(std::move(ct));
        }
    }

    std::vector<double> chosen;
    if (best >= 0) {
        chosen = cands[best].alloc;
        last_pred_p99_ = preds[best].P99();
        last_pred_pv_ = preds[best].p_violation;
        count("sinan.scheduler.uncertain_model");
    } else {
        chosen.resize(n);
        for (int i = 0; i < n; ++i) {
            chosen[i] = std::min(app.tiers[i].max_cpu,
                                 alloc[i] * (1.0 + cfg_.up_all_ratio) +
                                     0.2);
        }
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        count("sinan.scheduler.no_feasible");
    }

#ifndef SINAN_DISABLE_DCHECKS
    for (int i = 0; i < n; ++i) {
        SINAN_DCHECK_BOUNDS(chosen[i], app.tiers[i].min_cpu - 1e-9,
                            app.tiers[i].max_cpu + 1e-9);
    }
#endif

    // Record this interval's victims for Scale Up Victim.
    std::vector<int> victims;
    for (int i = 0; i < n; ++i) {
        if (chosen[i] < alloc[i] - 1e-9)
            victims.push_back(i);
    }
    recent_victims_.push_back(std::move(victims));
    while (static_cast<int>(recent_victims_.size()) > cfg_.victim_window)
        recent_victims_.pop_front();

    return chosen;
}

} // namespace sinan
