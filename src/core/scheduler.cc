#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sinan {

SinanScheduler::SinanScheduler(HybridModel& model,
                               const SchedulerConfig& cfg)
    : model_(model), cfg_(cfg), window_(model.Features())
{
}

void
SinanScheduler::Reset()
{
    window_.Clear();
    recent_victims_.clear();
    last_pred_p99_ = -1.0;
    last_pred_pv_ = -1.0;
    pending_pred_p99_ = -1.0;
    consecutive_violations_ = 0;
    mispredictions_ = 0;
    trust_reduced_ = false;
    healthy_streak_ = 0;
}

std::vector<SinanScheduler::Candidate>
SinanScheduler::BuildCandidates(const IntervalObservation& obs,
                                const std::vector<double>& alloc,
                                const Application& app) const
{
    const int n = static_cast<int>(alloc.size());
    std::vector<Candidate> cands;

    auto clamp_alloc = [&](std::vector<double> a) {
        for (int i = 0; i < n; ++i)
            a[i] = std::clamp(a[i], app.tiers[i].min_cpu,
                              app.tiers[i].max_cpu);
        return a;
    };
    auto add = [&](std::vector<double> a, bool down, bool hold) {
        Candidate c;
        c.alloc = clamp_alloc(std::move(a));
        c.is_down = down;
        c.is_hold = hold;
        c.total_cpu =
            std::accumulate(c.alloc.begin(), c.alloc.end(), 0.0);
        cands.push_back(std::move(c));
    };

    // Hold.
    add(alloc, false, true);

    // Scale Down: single tiers (skipping saturated ones).
    for (int i = 0; i < n; ++i) {
        if (obs.tiers[i].Utilization() > cfg_.util_cap)
            continue;
        for (double step : cfg_.cpu_steps) {
            if (alloc[i] - step < app.tiers[i].min_cpu - 1e-9)
                continue;
            std::vector<double> a = alloc;
            a[i] -= step;
            add(std::move(a), true, false);
        }
    }

    // Scale Down Batch: the k least-utilized tiers by 10%.
    {
        std::vector<int> order(n);
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](int x, int y) {
            return obs.tiers[x].Utilization() < obs.tiers[y].Utilization();
        });
        for (int k : {2, n / 4, n / 2, n}) {
            if (k < 2 || k > n)
                continue;
            std::vector<double> a = alloc;
            for (int j = 0; j < k; ++j) {
                const int tier = order[j];
                if (obs.tiers[tier].Utilization() > cfg_.util_cap)
                    continue;
                a[tier] *= 1.0 - cfg_.batch_down_ratio;
            }
            add(std::move(a), true, false);
        }
    }

    // Scale Up: single tiers.
    for (int i = 0; i < n; ++i) {
        for (double step : cfg_.cpu_steps) {
            std::vector<double> a = alloc;
            a[i] += step;
            add(std::move(a), false, false);
        }
    }

    // Scale Up All.
    {
        std::vector<double> a = alloc;
        for (int i = 0; i < n; ++i)
            a[i] = a[i] * (1.0 + cfg_.up_all_ratio) + 0.2;
        add(std::move(a), false, false);
    }

    // Scale Up Victims: tiers scaled down within the look-back window.
    if (!recent_victims_.empty()) {
        std::vector<bool> victim(n, false);
        bool any = false;
        for (const auto& tiers : recent_victims_) {
            for (int t : tiers) {
                victim[t] = true;
                any = true;
            }
        }
        if (any) {
            std::vector<double> a = alloc;
            for (int i = 0; i < n; ++i) {
                if (victim[i])
                    a[i] += cfg_.cpu_steps.back();
            }
            add(std::move(a), false, false);
        }
    }
    return cands;
}

std::vector<double>
SinanScheduler::Decide(const IntervalObservation& obs,
                       const std::vector<double>& alloc,
                       const Application& app)
{
    const double qos = model_.Features().qos_ms;
    const int n = static_cast<int>(alloc.size());
    window_.Push(obs);

    // Track prediction quality for the trust mechanism.
    const bool violated = obs.P99() > qos;
    if (pending_pred_p99_ >= 0.0) {
        const bool predicted_ok = pending_pred_p99_ <= qos;
        if (predicted_ok && violated)
            ++mispredictions_;
        if (mispredictions_ > cfg_.trust_threshold)
            trust_reduced_ = true;
    }
    consecutive_violations_ = violated ? consecutive_violations_ + 1 : 0;
    healthy_streak_ = obs.P99() <= cfg_.healthy_frac * qos
                          ? healthy_streak_ + 1
                          : 0;

    // Warm-up: no full history window yet. Falling back to conservative
    // utilization stepping keeps the cluster alive if the run starts
    // underprovisioned (holding a starved allocation for T intervals
    // builds a queue that takes far longer to drain).
    if (!window_.Ready()) {
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        pending_pred_p99_ = -1.0;
        std::vector<double> a = alloc;
        for (int i = 0; i < n; ++i) {
            const double util = obs.tiers[i].Utilization();
            if (util >= 0.5 || violated)
                a[i] *= 1.3;
            else if (util >= 0.3)
                a[i] *= 1.1;
            a[i] = std::clamp(a[i], app.tiers[i].min_cpu,
                              app.tiers[i].max_cpu);
        }
        return a;
    }

    // Safety: an observed violation triggers an immediate blanket
    // upscale; a persistent one escalates more aggressively. (The paper
    // describes scaling "to the max amount"; with the simulator's large
    // per-tier maxima a single escalation to max dominates the max-CPU
    // accounting, so we escalate multiplicatively instead — it reaches
    // the maxima within a few intervals if the violation persists.)
    if (violated) {
        std::vector<double> a = alloc;
        const bool escalate =
            consecutive_violations_ >= cfg_.max_fallback_after;
        // A violation the model failed to avert for this many intervals
        // also costs it trust: future decisions use the doubled latency
        // margin until Reset().
        if (escalate)
            trust_reduced_ = true;
        for (int i = 0; i < n; ++i) {
            // Saturated tiers get a stronger kick so the built-up queue
            // drains in as few intervals as possible.
            const bool hot = obs.tiers[i].Utilization() > 0.7;
            double factor = hot ? 1.5 : 1.0 + cfg_.up_all_ratio;
            double add = 0.2;
            if (escalate) {
                factor = 1.6;
                add = 0.4;
            }
            a[i] =
                std::min(app.tiers[i].max_cpu, a[i] * factor + add);
        }
        recent_victims_.clear();
        last_pred_p99_ = -1.0;
        last_pred_pv_ = -1.0;
        pending_pred_p99_ = -1.0;
        return a;
    }

    const std::vector<Candidate> cands =
        BuildCandidates(obs, alloc, app);
    std::vector<std::vector<double>> allocs;
    allocs.reserve(cands.size());
    for (const Candidate& c : cands)
        allocs.push_back(c.alloc);
    const std::vector<Prediction> preds =
        model_.Evaluate(window_, allocs);

    // Reduced trust makes the latency margin twice as conservative.
    const double margin =
        std::min(model_.ValRmseSubQosMs(), cfg_.margin_cap_frac * qos) *
        (trust_reduced_ ? 2.0 : 1.0);

    // Hysteresis: only reclaim after a streak of comfortable intervals.
    const bool may_reclaim =
        healthy_streak_ >= cfg_.reclaim_after_healthy;

    int best = -1;
    int hold_idx = -1;
    for (size_t i = 0; i < cands.size(); ++i) {
        if (cands[i].is_hold)
            hold_idx = static_cast<int>(i);
        if (cands[i].is_down) {
            if (!may_reclaim)
                continue;
            // Reject downs that would immediately saturate a tier.
            bool saturates = false;
            for (int j = 0; j < n && !saturates; ++j) {
                saturates = obs.tiers[j].cpu_used >
                            cfg_.post_down_util_cap *
                                cands[i].alloc[j];
            }
            if (saturates)
                continue;
        }
        const bool latency_ok = preds[i].P99() <= qos - margin;
        const double pv = preds[i].p_violation;
        const bool prob_ok =
            cands[i].is_down ? pv < cfg_.p_down : pv < cfg_.p_up;
        if (!latency_ok || !prob_ok)
            continue;
        if (best < 0 || cands[i].total_cpu < cands[best].total_cpu)
            best = static_cast<int>(i);
    }

    std::vector<double> chosen;
    if (best >= 0) {
        chosen = cands[best].alloc;
        last_pred_p99_ = preds[best].P99();
        last_pred_pv_ = preds[best].p_violation;
        pending_pred_p99_ = last_pred_p99_;
    } else {
        // No acceptable action: scale everything up.
        chosen.resize(n);
        for (int i = 0; i < n; ++i) {
            chosen[i] = std::min(app.tiers[i].max_cpu,
                                 alloc[i] * (1.0 + cfg_.up_all_ratio) +
                                     0.2);
        }
        if (hold_idx >= 0) {
            last_pred_p99_ = preds[hold_idx].P99();
            last_pred_pv_ = preds[hold_idx].p_violation;
        }
        pending_pred_p99_ = -1.0;
    }

    // Record this interval's victims for Scale Up Victim.
    std::vector<int> victims;
    for (int i = 0; i < n; ++i) {
        if (chosen[i] < alloc[i] - 1e-9)
            victims.push_back(i);
    }
    recent_victims_.push_back(std::move(victims));
    while (static_cast<int>(recent_victims_.size()) > cfg_.victim_window)
        recent_victims_.pop_front();

    return chosen;
}

} // namespace sinan
