/**
 * @file
 * Runtime CPU-feature detection and the SIMD kernel dispatch switch.
 *
 * The tensor/NN microkernels come in two implementations with the SAME
 * arithmetic contract — per output element, terms accumulate in a
 * fixed ascending order, each as an individually rounded multiply then
 * add — so the vectorized kernels are bit-identical to the scalar
 * ones, not merely close. Which implementation runs is decided here:
 *
 *   compile-time gate   SINAN_HAVE_AVX2 is defined (by CMake's
 *                       SINAN_SIMD option) only when the toolchain can
 *                       build the AVX2 translation unit;
 *   runtime detection   the host CPU must actually report AVX2;
 *   override            SINAN_SIMD=off|on|auto (environment) or
 *                       SetSimdMode() (tests, the sinan_sim --simd
 *                       flag) forces a path so CI can exercise both.
 *
 * Every model evaluation can be stamped with ActiveKernelId() so traces
 * and bench dumps record which kernel produced the bytes. Kernels that
 * share an id suffix ("…-v1") share the accumulation-order contract and
 * therefore produce identical bytes; a future kernel that changes the
 * arithmetic (e.g. true FMA accumulation) must bump the version.
 */
#ifndef SINAN_COMMON_CPU_FEATURES_H
#define SINAN_COMMON_CPU_FEATURES_H

namespace sinan {

/** Host ISA features relevant to the microkernels (detected once). */
struct CpuFeatures {
    bool avx2 = false;
    /** Detected for diagnostics only: the v1 kernels deliberately do
     *  not use FMA, whose single rounding would diverge from the
     *  scalar mul-then-add path. */
    bool fma = false;
};

/** Cached runtime detection (CPUID on x86-64, all-false elsewhere). */
const CpuFeatures& GetCpuFeatures();

/** Dispatch override. kAuto uses AVX2 when compiled in and detected;
 *  kOff forces the scalar path; kOn prefers AVX2 but still falls back
 *  to scalar (with the honest kernel id) when unavailable. */
enum class SimdMode { kAuto, kOff, kOn };

/** Current mode: the last SetSimdMode() value, initially parsed from
 *  the SINAN_SIMD environment variable (off|0, on|1, auto). */
SimdMode CurrentSimdMode();

/** Overrides the dispatch mode at runtime. Safe to call between
 *  evaluations; must not race a running kernel. */
void SetSimdMode(SimdMode mode);

/** Re-reads SINAN_SIMD from the environment (tests that setenv after
 *  process start use this to re-arm the dispatch decision). */
void ReloadSimdModeFromEnv();

/** Parses "off"/"0", "on"/"1", "auto" (returns false on anything
 *  else, leaving @p out untouched). */
bool ParseSimdMode(const char* text, SimdMode* out);

/** True when the AVX2 kernels were compiled into this binary. */
bool SimdCompiledIn();

/** The resolved dispatch decision: true iff the next kernel call
 *  takes the AVX2 path. */
bool SimdActive();

/** Stable id of the kernel implementation the dispatcher would select
 *  right now: "avx2-v1" or "scalar-v1". The shared "-v1" suffix
 *  asserts bit-identical output across the two. */
const char* ActiveKernelId();

/** Stable id of the int8 GEMM kernel the dispatcher would select for
 *  quantized (--quant=int8) evaluations: "int8-avx2-v1" or
 *  "int8-scalar-v1". The same SimdActive() switch drives both
 *  families, and the shared "-v1" suffix again asserts bit-identical
 *  output (trivially so for int8: exact integer accumulation). Int8
 *  ids are NOT bit-compatible with the fp32 ids — quantized results
 *  are a separately validated approximation (see nn/quant.h). */
const char* ActiveInt8KernelId();

} // namespace sinan

#endif // SINAN_COMMON_CPU_FEATURES_H
