/**
 * @file
 * Lightweight metrics registry: named counters, gauges, and fixed-bucket
 * histograms backing the scheduler's decision telemetry and the harness
 * reports. The registry spawns no threads and takes no locks; like a
 * ResourceManager, each concurrent run owns a private instance (the
 * sweep jobs attach one registry per run), which keeps the output
 * bit-identical regardless of the thread-pool size. Iteration order is
 * the lexicographic metric name, so serialized output is deterministic.
 */
#ifndef SINAN_COMMON_METRICS_H
#define SINAN_COMMON_METRICS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sinan {

/**
 * Fixed-bucket histogram: counts of observations falling at or below
 * each upper bound, plus an overflow bucket and running sum/min/max.
 * Bucket bounds are fixed at definition time; observations never
 * allocate.
 */
class FixedHistogram {
  public:
    FixedHistogram() = default;

    /** @param bounds ascending bucket upper bounds (inclusive). */
    explicit FixedHistogram(std::vector<double> bounds);

    void Observe(double v);

    /** Bucket upper bounds (the overflow bucket is implicit). */
    const std::vector<double>& Bounds() const { return bounds_; }

    /** Per-bucket counts; size is Bounds().size() + 1 (last = overflow). */
    const std::vector<uint64_t>& Counts() const { return counts_; }

    uint64_t Count() const { return count_; }
    double Sum() const { return sum_; }
    double
    Mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double Min() const { return count_ ? min_ : 0.0; }
    double Max() const { return count_ ? max_ : 0.0; }

    void Reset();

  private:
    std::vector<double> bounds_;
    std::vector<uint64_t> counts_ = {0};
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A registry of named metrics. Unknown names are created on first use;
 * reads of undefined metrics return zero rather than throwing, so
 * report code never has to guard against a counter that was never hit.
 */
class MetricsRegistry {
  public:
    /** Increments counter @p name by @p by (creating it at 0). */
    void Inc(const std::string& name, uint64_t by = 1);

    /** Sets gauge @p name to @p value. */
    void Set(const std::string& name, double value);

    /**
     * Records @p value into histogram @p name, creating it with
     * @p bounds on first use (later bounds are ignored; empty bounds
     * create a summary-only histogram that tracks count/sum/min/max).
     */
    void Observe(const std::string& name, double value,
                 const std::vector<double>& bounds = {});

    /** Counter value (0 when the counter was never incremented). */
    uint64_t Counter(const std::string& name) const;

    /** Gauge value (0 when the gauge was never set). */
    double Gauge(const std::string& name) const;

    /** Histogram by name, or nullptr when never observed. */
    const FixedHistogram* Histogram(const std::string& name) const;

    const std::map<std::string, uint64_t>& Counters() const
    {
        return counters_;
    }
    const std::map<std::string, double>& Gauges() const { return gauges_; }
    const std::map<std::string, FixedHistogram>& Histograms() const
    {
        return histograms_;
    }

    /**
     * Serializes every metric as `kind,name,field,value` CSV rows
     * (counters and gauges emit one row; histograms emit count/sum/
     * min/max/mean plus one row per bucket). Rows are ordered by kind
     * then name, so equal registries render byte-identical CSV.
     */
    std::string ToCsv() const;

    /** Serializes the registry as a JSON object (same ordering). */
    std::string ToJson() const;

    /** Drops every metric. */
    void Clear();

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, FixedHistogram> histograms_;
};

} // namespace sinan

#endif // SINAN_COMMON_METRICS_H
