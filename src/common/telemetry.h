/**
 * @file
 * Per-interval telemetry types shared by the cluster substrate that
 * produces them and the models/managers that consume them.
 *
 * This mirrors what the paper's per-node agents read from Docker's cgroup
 * interface every decision interval: CPU usage, memory usage (resident
 * set size and cache memory), network packet counts, plus the end-to-end
 * latency percentiles from the API gateway. Queue statistics are also
 * exported because the PowerChief baseline needs them.
 *
 * These are pure data carriers with no cluster dependencies, which is
 * why they live in common/: models (layer 3) consumes them and cluster
 * (layer 4) produces them, so hosting them in cluster/ would force an
 * upward include (see tools/analyze/layers.txt).
 */
#ifndef SINAN_COMMON_TELEMETRY_H
#define SINAN_COMMON_TELEMETRY_H

#include <cmath>
#include <cstddef>
#include <vector>

namespace sinan {

/** One tier's metrics over one decision interval. */
struct TierMetrics {
    /** CPU limit (cores) in force during the interval. */
    double cpu_limit = 0.0;
    /** Average cores actually consumed. */
    double cpu_used = 0.0;
    /** Resident set size, MB (end of interval). */
    double rss_mb = 0.0;
    /** Page/dataset cache memory, MB (end of interval). */
    double cache_mb = 0.0;
    /** Received / transmitted packets per second. */
    double rx_pps = 0.0;
    double tx_pps = 0.0;
    /** Average admission-queue length (requests waiting for a slot). */
    double queue_len = 0.0;
    /** Average occupied concurrency slots. */
    double active = 0.0;
    /** Mean time spent waiting in the admission queue, seconds. */
    double queue_wait_s = 0.0;

    /** Utilization of the allocated CPU (used / limit). */
    double
    Utilization() const
    {
        return cpu_limit > 0.0 ? cpu_used / cpu_limit : 0.0;
    }
};

/** Cluster-wide snapshot delivered to resource managers every interval. */
struct IntervalObservation {
    /** Simulated time at the end of the interval. */
    double time_s = 0.0;
    /** Requests injected per second during the interval (gateway stats). */
    double rps = 0.0;
    /** Requests completed per second during the interval. */
    double completed_rps = 0.0;
    /** Per-tier telemetry, indexed like Application::tiers. */
    std::vector<TierMetrics> tiers;
    /** End-to-end tail latencies in ms: p95, p96, p97, p98, p99. */
    std::vector<double> latency_ms;

    /** The p99 end-to-end latency (the QoS metric), ms. */
    double
    P99() const
    {
        return latency_ms.empty() ? 0.0 : latency_ms.back();
    }

    /** Aggregate CPU cores allocated across tiers. */
    double
    TotalCpuLimit() const
    {
        double s = 0.0;
        for (const auto& t : tiers)
            s += t.cpu_limit;
        return s;
    }
};

/** True when every numeric field of @p t is finite. Tier-targeted NaN
 *  faults poison individual tiers, so graded telemetry assessment
 *  (core/telemetry_guard.h) needs the per-tier check on its own. */
inline bool
TierMetricsFinite(const TierMetrics& t)
{
    return std::isfinite(t.cpu_limit) && std::isfinite(t.cpu_used) &&
           std::isfinite(t.rss_mb) && std::isfinite(t.cache_mb) &&
           std::isfinite(t.rx_pps) && std::isfinite(t.tx_pps) &&
           std::isfinite(t.queue_len) && std::isfinite(t.active) &&
           std::isfinite(t.queue_wait_s);
}

/** True when every numeric field of @p obs is finite. Fault injection
 *  (sim/fault_injector.h) can deliver NaN-poisoned observations; this
 *  is the check managers run before trusting one. */
inline bool
ObservationFinite(const IntervalObservation& obs)
{
    if (!std::isfinite(obs.time_s) || !std::isfinite(obs.rps) ||
        !std::isfinite(obs.completed_rps))
        return false;
    for (double v : obs.latency_ms) {
        if (!std::isfinite(v))
            return false;
    }
    for (const TierMetrics& t : obs.tiers) {
        if (!TierMetricsFinite(t))
            return false;
    }
    return true;
}

/** True when @p obs carries a complete, finite payload for an
 *  application with @p n_tiers tiers — the precondition for feeding it
 *  to a model or a scaling rule. */
inline bool
TelemetryUsable(const IntervalObservation& obs, size_t n_tiers)
{
    return obs.tiers.size() == n_tiers && !obs.latency_ms.empty() &&
           ObservationFinite(obs);
}

/** Latency percentiles reported per interval (p95..p99). */
inline const std::vector<double>&
LatencyQuantiles()
{
    static const std::vector<double> qs = {0.95, 0.96, 0.97, 0.98, 0.99};
    return qs;
}

} // namespace sinan

#endif // SINAN_COMMON_TELEMETRY_H
