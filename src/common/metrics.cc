#include "common/metrics.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace sinan {

FixedHistogram::FixedHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    if (!std::is_sorted(bounds_.begin(), bounds_.end()))
        throw std::invalid_argument(
            "FixedHistogram: bounds must be ascending");
}

void
FixedHistogram::Observe(double v)
{
    size_t b = 0;
    while (b < bounds_.size() && v > bounds_[b])
        ++b;
    ++counts_[b];
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
FixedHistogram::Reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
MetricsRegistry::Inc(const std::string& name, uint64_t by)
{
    counters_[name] += by;
}

void
MetricsRegistry::Set(const std::string& name, double value)
{
    gauges_[name] = value;
}

void
MetricsRegistry::Observe(const std::string& name, double value,
                         const std::vector<double>& bounds)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, FixedHistogram(bounds)).first;
    it->second.Observe(value);
}

uint64_t
MetricsRegistry::Counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

double
MetricsRegistry::Gauge(const std::string& name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

const FixedHistogram*
MetricsRegistry::Histogram(const std::string& name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

namespace {

/** Shortest round-trip-safe formatting keeps the CSV/JSON stable. */
std::string
FormatValue(double v)
{
    std::ostringstream out;
    out.precision(17);
    out << v;
    return out.str();
}

} // namespace

std::string
MetricsRegistry::ToCsv() const
{
    std::ostringstream out;
    out << "kind,name,field,value\n";
    for (const auto& [name, v] : counters_)
        out << "counter," << name << ",value," << v << '\n';
    for (const auto& [name, v] : gauges_)
        out << "gauge," << name << ",value," << FormatValue(v) << '\n';
    for (const auto& [name, h] : histograms_) {
        out << "histogram," << name << ",count," << h.Count() << '\n';
        out << "histogram," << name << ",sum," << FormatValue(h.Sum())
            << '\n';
        out << "histogram," << name << ",min," << FormatValue(h.Min())
            << '\n';
        out << "histogram," << name << ",max," << FormatValue(h.Max())
            << '\n';
        for (size_t b = 0; b < h.Counts().size(); ++b) {
            out << "histogram," << name << ",le_";
            if (b < h.Bounds().size())
                out << FormatValue(h.Bounds()[b]);
            else
                out << "inf";
            out << ',' << h.Counts()[b] << '\n';
        }
    }
    return out.str();
}

std::string
MetricsRegistry::ToJson() const
{
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : counters_) {
        out << (first ? "" : ",") << "\n    \"" << name << "\": " << v;
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, v] : gauges_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": " << FormatValue(v);
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
        out << (first ? "" : ",") << "\n    \"" << name
            << "\": {\"count\": " << h.Count()
            << ", \"sum\": " << FormatValue(h.Sum())
            << ", \"min\": " << FormatValue(h.Min())
            << ", \"max\": " << FormatValue(h.Max()) << ", \"bounds\": [";
        for (size_t b = 0; b < h.Bounds().size(); ++b)
            out << (b ? ", " : "") << FormatValue(h.Bounds()[b]);
        out << "], \"counts\": [";
        for (size_t b = 0; b < h.Counts().size(); ++b)
            out << (b ? ", " : "") << h.Counts()[b];
        out << "]}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

void
MetricsRegistry::Clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

} // namespace sinan
