/**
 * @file
 * Contract-checking macros used across the tree.
 *
 * Every invariant the compiler cannot see — tensor shapes flowing
 * through the CNN/GBT hybrid, allocation vectors staying within
 * per-tier bounds, digests sealed before percentile queries — is
 * asserted with one of these macros instead of a bare `assert(...)` or
 * an ad-hoc `throw`. A failed check produces a formatted fatal
 * diagnostic carrying the macro name, the failed expression, the
 * operand values, and the file:line of the contract:
 *
 *     SINAN_CHECK_EQ failed: a.Dim(1) == b.Dim(0) (7 vs 9)
 *         at src/tensor/tensor.cc:201
 *
 * Failure semantics: the diagnostic is raised as a
 * `sinan::ContractViolation`, which derives from
 * `std::invalid_argument`. Production code never catches it, so a
 * violated contract terminates the process with the diagnostic on
 * stderr (via the verbose terminate handler) — this is what the
 * contract death tests in `tests/contracts_test.cc` pin down. Setting
 * the `SINAN_CHECK_ABORT` environment variable makes a failed check
 * print the diagnostic and `abort()` directly instead of unwinding,
 * for debugging with a core dump or running under a signal-based
 * harness.
 *
 * `SINAN_DCHECK*` mirrors `SINAN_CHECK*` but can be compiled out with
 * `-DSINAN_DISABLE_DCHECKS` for profiling builds. Unlike `assert`,
 * DCHECKs are ON in `NDEBUG`/Release builds — ctest runs Release, so a
 * contract that vanished under `NDEBUG` would never be exercised (this
 * is why the analyzer bans raw `assert(`; see tools/analyze/).
 */
#ifndef SINAN_COMMON_CHECK_H
#define SINAN_COMMON_CHECK_H

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace sinan {

/**
 * Raised by a failed SINAN_CHECK. Derives from std::invalid_argument
 * so pre-contract call sites (and tests) that classified bad inputs as
 * invalid_argument keep working; uncaught it terminates the process
 * with the formatted diagnostic.
 */
class ContractViolation : public std::invalid_argument {
  public:
    explicit ContractViolation(const std::string& what_arg)
        : std::invalid_argument(what_arg)
    {
    }
};

namespace check_detail {

/** Formats the diagnostic and raises it (or aborts, see file docs). */
[[noreturn]] void Fail(const char* macro, const char* expr,
                       const char* file, int line,
                       const std::string& detail);

/** Renders a shape vector as "[2, 3, 5]". */
std::string FormatShape(const std::vector<int>& shape);

/** Stringifies one operand for the "(a vs b)" diagnostic detail. */
template <typename T>
std::string
Repr(const T& v)
{
    std::ostringstream o;
    o << v;
    return o.str();
}

} // namespace check_detail
} // namespace sinan

/** Fatal unless @p cond holds. */
#define SINAN_CHECK(cond)                                                  \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::sinan::check_detail::Fail("SINAN_CHECK", #cond, __FILE__,    \
                                        __LINE__, std::string());          \
        }                                                                  \
    } while (0)

/** SINAN_CHECK with a streamed detail message (built only on failure). */
#define SINAN_CHECK_MSG(cond, msg)                                         \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream sinan_check_os_;                            \
            sinan_check_os_ << msg;                                        \
            ::sinan::check_detail::Fail("SINAN_CHECK", #cond, __FILE__,    \
                                        __LINE__, sinan_check_os_.str()); \
        }                                                                  \
    } while (0)

#define SINAN_CHECK_OP_(macro, op, a, b)                                   \
    do {                                                                   \
        const auto& sinan_ca_ = (a);                                       \
        const auto& sinan_cb_ = (b);                                       \
        if (!(sinan_ca_ op sinan_cb_)) {                                   \
            ::sinan::check_detail::Fail(                                   \
                macro, #a " " #op " " #b, __FILE__, __LINE__,              \
                "(" + ::sinan::check_detail::Repr(sinan_ca_) + " vs " +    \
                    ::sinan::check_detail::Repr(sinan_cb_) + ")");         \
        }                                                                  \
    } while (0)

/** Binary comparisons that print both operand values on failure. */
#define SINAN_CHECK_EQ(a, b) SINAN_CHECK_OP_("SINAN_CHECK_EQ", ==, a, b)
#define SINAN_CHECK_NE(a, b) SINAN_CHECK_OP_("SINAN_CHECK_NE", !=, a, b)
#define SINAN_CHECK_LT(a, b) SINAN_CHECK_OP_("SINAN_CHECK_LT", <, a, b)
#define SINAN_CHECK_LE(a, b) SINAN_CHECK_OP_("SINAN_CHECK_LE", <=, a, b)
#define SINAN_CHECK_GT(a, b) SINAN_CHECK_OP_("SINAN_CHECK_GT", >, a, b)
#define SINAN_CHECK_GE(a, b) SINAN_CHECK_OP_("SINAN_CHECK_GE", >=, a, b)

/** Fatal unless lo <= v <= hi; prints the value and both bounds. */
#define SINAN_CHECK_BOUNDS(v, lo, hi)                                      \
    do {                                                                   \
        const auto& sinan_cv_ = (v);                                       \
        const auto& sinan_clo_ = (lo);                                     \
        const auto& sinan_chi_ = (hi);                                     \
        if (!(sinan_clo_ <= sinan_cv_ && sinan_cv_ <= sinan_chi_)) {       \
            ::sinan::check_detail::Fail(                                   \
                "SINAN_CHECK_BOUNDS", #v " in [" #lo ", " #hi "]",         \
                __FILE__, __LINE__,                                        \
                "(" + ::sinan::check_detail::Repr(sinan_cv_) +             \
                    " outside [" +                                         \
                    ::sinan::check_detail::Repr(sinan_clo_) + ", " +       \
                    ::sinan::check_detail::Repr(sinan_chi_) + "])");       \
        }                                                                  \
    } while (0)

/** Fatal when @p v is NaN or infinite (value printed). */
#define SINAN_CHECK_FINITE(v)                                              \
    do {                                                                   \
        const double sinan_cf_ = static_cast<double>(v);                   \
        if (!std::isfinite(sinan_cf_)) {                                   \
            ::sinan::check_detail::Fail(                                   \
                "SINAN_CHECK_FINITE", #v, __FILE__, __LINE__,              \
                "(value " + ::sinan::check_detail::Repr(sinan_cf_) +       \
                    ")");                                                  \
        }                                                                  \
    } while (0)

/**
 * Fatal unless the tensor-like expression (anything with a Shape()
 * returning a vector<int>-comparable) has exactly the listed dims,
 * e.g. SINAN_CHECK_SHAPE(dy, batch, out_features).
 */
#define SINAN_CHECK_SHAPE(t, ...)                                          \
    do {                                                                   \
        const std::vector<int> sinan_cw_{__VA_ARGS__};                     \
        if (!((t).Shape() == sinan_cw_)) {                                 \
            ::sinan::check_detail::Fail(                                   \
                "SINAN_CHECK_SHAPE", #t " is {" #__VA_ARGS__ "}",          \
                __FILE__, __LINE__,                                        \
                "(shape " +                                                \
                    ::sinan::check_detail::FormatShape((t).Shape()) +      \
                    " vs expected " +                                      \
                    ::sinan::check_detail::FormatShape(sinan_cw_) + ")");  \
        }                                                                  \
    } while (0)

#ifdef SINAN_DISABLE_DCHECKS
#define SINAN_DCHECK(cond) ((void)sizeof(!(cond)))
#define SINAN_DCHECK_EQ(a, b) ((void)sizeof((a) == (b)))
#define SINAN_DCHECK_BOUNDS(v, lo, hi) ((void)sizeof((lo) <= (v)))
#define SINAN_DCHECK_FINITE(v) ((void)sizeof((v)))
#else
/** Like SINAN_CHECK*, but removable with -DSINAN_DISABLE_DCHECKS. */
#define SINAN_DCHECK(cond) SINAN_CHECK(cond)
#define SINAN_DCHECK_EQ(a, b) SINAN_CHECK_EQ(a, b)
#define SINAN_DCHECK_BOUNDS(v, lo, hi) SINAN_CHECK_BOUNDS(v, lo, hi)
#define SINAN_DCHECK_FINITE(v) SINAN_CHECK_FINITE(v)
#endif

#endif // SINAN_COMMON_CHECK_H
