/**
 * @file
 * Shared fixed-size thread pool backing every parallel hot path in the
 * repository (tensor kernels, GBT training, per-candidate scoring in the
 * hybrid model, and the benchmark sweeps).
 *
 * Design constraints, in order:
 *   1. Determinism. ParallelFor partitions [begin, end) into fixed-size
 *      blocks of `grain` indices — the block structure depends only on
 *      (begin, end, grain), never on the thread count or scheduling — so
 *      callers that keep per-block partial results and reduce them in
 *      block order produce bit-identical output with 1 or N threads.
 *   2. Safety. Nested ParallelFor calls (from inside a worker, or from a
 *      caller already inside a parallel region) execute serially inline,
 *      so parallel code can call parallel code without deadlock or
 *      unbounded oversubscription. Exceptions thrown by a block are
 *      captured and rethrown on the calling thread.
 *   3. Simplicity. No work stealing: a single mutex-protected task queue
 *      plus an atomic block cursor per ParallelFor. The hot paths hand
 *      the pool coarse blocks, so queue contention is negligible.
 *
 * The global pool size defaults to std::thread::hardware_concurrency(),
 * can be pinned with the SINAN_THREADS environment variable, and can be
 * changed at runtime with SetNumThreads() (e.g. the sinan_sim --threads
 * flag and the thread-sweep benchmarks).
 */
#ifndef SINAN_COMMON_THREAD_POOL_H
#define SINAN_COMMON_THREAD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sinan {

/** Fixed-size pool; the creating thread counts toward NumThreads(). */
class ThreadPool {
  public:
    /** @param n_threads total parallelism including the calling thread
     *  (clamped to >= 1; n_threads - 1 workers are spawned). */
    explicit ThreadPool(int n_threads);

    /** Drains nothing: joins workers after the queue empties. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total parallelism (workers + the submitting thread). */
    int NumThreads() const { return n_threads_; }

    /** Enqueues a task. Tasks must not block on other pool tasks. */
    void Submit(std::function<void()> task);

    /** True on a thread owned by any ThreadPool. */
    static bool OnWorkerThread();

  private:
    void WorkerMain();

    const int n_threads_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stop_ = false;
    std::vector<std::thread> workers_;
};

/** The process-wide pool used by ParallelFor (created on first use). */
ThreadPool& GlobalPool();

/**
 * Resizes the global pool. @p n <= 0 restores the default
 * (SINAN_THREADS env var if set, else hardware_concurrency).
 * Must not be called concurrently with a parallel region.
 */
void SetNumThreads(int n);

/** Current global-pool parallelism. */
int NumThreads();

/**
 * Runs fn(lo, hi) for every block [lo, hi) of at most @p grain
 * consecutive indices covering [begin, end). Block b spans
 * [begin + b*grain, min(begin + (b+1)*grain, end)), so callers can
 * recover a stable block id as (lo - begin) / grain.
 *
 * Blocks execute concurrently on the global pool (the caller
 * participates); each block runs exactly once. Nested calls and 1-thread
 * pools run the blocks serially, in increasing order. The first
 * exception thrown by a block cancels not-yet-started blocks and is
 * rethrown on the calling thread.
 */
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

} // namespace sinan

#endif // SINAN_COMMON_THREAD_POOL_H
