#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <stdexcept>

namespace sinan {

namespace {

/** > 0 while the current thread is inside a ParallelFor block or is a
 *  pool worker; nested parallel regions then run serially inline. */
thread_local int tl_parallel_depth = 0;

int
DefaultNumThreads()
{
    if (const char* env = std::getenv("SINAN_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

} // namespace

ThreadPool::ThreadPool(int n_threads) : n_threads_(std::max(1, n_threads))
{
    workers_.reserve(n_threads_ - 1);
    for (int i = 0; i < n_threads_ - 1; ++i)
        workers_.emplace_back([this] { WorkerMain(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::Submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // No workers: run inline so submitted work still completes.
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stop_)
            throw std::logic_error("ThreadPool::Submit after shutdown");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

bool
ThreadPool::OnWorkerThread()
{
    return tl_parallel_depth > 0;
}

void
ThreadPool::WorkerMain()
{
    // Workers count as "inside a parallel region" for their whole life:
    // any ParallelFor they encounter runs serially inline.
    ++tl_parallel_depth;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

ThreadPool&
GlobalPool()
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool)
        g_pool = std::make_unique<ThreadPool>(DefaultNumThreads());
    return *g_pool;
}

void
SetNumThreads(int n)
{
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_pool = std::make_unique<ThreadPool>(n > 0 ? n : DefaultNumThreads());
}

int
NumThreads()
{
    return GlobalPool().NumThreads();
}

namespace {

/** Shared state of one ParallelFor; kept alive by shared_ptr so pool
 *  tasks that start after the caller's own loop remain valid. */
struct PforState {
    std::function<void(int64_t, int64_t)> fn;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t grain = 1;
    int64_t n_blocks = 0;
    std::atomic<int64_t> next_block{0};
    std::atomic<bool> cancelled{false};

    std::mutex mu;
    std::condition_variable done_cv;
    int pending_helpers = 0;
    std::exception_ptr error;

    void
    RunBlocks()
    {
        ++tl_parallel_depth;
        for (;;) {
            const int64_t b = next_block.fetch_add(1);
            if (b >= n_blocks || cancelled.load())
                break;
            const int64_t lo = begin + b * grain;
            const int64_t hi = std::min(end, lo + grain);
            try {
                fn(lo, hi);
            } catch (...) {
                cancelled.store(true);
                std::lock_guard<std::mutex> lock(mu);
                if (!error)
                    error = std::current_exception();
            }
        }
        --tl_parallel_depth;
    }
};

} // namespace

void
ParallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)>& fn)
{
    if (end <= begin)
        return;
    if (grain < 1)
        grain = 1;
    const int64_t n_blocks = (end - begin + grain - 1) / grain;

    // Serial path: nested regions, single-thread pools, and single
    // blocks all execute inline — same block structure, same order.
    if (tl_parallel_depth > 0 || n_blocks <= 1 ||
        GlobalPool().NumThreads() <= 1) {
        ++tl_parallel_depth;
        try {
            for (int64_t b = 0; b < n_blocks; ++b) {
                const int64_t lo = begin + b * grain;
                fn(lo, std::min(end, lo + grain));
            }
        } catch (...) {
            --tl_parallel_depth;
            throw;
        }
        --tl_parallel_depth;
        return;
    }

    ThreadPool& pool = GlobalPool();
    auto state = std::make_shared<PforState>();
    state->fn = fn;
    state->begin = begin;
    state->end = end;
    state->grain = grain;
    state->n_blocks = n_blocks;

    const int helpers = static_cast<int>(std::min<int64_t>(
        pool.NumThreads() - 1, n_blocks - 1));
    state->pending_helpers = helpers;
    for (int i = 0; i < helpers; ++i) {
        pool.Submit([state] {
            state->RunBlocks();
            std::lock_guard<std::mutex> lock(state->mu);
            if (--state->pending_helpers == 0)
                state->done_cv.notify_all();
        });
    }

    state->RunBlocks();

    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock,
                        [&] { return state->pending_helpers == 0; });
    if (state->error)
        std::rethrow_exception(state->error);
}

} // namespace sinan
