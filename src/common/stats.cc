#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

void
PercentileDigest::Add(double v)
{
    samples_.push_back(v);
    sorted_ = false;
}

void
PercentileDigest::Seal()
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileDigest::SortedQuantile(const std::vector<double>& sorted,
                                 double p)
{
    if (p <= 0.0)
        return sorted.front();
    if (p >= 1.0)
        return sorted.back();
    const double pos = p * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= sorted.size())
        return sorted.back();
    return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double
PercentileDigest::Quantile(double p) const
{
    if (samples_.empty())
        return 0.0;
    SINAN_CHECK_MSG(sorted_,
                    "PercentileDigest: Seal() before querying an "
                    "interval's quantiles");
    return SortedQuantile(samples_, p);
}

std::vector<double>
PercentileDigest::Quantiles(const std::vector<double>& ps) const
{
    std::vector<double> out;
    out.reserve(ps.size());
    for (double p : ps)
        out.push_back(Quantile(p));
    return out;
}

double
PercentileDigest::Mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double v : samples_)
        s += v;
    return s / static_cast<double>(samples_.size());
}

double
PercentileDigest::Max() const
{
    if (samples_.empty())
        return 0.0;
    SINAN_CHECK_MSG(sorted_,
                    "PercentileDigest: Seal() before querying an "
                    "interval's maximum");
    return samples_.back();
}

void
PercentileDigest::Reset()
{
    samples_.clear();
    sorted_ = true;
}

void
RunningSummary::Add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
RunningSummary::Reset()
{
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    count_ = 0;
}

double
VectorQuantile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (p <= 0.0)
        return values.front();
    if (p >= 1.0)
        return values.back();
    const double pos = p * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

double
Rmse(const std::vector<double>& a, const std::vector<double>& b)
{
    SINAN_CHECK_EQ(a.size(), b.size());
    if (a.empty())
        return 0.0;
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

double
Mean(const std::vector<double>& values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace sinan
