/**
 * @file
 * Deterministic pseudo-random number generation for simulation and
 * model training.
 *
 * All stochastic components in this repository draw from Rng so that
 * every experiment is reproducible bit-for-bit from a single seed.
 * The generator is xoshiro256++ (Blackman & Vigna), which is fast,
 * has a 2^256-1 period, and passes BigCrush.
 */
#ifndef SINAN_COMMON_RNG_H
#define SINAN_COMMON_RNG_H

#include <cmath>
#include <cstdint>
#include <limits>

namespace sinan {

/** Deterministic xoshiro256++ generator with distribution helpers. */
class Rng {
  public:
    /** Seeds the state with splitmix64 expansion of @p seed. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            s = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit output. */
    uint64_t
    NextU64()
    {
        const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    Uniform()
    {
        return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    Uniform(double lo, double hi)
    {
        return lo + (hi - lo) * Uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t
    UniformInt(uint64_t n)
    {
        // Lemire's nearly-divisionless bounded generation.
        __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
        return static_cast<uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    UniformInt(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            UniformInt(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli trial with success probability @p p. */
    bool
    Bernoulli(double p)
    {
        return Uniform() < p;
    }

    /** Exponential variate with mean @p mean. */
    double
    Exponential(double mean)
    {
        double u = Uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = std::numeric_limits<double>::min();
        return -mean * std::log(u);
    }

    /** Standard normal via Box-Muller (one value per call, cached pair). */
    double
    Normal()
    {
        if (has_cached_) {
            has_cached_ = false;
            return cached_;
        }
        double u1 = Uniform();
        if (u1 <= 0.0)
            u1 = std::numeric_limits<double>::min();
        const double u2 = Uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586 * u2;
        cached_ = r * std::sin(theta);
        has_cached_ = true;
        return r * std::cos(theta);
    }

    /** Normal variate with the given mean and standard deviation. */
    double
    Normal(double mean, double stddev)
    {
        return mean + stddev * Normal();
    }

    /**
     * Log-normal variate parameterized directly by its own mean and the
     * coefficient of variation @p cv (stddev / mean). Used for service
     * demands, which are positive and right-skewed.
     */
    double
    LogNormal(double mean, double cv)
    {
        if (mean <= 0.0)
            return 0.0;
        const double sigma2 = std::log(1.0 + cv * cv);
        const double mu = std::log(mean) - 0.5 * sigma2;
        return std::exp(Normal(mu, std::sqrt(sigma2)));
    }

    /** Poisson count with mean @p lambda (inversion for small, PTRS-ish loop). */
    int
    Poisson(double lambda)
    {
        if (lambda <= 0.0)
            return 0;
        if (lambda < 30.0) {
            // Knuth inversion.
            const double l = std::exp(-lambda);
            int k = 0;
            double p = 1.0;
            do {
                ++k;
                p *= Uniform();
            } while (p > l);
            return k - 1;
        }
        // Normal approximation with continuity correction for large rates.
        const double v = Normal(lambda, std::sqrt(lambda));
        return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
    }

    /** Derives an independent child stream (for per-component RNGs). */
    Rng
    Fork()
    {
        return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL);
    }

  private:
    static uint64_t
    Rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
    double cached_ = 0.0;
    bool has_cached_ = false;
};

} // namespace sinan

#endif // SINAN_COMMON_RNG_H
