/**
 * @file
 * Console table / CSV emission used by the benchmark harness to print the
 * rows of the paper's tables and the series behind its figures.
 */
#ifndef SINAN_COMMON_TABLE_H
#define SINAN_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace sinan {

/**
 * A simple column-aligned text table. Cells are strings; numeric helpers
 * format with fixed precision. Render() pads every column to its widest
 * cell, which keeps bench output readable without a terminal library.
 */
class TextTable {
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Starts a new row; subsequent Add* calls fill it left to right. */
    TextTable& Row();

    /** Appends a string cell to the current row. */
    TextTable& Add(const std::string& cell);

    /** Appends a numeric cell with @p precision fractional digits. */
    TextTable& Add(double value, int precision = 2);

    /** Appends an integer cell. */
    TextTable& Add(long long value);

    /** Renders the table with aligned columns. */
    std::string Render() const;

    /** Renders as CSV (comma separated, header first). */
    std::string RenderCsv() const;

    /** Number of data rows. */
    size_t NumRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with fixed precision (helper for ad-hoc output). */
std::string FormatDouble(double value, int precision = 2);

/** Writes @p content to @p path, creating parent dirs; throws on failure. */
void WriteFile(const std::string& path, const std::string& content);

} // namespace sinan

#endif // SINAN_COMMON_TABLE_H
