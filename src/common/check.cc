#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace sinan {
namespace check_detail {

void
Fail(const char* macro, const char* expr, const char* file, int line,
     const std::string& detail)
{
    std::ostringstream o;
    o << macro << " failed: " << expr;
    if (!detail.empty())
        o << ' ' << detail;
    o << " at " << file << ':' << line;
    const std::string msg = o.str();
    if (std::getenv("SINAN_CHECK_ABORT") != nullptr) {
        std::fprintf(stderr, "%s\n", msg.c_str());
        std::fflush(stderr);
        std::abort();
    }
    throw ContractViolation(msg);
}

std::string
FormatShape(const std::vector<int>& shape)
{
    std::string out = "[";
    for (size_t i = 0; i < shape.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(shape[i]);
    }
    out += "]";
    return out;
}

} // namespace check_detail
} // namespace sinan
