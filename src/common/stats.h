/**
 * @file
 * Streaming statistics: percentile digests for per-interval tail-latency
 * reporting, running summaries, and small vector-math helpers used across
 * the simulator, the ML models, and the benchmark harness.
 */
#ifndef SINAN_COMMON_STATS_H
#define SINAN_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace sinan {

/**
 * Collects raw samples during one measurement interval and answers
 * percentile queries at interval roll-up. The sample buffer is cleared
 * by Reset() so the digest can be reused interval after interval without
 * reallocation.
 *
 * Contract: Seal() must be called after the interval's writes and
 * before any Quantile()/Quantiles()/Max() query on a non-empty digest —
 * querying an unsealed digest raises a ContractViolation (see
 * common/check.h). Sealing sorts the buffer in place exactly once, so
 * queries are pure reads.
 *
 * Thread safety: because queries never touch an unsealed buffer, any
 * number of threads may query one sealed digest concurrently (e.g.
 * sweep workers reading a shared reference). Add()/Seal()/Reset()
 * still require external serialization against each other and against
 * queries, like any single-writer container.
 */
class PercentileDigest {
  public:
    /** Adds one sample (invalidates the sealed state). */
    void Add(double v);

    /** Number of samples in the current interval. */
    size_t Count() const { return samples_.size(); }

    /**
     * Sorts the buffer in place so subsequent queries need no copy.
     * Idempotent; typically called once at interval roll-up.
     */
    void Seal();

    /**
     * Returns the p-quantile (p in [0,1]) via linear interpolation.
     * Returns 0 for an empty digest (an idle interval has no latency).
     * The digest must be sealed (contract violation otherwise).
     */
    double Quantile(double p) const;

    /** Returns several quantiles at once; cheaper than repeated calls. */
    std::vector<double> Quantiles(const std::vector<double>& ps) const;

    /** Arithmetic mean of the interval's samples (0 when empty). */
    double Mean() const;

    /** Largest sample (0 when empty); requires a sealed digest. */
    double Max() const;

    /** Clears the buffer for the next interval. */
    void Reset();

  private:
    /** Quantile over an already-sorted buffer. */
    static double SortedQuantile(const std::vector<double>& sorted,
                                 double p);

    std::vector<double> samples_;
    bool sorted_ = true;
};

/** Running mean / min / max / count over a stream of values. */
class RunningSummary {
  public:
    void Add(double v);

    size_t Count() const { return count_; }
    double
    Mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    double Min() const { return count_ ? min_ : 0.0; }
    double Max() const { return count_ ? max_ : 0.0; }
    double Sum() const { return sum_; }

    void Reset();

  private:
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    size_t count_ = 0;
};

/** Quantile of an arbitrary vector (copies and sorts; for offline use). */
double VectorQuantile(std::vector<double> values, double p);

/** Root-mean-squared error between two equally sized vectors. */
double Rmse(const std::vector<double>& a, const std::vector<double>& b);

/** Mean of a vector (0 when empty). */
double Mean(const std::vector<double>& values);

} // namespace sinan

#endif // SINAN_COMMON_STATS_H
