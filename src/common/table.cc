#include "common/table.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sinan {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

TextTable&
TextTable::Row()
{
    rows_.emplace_back();
    return *this;
}

TextTable&
TextTable::Add(const std::string& cell)
{
    if (rows_.empty())
        rows_.emplace_back();
    rows_.back().push_back(cell);
    return *this;
}

TextTable&
TextTable::Add(double value, int precision)
{
    return Add(FormatDouble(value, precision));
}

TextTable&
TextTable::Add(long long value)
{
    return Add(std::to_string(value));
}

std::string
TextTable::Render() const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : std::string();
            out << cell;
            if (c + 1 < widths.size())
                out << std::string(widths[c] - cell.size() + 2, ' ');
        }
        out << '\n';
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

std::string
TextTable::RenderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << row[c];
        }
        out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_)
        emit(row);
    return out.str();
}

std::string
FormatDouble(double value, int precision)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(precision);
    out << value;
    return out.str();
}

void
WriteFile(const std::string& path, const std::string& content)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path());
    std::ofstream out(p);
    if (!out)
        throw std::runtime_error("WriteFile: cannot open " + path);
    out << content;
}

} // namespace sinan
