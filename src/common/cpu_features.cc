#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sinan {

namespace {

CpuFeatures
Detect()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(_M_X64)
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
#endif
    return f;
}

SimdMode
ModeFromEnv()
{
    SimdMode m = SimdMode::kAuto;
    const char* env = std::getenv("SINAN_SIMD");
    if (env != nullptr)
        (void)ParseSimdMode(env, &m); // unknown values keep kAuto
    return m;
}

/** Relaxed is enough: callers flip the mode between evaluations, never
 *  concurrently with a running kernel. */
std::atomic<SimdMode> g_mode{ModeFromEnv()};

} // namespace

const CpuFeatures&
GetCpuFeatures()
{
    static const CpuFeatures f = Detect();
    return f;
}

SimdMode
CurrentSimdMode()
{
    return g_mode.load(std::memory_order_relaxed);
}

void
SetSimdMode(SimdMode mode)
{
    g_mode.store(mode, std::memory_order_relaxed);
}

void
ReloadSimdModeFromEnv()
{
    g_mode.store(ModeFromEnv(), std::memory_order_relaxed);
}

bool
ParseSimdMode(const char* text, SimdMode* out)
{
    if (text == nullptr || out == nullptr)
        return false;
    if (std::strcmp(text, "off") == 0 || std::strcmp(text, "0") == 0) {
        *out = SimdMode::kOff;
        return true;
    }
    if (std::strcmp(text, "on") == 0 || std::strcmp(text, "1") == 0) {
        *out = SimdMode::kOn;
        return true;
    }
    if (std::strcmp(text, "auto") == 0) {
        *out = SimdMode::kAuto;
        return true;
    }
    return false;
}

bool
SimdCompiledIn()
{
#ifdef SINAN_HAVE_AVX2
    return true;
#else
    return false;
#endif
}

bool
SimdActive()
{
    if (!SimdCompiledIn() || !GetCpuFeatures().avx2)
        return false;
    return CurrentSimdMode() != SimdMode::kOff;
}

const char*
ActiveKernelId()
{
    return SimdActive() ? "avx2-v1" : "scalar-v1";
}

const char*
ActiveInt8KernelId()
{
    return SimdActive() ? "int8-avx2-v1" : "int8-scalar-v1";
}

} // namespace sinan
