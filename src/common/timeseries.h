/**
 * @file
 * Fixed-capacity ring buffer for metric history windows. The ML
 * featurization needs "the last T intervals" of every per-tier metric and
 * of the end-to-end latency percentiles; RingWindow provides that with O(1)
 * push and stable chronological indexing.
 */
#ifndef SINAN_COMMON_TIMESERIES_H
#define SINAN_COMMON_TIMESERIES_H

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace sinan {

/**
 * Ring buffer of the most recent @p capacity values.
 *
 * Index 0 is the oldest retained element and Size()-1 the newest, so
 * callers can iterate chronologically regardless of wraparound.
 */
template <typename T>
class RingWindow {
  public:
    explicit RingWindow(size_t capacity)
        : capacity_(capacity)
    {
        if (capacity == 0)
            throw std::invalid_argument("RingWindow: zero capacity");
        buf_.reserve(capacity);
    }

    /** Appends a value, evicting the oldest once full. */
    void
    Push(const T& v)
    {
        if (buf_.size() < capacity_) {
            buf_.push_back(v);
        } else {
            buf_[head_] = v;
            head_ = (head_ + 1) % capacity_;
        }
    }

    /** Number of retained elements (<= capacity). */
    size_t Size() const { return buf_.size(); }

    /** True once capacity elements have been pushed. */
    bool Full() const { return buf_.size() == capacity_; }

    size_t Capacity() const { return capacity_; }

    /** Chronological access: 0 = oldest, Size()-1 = newest. */
    const T&
    At(size_t i) const
    {
        if (i >= buf_.size())
            throw std::out_of_range("RingWindow::At");
        return buf_[(head_ + i) % buf_.size()];
    }

    /** Newest element. */
    const T&
    Back() const
    {
        if (buf_.empty())
            throw std::out_of_range("RingWindow::Back on empty window");
        return At(buf_.size() - 1);
    }

    void
    Clear()
    {
        buf_.clear();
        head_ = 0;
    }

  private:
    size_t capacity_;
    size_t head_ = 0;
    std::vector<T> buf_;
};

} // namespace sinan

#endif // SINAN_COMMON_TIMESERIES_H
