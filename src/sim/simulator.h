/**
 * @file
 * Discrete-time simulation engine.
 *
 * The cluster substrate advances in small fixed ticks (default 10 ms); a
 * coarser "decision interval" (default 1 s, matching the paper's scheduler
 * cadence and QoS definition granularity) groups ticks for metric roll-up
 * and resource-management decisions. The engine owns the clock and calls
 * registered tickables every tick and interval listeners at every interval
 * boundary.
 */
#ifndef SINAN_SIM_SIMULATOR_H
#define SINAN_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <vector>

namespace sinan {

/** Timing parameters of a simulation. */
struct SimConfig {
    /** Fine tick used to integrate the processor-sharing fluid model. */
    double tick_s = 0.01;
    /** Decision / metric-reporting interval (the paper uses 1 s). */
    double interval_s = 1.0;
};

/**
 * Fixed-step simulation driver.
 *
 * Tickables run in registration order each tick; interval listeners run in
 * registration order whenever an interval boundary is crossed (after the
 * tick that completes the interval). Determinism therefore only depends on
 * registration order and the RNG seeds of the components themselves.
 */
class Simulator {
  public:
    using TickFn = std::function<void(double now, double dt)>;
    using IntervalFn = std::function<void(int64_t interval_idx, double now)>;

    explicit Simulator(const SimConfig& cfg = SimConfig());

    /** Registers a per-tick callback (e.g., workload source, cluster). */
    void AddTickable(TickFn fn);

    /** Registers an interval-boundary callback (e.g., resource manager). */
    void AddIntervalListener(IntervalFn fn);

    /** Runs for @p seconds of simulated time from the current clock. */
    void RunFor(double seconds);

    /** Current simulated time in seconds. */
    double Now() const { return static_cast<double>(tick_) * cfg_.tick_s; }

    /** Number of elapsed decision intervals. */
    int64_t IntervalIndex() const { return interval_; }

    const SimConfig& Config() const { return cfg_; }

  private:
    SimConfig cfg_;
    int64_t tick_ = 0;
    int64_t interval_ = 0;
    int64_t ticks_per_interval_ = 0;
    std::vector<TickFn> tickables_;
    std::vector<IntervalFn> interval_listeners_;
};

} // namespace sinan

#endif // SINAN_SIM_SIMULATOR_H
