#include "sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace sinan {

namespace {

std::string
Trim(const std::string& s)
{
    size_t b = s.find_first_not_of(" \t");
    size_t e = s.find_last_not_of(" \t");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

[[noreturn]] void
Bad(const std::string& what, const std::string& text)
{
    throw std::invalid_argument("ParseFaultSpec: " + what + " in '" +
                                text + "'");
}

/** Full-consumption strtoll; rejects empty cells and trailing junk. */
int64_t
ParseInt(const std::string& s, const std::string& ctx)
{
    const std::string t = Trim(s);
    if (t.empty())
        Bad("empty number", ctx);
    char* end = nullptr;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (end != t.c_str() + t.size())
        Bad("bad integer '" + t + "'", ctx);
    return static_cast<int64_t>(v);
}

double
ParseDouble(const std::string& s, const std::string& ctx)
{
    const std::string t = Trim(s);
    if (t.empty())
        Bad("empty number", ctx);
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (end != t.c_str() + t.size())
        Bad("bad number '" + t + "'", ctx);
    return v;
}

FaultKind
ParseKind(const std::string& word, const std::string& ctx)
{
    if (word == "stall")
        return FaultKind::kTierStall;
    if (word == "caploss")
        return FaultKind::kCapacityLoss;
    if (word == "spike")
        return FaultKind::kLatencySpike;
    if (word == "steal")
        return FaultKind::kCpuSteal;
    if (word == "drop")
        return FaultKind::kTelemetryDrop;
    if (word == "delay")
        return FaultKind::kTelemetryDelay;
    if (word == "nan")
        return FaultKind::kTelemetryNan;
    if (word == "flash")
        return FaultKind::kFlashCrowd;
    Bad("unknown fault kind '" + word + "'", ctx);
}

double
DefaultMagnitude(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kCapacityLoss:
    case FaultKind::kCpuSteal:
        return 0.5;
    case FaultKind::kLatencySpike:
        return 500.0; // ms
    case FaultKind::kFlashCrowd:
        return 2.0; // rate multiplier
    default:
        return 0.0;
    }
}

FaultEvent
ParseEvent(const std::string& text)
{
    FaultEvent ev;
    const std::string t = Trim(text);
    const size_t at = t.find('@');
    if (at == std::string::npos)
        Bad("missing '@start'", t);
    ev.kind = ParseKind(Trim(t.substr(0, at)), t);
    ev.magnitude = DefaultMagnitude(ev.kind);

    std::string rest = t.substr(at + 1);
    std::string params;
    const size_t colon = rest.find(':');
    if (colon != std::string::npos) {
        params = rest.substr(colon + 1);
        rest = rest.substr(0, colon);
    }
    const size_t plus = rest.find('+');
    if (plus != std::string::npos) {
        ev.start = ParseInt(rest.substr(0, plus), t);
        ev.duration = ParseInt(rest.substr(plus + 1), t);
    } else {
        ev.start = ParseInt(rest, t);
    }
    if (ev.start < 0)
        Bad("start must be >= 0", t);
    if (ev.duration < 1)
        Bad("duration must be >= 1", t);

    size_t pos = 0;
    while (pos < params.size()) {
        size_t comma = params.find(',', pos);
        if (comma == std::string::npos)
            comma = params.size();
        const std::string p = Trim(params.substr(pos, comma - pos));
        pos = comma + 1;
        if (p.empty())
            continue;
        const size_t eq = p.find('=');
        if (eq == std::string::npos)
            Bad("parameter '" + p + "' needs key=value", t);
        const std::string key = Trim(p.substr(0, eq));
        const std::string val = p.substr(eq + 1);
        if (key == "tier") {
            const int64_t tier = ParseInt(val, t);
            if (tier < -1 ||
                tier > std::numeric_limits<int>::max())
                Bad("tier out of range", t);
            ev.tier = static_cast<int>(tier);
            ev.tier_hi = -1;
        } else if (key == "tiers") {
            const std::string range = Trim(val);
            const size_t dash = range.find('-');
            if (dash == std::string::npos || dash == 0)
                Bad("tiers needs a 'lo-hi' range", t);
            const int64_t lo = ParseInt(range.substr(0, dash), t);
            const int64_t hi = ParseInt(range.substr(dash + 1), t);
            if (lo < 0 || hi < lo ||
                hi > std::numeric_limits<int>::max())
                Bad("tiers range must satisfy 0 <= lo <= hi", t);
            ev.tier = static_cast<int>(lo);
            ev.tier_hi = static_cast<int>(hi);
        } else if (key == "jitter") {
            const int64_t jit = ParseInt(val, t);
            if (jit < 0)
                Bad("jitter must be >= 0", t);
            ev.jitter = jit;
        } else if (key == "mag") {
            ev.magnitude = ParseDouble(val, t);
        } else {
            Bad("unknown parameter '" + key + "'", t);
        }
    }
    if (ev.jitter != 0 && ev.tier_hi < 0)
        Bad("jitter requires a tiers= group", t);

    switch (ev.kind) {
    case FaultKind::kCapacityLoss:
    case FaultKind::kCpuSteal:
        if (!(ev.magnitude > 0.0) || ev.magnitude > 1.0)
            Bad("mag must be in (0, 1]", t);
        break;
    case FaultKind::kLatencySpike:
    case FaultKind::kFlashCrowd:
        if (!(ev.magnitude > 0.0))
            Bad("mag must be > 0", t);
        break;
    default:
        break;
    }
    return ev;
}

} // namespace

const char*
ToString(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kTierStall:
        return "stall";
    case FaultKind::kCapacityLoss:
        return "caploss";
    case FaultKind::kLatencySpike:
        return "spike";
    case FaultKind::kCpuSteal:
        return "steal";
    case FaultKind::kTelemetryDrop:
        return "drop";
    case FaultKind::kTelemetryDelay:
        return "delay";
    case FaultKind::kTelemetryNan:
        return "nan";
    case FaultKind::kFlashCrowd:
        return "flash";
    }
    return "unknown";
}

std::string
FormatFaultEvent(const FaultEvent& event)
{
    std::string out = ToString(event.kind);
    out += '@';
    out += std::to_string(event.start);
    if (event.duration != 1) {
        out += '+';
        out += std::to_string(event.duration);
    }
    std::string params;
    if (event.tier_hi != -1) {
        params += "tiers=" + std::to_string(event.tier) + "-" +
                  std::to_string(event.tier_hi);
    } else if (event.tier != -1) {
        params += "tier=" + std::to_string(event.tier);
    }
    if (event.jitter != 0) {
        if (!params.empty())
            params += ',';
        params += "jitter=" + std::to_string(event.jitter);
    }
    if (event.magnitude != DefaultMagnitude(event.kind)) {
        if (!params.empty())
            params += ',';
        // Shortest representation that strtod parses back exactly;
        // integral magnitudes get plain form ("250", not "2.5e+02").
        char buf[40];
        const double mag = event.magnitude;
        if (mag == std::floor(mag) && std::fabs(mag) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%.0f", mag);
        } else {
            for (int prec = 1; prec <= 17; ++prec) {
                std::snprintf(buf, sizeof(buf), "%.*g", prec, mag);
                if (std::strtod(buf, nullptr) == mag)
                    break;
            }
        }
        params += "mag=";
        params += buf;
    }
    if (!params.empty()) {
        out += ':';
        out += params;
    }
    return out;
}

std::string
FormatFaultSpec(const FaultSchedule& schedule)
{
    std::string out;
    for (const FaultEvent& event : schedule.events) {
        if (!out.empty())
            out += ';';
        out += FormatFaultEvent(event);
    }
    return out;
}

int64_t
FaultSchedule::EndInterval() const
{
    int64_t end = 0;
    for (const FaultEvent& e : events)
        end = std::max(end, e.start + e.GroupSpan() + e.duration);
    return end;
}

FaultSchedule
ParseFaultSpec(const std::string& spec)
{
    FaultSchedule schedule;
    const std::string t = Trim(spec);
    if (t.empty())
        throw std::invalid_argument("ParseFaultSpec: empty spec");
    if (t.rfind("chaos:", 0) == 0) {
        const std::string name = Trim(t.substr(6));
        const ChaosScenario* sc = FindChaosScenario(name);
        if (!sc) {
            std::string names;
            for (const ChaosScenario& s : ChaosScenarios())
                names += (names.empty() ? "" : ", ") + s.name;
            throw std::invalid_argument(
                "ParseFaultSpec: unknown chaos scenario '" + name +
                "' (known: " + names + ")");
        }
        return ParseFaultSpec(sc->spec);
    }
    size_t pos = 0;
    while (pos <= t.size()) {
        size_t semi = t.find(';', pos);
        if (semi == std::string::npos)
            semi = t.size();
        const std::string ev = Trim(t.substr(pos, semi - pos));
        // An empty segment (";;", trailing ";") is a typo, not an
        // empty event — reject it rather than silently run fewer
        // faults than the user wrote.
        if (ev.empty())
            Bad("empty event", t);
        schedule.events.push_back(ParseEvent(ev));
        pos = semi + 1;
    }
    return schedule;
}

void
ValidateFaultSchedule(const FaultSchedule& schedule, int n_tiers)
{
    for (const FaultEvent& e : schedule.events) {
        const int top = std::max(e.tier, e.tier_hi);
        if (top >= n_tiers) {
            throw std::invalid_argument(
                "FaultSchedule: event '" + std::string(ToString(e.kind)) +
                "' targets tier " + std::to_string(top) +
                " but the application has " + std::to_string(n_tiers) +
                " tiers");
        }
    }
}

const std::vector<ChaosScenario>&
ChaosScenarios()
{
    static const std::vector<ChaosScenario> scenarios = {
        {"tier-stall", "stall@10+5:tier=2",
         "one tier serves nothing for 5 intervals (fork/GC pause)"},
        {"capacity-loss", "caploss@10+6:tier=1,mag=0.6",
         "a tier silently loses 60% of its effective CPU"},
        {"cpu-steal", "steal@8+8:mag=0.4",
         "noisy neighbor steals 40% of every tier and inflates "
         "reported usage"},
        {"latency-spike", "spike@12+3:mag=800",
         "reported tail latency inflated by 800 ms for 3 intervals"},
        {"telemetry-blackout", "drop@10+6",
         "6 intervals of telemetry lost outright (watchdog must fire)"},
        {"telemetry-nan", "nan@10+4",
         "latency and usage fields arrive as NaN for 4 intervals"},
        {"stale-telemetry", "delay@10+5",
         "the pipeline redelivers the previous interval's observation"},
        {"rolling-outage", "drop@8+4;stall@8+4:tier=0;caploss@14+4:"
                           "tier=1,mag=0.5",
         "a blackout overlapping a stalled tier, then capacity loss"},
        {"correlated-outage", "caploss@8+6:tiers=1-3,jitter=1,mag=0.5;"
                              "nan@8+8:tiers=1-3,jitter=1",
         "rolling 50% capacity loss across tiers 1-3 whose usage "
         "telemetry turns NaN (graded-confidence stress)"},
        {"flash-crowd", "flash@10+5:mag=2",
         "arrival rate doubles for 5 intervals on top of the "
         "configured load shape"},
    };
    return scenarios;
}

const ChaosScenario*
FindChaosScenario(const std::string& name)
{
    for (const ChaosScenario& s : ChaosScenarios()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

FaultInjector::FaultInjector(FaultSchedule schedule, double interval_s)
    : schedule_(std::move(schedule)), interval_s_(interval_s)
{
    if (interval_s <= 0.0)
        throw std::invalid_argument(
            "FaultInjector: interval_s must be > 0");
}

void
FaultInjector::Count(FaultKind kind)
{
    if (metrics_)
        metrics_->Inc(std::string("sinan.faults.") + ToString(kind));
}

void
FaultInjector::ApplyClusterFaults(int64_t interval, double now,
                                  Cluster& cluster)
{
    const int n = cluster.NumTiers();
    std::vector<double> factor(static_cast<size_t>(n), 1.0);
    // Per-tier activity (rather than per-event) so a correlated group
    // with jitter rolls across its members one stagger at a time.
    auto each_tier = [&](const FaultEvent& e, auto&& fn) {
        for (int t = 0; t < n; ++t) {
            if (e.ActiveForTier(t, interval))
                fn(t);
        }
    };
    for (const FaultEvent& e : schedule_.events) {
        if (!e.ActiveAt(interval))
            continue;
        switch (e.kind) {
        case FaultKind::kTierStall:
            each_tier(e, [&](int t) {
                cluster.InjectStall(t, now + interval_s_);
            });
            Count(e.kind);
            break;
        case FaultKind::kCapacityLoss:
        case FaultKind::kCpuSteal:
            each_tier(e, [&](int t) {
                factor[static_cast<size_t>(t)] *= 1.0 - e.magnitude;
            });
            Count(e.kind);
            break;
        case FaultKind::kFlashCrowd:
            // Applied workload-side (RateMultiplierAt); counted here
            // so the `sinan.faults.flash` counter advances once per
            // active interval like the cluster-side kinds.
            Count(e.kind);
            break;
        default:
            break; // telemetry-side kinds handled in FilterTelemetry
        }
    }
    // Recomputed from scratch each interval: expired events restore
    // full capacity without any explicit cleanup bookkeeping.
    for (int t = 0; t < n; ++t)
        cluster.SetCapacityFactor(t, factor[static_cast<size_t>(t)]);
}

TelemetryFate
FaultInjector::FilterTelemetry(int64_t interval,
                               IntervalObservation& obs)
{
    TelemetryFate fate = TelemetryFate::kDeliver;
    bool any = false;
    for (const FaultEvent& e : schedule_.events) {
        if (!e.ActiveAt(interval))
            continue;
        any = true;
        switch (e.kind) {
        case FaultKind::kLatencySpike:
            for (double& v : obs.latency_ms)
                v += e.magnitude;
            Count(e.kind);
            break;
        case FaultKind::kCpuSteal:
            // The thief's cycles show up in the cgroup accounting:
            // usage is inflated toward the configured limit.
            for (size_t t = 0; t < obs.tiers.size(); ++t) {
                if (!e.ActiveForTier(static_cast<int>(t), interval))
                    continue;
                TierMetrics& m = obs.tiers[t];
                m.cpu_used = std::min(
                    m.cpu_limit,
                    m.cpu_used + e.magnitude * m.cpu_limit);
            }
            break; // counted in ApplyClusterFaults
        case FaultKind::kTelemetryNan: {
            const double nan =
                std::numeric_limits<double>::quiet_NaN();
            if (e.tier >= 0) {
                // Tier-targeted poisoning: only the targeted tiers'
                // usage turns NaN; the latency percentiles stay real,
                // so a graded scheduler can keep using the QoS channel
                // while a binary one writes the frame off wholesale.
                for (size_t t = 0; t < obs.tiers.size(); ++t) {
                    if (e.ActiveForTier(static_cast<int>(t), interval))
                        obs.tiers[t].cpu_used = nan;
                }
            } else {
                for (double& v : obs.latency_ms)
                    v = nan;
                for (TierMetrics& m : obs.tiers)
                    m.cpu_used = nan;
            }
            Count(e.kind);
            break;
        }
        case FaultKind::kTelemetryDrop:
            fate = TelemetryFate::kDrop;
            Count(e.kind);
            break;
        case FaultKind::kTelemetryDelay:
            if (fate == TelemetryFate::kDeliver)
                fate = TelemetryFate::kDelay;
            Count(e.kind);
            break;
        default:
            break; // cluster-side kinds handled in ApplyClusterFaults
        }
    }
    if (any && metrics_)
        metrics_->Inc("sinan.faults.active_intervals");
    return fate;
}

double
FaultInjector::RateMultiplierAt(int64_t interval) const
{
    double mult = 1.0;
    for (const FaultEvent& e : schedule_.events) {
        if (e.kind == FaultKind::kFlashCrowd && e.ActiveAt(interval))
            mult *= e.magnitude;
    }
    return mult;
}

} // namespace sinan
