#include "sim/simulator.h"

#include <cmath>
#include <stdexcept>

namespace sinan {

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg)
{
    if (cfg.tick_s <= 0.0 || cfg.interval_s <= 0.0)
        throw std::invalid_argument("Simulator: non-positive step sizes");
    ticks_per_interval_ =
        static_cast<int64_t>(std::llround(cfg.interval_s / cfg.tick_s));
    if (ticks_per_interval_ < 1)
        throw std::invalid_argument(
            "Simulator: interval must be at least one tick");
}

void
Simulator::AddTickable(TickFn fn)
{
    tickables_.push_back(std::move(fn));
}

void
Simulator::AddIntervalListener(IntervalFn fn)
{
    interval_listeners_.push_back(std::move(fn));
}

void
Simulator::RunFor(double seconds)
{
    const int64_t n_ticks =
        static_cast<int64_t>(std::llround(seconds / cfg_.tick_s));
    for (int64_t i = 0; i < n_ticks; ++i) {
        const double now = Now();
        for (auto& t : tickables_)
            t(now, cfg_.tick_s);
        ++tick_;
        if (tick_ % ticks_per_interval_ == 0) {
            for (auto& l : interval_listeners_)
                l(interval_, Now());
            ++interval_;
        }
    }
}

} // namespace sinan
