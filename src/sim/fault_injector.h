/**
 * @file
 * Deterministic fault injection at the cluster/telemetry boundary.
 *
 * A FaultSchedule is an explicit list of timed events — tier stalls,
 * capacity loss, CPU steal by a noisy neighbor, latency spikes, and
 * dropped / delayed / non-finite telemetry intervals — parsed from a
 * compact spec string (`sinan_sim --faults=<spec>`). The injector
 * carries no randomness of its own: every perturbation is a pure
 * function of the schedule and the decision-interval index, so a run
 * with the same seed and spec is byte-identical at any thread-pool
 * size. The harness applies cluster-side events before each interval
 * and filters the harvested observation before the manager sees it;
 * every applied event is counted under `sinan.faults.*`.
 *
 * This is the substrate for the chaos scenario suite (ChaosScenarios())
 * exercising the scheduler's graceful-degradation path: fallbacks,
 * the telemetry guard, and the silent-interval watchdog.
 */
#ifndef SINAN_SIM_FAULT_INJECTOR_H
#define SINAN_SIM_FAULT_INJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/telemetry.h"
#include "common/metrics.h"

namespace sinan {

/** What a fault event perturbs. */
enum class FaultKind {
    /** Tier serves nothing while active (fork/GC/preemption pause). */
    kTierStall,
    /** Tier loses a fraction of its effective CPU capacity; the
     *  telemetry still reports the configured limit (failed replica,
     *  throttled host). */
    kCapacityLoss,
    /** Reported end-to-end latency percentiles are inflated by a fixed
     *  amount (probe interference; the cluster itself is unaffected). */
    kLatencySpike,
    /** Noisy neighbor: capacity shrinks like kCapacityLoss and the
     *  reported cpu_used is inflated toward the limit (the cgroup
     *  accounts the thief's cycles). */
    kCpuSteal,
    /** The interval's observation is lost entirely. */
    kTelemetryDrop,
    /** The manager receives the previous interval's observation again
     *  (collection pipeline lag). */
    kTelemetryDelay,
    /** NaN poisoning (broken exporter). Untargeted, every latency and
     *  cpu_used field turns NaN; targeted at a tier (or a correlated
     *  tier group), only those tiers' cpu_used fields do — the latency
     *  percentiles stay real, which is what makes graded telemetry
     *  confidence observable. */
    kTelemetryNan,
    /** Flash crowd: the workload's arrival rate is multiplied by the
     *  magnitude while active (layered on whatever load shape the run
     *  uses). Applied by the harness via RateMultiplierAt(); cluster
     *  and telemetry are otherwise untouched. */
    kFlashCrowd,
};

/** Spec keyword of the kind (stall, caploss, spike, steal, drop,
 *  delay, nan, flash). */
const char* ToString(FaultKind kind);

/** One timed fault. */
struct FaultEvent {
    FaultKind kind = FaultKind::kTierStall;
    /** First affected decision interval (0-based). */
    int64_t start = 0;
    /** Number of consecutive affected intervals (per tier for a
     *  jittered correlated group). */
    int64_t duration = 1;
    /** Affected tier index; -1 targets every tier. With tier_hi >= 0
     *  this is the first tier of a correlated group. Ignored by the
     *  whole-observation kinds (spike/drop/delay/flash). */
    int tier = -1;
    /** Last tier of a correlated group [tier, tier_hi]; -1 means the
     *  event targets `tier` alone (spec param `tiers=A-B`). */
    int tier_hi = -1;
    /** Per-tier activation stagger (intervals) within a correlated
     *  group: the i-th member of the group activates at
     *  start + i * jitter and stays active for `duration` intervals —
     *  one spec entry fans out to a rolling multi-tier event, with no
     *  randomness involved. */
    int64_t jitter = 0;
    /** Kind-specific strength: capacity/steal fraction in (0, 1],
     *  spike milliseconds, flash-crowd rate multiplier. Unused by
     *  stall/drop/delay/nan. */
    double magnitude = 0.0;

    /** Stagger span of the correlated group (0 without one). */
    int64_t
    GroupSpan() const
    {
        return tier >= 0 && tier_hi > tier
                   ? jitter * static_cast<int64_t>(tier_hi - tier)
                   : 0;
    }

    /** True when the event perturbs anything at @p interval. */
    bool
    ActiveAt(int64_t interval) const
    {
        return interval >= start &&
               interval < start + GroupSpan() + duration;
    }

    /** True when the event perturbs tier @p t at @p interval, honoring
     *  the correlated group's per-tier stagger. */
    bool
    ActiveForTier(int t, int64_t interval) const
    {
        if (tier < 0)
            return ActiveAt(interval);
        if (t < tier || t > (tier_hi >= 0 ? tier_hi : tier))
            return false;
        const int64_t off = jitter * static_cast<int64_t>(t - tier);
        return interval >= start + off &&
               interval < start + off + duration;
    }
};

/** A full run's fault plan. */
struct FaultSchedule {
    std::vector<FaultEvent> events;

    bool Empty() const { return events.empty(); }

    /** First interval index at (and after) which no event is active. */
    int64_t EndInterval() const;
};

/**
 * Parses a fault spec:
 *
 *   spec   := event (';' event)*  |  "chaos:" name
 *   event  := kind '@' start ['+' duration] [':' param (',' param)*]
 *   kind   := stall|caploss|spike|steal|drop|delay|nan|flash
 *   param  := "tier=" index | "tiers=" lo '-' hi | "jitter=" n
 *           | "mag=" value
 *
 * `start` and `duration` are decision-interval counts (duration
 * defaults to 1). `tiers=A-B` targets the correlated group [A, B] and
 * `jitter=N` staggers the members' activation by N intervals each
 * (jitter requires a tiers= group). `chaos:<name>` expands to the
 * named scenario from ChaosScenarios(). Throws std::invalid_argument
 * with the offending event text on any malformed input.
 */
FaultSchedule ParseFaultSpec(const std::string& spec);

/**
 * Formats one event in the spec grammar, emitting only non-default
 * fields (duration when != 1, tier/tiers when targeted, jitter when
 * != 0, mag when it differs from the kind's default) with
 * shortest-round-trip magnitudes, so
 * ParseFaultSpec(FormatFaultEvent(e)) reproduces @p e exactly.
 */
std::string FormatFaultEvent(const FaultEvent& event);

/**
 * Formats a schedule as a ';'-joined spec string — the inverse of
 * ParseFaultSpec: parsing the result yields a field-identical
 * schedule. An empty schedule formats as "" (which ParseFaultSpec
 * rejects; callers treat "" as "no faults" before parsing).
 */
std::string FormatFaultSpec(const FaultSchedule& schedule);

/**
 * Rejects events referencing tiers outside [0, n_tiers). Throws
 * std::invalid_argument; called by the harness before a run starts so
 * a bad spec fails loudly instead of silently perturbing nothing.
 */
void ValidateFaultSchedule(const FaultSchedule& schedule, int n_tiers);

/** A named, documented fault plan of the chaos suite. */
struct ChaosScenario {
    std::string name;
    std::string spec;
    std::string description;
};

/** The chaos scenario suite (stable order; >= 6 scenarios). */
const std::vector<ChaosScenario>& ChaosScenarios();

/** Scenario by name, or nullptr. */
const ChaosScenario* FindChaosScenario(const std::string& name);

/** What FilterTelemetry decided about the interval's observation. */
enum class TelemetryFate {
    /** Deliver the (possibly perturbed) observation. */
    kDeliver,
    /** The observation is lost; the manager sees an empty one. */
    kDrop,
    /** Redeliver the previous delivered observation. */
    kDelay,
};

/**
 * Applies a FaultSchedule to one run. The harness owns the instance
 * and drives both hooks once per decision interval; the injector keeps
 * no per-interval state beyond the immutable schedule, so replays are
 * trivially deterministic.
 */
class FaultInjector {
  public:
    /** @param interval_s decision-interval length (stall renewal). */
    FaultInjector(FaultSchedule schedule, double interval_s);

    /** Counts applied events under `sinan.faults.*` (may be null). */
    void AttachMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

    /**
     * Applies cluster-side events (stall, caploss, steal) for the
     * interval that starts at @p now. Capacity factors are recomputed
     * from scratch every call, so expired events self-restore.
     */
    void ApplyClusterFaults(int64_t interval, double now,
                            Cluster& cluster);

    /**
     * Perturbs the harvested observation of @p interval in place
     * (spike, steal inflation, NaN poisoning) and rules on its fate.
     * Drop wins over delay when both are active.
     */
    TelemetryFate FilterTelemetry(int64_t interval,
                                  IntervalObservation& obs);

    /**
     * Product of the rate multipliers of the flash-crowd events active
     * at @p interval (1.0 when none). The harness forwards this to the
     * workload generator before ticking the interval — a pure function
     * of (schedule, interval), like every other perturbation.
     */
    double RateMultiplierAt(int64_t interval) const;

    const FaultSchedule& Schedule() const { return schedule_; }

  private:
    void Count(FaultKind kind);

    FaultSchedule schedule_;
    double interval_s_;
    MetricsRegistry* metrics_ = nullptr;
};

} // namespace sinan

#endif // SINAN_SIM_FAULT_INJECTOR_H
