/**
 * @file
 * Deterministic fault injection at the cluster/telemetry boundary.
 *
 * A FaultSchedule is an explicit list of timed events — tier stalls,
 * capacity loss, CPU steal by a noisy neighbor, latency spikes, and
 * dropped / delayed / non-finite telemetry intervals — parsed from a
 * compact spec string (`sinan_sim --faults=<spec>`). The injector
 * carries no randomness of its own: every perturbation is a pure
 * function of the schedule and the decision-interval index, so a run
 * with the same seed and spec is byte-identical at any thread-pool
 * size. The harness applies cluster-side events before each interval
 * and filters the harvested observation before the manager sees it;
 * every applied event is counted under `sinan.faults.*`.
 *
 * This is the substrate for the chaos scenario suite (ChaosScenarios())
 * exercising the scheduler's graceful-degradation path: fallbacks,
 * the telemetry guard, and the silent-interval watchdog.
 */
#ifndef SINAN_SIM_FAULT_INJECTOR_H
#define SINAN_SIM_FAULT_INJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/telemetry.h"
#include "common/metrics.h"

namespace sinan {

/** What a fault event perturbs. */
enum class FaultKind {
    /** Tier serves nothing while active (fork/GC/preemption pause). */
    kTierStall,
    /** Tier loses a fraction of its effective CPU capacity; the
     *  telemetry still reports the configured limit (failed replica,
     *  throttled host). */
    kCapacityLoss,
    /** Reported end-to-end latency percentiles are inflated by a fixed
     *  amount (probe interference; the cluster itself is unaffected). */
    kLatencySpike,
    /** Noisy neighbor: capacity shrinks like kCapacityLoss and the
     *  reported cpu_used is inflated toward the limit (the cgroup
     *  accounts the thief's cycles). */
    kCpuSteal,
    /** The interval's observation is lost entirely. */
    kTelemetryDrop,
    /** The manager receives the previous interval's observation again
     *  (collection pipeline lag). */
    kTelemetryDelay,
    /** Latency and cpu_used fields arrive as NaN (broken exporter). */
    kTelemetryNan,
};

/** Spec keyword of the kind (stall, caploss, spike, steal, drop,
 *  delay, nan). */
const char* ToString(FaultKind kind);

/** One timed fault. */
struct FaultEvent {
    FaultKind kind = FaultKind::kTierStall;
    /** First affected decision interval (0-based). */
    int64_t start = 0;
    /** Number of consecutive affected intervals. */
    int64_t duration = 1;
    /** Affected tier index; -1 targets every tier. Ignored by the
     *  whole-observation kinds (spike/drop/delay/nan). */
    int tier = -1;
    /** Kind-specific strength: capacity/steal fraction in (0, 1],
     *  spike milliseconds. Unused by stall/drop/delay/nan. */
    double magnitude = 0.0;

    bool
    ActiveAt(int64_t interval) const
    {
        return interval >= start && interval < start + duration;
    }
};

/** A full run's fault plan. */
struct FaultSchedule {
    std::vector<FaultEvent> events;

    bool Empty() const { return events.empty(); }

    /** First interval index at (and after) which no event is active. */
    int64_t EndInterval() const;
};

/**
 * Parses a fault spec:
 *
 *   spec   := event (';' event)*  |  "chaos:" name
 *   event  := kind '@' start ['+' duration] [':' param (',' param)*]
 *   kind   := stall|caploss|spike|steal|drop|delay|nan
 *   param  := "tier=" index | "mag=" value
 *
 * `start` and `duration` are decision-interval counts (duration
 * defaults to 1). `chaos:<name>` expands to the named scenario from
 * ChaosScenarios(). Throws std::invalid_argument with the offending
 * event text on any malformed input.
 */
FaultSchedule ParseFaultSpec(const std::string& spec);

/**
 * Formats one event in the spec grammar, emitting only non-default
 * fields (duration when != 1, tier when != -1, mag when it differs
 * from the kind's default) with shortest-round-trip magnitudes, so
 * ParseFaultSpec(FormatFaultEvent(e)) reproduces @p e exactly.
 */
std::string FormatFaultEvent(const FaultEvent& event);

/**
 * Formats a schedule as a ';'-joined spec string — the inverse of
 * ParseFaultSpec: parsing the result yields a field-identical
 * schedule. An empty schedule formats as "" (which ParseFaultSpec
 * rejects; callers treat "" as "no faults" before parsing).
 */
std::string FormatFaultSpec(const FaultSchedule& schedule);

/**
 * Rejects events referencing tiers outside [0, n_tiers). Throws
 * std::invalid_argument; called by the harness before a run starts so
 * a bad spec fails loudly instead of silently perturbing nothing.
 */
void ValidateFaultSchedule(const FaultSchedule& schedule, int n_tiers);

/** A named, documented fault plan of the chaos suite. */
struct ChaosScenario {
    std::string name;
    std::string spec;
    std::string description;
};

/** The chaos scenario suite (stable order; >= 6 scenarios). */
const std::vector<ChaosScenario>& ChaosScenarios();

/** Scenario by name, or nullptr. */
const ChaosScenario* FindChaosScenario(const std::string& name);

/** What FilterTelemetry decided about the interval's observation. */
enum class TelemetryFate {
    /** Deliver the (possibly perturbed) observation. */
    kDeliver,
    /** The observation is lost; the manager sees an empty one. */
    kDrop,
    /** Redeliver the previous delivered observation. */
    kDelay,
};

/**
 * Applies a FaultSchedule to one run. The harness owns the instance
 * and drives both hooks once per decision interval; the injector keeps
 * no per-interval state beyond the immutable schedule, so replays are
 * trivially deterministic.
 */
class FaultInjector {
  public:
    /** @param interval_s decision-interval length (stall renewal). */
    FaultInjector(FaultSchedule schedule, double interval_s);

    /** Counts applied events under `sinan.faults.*` (may be null). */
    void AttachMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

    /**
     * Applies cluster-side events (stall, caploss, steal) for the
     * interval that starts at @p now. Capacity factors are recomputed
     * from scratch every call, so expired events self-restore.
     */
    void ApplyClusterFaults(int64_t interval, double now,
                            Cluster& cluster);

    /**
     * Perturbs the harvested observation of @p interval in place
     * (spike, steal inflation, NaN poisoning) and rules on its fate.
     * Drop wins over delay when both are active.
     */
    TelemetryFate FilterTelemetry(int64_t interval,
                                  IntervalObservation& obs);

    const FaultSchedule& Schedule() const { return schedule_; }

  private:
    void Count(FaultKind kind);

    FaultSchedule schedule_;
    double interval_s_;
    MetricsRegistry* metrics_ = nullptr;
};

} // namespace sinan

#endif // SINAN_SIM_FAULT_INJECTOR_H
