#include "baselines/powerchief.h"

#include <algorithm>
#include <numeric>

#include "common/telemetry.h"

namespace sinan {

PowerChief::PowerChief(const PowerChiefConfig& cfg)
    : cfg_(cfg)
{
}

std::vector<double>
PowerChief::Decide(const IntervalObservation& obs,
                   const std::vector<double>& alloc, const Application& app)
{
    // Degraded telemetry: hold rather than rank tiers on missing or
    // NaN queueing signals.
    if (!TelemetryUsable(obs, alloc.size()))
        return alloc;
    const int n = static_cast<int>(alloc.size());
    std::vector<double> next(alloc);

    // Rank tiers by estimated ingress queueing (mean admission wait
    // weighted by queue length — what network-trace analysis would see).
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    auto queueing = [&](int i) {
        return obs.tiers[i].queue_wait_s * (1.0 + obs.tiers[i].queue_len);
    };
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return queueing(a) > queueing(b); });

    // Boost the apparent bottlenecks.
    for (int r = 0; r < cfg_.boost_top_k && r < n; ++r) {
        const int i = order[r];
        if (queueing(i) <= cfg_.idle_wait_s)
            break; // nothing is queueing anywhere
        next[i] = alloc[i] * (1.0 + cfg_.boost_ratio) + 0.2;
    }

    // Reclaim from stages that show no queue and low utilization, but
    // never below a headroom multiple of their measured usage.
    for (int i = 0; i < n; ++i) {
        if (queueing(i) <= cfg_.idle_wait_s &&
            obs.tiers[i].Utilization() < cfg_.idle_util) {
            next[i] = std::max(alloc[i] * (1.0 - cfg_.reclaim_ratio),
                               obs.tiers[i].cpu_used *
                                   cfg_.reclaim_floor_headroom);
        }
    }

    for (int i = 0; i < n; ++i)
        next[i] = std::clamp(next[i], app.tiers[i].min_cpu,
                             app.tiers[i].max_cpu);
    return next;
}

} // namespace sinan
