#include "baselines/autoscale.h"

#include <algorithm>

#include "common/telemetry.h"

namespace sinan {

AutoScaler::AutoScaler(std::string name, std::vector<ScalingRule> rules)
    : name_(std::move(name)), rules_(std::move(rules))
{
}

std::vector<double>
AutoScaler::Decide(const IntervalObservation& obs,
                   const std::vector<double>& alloc, const Application& app)
{
    // Degraded telemetry (dropped interval, NaN fields): hold. The
    // rules below would otherwise index missing tiers or propagate NaN
    // into the allocation.
    if (!TelemetryUsable(obs, alloc.size()))
        return alloc;
    std::vector<double> next(alloc);
    for (size_t i = 0; i < alloc.size(); ++i) {
        const double util = obs.tiers[i].Utilization();
        for (const ScalingRule& r : rules_) {
            if (util >= r.util_low && util < r.util_high) {
                next[i] = alloc[i] * (1.0 + r.ratio);
                break;
            }
        }
        next[i] = std::clamp(next[i], app.tiers[i].min_cpu,
                             app.tiers[i].max_cpu);
    }
    return next;
}

AutoScaler
MakeAutoScaleOpt()
{
    return AutoScaler("AutoScaleOpt", {
        {0.70, 1.01, 0.30},
        {0.60, 0.70, 0.10},
        {0.30, 0.40, -0.10},
        {0.00, 0.30, -0.30},
    });
}

AutoScaler
MakeAutoScaleCons()
{
    return AutoScaler("AutoScaleCons", {
        {0.50, 1.01, 0.30},
        {0.30, 0.50, 0.10},
        {0.00, 0.10, -0.10},
    });
}

} // namespace sinan
