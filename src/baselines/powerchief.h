/**
 * @file
 * PowerChief-style queueing-analysis manager (Yang et al., ISCA'17), the
 * paper's research baseline: it estimates per-tier queueing from network
 * traces, declares the tier with the longest ingress queue the
 * bottleneck, and boosts that tier's resources while reclaiming from
 * apparently idle stages.
 *
 * As the paper argues (Sec. 5.3), in microservice graphs the longest
 * queue is often a symptom of a downstream culprit rather than the
 * culprit itself, so this policy misdirects resources under
 * back-pressure — the behaviour our Figure 11 reproduction shows.
 */
#ifndef SINAN_BASELINES_POWERCHIEF_H
#define SINAN_BASELINES_POWERCHIEF_H

#include "core/manager.h"

namespace sinan {

/** PowerChief knobs. */
struct PowerChiefConfig {
    /** Boost ratio applied to the bottleneck tier. */
    double boost_ratio = 0.30;
    /** How many of the longest-queue tiers get boosted per interval. */
    int boost_top_k = 3;
    /** Reclaim ratio for idle tiers. */
    double reclaim_ratio = 0.10;
    /** Utilization below which an unqueued tier is considered idle. */
    double idle_util = 0.30;
    /** Queueing time (s) below which a tier is queue-free. */
    double idle_wait_s = 0.002;
    /** Reclaim floor as a multiple of measured usage (keeps the manager
     *  from starving tiers outright at low load). */
    double reclaim_floor_headroom = 1.4;
};

/** Queue-driven boosting manager. */
class PowerChief : public ResourceManager {
  public:
    explicit PowerChief(const PowerChiefConfig& cfg = PowerChiefConfig());

    std::vector<double> Decide(const IntervalObservation& obs,
                               const std::vector<double>& alloc,
                               const Application& app) override;

    const char* Name() const override { return "PowerChief"; }

  private:
    PowerChiefConfig cfg_;
};

} // namespace sinan

#endif // SINAN_BASELINES_POWERCHIEF_H
