/**
 * @file
 * Utilization-driven step autoscaling, the industry-standard baseline of
 * the paper's Sec. 5.3 (configured after the AWS step-scaling tutorial):
 *
 *  - AutoScaleOpt: +10% at [60,70)% utilization, +30% at [70,100]%,
 *    -10% at [30,40)%, -30% at [0,30)%. Resource-efficient but violates
 *    QoS under load.
 *  - AutoScaleCons: +10% at [30,50)%, +30% at [50,100]%, -10% at
 *    [0,10)%. Meets QoS by heavy overprovisioning.
 */
#ifndef SINAN_BASELINES_AUTOSCALE_H
#define SINAN_BASELINES_AUTOSCALE_H

#include <string>
#include <vector>

#include "core/manager.h"

namespace sinan {

/** One utilization band and its scaling response. */
struct ScalingRule {
    double util_low = 0.0;  // inclusive
    double util_high = 1.0; // exclusive (1.01 to include 100%)
    double ratio = 0.0;     // +0.10 = grow 10%, -0.30 = shrink 30%
};

/** Generic per-tier step autoscaler. */
class AutoScaler : public ResourceManager {
  public:
    AutoScaler(std::string name, std::vector<ScalingRule> rules);

    std::vector<double> Decide(const IntervalObservation& obs,
                               const std::vector<double>& alloc,
                               const Application& app) override;

    const char* Name() const override { return name_.c_str(); }

  private:
    std::string name_;
    std::vector<ScalingRule> rules_;
};

/** The paper's AutoScaleOpt configuration. */
AutoScaler MakeAutoScaleOpt();

/** The paper's AutoScaleCons configuration. */
AutoScaler MakeAutoScaleCons();

} // namespace sinan

#endif // SINAN_BASELINES_AUTOSCALE_H
