/**
 * @file
 * Open-loop workload generation, standing in for the paper's Locust
 * deployment: each emulated user issues requests as a Poisson process with
 * a 1 RPS mean rate (Sec. 5.3), and the number of users follows a load
 * shape (constant for the Figure 11 sweep, diurnal for Figure 12).
 * Request types are sampled from the application's mix weights.
 */
#ifndef SINAN_WORKLOAD_WORKLOAD_H
#define SINAN_WORKLOAD_WORKLOAD_H

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"

namespace sinan {

/** Number of emulated users as a function of time. */
class LoadShape {
  public:
    virtual ~LoadShape() = default;
    /** Users active at simulated time @p t (fractional values allowed). */
    virtual double UsersAt(double t) const = 0;
};

/** Fixed user population. */
class ConstantLoad : public LoadShape {
  public:
    explicit ConstantLoad(double users) : users_(users) {}
    double UsersAt(double) const override { return users_; }

  private:
    double users_;
};

/**
 * Smooth diurnal pattern: users oscillate between @p low and @p high with
 * the given period, starting at the trough.
 */
class DiurnalLoad : public LoadShape {
  public:
    DiurnalLoad(double low, double high, double period_s);
    double UsersAt(double t) const override;

  private:
    double low_;
    double high_;
    double period_s_;
};

/** Piecewise-constant schedule of (start time, users) steps. */
class StepLoad : public LoadShape {
  public:
    /** @p steps must be sorted by time; the first entry should be t=0. */
    explicit StepLoad(std::vector<std::pair<double, double>> steps);
    double UsersAt(double t) const override;

  private:
    std::vector<std::pair<double, double>> steps_;
};

/** One deterministic flash-crowd spike (see FlashCrowdLoad). */
struct FlashSpike {
    /** Onset time, seconds. */
    double start_s = 0.0;
    /** Total spike duration, seconds (ramp up, hold, ramp down). */
    double duration_s = 0.0;
    /** Peak user multiplier relative to the base shape (>= 1). */
    double multiplier = 1.0;
};

/**
 * Flash-crowd spikes layered multiplicatively on a base shape —
 * typically DiurnalLoad, reproducing the paper Sec. 2.3 transient that
 * reactive autoscaling handles poorly. Each spike ramps linearly to
 * its peak multiplier over the first 20% of its duration, holds, and
 * ramps back down over the last 20%, so the population change is steep
 * but not discontinuous. Overlapping spikes multiply. Everything is a
 * pure function of time: no randomness, byte-identical replays.
 */
class FlashCrowdLoad : public LoadShape {
  public:
    /** @param base underlying shape (not owned; must outlive this). */
    FlashCrowdLoad(const LoadShape& base,
                   std::vector<FlashSpike> spikes);
    double UsersAt(double t) const override;

  private:
    const LoadShape& base_;
    std::vector<FlashSpike> spikes_;
};

/** Traffic micro-burst model layered on the Poisson arrivals. */
struct BurstOptions {
    /** Enables short random bursts (flash-crowd behaviour). */
    bool enabled = false;
    /** Mean seconds between burst onsets. */
    double mean_gap_s = 30.0;
    /** Mean burst duration, seconds. */
    double mean_duration_s = 3.0;
    /** Arrival-rate multiplier range during a burst. Kept moderate:
     *  the differentiating pressure comes from the request-mix skew
     *  (Application::burst_bias_*), which concentrates the spike on the
     *  compute-heavy tiers rather than uniformly. */
    double mult_min = 1.2;
    double mult_max = 1.5;
};

/**
 * Poisson open-loop request source bound to a cluster. Register Tick()
 * with the simulator *before* the cluster tick so arrivals of a tick are
 * served within it. Optional micro-bursts multiply the arrival rate for
 * a few seconds at random times — the transient spikes that reactive
 * autoscaling handles poorly (paper Sec. 2.3's delayed queueing).
 */
class WorkloadGenerator {
  public:
    /**
     * @param cluster target cluster.
     * @param shape user population over time (not owned).
     * @param seed RNG seed.
     * @param rps_per_user per-user mean request rate (paper: 1.0).
     * @param bursts micro-burst model.
     */
    WorkloadGenerator(Cluster& cluster, const LoadShape& shape,
                      uint64_t seed, double rps_per_user = 1.0,
                      const BurstOptions& bursts = BurstOptions());

    /** Injects this tick's Poisson arrivals. */
    void Tick(double now, double dt);

    /**
     * External arrival-rate multiplier, composed with the load shape
     * and the micro-burst multiplier. The harness sets this from the
     * fault injector's flash-crowd events once per decision interval;
     * it must be finite and > 0.
     */
    void SetRateMultiplier(double mult);

    /** Total requests injected so far. */
    int64_t Injected() const { return injected_; }

  private:
    /** Rebuilds the cumulative mix table from the app's weights. */
    void BuildMixTable();

    Cluster& cluster_;
    const LoadShape& shape_;
    Rng rng_;
    double rps_per_user_;
    double rate_mult_ = 1.0;
    BurstOptions bursts_;
    std::vector<double> mix_cdf_;
    int64_t injected_ = 0;

    // Burst process state.
    bool in_burst_ = false;
    double burst_until_ = 0.0;
    double next_burst_at_ = 0.0;
    double burst_mult_ = 1.0;
};

} // namespace sinan

#endif // SINAN_WORKLOAD_WORKLOAD_H
