#include "workload/workload.h"

#include <cmath>
#include <stdexcept>

namespace sinan {

DiurnalLoad::DiurnalLoad(double low, double high, double period_s)
    : low_(low), high_(high), period_s_(period_s)
{
    if (period_s <= 0.0)
        throw std::invalid_argument("DiurnalLoad: non-positive period");
    if (high < low)
        throw std::invalid_argument("DiurnalLoad: high < low");
}

double
DiurnalLoad::UsersAt(double t) const
{
    const double phase = 6.283185307179586 * t / period_s_;
    // Starts at the trough (cos shifted by pi).
    return low_ + 0.5 * (high_ - low_) * (1.0 - std::cos(phase));
}

FlashCrowdLoad::FlashCrowdLoad(const LoadShape& base,
                               std::vector<FlashSpike> spikes)
    : base_(base), spikes_(std::move(spikes))
{
    for (const FlashSpike& s : spikes_) {
        if (s.duration_s <= 0.0)
            throw std::invalid_argument(
                "FlashCrowdLoad: non-positive spike duration");
        if (s.multiplier < 1.0)
            throw std::invalid_argument(
                "FlashCrowdLoad: spike multiplier must be >= 1");
    }
}

double
FlashCrowdLoad::UsersAt(double t) const
{
    double mult = 1.0;
    for (const FlashSpike& s : spikes_) {
        if (t < s.start_s || t >= s.start_s + s.duration_s)
            continue;
        // Trapezoidal envelope: 20% ramp up, 60% hold, 20% ramp down.
        const double x = (t - s.start_s) / s.duration_s;
        double env = 1.0;
        if (x < 0.2)
            env = x / 0.2;
        else if (x > 0.8)
            env = (1.0 - x) / 0.2;
        mult *= 1.0 + (s.multiplier - 1.0) * env;
    }
    return base_.UsersAt(t) * mult;
}

StepLoad::StepLoad(std::vector<std::pair<double, double>> steps)
    : steps_(std::move(steps))
{
    if (steps_.empty())
        throw std::invalid_argument("StepLoad: empty schedule");
    for (size_t i = 1; i < steps_.size(); ++i) {
        if (steps_[i].first < steps_[i - 1].first)
            throw std::invalid_argument("StepLoad: unsorted schedule");
    }
}

double
StepLoad::UsersAt(double t) const
{
    double users = steps_.front().second;
    for (const auto& [start, u] : steps_) {
        if (t >= start)
            users = u;
        else
            break;
    }
    return users;
}

WorkloadGenerator::WorkloadGenerator(Cluster& cluster,
                                     const LoadShape& shape, uint64_t seed,
                                     double rps_per_user,
                                     const BurstOptions& bursts)
    : cluster_(cluster), shape_(shape), rng_(seed),
      rps_per_user_(rps_per_user), bursts_(bursts)
{
    if (rps_per_user <= 0.0)
        throw std::invalid_argument("WorkloadGenerator: bad rps_per_user");
    BuildMixTable();
    if (bursts_.enabled)
        next_burst_at_ = rng_.Exponential(bursts_.mean_gap_s);
}

void
WorkloadGenerator::BuildMixTable()
{
    const auto& types = cluster_.App().request_types;
    mix_cdf_.clear();
    double total = 0.0;
    for (const auto& t : types)
        total += t.weight;
    if (total <= 0.0)
        throw std::invalid_argument("WorkloadGenerator: zero mix weight");
    double acc = 0.0;
    for (const auto& t : types) {
        acc += t.weight / total;
        mix_cdf_.push_back(acc);
    }
    mix_cdf_.back() = 1.0;
}

void
WorkloadGenerator::SetRateMultiplier(double mult)
{
    if (!std::isfinite(mult) || mult <= 0.0)
        throw std::invalid_argument(
            "WorkloadGenerator: rate multiplier must be finite and > 0");
    rate_mult_ = mult;
}

void
WorkloadGenerator::Tick(double now, double dt)
{
    if (bursts_.enabled) {
        if (in_burst_ && now >= burst_until_) {
            in_burst_ = false;
            next_burst_at_ = now + rng_.Exponential(bursts_.mean_gap_s);
        }
        if (!in_burst_ && now >= next_burst_at_) {
            in_burst_ = true;
            burst_until_ =
                now + rng_.Exponential(bursts_.mean_duration_s);
            burst_mult_ =
                rng_.Uniform(bursts_.mult_min, bursts_.mult_max);
        }
    }
    const double mult = in_burst_ ? burst_mult_ : 1.0;
    const double rate =
        shape_.UsersAt(now) * rps_per_user_ * mult * rate_mult_;
    const int n = rng_.Poisson(rate * dt);
    const Application& app = cluster_.App();
    for (int i = 0; i < n; ++i) {
        const double u = rng_.Uniform();
        int type = 0;
        while (type + 1 < static_cast<int>(mix_cdf_.size()) &&
               u > mix_cdf_[type]) {
            ++type;
        }
        // Bursts skew the mix toward the application's burst-bias type.
        if (in_burst_ && app.burst_bias_type >= 0 &&
            app.burst_bias_type <
                static_cast<int>(mix_cdf_.size()) &&
            rng_.Bernoulli(app.burst_bias_extra)) {
            type = app.burst_bias_type;
        }
        cluster_.Inject(type, now);
        ++injected_;
    }
}

} // namespace sinan
