/**
 * @file
 * Loss functions. ScaledMse implements the paper's Eq. 2 scaling function
 * phi(.), which compresses latencies beyond a knee t so the squared loss
 * stops overfitting to rare latency spikes and concentrates accuracy in
 * the sub-QoS range that allocation decisions actually depend on.
 */
#ifndef SINAN_NN_LOSS_H
#define SINAN_NN_LOSS_H

#include "tensor/tensor.h"

namespace sinan {

/** Loss value plus gradient with respect to the predictions. */
struct LossResult {
    double value = 0.0;
    Tensor grad;
};

/** Mean squared error over all elements. */
LossResult MseLoss(const Tensor& pred, const Tensor& target);

/**
 * The paper's scaling function (Eq. 2):
 *   phi(x) = x                          for x <= t
 *   phi(x) = t + (x - t)/(1 + a(x - t)) for x >  t
 */
double ScalePhi(double x, double t, double alpha);

/** Derivative of ScalePhi with respect to x. */
double ScalePhiGrad(double x, double t, double alpha);

/**
 * Squared loss applied after scaling both prediction and target with
 * phi(., t, alpha): mean over elements of (phi(p) - phi(y))^2.
 *
 * @param leak adds leak*max(0, x-t) to the scaling, keeping a small
 * gradient above the knee. The pure Eq. 2 (leak = 0) saturates: a
 * prediction far above the knee receives a vanishing gradient
 * (phi' ~ 1/(1+a(x-t))^2) and is never pulled back down.
 */
LossResult ScaledMseLoss(const Tensor& pred, const Tensor& target,
                         double t, double alpha, double leak = 0.0);

/**
 * Binary cross-entropy on logits; targets in {0,1}. Numerically stable
 * log-sum-exp formulation.
 */
LossResult BceWithLogitsLoss(const Tensor& logits, const Tensor& target);

} // namespace sinan

#endif // SINAN_NN_LOSS_H
