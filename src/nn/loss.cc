#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

LossResult
MseLoss(const Tensor& pred, const Tensor& target)
{
    SINAN_CHECK_MSG(pred.Size() == target.Size() && !pred.Empty(),
                    "MseLoss: shape mismatch or empty ("
                        << pred.Size() << " vs " << target.Size() << ")");
    LossResult r;
    r.grad = Tensor(pred.Shape());
    const double n = static_cast<double>(pred.Size());
    for (size_t i = 0; i < pred.Size(); ++i) {
        const double d = pred[i] - target[i];
        r.value += d * d;
        r.grad[i] = static_cast<float>(2.0 * d / n);
    }
    r.value /= n;
    return r;
}

double
ScalePhi(double x, double t, double alpha)
{
    if (x <= t)
        return x;
    const double e = x - t;
    return t + e / (1.0 + alpha * e);
}

double
ScalePhiGrad(double x, double t, double alpha)
{
    if (x <= t)
        return 1.0;
    const double d = 1.0 + alpha * (x - t);
    return 1.0 / (d * d);
}

LossResult
ScaledMseLoss(const Tensor& pred, const Tensor& target, double t,
              double alpha, double leak)
{
    SINAN_CHECK_MSG(pred.Size() == target.Size() && !pred.Empty(),
                    "ScaledMseLoss: shape mismatch ("
                        << pred.Size() << " vs " << target.Size() << ")");
    LossResult r;
    r.grad = Tensor(pred.Shape());
    const double n = static_cast<double>(pred.Size());
    auto phi = [&](double x) {
        return ScalePhi(x, t, alpha) + leak * std::max(0.0, x - t);
    };
    auto phi_grad = [&](double x) {
        return ScalePhiGrad(x, t, alpha) + (x > t ? leak : 0.0);
    };
    for (size_t i = 0; i < pred.Size(); ++i) {
        const double d = phi(pred[i]) - phi(target[i]);
        r.value += d * d;
        r.grad[i] = static_cast<float>(2.0 * d * phi_grad(pred[i]) / n);
    }
    r.value /= n;
    return r;
}

LossResult
BceWithLogitsLoss(const Tensor& logits, const Tensor& target)
{
    SINAN_CHECK_MSG(logits.Size() == target.Size() && !logits.Empty(),
                    "BceWithLogitsLoss: shape mismatch ("
                        << logits.Size() << " vs " << target.Size()
                        << ")");
    LossResult r;
    r.grad = Tensor(logits.Shape());
    const double n = static_cast<double>(logits.Size());
    for (size_t i = 0; i < logits.Size(); ++i) {
        const double z = logits[i];
        const double y = target[i];
        // log(1 + e^-|z|) + max(z,0) - z*y  (stable BCE).
        r.value += std::log1p(std::exp(-std::abs(z))) +
                   std::max(z, 0.0) - z * y;
        const double sig = 1.0 / (1.0 + std::exp(-z));
        r.grad[i] = static_cast<float>((sig - y) / n);
    }
    r.value /= n;
    return r;
}

} // namespace sinan
