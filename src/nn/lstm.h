/**
 * @file
 * Single-layer LSTM returning the last hidden state, used as the
 * timeseries baseline of the paper's Table 2. Input is [B, T, I]; the
 * output [B, H] feeds a Dense head.
 */
#ifndef SINAN_NN_LSTM_H
#define SINAN_NN_LSTM_H

#include "nn/layer.h"

namespace sinan {

/** LSTM with full backpropagation through time. */
class Lstm : public Layer {
  public:
    /** Uninitialized layer; assign a constructed one before use. */
    Lstm() = default;

    Lstm(int input_size, int hidden_size, Rng& rng);

    /** x: [B, T, I] -> returns last hidden state [B, H]. */
    Tensor Forward(const Tensor& x) override;

    /** dy: [B, H] -> returns dx [B, T, I]. */
    Tensor Backward(const Tensor& dy) override;

    std::vector<Param*> Params() override { return {&wx_, &wh_, &b_}; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    int HiddenSize() const { return wh_.value.Dim(0); }

  private:
    // Gate order within the 4H axis: input, forget, cell(g), output.
    Param wx_; // [I, 4H]
    Param wh_; // [H, 4H]
    Param b_;  // [4H]

    Tensor x_cache_;               // [B, T, I]
    std::vector<Tensor> gates_;    // per t: [B, 4H] post-activation
    std::vector<Tensor> h_states_; // h_0..h_T, each [B, H]
    std::vector<Tensor> c_states_; // c_0..c_T, each [B, H]
};

} // namespace sinan

#endif // SINAN_NN_LSTM_H
