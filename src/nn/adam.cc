#include "nn/adam.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

Adam::Adam(std::vector<Param*> params, double lr, double beta1,
           double beta2, double eps, double weight_decay)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps), weight_decay_(weight_decay)
{
    SINAN_CHECK_GT(lr, 0.0);
    SINAN_CHECK_MSG(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 &&
                        beta2 < 1.0,
                    "Adam: betas must be in [0, 1) (" << beta1 << ", "
                        << beta2 << ")");
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (Param* p : params_) {
        m_.emplace_back(p->value.Shape());
        v_.emplace_back(p->value.Shape());
    }
}

void
Adam::Step()
{
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (size_t k = 0; k < params_.size(); ++k) {
        Param& p = *params_[k];
        Tensor& m = m_[k];
        Tensor& v = v_[k];
        for (size_t i = 0; i < p.value.Size(); ++i) {
            const double g = static_cast<double>(p.grad[i]) +
                             weight_decay_ *
                                 static_cast<double>(p.value[i]);
            m[i] = static_cast<float>(
                beta1_ * static_cast<double>(m[i]) +
                (1.0 - beta1_) * g);
            v[i] = static_cast<float>(
                beta2_ * static_cast<double>(v[i]) +
                (1.0 - beta2_) * g * g);
            const double m_hat = static_cast<double>(m[i]) / bc1;
            const double v_hat = static_cast<double>(v[i]) / bc2;
            p.value[i] -= static_cast<float>(
                lr_ * m_hat / (std::sqrt(v_hat) + eps_));
        }
    }
}

void
Adam::ZeroGrad()
{
    for (Param* p : params_)
        p->ZeroGrad();
}

} // namespace sinan
