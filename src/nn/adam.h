/**
 * @file
 * Adam optimizer (Kingma & Ba). The paper trains with SGD; Adam is
 * provided for the optimizer ablations and for users who prefer its
 * robustness to learning-rate choice on new applications.
 */
#ifndef SINAN_NN_ADAM_H
#define SINAN_NN_ADAM_H

#include <vector>

#include "nn/layer.h"

namespace sinan {

/** Adam with bias-corrected first/second moments and L2 weight decay. */
class Adam {
  public:
    /**
     * @param params parameters to optimize (must outlive the optimizer).
     * @param lr learning rate.
     * @param beta1 first-moment decay.
     * @param beta2 second-moment decay.
     * @param eps denominator stabilizer.
     * @param weight_decay L2 coefficient applied to the gradient.
     */
    Adam(std::vector<Param*> params, double lr, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8,
         double weight_decay = 0.0);

    /** Applies one update from the accumulated gradients. */
    void Step();

    /** Clears all parameter gradients. */
    void ZeroGrad();

    double LearningRate() const { return lr_; }
    void SetLearningRate(double lr) { lr_ = lr; }
    int64_t StepCount() const { return t_; }

  private:
    std::vector<Param*> params_;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    double weight_decay_;
    int64_t t_ = 0;
};

} // namespace sinan

#endif // SINAN_NN_ADAM_H
