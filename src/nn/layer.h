/**
 * @file
 * Neural-network building blocks: the Layer interface and its trainable
 * Param bundle. Layers cache their forward inputs so Backward can be
 * called with only the upstream gradient; parameter gradients accumulate
 * until the optimizer consumes and clears them.
 */
#ifndef SINAN_NN_LAYER_H
#define SINAN_NN_LAYER_H

#include <iosfwd>
#include <vector>

#include "tensor/tensor.h"

namespace sinan {

/** A trainable tensor with its accumulated gradient. */
struct Param {
    Tensor value;
    Tensor grad;

    explicit Param(Tensor v = Tensor())
        : value(std::move(v)), grad(value.Shape())
    {
    }

    void ZeroGrad() { grad.Fill(0.0f); }
};

/** Base class of all differentiable layers. */
class Layer {
  public:
    virtual ~Layer() = default;

    /**
     * Computes the layer output for a batched input and caches whatever
     * Backward needs. Calling Forward invalidates the previous cache.
     */
    virtual Tensor Forward(const Tensor& x) = 0;

    /**
     * Propagates @p dy (gradient w.r.t. the last Forward's output) back,
     * returning the gradient w.r.t. that Forward's input and accumulating
     * parameter gradients.
     */
    virtual Tensor Backward(const Tensor& dy) = 0;

    /** Trainable parameters (empty for stateless layers). */
    virtual std::vector<Param*> Params() { return {}; }

    /** Serializes parameters (stateless layers write nothing). */
    virtual void Save(std::ostream& /*out*/) const {}

    /** Restores parameters saved by Save. */
    virtual void Load(std::istream& /*in*/) {}

    /** Number of scalar parameters (for the paper's model-size column). */
    size_t
    NumParams()
    {
        size_t n = 0;
        for (Param* p : Params())
            n += p->value.Size();
        return n;
    }
};

} // namespace sinan

#endif // SINAN_NN_LAYER_H
