/**
 * @file
 * Concrete layers: Dense (fully connected), ReLU, Conv2D (same padding),
 * and Flatten. All operate on batch-major tensors.
 */
#ifndef SINAN_NN_LAYERS_H
#define SINAN_NN_LAYERS_H

#include "nn/layer.h"

namespace sinan {

/** Fully-connected layer: y = x W + b, x is [B, in], y is [B, out]. */
class Dense : public Layer {
  public:
    /** Uninitialized layer; assign a constructed one before use. */
    Dense() = default;

    Dense(int in_features, int out_features, Rng& rng);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override { return {&w_, &b_}; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    /**
     * Inference-only forward into a caller-owned output (resized via
     * EnsureShape, so steady-state reuse allocates nothing). Does not
     * touch the backward cache; bit-identical to Forward.
     */
    void ForwardInto(const Tensor& x, Tensor& y) const;

    int InFeatures() const { return w_.value.Dim(0); }
    int OutFeatures() const { return w_.value.Dim(1); }

    /** Read-only weight/bias views (int8 post-training quantization
     *  reads them; never used to mutate). */
    const Tensor& Weight() const { return w_.value; }
    const Tensor& Bias() const { return b_.value; }

  private:
    Param w_; // [in, out]
    Param b_; // [out]
    Tensor x_cache_;
};

/** Element-wise rectified linear unit. */
class ReLU : public Layer {
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;

  private:
    Tensor x_cache_;
};

/**
 * 2-D convolution with odd kernel and "same" zero padding:
 * x [B, C, H, W] -> y [B, OC, H, W].
 *
 * For Sinan's latency predictor the "image" is (tiers x timestamps) with
 * resource metrics as channels (paper Sec. 3.1), so H is the number of
 * tiers and W the history length.
 */
class Conv2D : public Layer {
  public:
    /** Uninitialized layer; assign a constructed one before use. */
    Conv2D() = default;

    Conv2D(int in_channels, int out_channels, int kernel, Rng& rng);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override { return {&w_, &b_}; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    /**
     * Inference-only forward into a caller-owned output, with @p col
     * as the caller-owned im2col scratch; both are resized via
     * EnsureShape and reused across calls. Does not touch the backward
     * cache. The per-output-element accumulation order is bias first,
     * then (c, ki, kj) ascending — the same order as the pre-im2col
     * naive kernel, so results are bit-identical to it and independent
     * of the thread count.
     */
    void ForwardInto(const Tensor& x, Tensor& y, Tensor& col) const;

    /** Read-only weight/bias views (int8 post-training quantization
     *  reads them; never used to mutate). */
    const Tensor& Weight() const { return w_.value; }
    const Tensor& Bias() const { return b_.value; }
    int Kernel() const { return kernel_; }

  private:
    Param w_; // [OC, C, K, K]
    Param b_; // [OC]
    int kernel_ = 0;
    Tensor x_cache_;
    Tensor col_; // im2col scratch reused by the training-path Forward
};

/** In-place ReLU used by the allocation-free inference fast path. */
void ReluInPlace(Tensor& t);

/** Reshapes [B, ...] to [B, prod(...)]; inverse on backward. */
class Flatten : public Layer {
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;

  private:
    std::vector<int> in_shape_;
};

} // namespace sinan

#endif // SINAN_NN_LAYERS_H
