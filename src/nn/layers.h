/**
 * @file
 * Concrete layers: Dense (fully connected), ReLU, Conv2D (same padding),
 * and Flatten. All operate on batch-major tensors.
 */
#ifndef SINAN_NN_LAYERS_H
#define SINAN_NN_LAYERS_H

#include "nn/layer.h"

namespace sinan {

/** Fully-connected layer: y = x W + b, x is [B, in], y is [B, out]. */
class Dense : public Layer {
  public:
    /** Uninitialized layer; assign a constructed one before use. */
    Dense() = default;

    Dense(int in_features, int out_features, Rng& rng);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override { return {&w_, &b_}; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    int InFeatures() const { return w_.value.Dim(0); }
    int OutFeatures() const { return w_.value.Dim(1); }

  private:
    Param w_; // [in, out]
    Param b_; // [out]
    Tensor x_cache_;
};

/** Element-wise rectified linear unit. */
class ReLU : public Layer {
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;

  private:
    Tensor x_cache_;
};

/**
 * 2-D convolution with odd kernel and "same" zero padding:
 * x [B, C, H, W] -> y [B, OC, H, W].
 *
 * For Sinan's latency predictor the "image" is (tiers x timestamps) with
 * resource metrics as channels (paper Sec. 3.1), so H is the number of
 * tiers and W the history length.
 */
class Conv2D : public Layer {
  public:
    Conv2D(int in_channels, int out_channels, int kernel, Rng& rng);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override { return {&w_, &b_}; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

  private:
    Param w_; // [OC, C, K, K]
    Param b_; // [OC]
    int kernel_;
    Tensor x_cache_;
};

/** Reshapes [B, ...] to [B, prod(...)]; inverse on backward. */
class Flatten : public Layer {
  public:
    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;

  private:
    std::vector<int> in_shape_;
};

} // namespace sinan

#endif // SINAN_NN_LAYERS_H
