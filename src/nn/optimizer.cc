#include "nn/optimizer.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

Sgd::Sgd(std::vector<Param*> params, double lr, double momentum,
         double weight_decay, double clip_norm)
    : params_(std::move(params)), lr_(lr), momentum_(momentum),
      weight_decay_(weight_decay), clip_norm_(clip_norm)
{
    SINAN_CHECK_GT(lr, 0.0);
    velocity_.reserve(params_.size());
    for (Param* p : params_)
        velocity_.emplace_back(p->value.Shape());
}

void
Sgd::Step()
{
    double scale = 1.0;
    if (clip_norm_ > 0.0) {
        double sq = 0.0;
        for (Param* p : params_) {
            for (size_t i = 0; i < p->grad.Size(); ++i)
                sq += static_cast<double>(p->grad[i]) *
                      static_cast<double>(p->grad[i]);
        }
        const double norm = std::sqrt(sq);
        if (norm > clip_norm_)
            scale = clip_norm_ / norm;
    }
    for (size_t k = 0; k < params_.size(); ++k) {
        Param& p = *params_[k];
        Tensor& v = velocity_[k];
        for (size_t i = 0; i < p.value.Size(); ++i) {
            const float g = static_cast<float>(scale) * p.grad[i] +
                            static_cast<float>(weight_decay_) * p.value[i];
            v[i] = static_cast<float>(momentum_) * v[i] -
                   static_cast<float>(lr_) * g;
            p.value[i] += v[i];
        }
    }
}

void
Sgd::ZeroGrad()
{
    for (Param* p : params_)
        p->ZeroGrad();
}

} // namespace sinan
