/**
 * @file
 * Learning-rate schedules. The trainer's default is exponential decay
 * per epoch; these provide the standard alternatives (step, cosine,
 * warmup) as composable function objects returning the rate for an
 * epoch index.
 */
#ifndef SINAN_NN_LR_SCHEDULE_H
#define SINAN_NN_LR_SCHEDULE_H

#include <cmath>
#include <stdexcept>

namespace sinan {

/** Base schedule: learning rate as a function of the epoch index. */
class LrSchedule {
  public:
    virtual ~LrSchedule() = default;
    /** Learning rate to use during epoch @p epoch (0-based). */
    virtual double At(int epoch) const = 0;
};

/** lr * decay^epoch. */
class ExponentialLr : public LrSchedule {
  public:
    ExponentialLr(double base, double decay)
        : base_(base), decay_(decay)
    {
        if (base <= 0.0 || decay <= 0.0 || decay > 1.0)
            throw std::invalid_argument("ExponentialLr: bad parameters");
    }

    double
    At(int epoch) const override
    {
        return base_ * std::pow(decay_, epoch);
    }

  private:
    double base_;
    double decay_;
};

/** Drops by a factor every fixed number of epochs. */
class StepLr : public LrSchedule {
  public:
    StepLr(double base, int step_epochs, double factor)
        : base_(base), step_epochs_(step_epochs), factor_(factor)
    {
        if (base <= 0.0 || step_epochs <= 0 || factor <= 0.0)
            throw std::invalid_argument("StepLr: bad parameters");
    }

    double
    At(int epoch) const override
    {
        return base_ * std::pow(factor_, epoch / step_epochs_);
    }

  private:
    double base_;
    int step_epochs_;
    double factor_;
};

/** Cosine annealing from base to floor over total_epochs. */
class CosineLr : public LrSchedule {
  public:
    CosineLr(double base, double floor, int total_epochs)
        : base_(base), floor_(floor), total_(total_epochs)
    {
        if (base <= 0.0 || floor < 0.0 || floor > base || total_epochs <= 0)
            throw std::invalid_argument("CosineLr: bad parameters");
    }

    double
    At(int epoch) const override
    {
        if (epoch >= total_)
            return floor_;
        const double t = static_cast<double>(epoch) / total_;
        return floor_ +
               0.5 * (base_ - floor_) *
                   (1.0 + std::cos(3.141592653589793 * t));
    }

  private:
    double base_;
    double floor_;
    int total_;
};

/** Linear warmup for the first epochs, then delegates to another. */
class WarmupLr : public LrSchedule {
  public:
    /** @param inner schedule applied after warmup (not owned). */
    WarmupLr(int warmup_epochs, const LrSchedule& inner)
        : warmup_(warmup_epochs), inner_(inner)
    {
        if (warmup_epochs < 0)
            throw std::invalid_argument("WarmupLr: negative warmup");
    }

    double
    At(int epoch) const override
    {
        if (warmup_ == 0 || epoch >= warmup_)
            return inner_.At(epoch);
        return inner_.At(warmup_) * (epoch + 1) /
               static_cast<double>(warmup_ + 1);
    }

  private:
    int warmup_;
    const LrSchedule& inner_;
};

} // namespace sinan

#endif // SINAN_NN_LR_SCHEDULE_H
