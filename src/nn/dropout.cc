#include "nn/dropout.h"

#include <stdexcept>

#include "common/check.h"

namespace sinan {

Dropout::Dropout(double p, uint64_t seed)
    : p_(p), rng_(seed)
{
    SINAN_CHECK_MSG(p >= 0.0 && p < 1.0,
                    "Dropout: p must be in [0, 1) (got " << p << ")");
}

Tensor
Dropout::Forward(const Tensor& x)
{
    if (!training_ || p_ == 0.0) {
        mask_ = Tensor();
        return x;
    }
    mask_ = Tensor(x.Shape());
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
    Tensor y = x;
    for (size_t i = 0; i < y.Size(); ++i) {
        const float m = rng_.Bernoulli(p_) ? 0.0f : keep_scale;
        mask_[i] = m;
        y[i] *= m;
    }
    return y;
}

Tensor
Dropout::Backward(const Tensor& dy)
{
    if (mask_.Empty())
        return dy;
    SINAN_CHECK_EQ(dy.Size(), mask_.Size());
    Tensor dx = dy;
    for (size_t i = 0; i < dx.Size(); ++i)
        dx[i] *= mask_[i];
    return dx;
}

} // namespace sinan
