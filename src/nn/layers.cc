#include "nn/layers.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/thread_pool.h"

namespace sinan {

namespace {

/** Batch rows per ParallelFor block for the conv loops. Fixed (not a
 *  function of the thread count) so the per-block gradient partials of
 *  Conv2D::Backward reduce in the same order at any parallelism. */
constexpr int64_t kConvBatchGrain = 4;

} // namespace

Dense::Dense(int in_features, int out_features, Rng& rng)
{
    SINAN_CHECK_MSG(in_features > 0 && out_features > 0,
                    "Dense: non-positive dimensions (" << in_features
                        << "x" << out_features << ")");
    // Kaiming initialization for ReLU-dominated nets.
    const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    w_ = Param(Tensor::Randn({in_features, out_features}, rng, stddev));
    b_ = Param(Tensor({out_features}));
}

Tensor
Dense::Forward(const Tensor& x)
{
    SINAN_CHECK_EQ(x.Rank(), 2);
    SINAN_CHECK_SHAPE(x, x.Dim(0), w_.value.Dim(0));
    x_cache_ = x;
    Tensor y({x.Dim(0), w_.value.Dim(1)});
    MatMul(x, w_.value, y);
    const int out = b_.value.Dim(0);
    ParallelFor(0, x.Dim(0), 256, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            float* row = y.Data() + static_cast<size_t>(i) * out;
            for (int j = 0; j < out; ++j)
                row[j] += b_.value[j];
        }
    });
    return y;
}

Tensor
Dense::Backward(const Tensor& dy)
{
    const int batch = x_cache_.Dim(0);
    SINAN_CHECK_EQ(dy.Rank(), 2);
    SINAN_CHECK_SHAPE(dy, batch, w_.value.Dim(1));
    // dW += x^T dy ; db += colsum(dy) ; dx = dy W^T.
    MatMulTa(x_cache_, dy, w_.grad, /*accumulate=*/true);
    const int out = w_.value.Dim(1);
    // Column-blocked: each block owns a disjoint range of bias slots,
    // accumulating over the batch in the same order as the serial loop.
    ParallelFor(0, out, 64, [&](int64_t lo, int64_t hi) {
        for (int i = 0; i < batch; ++i) {
            const float* row = dy.Data() + static_cast<size_t>(i) * out;
            for (int64_t j = lo; j < hi; ++j)
                b_.grad[j] += row[j];
        }
    });
    Tensor dx({batch, w_.value.Dim(0)});
    MatMulTb(dy, w_.value, dx);
    return dx;
}

void
Dense::Save(std::ostream& out) const
{
    w_.value.Save(out);
    b_.value.Save(out);
}

void
Dense::Load(std::istream& in)
{
    w_ = Param(Tensor::Load(in));
    b_ = Param(Tensor::Load(in));
}

Tensor
ReLU::Forward(const Tensor& x)
{
    x_cache_ = x;
    Tensor y = x;
    for (size_t i = 0; i < y.Size(); ++i)
        y[i] = y[i] > 0.0f ? y[i] : 0.0f;
    return y;
}

Tensor
ReLU::Backward(const Tensor& dy)
{
    SINAN_CHECK_EQ(dy.Size(), x_cache_.Size());
    Tensor dx = dy;
    for (size_t i = 0; i < dx.Size(); ++i)
        dx[i] = x_cache_[i] > 0.0f ? dx[i] : 0.0f;
    return dx;
}

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, Rng& rng)
    : kernel_(kernel)
{
    SINAN_CHECK_MSG(kernel > 0 && kernel % 2 == 1,
                    "Conv2D: kernel must be odd positive (got " << kernel
                        << ")");
    SINAN_CHECK_MSG(in_channels > 0 && out_channels > 0,
                    "Conv2D: non-positive channels (" << in_channels
                        << " -> " << out_channels << ")");
    const int fan_in = in_channels * kernel * kernel;
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    w_ = Param(Tensor::Randn({out_channels, in_channels, kernel, kernel},
                             rng, stddev));
    b_ = Param(Tensor({out_channels}));
}

Tensor
Conv2D::Forward(const Tensor& x)
{
    SINAN_CHECK_EQ(x.Rank(), 4);
    SINAN_CHECK_SHAPE(x, x.Dim(0), w_.value.Dim(1), x.Dim(2), x.Dim(3));
    x_cache_ = x;
    const int batch = x.Dim(0), in_c = x.Dim(1), h = x.Dim(2),
              w = x.Dim(3);
    const int out_c = w_.value.Dim(0);
    const int pad = kernel_ / 2;
    Tensor y({batch, out_c, h, w});
    // Flattened (sample, out-channel) pairs; every pair writes its own
    // [h, w] output plane, so blocks never overlap.
    ParallelFor(0, static_cast<int64_t>(batch) * out_c, 1,
                [&](int64_t lo, int64_t hi) {
        for (int64_t idx = lo; idx < hi; ++idx) {
            const int b = static_cast<int>(idx / out_c);
            const int oc = static_cast<int>(idx % out_c);
            const float bias = b_.value[oc];
            for (int i = 0; i < h; ++i) {
                for (int j = 0; j < w; ++j) {
                    float acc = bias;
                    for (int c = 0; c < in_c; ++c) {
                        for (int ki = 0; ki < kernel_; ++ki) {
                            const int si = i + ki - pad;
                            if (si < 0 || si >= h)
                                continue;
                            for (int kj = 0; kj < kernel_; ++kj) {
                                const int sj = j + kj - pad;
                                if (sj < 0 || sj >= w)
                                    continue;
                                acc += x.At(b, c, si, sj) *
                                       w_.value.At(oc, c, ki, kj);
                            }
                        }
                    }
                    y.At(b, oc, i, j) = acc;
                }
            }
        }
    });
    return y;
}

Tensor
Conv2D::Backward(const Tensor& dy)
{
    const Tensor& x = x_cache_;
    const int batch = x.Dim(0), in_c = x.Dim(1), h = x.Dim(2),
              w = x.Dim(3);
    const int out_c = w_.value.Dim(0);
    SINAN_CHECK_EQ(dy.Rank(), 4);
    SINAN_CHECK_SHAPE(dy, batch, out_c, h, w);
    const int pad = kernel_ / 2;
    Tensor dx({batch, in_c, h, w});
    // Batch-blocked: dx writes are disjoint per sample; the shared
    // weight/bias gradients go into per-block partials reduced below in
    // block order. The block structure is fixed by kConvBatchGrain, so
    // 1-thread and N-thread runs sum in exactly the same order.
    const int64_t n_blocks =
        (batch + kConvBatchGrain - 1) / kConvBatchGrain;
    std::vector<Tensor> wg(n_blocks), bg(n_blocks);
    ParallelFor(0, batch, kConvBatchGrain, [&](int64_t lo, int64_t hi) {
        const int64_t blk = lo / kConvBatchGrain;
        Tensor wgrad(w_.grad.Shape());
        Tensor bgrad(b_.grad.Shape());
        for (int64_t b = lo; b < hi; ++b) {
            for (int oc = 0; oc < out_c; ++oc) {
                for (int i = 0; i < h; ++i) {
                    for (int j = 0; j < w; ++j) {
                        const float g =
                            dy.At(static_cast<int>(b), oc, i, j);
                        if (g == 0.0f)
                            continue;
                        bgrad[oc] += g;
                        for (int c = 0; c < in_c; ++c) {
                            for (int ki = 0; ki < kernel_; ++ki) {
                                const int si = i + ki - pad;
                                if (si < 0 || si >= h)
                                    continue;
                                for (int kj = 0; kj < kernel_; ++kj) {
                                    const int sj = j + kj - pad;
                                    if (sj < 0 || sj >= w)
                                        continue;
                                    wgrad.At(oc, c, ki, kj) +=
                                        g * x.At(static_cast<int>(b), c,
                                                 si, sj);
                                    dx.At(static_cast<int>(b), c, si,
                                          sj) +=
                                        g * w_.value.At(oc, c, ki, kj);
                                }
                            }
                        }
                    }
                }
            }
        }
        wg[blk] = std::move(wgrad);
        bg[blk] = std::move(bgrad);
    });
    for (int64_t blk = 0; blk < n_blocks; ++blk) {
        w_.grad.Add(wg[blk]);
        b_.grad.Add(bg[blk]);
    }
    return dx;
}

void
Conv2D::Save(std::ostream& out) const
{
    w_.value.Save(out);
    b_.value.Save(out);
}

void
Conv2D::Load(std::istream& in)
{
    w_ = Param(Tensor::Load(in));
    b_ = Param(Tensor::Load(in));
    kernel_ = w_.value.Dim(2);
}

Tensor
Flatten::Forward(const Tensor& x)
{
    in_shape_ = x.Shape();
    SINAN_CHECK_GE(x.Rank(), 2);
    int rest = 1;
    for (int d = 1; d < x.Rank(); ++d)
        rest *= x.Dim(d);
    return x.Reshaped({x.Dim(0), rest});
}

Tensor
Flatten::Backward(const Tensor& dy)
{
    return dy.Reshaped(in_shape_);
}

} // namespace sinan
