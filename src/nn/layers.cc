#include "nn/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/gemm_kernels.h"

namespace sinan {

namespace {

/** Batch rows per ParallelFor block for the conv loops. Fixed (not a
 *  function of the thread count) so the per-block gradient partials of
 *  Conv2D::Backward reduce in the same order at any parallelism. */
constexpr int64_t kConvBatchGrain = 4;

/** Output channels per forward-matmul block. Fixed so the block
 *  structure — and therefore the bytes — never depends on the thread
 *  count; 8 rows also lets the AVX2 kernel reuse each loaded im2col
 *  row across two 4-row register panels. */
constexpr int64_t kConvOcBlock = 8;

} // namespace

Dense::Dense(int in_features, int out_features, Rng& rng)
{
    SINAN_CHECK_MSG(in_features > 0 && out_features > 0,
                    "Dense: non-positive dimensions (" << in_features
                        << "x" << out_features << ")");
    // Kaiming initialization for ReLU-dominated nets.
    const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
    w_ = Param(Tensor::Randn({in_features, out_features}, rng, stddev));
    b_ = Param(Tensor({out_features}));
}

Tensor
Dense::Forward(const Tensor& x)
{
    x_cache_ = x;
    Tensor y;
    ForwardInto(x, y);
    return y;
}

void
Dense::ForwardInto(const Tensor& x, Tensor& y) const
{
    SINAN_CHECK_EQ(x.Rank(), 2);
    SINAN_CHECK_SHAPE(x, x.Dim(0), w_.value.Dim(0));
    y.EnsureShape({x.Dim(0), w_.value.Dim(1)});
    MatMul(x, w_.value, y);
    const int out = b_.value.Dim(0);
    ParallelFor(0, x.Dim(0), 256, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            float* row = y.Data() + static_cast<size_t>(i) * out;
            for (int j = 0; j < out; ++j)
                row[j] += b_.value[j];
        }
    });
}

Tensor
Dense::Backward(const Tensor& dy)
{
    const int batch = x_cache_.Dim(0);
    SINAN_CHECK_EQ(dy.Rank(), 2);
    SINAN_CHECK_SHAPE(dy, batch, w_.value.Dim(1));
    // dW += x^T dy ; db += colsum(dy) ; dx = dy W^T.
    MatMulTa(x_cache_, dy, w_.grad, /*accumulate=*/true);
    const int out = w_.value.Dim(1);
    // Column-blocked: each block owns a disjoint range of bias slots,
    // accumulating over the batch in the same order as the serial loop.
    ParallelFor(0, out, 64, [&](int64_t lo, int64_t hi) {
        for (int i = 0; i < batch; ++i) {
            const float* row = dy.Data() + static_cast<size_t>(i) * out;
            for (int64_t j = lo; j < hi; ++j)
                b_.grad[j] += row[j];
        }
    });
    Tensor dx({batch, w_.value.Dim(0)});
    MatMulTb(dy, w_.value, dx);
    return dx;
}

void
Dense::Save(std::ostream& out) const
{
    w_.value.Save(out);
    b_.value.Save(out);
}

void
Dense::Load(std::istream& in)
{
    w_ = Param(Tensor::Load(in));
    b_ = Param(Tensor::Load(in));
}

void
ReluInPlace(Tensor& t)
{
    float* p = t.Data();
    const size_t n = t.Size();
    for (size_t i = 0; i < n; ++i)
        p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

Tensor
ReLU::Forward(const Tensor& x)
{
    x_cache_ = x;
    Tensor y = x;
    for (size_t i = 0; i < y.Size(); ++i)
        y[i] = y[i] > 0.0f ? y[i] : 0.0f;
    return y;
}

Tensor
ReLU::Backward(const Tensor& dy)
{
    SINAN_CHECK_EQ(dy.Size(), x_cache_.Size());
    Tensor dx = dy;
    for (size_t i = 0; i < dx.Size(); ++i)
        dx[i] = x_cache_[i] > 0.0f ? dx[i] : 0.0f;
    return dx;
}

Conv2D::Conv2D(int in_channels, int out_channels, int kernel, Rng& rng)
    : kernel_(kernel)
{
    SINAN_CHECK_MSG(kernel > 0 && kernel % 2 == 1,
                    "Conv2D: kernel must be odd positive (got " << kernel
                        << ")");
    SINAN_CHECK_MSG(in_channels > 0 && out_channels > 0,
                    "Conv2D: non-positive channels (" << in_channels
                        << " -> " << out_channels << ")");
    const int fan_in = in_channels * kernel * kernel;
    const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
    w_ = Param(Tensor::Randn({out_channels, in_channels, kernel, kernel},
                             rng, stddev));
    b_ = Param(Tensor({out_channels}));
}

Tensor
Conv2D::Forward(const Tensor& x)
{
    x_cache_ = x;
    Tensor y;
    ForwardInto(x, y, col_);
    return y;
}

void
Conv2D::ForwardInto(const Tensor& x, Tensor& y, Tensor& col) const
{
    SINAN_CHECK_EQ(x.Rank(), 4);
    SINAN_CHECK_SHAPE(x, x.Dim(0), w_.value.Dim(1), x.Dim(2), x.Dim(3));
    const int batch = x.Dim(0), in_c = x.Dim(1), h = x.Dim(2),
              w = x.Dim(3);
    const int out_c = w_.value.Dim(0);
    const int pad = kernel_ / 2;
    // Widen before multiplying: on large h*w (many tiers x long
    // histories) the products overflow int before the old code's
    // implicit widening to size_t could help.
    const int64_t hw64 = static_cast<int64_t>(h) * w;
    const int64_t ckk64 = static_cast<int64_t>(in_c) * kernel_ * kernel_;
    SINAN_CHECK_MSG(hw64 <= std::numeric_limits<int>::max() &&
                        ckk64 <= std::numeric_limits<int>::max(),
                    "Conv2D: per-sample plane too large (" << h << "x"
                        << w << ", " << in_c << " channels)");
    const int hw = static_cast<int>(hw64);
    const int ckk = static_cast<int>(ckk64);
    y.EnsureShape({batch, out_c, h, w});
    col.EnsureShape({batch, ckk, hw});

    // Phase 1 — im2col, laid out patch-major so the matmul's innermost
    // loop runs over contiguous output positions:
    //   col[b, (c, ki, kj), i*w + j] = x[b, c, i + ki - pad, j + kj - pad]
    // with zeros outside the image. A padding zero contributes exactly
    // 0.0f to the accumulation, so including it (instead of the old
    // bounds-check skip) leaves every sum bit-identical.
    ParallelFor(0, batch, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t bi = lo; bi < hi; ++bi) {
            const float* xb =
                x.Data() + static_cast<size_t>(bi) * in_c * hw;
            float* cb = col.Data() + static_cast<size_t>(bi) * ckk * hw;
            for (int c = 0; c < in_c; ++c) {
                const float* xc = xb + static_cast<size_t>(c) * hw;
                for (int ki = 0; ki < kernel_; ++ki) {
                    for (int kj = 0; kj < kernel_; ++kj) {
                        float* crow =
                            cb + (static_cast<size_t>(c) * kernel_ *
                                      kernel_ +
                                  static_cast<size_t>(ki) * kernel_ +
                                  static_cast<size_t>(kj)) *
                                     hw;
                        // Columns j with an in-bounds source sj = j +
                        // kj - pad form one contiguous run per row.
                        const int j0 = std::max(0, pad - kj);
                        const int j1 = std::min(w, w + pad - kj);
                        for (int i = 0; i < h; ++i) {
                            const int si = i + ki - pad;
                            float* dst = crow + static_cast<size_t>(i) * w;
                            if (si < 0 || si >= h) {
                                std::fill(dst, dst + w, 0.0f);
                                continue;
                            }
                            const float* srow =
                                xc + static_cast<size_t>(si) * w;
                            for (int j = 0; j < j0; ++j)
                                dst[j] = 0.0f;
                            for (int j = j0; j < j1; ++j)
                                dst[j] = srow[j + kj - pad];
                            for (int j = j1; j < w; ++j)
                                dst[j] = 0.0f;
                        }
                    }
                }
            }
        }
    });

    // Phase 2 — dispatched row-panel matmul: y[b, oc, :] = bias[oc] +
    // sum_p w[oc, p] * col[b, p, :]. Each (sample, oc-block) panel is
    // written by exactly one ParallelFor block (structure fixed by
    // kConvOcBlock), and per output element the terms accumulate in
    // ascending p = (c, ki, kj) — the naive kernel's order — with one
    // rounded mul-then-add per term in both the scalar and the AVX2
    // kernel, so results are bit-identical across kernels and thread
    // counts.
    const float* wp = w_.value.Data();
    const GemmRowsFn kern = ActiveGemmRows();
    const int64_t oc_blocks =
        (out_c + kConvOcBlock - 1) / kConvOcBlock;
    ParallelFor(0, batch * oc_blocks, 1, [&](int64_t lo, int64_t hi) {
        for (int64_t idx = lo; idx < hi; ++idx) {
            const int64_t bi = idx / oc_blocks;
            const int64_t oc0 = (idx % oc_blocks) * kConvOcBlock;
            const int64_t oc1 =
                std::min<int64_t>(out_c, oc0 + kConvOcBlock);
            const float* cb =
                col.Data() + static_cast<size_t>(bi) * ckk * hw;
            float* yb =
                y.Data() + static_cast<size_t>(bi) * out_c * hw;
            for (int64_t oc = oc0; oc < oc1; ++oc) {
                float* yrow = yb + oc * hw;
                std::fill(yrow, yrow + hw,
                          b_.value[static_cast<size_t>(oc)]);
            }
            kern(wp, ckk, cb, hw, yb, hw, oc0, oc1, ckk, hw);
        }
    });
}

Tensor
Conv2D::Backward(const Tensor& dy)
{
    const Tensor& x = x_cache_;
    const int batch = x.Dim(0), in_c = x.Dim(1), h = x.Dim(2),
              w = x.Dim(3);
    const int out_c = w_.value.Dim(0);
    SINAN_CHECK_EQ(dy.Rank(), 4);
    SINAN_CHECK_SHAPE(dy, batch, out_c, h, w);
    const int pad = kernel_ / 2;
    Tensor dx({batch, in_c, h, w});
    // Batch-blocked: dx writes are disjoint per sample; the shared
    // weight/bias gradients go into per-block partials reduced below in
    // block order. The block structure is fixed by kConvBatchGrain, so
    // 1-thread and N-thread runs sum in exactly the same order.
    const int64_t n_blocks =
        (batch + kConvBatchGrain - 1) / kConvBatchGrain;
    std::vector<Tensor> wg(n_blocks), bg(n_blocks);
    ParallelFor(0, batch, kConvBatchGrain, [&](int64_t lo, int64_t hi) {
        const int64_t blk = lo / kConvBatchGrain;
        Tensor wgrad(w_.grad.Shape());
        Tensor bgrad(b_.grad.Shape());
        for (int64_t b = lo; b < hi; ++b) {
            for (int oc = 0; oc < out_c; ++oc) {
                for (int i = 0; i < h; ++i) {
                    for (int j = 0; j < w; ++j) {
                        const float g =
                            dy.At(static_cast<int>(b), oc, i, j);
                        if (g == 0.0f)
                            continue;
                        bgrad[oc] += g;
                        for (int c = 0; c < in_c; ++c) {
                            for (int ki = 0; ki < kernel_; ++ki) {
                                const int si = i + ki - pad;
                                if (si < 0 || si >= h)
                                    continue;
                                for (int kj = 0; kj < kernel_; ++kj) {
                                    const int sj = j + kj - pad;
                                    if (sj < 0 || sj >= w)
                                        continue;
                                    wgrad.At(oc, c, ki, kj) +=
                                        g * x.At(static_cast<int>(b), c,
                                                 si, sj);
                                    dx.At(static_cast<int>(b), c, si,
                                          sj) +=
                                        g * w_.value.At(oc, c, ki, kj);
                                }
                            }
                        }
                    }
                }
            }
        }
        wg[blk] = std::move(wgrad);
        bg[blk] = std::move(bgrad);
    });
    for (int64_t blk = 0; blk < n_blocks; ++blk) {
        w_.grad.Add(wg[blk]);
        b_.grad.Add(bg[blk]);
    }
    return dx;
}

void
Conv2D::Save(std::ostream& out) const
{
    w_.value.Save(out);
    b_.value.Save(out);
}

void
Conv2D::Load(std::istream& in)
{
    w_ = Param(Tensor::Load(in));
    b_ = Param(Tensor::Load(in));
    kernel_ = w_.value.Dim(2);
}

Tensor
Flatten::Forward(const Tensor& x)
{
    in_shape_ = x.Shape();
    SINAN_CHECK_GE(x.Rank(), 2);
    int64_t rest = 1;
    for (int d = 1; d < x.Rank(); ++d)
        rest *= x.Dim(d);
    SINAN_CHECK_MSG(rest <= std::numeric_limits<int>::max(),
                    "Flatten: flattened extent overflows int (" << rest
                        << ")");
    return x.Reshaped({x.Dim(0), static_cast<int>(rest)});
}

Tensor
Flatten::Backward(const Tensor& dy)
{
    return dy.Reshaped(in_shape_);
}

} // namespace sinan
