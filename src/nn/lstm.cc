#include "nn/lstm.h"

#include <cmath>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

namespace {

float
Sigmoid(float v)
{
    return 1.0f / (1.0f + std::exp(-v));
}

} // namespace

Lstm::Lstm(int input_size, int hidden_size, Rng& rng)
{
    SINAN_CHECK_MSG(input_size > 0 && hidden_size > 0,
                    "Lstm: non-positive dimensions (" << input_size
                        << "x" << hidden_size << ")");
    const float sx = std::sqrt(1.0f / static_cast<float>(input_size));
    const float sh = std::sqrt(1.0f / static_cast<float>(hidden_size));
    wx_ = Param(Tensor::Randn({input_size, 4 * hidden_size}, rng, sx));
    wh_ = Param(Tensor::Randn({hidden_size, 4 * hidden_size}, rng, sh));
    b_ = Param(Tensor({4 * hidden_size}));
    // Positive forget-gate bias, the usual trick for trainability.
    for (int j = hidden_size; j < 2 * hidden_size; ++j)
        b_.value[j] = 1.0f;
}

Tensor
Lstm::Forward(const Tensor& x)
{
    SINAN_CHECK_EQ(x.Rank(), 3);
    SINAN_CHECK_SHAPE(x, x.Dim(0), x.Dim(1), wx_.value.Dim(0));
    x_cache_ = x;
    const int batch = x.Dim(0), steps = x.Dim(1), in = x.Dim(2);
    const int hid = HiddenSize();

    gates_.assign(steps, Tensor());
    h_states_.assign(steps + 1, Tensor({batch, hid}));
    c_states_.assign(steps + 1, Tensor({batch, hid}));

    Tensor xt({batch, in});
    for (int t = 0; t < steps; ++t) {
        for (int b = 0; b < batch; ++b)
            for (int i = 0; i < in; ++i)
                xt.At(b, i) = x.At(b, t, i);

        Tensor pre({batch, 4 * hid});
        MatMul(xt, wx_.value, pre);
        MatMul(h_states_[t], wh_.value, pre, /*accumulate=*/true);
        for (int b = 0; b < batch; ++b)
            for (int j = 0; j < 4 * hid; ++j)
                pre.At(b, j) += b_.value[j];

        Tensor gate({batch, 4 * hid});
        for (int b = 0; b < batch; ++b) {
            for (int j = 0; j < hid; ++j) {
                const float ig = Sigmoid(pre.At(b, j));
                const float fg = Sigmoid(pre.At(b, hid + j));
                const float gg = std::tanh(pre.At(b, 2 * hid + j));
                const float og = Sigmoid(pre.At(b, 3 * hid + j));
                gate.At(b, j) = ig;
                gate.At(b, hid + j) = fg;
                gate.At(b, 2 * hid + j) = gg;
                gate.At(b, 3 * hid + j) = og;
                const float c =
                    fg * c_states_[t].At(b, j) + ig * gg;
                c_states_[t + 1].At(b, j) = c;
                h_states_[t + 1].At(b, j) = og * std::tanh(c);
            }
        }
        gates_[t] = std::move(gate);
    }
    return h_states_[steps];
}

Tensor
Lstm::Backward(const Tensor& dy)
{
    const Tensor& x = x_cache_;
    const int batch = x.Dim(0), steps = x.Dim(1), in = x.Dim(2);
    const int hid = HiddenSize();
    SINAN_CHECK_EQ(dy.Rank(), 2);
    SINAN_CHECK_SHAPE(dy, batch, hid);

    Tensor dx({batch, steps, in});
    Tensor dh = dy;               // [B, H]
    Tensor dc({batch, hid});      // [B, H]
    Tensor xt({batch, in});

    for (int t = steps - 1; t >= 0; --t) {
        const Tensor& gate = gates_[t];
        Tensor dpre({batch, 4 * hid});
        for (int b = 0; b < batch; ++b) {
            for (int j = 0; j < hid; ++j) {
                const float ig = gate.At(b, j);
                const float fg = gate.At(b, hid + j);
                const float gg = gate.At(b, 2 * hid + j);
                const float og = gate.At(b, 3 * hid + j);
                const float c = c_states_[t + 1].At(b, j);
                const float tc = std::tanh(c);

                const float dht = dh.At(b, j);
                float dct = dc.At(b, j) + dht * og * (1.0f - tc * tc);

                // Gate pre-activation gradients.
                dpre.At(b, j) = dct * gg * ig * (1.0f - ig);
                dpre.At(b, hid + j) =
                    dct * c_states_[t].At(b, j) * fg * (1.0f - fg);
                dpre.At(b, 2 * hid + j) = dct * ig * (1.0f - gg * gg);
                dpre.At(b, 3 * hid + j) = dht * tc * og * (1.0f - og);

                dc.At(b, j) = dct * fg;
            }
        }

        // Parameter gradients.
        for (int b = 0; b < batch; ++b)
            for (int i = 0; i < in; ++i)
                xt.At(b, i) = x.At(b, t, i);
        MatMulTa(xt, dpre, wx_.grad, /*accumulate=*/true);
        MatMulTa(h_states_[t], dpre, wh_.grad, /*accumulate=*/true);
        for (int b = 0; b < batch; ++b)
            for (int j = 0; j < 4 * hid; ++j)
                b_.grad[j] += dpre.At(b, j);

        // Input gradient for this timestep.
        Tensor dxt({batch, in});
        MatMulTb(dpre, wx_.value, dxt);
        for (int b = 0; b < batch; ++b)
            for (int i = 0; i < in; ++i)
                dx.At(b, t, i) = dxt.At(b, i);

        // Hidden gradient flowing to t-1.
        Tensor dh_prev({batch, hid});
        MatMulTb(dpre, wh_.value, dh_prev);
        dh = std::move(dh_prev);
    }
    return dx;
}

void
Lstm::Save(std::ostream& out) const
{
    wx_.value.Save(out);
    wh_.value.Save(out);
    b_.value.Save(out);
}

void
Lstm::Load(std::istream& in)
{
    wx_ = Param(Tensor::Load(in));
    wh_ = Param(Tensor::Load(in));
    b_ = Param(Tensor::Load(in));
}

} // namespace sinan
