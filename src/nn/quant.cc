#include "nn/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"

namespace sinan {

namespace {

/** Round-to-nearest, ties away from zero — one fixed deterministic
 *  rule shared by weight and activation quantization (a plain cast
 *  truncates, so the result never depends on the FP rounding mode). */
inline int32_t
RoundNearest(float v)
{
    return static_cast<int32_t>(v >= 0.0f ? v + 0.5f : v - 0.5f);
}

/** Rows per ParallelFor block of the quantized dense loops. Fixed so
 *  the block structure never depends on the thread count (the int8
 *  sums are exact either way; this just keeps the parallel shape
 *  aligned with the fp32 path's conventions). */
constexpr int64_t kQuantRowGrain = 8;

/** im2col / conv-GEMM position rows per ParallelFor block. */
constexpr int64_t kQuantPosGrain = 32;

/** Inline word-at-a-time copy for the short (~kernel * in_c byte)
 *  im2col runs — a library memcpy call per run would cost more than
 *  the copy itself. Exact-size: never writes past dst + n. */
inline void
CopySmall(uint8_t* dst, const uint8_t* src, int64_t n)
{
    int64_t t = 0;
    for (; t + 8 <= n; t += 8) {
        uint64_t v;
        std::memcpy(&v, src + t, sizeof(v));
        std::memcpy(dst + t, &v, sizeof(v));
    }
    for (; t < n; ++t)
        dst[t] = src[t];
}

/** Inline fill with the padding byte 128, same rationale. */
inline void
FillPad(uint8_t* dst, int64_t n)
{
    constexpr uint64_t kPat = 0x8080808080808080ull;
    int64_t t = 0;
    for (; t + 8 <= n; t += 8)
        std::memcpy(dst + t, &kPat, sizeof(kPat));
    for (; t < n; ++t)
        dst[t] = 128;
}

/**
 * Shared conv core: channel-last im2col + int8 GEMM, leaving the raw
 * int32 accumulators [hw, oc] in ws.Acc for the caller's requantize
 * pass. With patches in (ki, kj, c) order, the bytes of one output
 * position are `kernel` contiguous runs of the channel-last image (one
 * per ki; the kj/c block is contiguous in both source and
 * destination), so the gather is memcpy/memset of ~kernel * in_c bytes
 * instead of per-byte strided writes — this is what moved the int8
 * trunk from parity with fp32 to well under it. All copies are
 * exact-size, so each position row is written only by its own
 * ParallelFor block and the panel is byte-stable at any thread count.
 */
int32_t*
ConvInt8Core(const QuantizedLinear& lin, int kernel, const uint8_t* xq,
             int in_c, int h, int w, Int8Workspace& ws)
{
    const int64_t hw = static_cast<int64_t>(h) * w;
    const int64_t ckk = static_cast<int64_t>(in_c) * kernel * kernel;
    const int64_t oc = lin.n;
    SINAN_CHECK_EQ(ckk, lin.k);
    const int pad = kernel / 2;
    const int64_t lda = Int8KGroups(ckk) * 4;
    const int64_t krow = static_cast<int64_t>(kernel) * in_c;

    uint8_t* colq = ws.Col(static_cast<size_t>(hw * lda));
    ParallelFor(0, h, kQuantRowGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            for (int64_t j = 0; j < w; ++j) {
                uint8_t* dst = colq + (i * w + j) * lda;
                for (int ki = 0; ki < kernel; ++ki, dst += krow) {
                    const int64_t si = i + ki - pad;
                    if (si < 0 || si >= h) {
                        // Padded row: byte 128 is the exact image of
                        // fp32 0.0 under the zero-point-128 scheme.
                        FillPad(dst, krow);
                        continue;
                    }
                    const int64_t kj0 = std::max<int64_t>(0, pad - j);
                    const int64_t kj1 =
                        std::min<int64_t>(kernel, w + pad - j);
                    if (kj0 > 0)
                        FillPad(dst, kj0 * in_c);
                    CopySmall(dst + kj0 * in_c,
                              xq + (si * w + j - pad + kj0) * in_c,
                              (kj1 - kj0) * in_c);
                    if (kj1 < kernel)
                        FillPad(dst + kj1 * in_c,
                                (kernel - kj1) * in_c);
                }
            }
        }
    });

    int32_t* acc = ws.Acc(static_cast<size_t>(hw * oc));
    std::fill(acc, acc + hw * oc, 0);
    const GemmInt8RowsFn kern = ActiveGemmInt8Rows();
    ParallelFor(0, hw, kQuantPosGrain, [&](int64_t lo, int64_t hi) {
        kern(colq, lda, lin.packed.data(), acc, oc, lo, hi, ckk, oc);
    });
    return acc;
}

} // namespace

bool
ParseQuantMode(const char* text, QuantMode* out)
{
    if (text == nullptr || out == nullptr)
        return false;
    if (std::strcmp(text, "off") == 0) {
        *out = QuantMode::kOff;
        return true;
    }
    if (std::strcmp(text, "int8") == 0) {
        *out = QuantMode::kInt8;
        return true;
    }
    return false;
}

const char*
QuantModeName(QuantMode mode)
{
    return mode == QuantMode::kInt8 ? "int8" : "off";
}

void
QuantizedLinear::QuantizeWeights(const float* w, int64_t k_dim,
                                 int64_t n_dim, int64_t row_stride,
                                 int64_t col_stride)
{
    SINAN_CHECK_MSG(k_dim > 0 && n_dim > 0,
                    "QuantizeWeights: empty matrix (" << k_dim << "x"
                        << n_dim << ")");
    // 255 * kInt8WeightMax per k step must never overflow the int32
    // accumulator (see gemm_int8_kernels.h).
    SINAN_CHECK_MSG(k_dim < (1 << 17),
                    "QuantizeWeights: k too large for exact int32 "
                    "accumulation ("
                        << k_dim << ")");
    k = k_dim;
    n = n_dim;
    w_scale.assign(static_cast<size_t>(n), 1.0f);
    col_sum.assign(static_cast<size_t>(n), 0);
    std::vector<int8_t> q(static_cast<size_t>(k * n), 0);
    for (int64_t j = 0; j < n; ++j) {
        float amax = 0.0f;
        for (int64_t p = 0; p < k; ++p) {
            const float v =
                std::fabs(w[p * row_stride + j * col_stride]);
            amax = std::max(amax, v);
        }
        const float s =
            amax > 0.0f ? amax / static_cast<float>(kInt8WeightMax)
                        : 1.0f;
        w_scale[static_cast<size_t>(j)] = s;
        const float inv = 1.0f / s;
        int32_t sum = 0;
        for (int64_t p = 0; p < k; ++p) {
            const int32_t r = std::clamp(
                RoundNearest(w[p * row_stride + j * col_stride] * inv),
                -kInt8WeightMax, kInt8WeightMax);
            q[static_cast<size_t>(p * n + j)] = static_cast<int8_t>(r);
            sum += r;
        }
        col_sum[static_cast<size_t>(j)] = sum;
    }
    zp_corr.assign(static_cast<size_t>(n), 0);
    for (int64_t j = 0; j < n; ++j)
        zp_corr[static_cast<size_t>(j)] =
            128 * col_sum[static_cast<size_t>(j)];
    packed.assign(static_cast<size_t>(Int8PackedSize(k, n)), 0);
    PackInt8B(q.data(), n, k, n, packed.data());
}

void
QuantizedLinear::SetActivationScale(float max_abs)
{
    act_scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
    inv_act_scale = 1.0f / act_scale;
    requant_scale.assign(w_scale.size(), 0.0f);
    for (size_t j = 0; j < w_scale.size(); ++j)
        requant_scale[j] = act_scale * w_scale[j];
}

void
QuantizeActivationsU8(const float* x, int64_t count, float inv_scale,
                      uint8_t* out)
{
    ActiveQuantizeU8()(x, count, inv_scale, out);
}

void
QuantizeImageChannelLast(const float* x, int in_c, int64_t hw,
                         float inv_scale, uint8_t* xq)
{
    // Transposing gather — scalar QuantizeU8One per element, which is
    // what the bulk quantizers compute, so dispatch mode is irrelevant
    // here (the images are small: in_c * hw elements).
    for (int c = 0; c < in_c; ++c) {
        const float* src = x + static_cast<size_t>(c) * hw;
        uint8_t* dst = xq + c;
        for (int64_t p = 0; p < hw; ++p)
            dst[p * in_c] = QuantizeU8One(src[p], inv_scale);
    }
}

void
QuantizeConvWeights(QuantizedLinear& lin, const float* w, int in_c,
                    int oc, int kernel)
{
    const int64_t ckk = static_cast<int64_t>(in_c) * kernel * kernel;
    // Permute [OC, C, K, K] into the (ki, kj, c)-ordered [ckk, oc]
    // view the channel-last im2col rows multiply against.
    std::vector<float> tmp(static_cast<size_t>(ckk * oc));
    for (int64_t j = 0; j < oc; ++j) {
        for (int c = 0; c < in_c; ++c) {
            for (int ki = 0; ki < kernel; ++ki) {
                for (int kj = 0; kj < kernel; ++kj) {
                    const int64_t p =
                        (static_cast<int64_t>(ki) * kernel + kj) * in_c +
                        c;
                    tmp[static_cast<size_t>(p * oc + j)] =
                        w[((j * in_c + c) * kernel + ki) * kernel + kj];
                }
            }
        }
    }
    lin.QuantizeWeights(tmp.data(), ckk, oc, /*row_stride=*/oc,
                        /*col_stride=*/1);
}

void
QuantizeDenseWeightsChannelLast(QuantizedLinear& lin, const float* w,
                                int64_t in, int64_t out, int chans)
{
    SINAN_CHECK_MSG(chans > 0 && in % chans == 0,
                    "QuantizeDenseWeightsChannelLast: in ("
                        << in << ") not divisible by chans (" << chans
                        << ")");
    const int64_t hw = in / chans;
    // Row p * chans + c of the permuted matrix is row c * hw + p of
    // the channel-major original.
    std::vector<float> tmp(static_cast<size_t>(in * out));
    for (int64_t p = 0; p < hw; ++p) {
        for (int64_t c = 0; c < chans; ++c) {
            std::memcpy(tmp.data() + (p * chans + c) * out,
                        w + (c * hw + p) * out,
                        static_cast<size_t>(out) * sizeof(float));
        }
    }
    lin.QuantizeWeights(tmp.data(), in, out, /*row_stride=*/out,
                        /*col_stride=*/1);
}

void
QuantizedDenseForward(const QuantizedLinear& lin,
                      const std::vector<float>& bias, const Tensor& x,
                      Tensor& y, Int8Workspace& ws)
{
    SINAN_CHECK_MSG(lin.Ready(),
                    "QuantizedDenseForward: layer not calibrated");
    SINAN_CHECK_EQ(x.Rank(), 2);
    SINAN_CHECK_EQ(x.Dim(1), static_cast<int>(lin.k));
    const int64_t batch = x.Dim(0);
    const int64_t in = lin.k;
    const int64_t out = lin.n;
    SINAN_CHECK_EQ(bias.size(), static_cast<size_t>(out));

    const int64_t lda = Int8KGroups(in) * 4;
    uint8_t* aq = ws.Act(static_cast<size_t>(batch * lda));
    const QuantizeU8Fn qfn = ActiveQuantizeU8();
    ParallelFor(0, batch, kQuantRowGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i)
            qfn(x.Data() + i * in, in, lin.inv_act_scale, aq + i * lda);
    });

    int32_t* acc = ws.Acc(static_cast<size_t>(batch * out));
    std::fill(acc, acc + batch * out, 0);
    const GemmInt8RowsFn kern = ActiveGemmInt8Rows();
    ParallelFor(0, batch, kQuantRowGrain, [&](int64_t lo, int64_t hi) {
        kern(aq, lda, lin.packed.data(), acc, out, lo, hi, in, out);
    });

    y.EnsureShape({static_cast<int>(batch), static_cast<int>(out)});
    ParallelFor(0, batch, kQuantRowGrain, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const int32_t* arow = acc + i * out;
            float* yrow = y.Data() + static_cast<size_t>(i) * out;
            for (int64_t j = 0; j < out; ++j) {
                const int32_t centered =
                    arow[j] -
                    128 * lin.col_sum[static_cast<size_t>(j)];
                yrow[j] = bias[static_cast<size_t>(j)] +
                          lin.requant_scale[static_cast<size_t>(j)] *
                              static_cast<float>(centered);
            }
        }
    });
}

void
QuantizedDenseForwardU8(const QuantizedLinear& lin,
                        const std::vector<float>& bias, const uint8_t* xq,
                        Tensor& y, Int8Workspace& ws)
{
    SINAN_CHECK_MSG(lin.Ready(),
                    "QuantizedDenseForwardU8: layer not calibrated");
    const int64_t in = lin.k;
    const int64_t out = lin.n;
    SINAN_CHECK_EQ(bias.size(), static_cast<size_t>(out));
    const int64_t lda = Int8KGroups(in) * 4;
    int32_t* acc = ws.Acc(static_cast<size_t>(out));
    std::fill(acc, acc + out, 0);
    ActiveGemmInt8Rows()(xq, lda, lin.packed.data(), acc, out, 0, 1, in,
                         out);
    y.EnsureShape({1, static_cast<int>(out)});
    float* yrow = y.Data();
    for (int64_t j = 0; j < out; ++j) {
        const int32_t centered =
            acc[j] - 128 * lin.col_sum[static_cast<size_t>(j)];
        yrow[j] = bias[static_cast<size_t>(j)] +
                  lin.requant_scale[static_cast<size_t>(j)] *
                      static_cast<float>(centered);
    }
}

void
QuantizedConvForward(const QuantizedLinear& lin,
                     const std::vector<float>& bias, int kernel,
                     const Tensor& x, Tensor& y, Int8Workspace& ws)
{
    SINAN_CHECK_MSG(lin.Ready(),
                    "QuantizedConvForward: layer not calibrated");
    SINAN_CHECK_EQ(x.Rank(), 4);
    SINAN_CHECK_EQ(x.Dim(0), 1);
    const int in_c = x.Dim(1), h = x.Dim(2), w = x.Dim(3);
    const int64_t hw = static_cast<int64_t>(h) * w;
    const int64_t oc = lin.n;
    SINAN_CHECK_EQ(bias.size(), static_cast<size_t>(oc));

    // Quantize the input image once (into the channel-last layout the
    // run-copy im2col consumes); the gather below then only moves
    // bytes, so padding and overlap cost no further rounding.
    uint8_t* xq = ws.Act(static_cast<size_t>(in_c) * hw);
    QuantizeImageChannelLast(x.Data(), in_c, hw, lin.inv_act_scale, xq);

    const int32_t* acc = ConvInt8Core(lin, kernel, xq, in_c, h, w, ws);

    // Requantize back into channel-major planes.
    y.EnsureShape({1, static_cast<int>(oc), h, w});
    for (int64_t c = 0; c < oc; ++c) {
        const float b = bias[static_cast<size_t>(c)];
        const float rs = lin.requant_scale[static_cast<size_t>(c)];
        const int32_t zp = 128 * lin.col_sum[static_cast<size_t>(c)];
        float* yrow = y.Data() + static_cast<size_t>(c) * hw;
        for (int64_t i = 0; i < hw; ++i) {
            yrow[i] =
                b + rs * static_cast<float>(acc[i * oc + c] - zp);
        }
    }
}

void
QuantizedConvForwardU8(const QuantizedLinear& lin,
                       const std::vector<float>& bias, int kernel,
                       const uint8_t* xq, int in_c, int h, int w,
                       float inv_next, uint8_t* out, Int8Workspace& ws)
{
    SINAN_CHECK_MSG(lin.Ready(),
                    "QuantizedConvForwardU8: layer not calibrated");
    const int64_t hw = static_cast<int64_t>(h) * w;
    const int64_t oc = lin.n;
    SINAN_CHECK_EQ(bias.size(), static_cast<size_t>(oc));

    const int32_t* acc = ConvInt8Core(lin, kernel, xq, in_c, h, w, ws);
    ActiveRequantReluU8()(acc, hw, oc, bias.data(),
                          lin.requant_scale.data(), lin.zp_corr.data(),
                          inv_next, out);
}

} // namespace sinan
