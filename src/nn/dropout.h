/**
 * @file
 * Inverted dropout. Training-time regularization for the larger latency
 * predictors; a no-op in inference mode.
 */
#ifndef SINAN_NN_DROPOUT_H
#define SINAN_NN_DROPOUT_H

#include "nn/layer.h"

namespace sinan {

/**
 * Inverted dropout: during training each activation is zeroed with
 * probability p and survivors are scaled by 1/(1-p), so inference needs
 * no rescaling. Toggle with SetTraining(); constructed in training mode.
 */
class Dropout : public Layer {
  public:
    /**
     * @param p drop probability in [0, 1).
     * @param seed RNG seed for the drop masks.
     */
    explicit Dropout(double p, uint64_t seed = 1);

    Tensor Forward(const Tensor& x) override;
    Tensor Backward(const Tensor& dy) override;

    void SetTraining(bool training) { training_ = training; }
    bool IsTraining() const { return training_; }
    double DropProbability() const { return p_; }

  private:
    double p_;
    Rng rng_;
    bool training_ = true;
    Tensor mask_; // scale factors of the last training forward
};

} // namespace sinan

#endif // SINAN_NN_DROPOUT_H
