/**
 * @file
 * Ordered container of layers with chained forward/backward, used both
 * standalone (MLP baseline) and as the branch blocks of Sinan's
 * multi-input CNN.
 */
#ifndef SINAN_NN_SEQUENTIAL_H
#define SINAN_NN_SEQUENTIAL_H

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace sinan {

/** A pipeline of layers applied in order. */
class Sequential : public Layer {
  public:
    Sequential() = default;

    /** Appends a layer, returning *this for chaining. */
    Sequential&
    Add(std::unique_ptr<Layer> layer)
    {
        layers_.push_back(std::move(layer));
        return *this;
    }

    /** Convenience: constructs the layer in place. */
    template <typename L, typename... Args>
    Sequential&
    Emplace(Args&&... args)
    {
        layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
        return *this;
    }

    Tensor
    Forward(const Tensor& x) override
    {
        Tensor h = x;
        for (auto& l : layers_)
            h = l->Forward(h);
        return h;
    }

    Tensor
    Backward(const Tensor& dy) override
    {
        Tensor g = dy;
        for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
            g = (*it)->Backward(g);
        return g;
    }

    std::vector<Param*>
    Params() override
    {
        std::vector<Param*> all;
        for (auto& l : layers_) {
            for (Param* p : l->Params())
                all.push_back(p);
        }
        return all;
    }

    void
    Save(std::ostream& out) const override
    {
        for (const auto& l : layers_)
            l->Save(out);
    }

    void
    Load(std::istream& in) override
    {
        for (auto& l : layers_)
            l->Load(in);
    }

    size_t NumLayers() const { return layers_.size(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

} // namespace sinan

#endif // SINAN_NN_SEQUENTIAL_H
