/**
 * @file
 * Stochastic gradient descent with momentum and weight decay (the paper
 * trains its CNN with SGD; Sec. 3.1). The optimizer does not own the
 * parameters; it keeps one velocity buffer per registered Param.
 */
#ifndef SINAN_NN_OPTIMIZER_H
#define SINAN_NN_OPTIMIZER_H

#include <vector>

#include "nn/layer.h"

namespace sinan {

/** SGD with classical momentum and decoupled L2 weight decay. */
class Sgd {
  public:
    /**
     * @param params parameters to optimize (must outlive the optimizer).
     * @param lr learning rate.
     * @param momentum velocity coefficient (0 disables).
     * @param weight_decay L2 coefficient applied to the gradient.
     * @param clip_norm global gradient-norm clip (0 disables). Keeps
     *        training stable at learning rates that would otherwise
     *        diverge on spiky latency targets.
     */
    Sgd(std::vector<Param*> params, double lr, double momentum = 0.9,
        double weight_decay = 1e-4, double clip_norm = 0.0);

    /** Applies one update from the accumulated gradients. */
    void Step();

    /** Clears all parameter gradients. */
    void ZeroGrad();

    double LearningRate() const { return lr_; }
    void SetLearningRate(double lr) { lr_ = lr; }

  private:
    std::vector<Param*> params_;
    std::vector<Tensor> velocity_;
    double lr_;
    double momentum_;
    double weight_decay_;
    double clip_norm_;
};

} // namespace sinan

#endif // SINAN_NN_OPTIMIZER_H
