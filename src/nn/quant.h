/**
 * @file
 * Post-training int8 quantization of the inference path (the ROADMAP's
 * "quantized int8 inference as a separately validated mode").
 *
 * Scheme — standard symmetric-weight / asymmetric-activation
 * quantization, specialized for exact AVX2 maddubs accumulation:
 *
 *   weights      per output channel j (a column of the [k, n] GEMM
 *                operand): s_w[j] = max|w[:, j]| / kInt8WeightMax,
 *                q_w = clamp(round(w / s_w[j]), -63, 63). The 7-bit
 *                clamp guarantees saturation-free maddubs pair sums
 *                (see tensor/gemm_int8_kernels.h).
 *   activations  per tensor, zero point fixed at 128:
 *                s_a = max|x| / 127 over the calibration set,
 *                q_a = clamp(round(x / s_a) + 128, 0, 255). The fp32
 *                value 0.0 — conv "same" padding, ReLU floors — maps
 *                exactly to byte 128.
 *   accumulate   int32, exact:  acc[i, j] = sum_p q_a[i, p] q_w[p, j]
 *   requantize   once at the end, in fp32:
 *                y[i, j] = bias[j] + s_a s_w[j] (acc[i, j]
 *                                                - 128 * colsum_w[j])
 *
 * Because the integer part is exact and the float part is a fixed
 * per-element expression, the int8 path is byte-identical against
 * itself across thread counts and scalar/AVX2 dispatch — but NOT
 * against fp32: it ships as a separately validated mode (accuracy and
 * decision-agreement gates in tests/quant_test.cc, DESIGN.md §5k).
 *
 * Weight quantization is a pure deterministic function of the fp32
 * weights; only the activation scales carry calibration information.
 * The model file's versioned quant section therefore stores just the
 * activation scales, and the packed panels are rebuilt on load.
 */
#ifndef SINAN_NN_QUANT_H
#define SINAN_NN_QUANT_H

#include <cstdint>
#include <vector>

#include "tensor/gemm_int8_kernels.h"
#include "tensor/tensor.h"

namespace sinan {

/** Inference arithmetic mode of a HybridModel (plumbed from the
 *  sinan_sim --quant flag through scheduler and fleet config). kOff is
 *  byte-identical to the pre-quantization fp32 path. */
enum class QuantMode { kOff, kInt8 };

/** Parses "off" / "int8" (returns false on anything else, leaving
 *  @p out untouched) — the sim_cli --quant flag values. */
bool ParseQuantMode(const char* text, QuantMode* out);

/** Stable flag-value name of a mode ("off" / "int8"). */
const char* QuantModeName(QuantMode mode);

/**
 * Scratch buffers of the quantized forward path. Owned by the model's
 * CnnEvalWorkspace and cloned with it; buffers only ever grow, so the
 * steady-state loop performs no allocations — GrowthEvents() is the
 * int8 counterpart of Tensor::AllocationEvents() and is asserted flat
 * by the workspace-reuse tests.
 */
class Int8Workspace {
  public:
    /** Quantized activation rows (GEMM a operand). */
    uint8_t* Act(size_t n) { return Grow(act_, n); }
    /** Quantized im2col panel (conv a operand). */
    uint8_t* Col(size_t n) { return Grow(col_, n); }
    /** int32 accumulators (GEMM c operand). */
    int32_t* Acc(size_t n) { return Grow(acc_, n); }
    /** Fused-requantize u8 output (layer-chaining buffer, so a fused
     *  conv can write its output while Act still holds its input). */
    uint8_t* Out(size_t n) { return Grow(out_, n); }

    /** Buffer growths since construction (0 growth = steady state). */
    int64_t GrowthEvents() const { return growth_events_; }

  private:
    template <typename T>
    T*
    Grow(std::vector<T>& v, size_t n)
    {
        if (n > v.size()) {
            v.resize(n);
            ++growth_events_;
        }
        return v.data();
    }

    std::vector<uint8_t> act_;
    std::vector<uint8_t> col_;
    std::vector<int32_t> acc_;
    std::vector<uint8_t> out_;
    int64_t growth_events_ = 0;
};

/**
 * One conv/dense weight matrix quantized per output channel and packed
 * for the int8 row-panel kernels, plus the calibrated activation scale
 * of its input tensor.
 */
struct QuantizedLinear {
    /** K4-packed int8 weights (tensor/gemm_int8_kernels.h layout). */
    std::vector<int8_t> packed;
    /** Per-output-channel weight scales s_w[j]. */
    std::vector<float> w_scale;
    /** Per-output-channel sums of quantized weights. */
    std::vector<int32_t> col_sum;
    /** Precomputed zero-point correction 128 * col_sum (what the
     *  requantize kernels subtract from each accumulator). */
    std::vector<int32_t> zp_corr;
    /** Per-tensor input activation scale s_a (from calibration). */
    float act_scale = 0.0f;
    /** Reciprocal used when quantizing activations (cached). */
    float inv_act_scale = 0.0f;
    /** Per-output-channel requantization factor s_a * s_w[j]. */
    std::vector<float> requant_scale;
    int64_t k = 0;
    int64_t n = 0;

    bool Ready() const { return !packed.empty() && act_scale > 0.0f; }

    /**
     * Quantizes and packs a [k, n] weight view. Element (p, j) is read
     * at w[p * row_stride + j * col_stride], so both the Dense layout
     * ([in, out]: row_stride = n, col_stride = 1) and the transposed
     * conv layout ([oc, ckk] consumed as [ckk, oc]: row_stride = 1,
     * col_stride = k) quantize per OUTPUT channel.
     */
    void QuantizeWeights(const float* w, int64_t k_dim, int64_t n_dim,
                         int64_t row_stride, int64_t col_stride);

    /** Sets the calibrated input scale from the observed max |x| and
     *  derives the cached requantization factors. */
    void SetActivationScale(float max_abs);
};

/** Quantizes @p count activations to u8 with zero point 128 via the
 *  dispatched bulk quantizer (QuantizeU8One semantics — see
 *  tensor/gemm_int8_kernels.h; scalar and AVX2 are byte-identical). */
void QuantizeActivationsU8(const float* x, int64_t count, float inv_scale,
                           uint8_t* out);

/**
 * Quantizes a channel-major fp32 image ([C, HW] planes, the Tensor
 * conv layout) into a channel-LAST u8 image xq[p * in_c + c]. The
 * channel-last layout is what makes the int8 im2col cheap: a conv
 * patch in (ki, kj, c) order is `kernel` contiguous byte runs of the
 * image, gathered with memcpy instead of per-byte strided writes.
 */
void QuantizeImageChannelLast(const float* x, int in_c, int64_t hw,
                              float inv_scale, uint8_t* xq);

/**
 * Quantizes and packs conv weights w [OC, C, K, K] with k index
 * p = (ki * K + kj) * C + c — the channel-last patch order above — so
 * the packed panel lines up with the im2col rows. The per-output-
 * channel scales and column sums are permutation-invariant, so this
 * produces the same s_w / col_sum as any other patch order.
 */
void QuantizeConvWeights(QuantizedLinear& lin, const float* w, int in_c,
                         int oc, int kernel);

/**
 * Quantizes and packs dense weights w [in, out] with the INPUT rows
 * permuted from the channel-major flatten order (row c * hw + p) to
 * the channel-last order (row p * chans + c) a fused conv emits — so
 * the dense layer after a conv stack consumes the conv's u8 output
 * directly, with no transpose at inference time. @p in must be
 * divisible by @p chans. Scales and column sums are permutation-
 * invariant, and integer addition is exact, so results are identical
 * to the unpermuted layer fed transposed input.
 */
void QuantizeDenseWeightsChannelLast(QuantizedLinear& lin, const float* w,
                                     int64_t in, int64_t out, int chans);

/**
 * Quantized dense forward: y = dequant(q(x) * q(W)) + b, x [B, in]
 * fp32 in, y [B, out] fp32 out (resized via EnsureShape). Bit-identical
 * across thread counts and scalar/AVX2 dispatch.
 */
void QuantizedDenseForward(const QuantizedLinear& lin,
                           const std::vector<float>& bias, const Tensor& x,
                           Tensor& y, Int8Workspace& ws);

/**
 * Dense forward on a single pre-quantized row: @p xq must hold
 * Int8KGroups(k) * 4 readable bytes (bytes past k multiply packed
 * zeros). Skips the quantization pass — the fused conv pipeline hands
 * its u8 output straight to the next dense layer.
 */
void QuantizedDenseForwardU8(const QuantizedLinear& lin,
                             const std::vector<float>& bias,
                             const uint8_t* xq, Tensor& y,
                             Int8Workspace& ws);

/**
 * Quantized conv forward (odd kernel, "same" zero padding, batch of
 * 1): x [1, C, H, W] fp32 in, y [1, OC, H, W] fp32 out. Internally the
 * product is computed transposed — positions x output channels — so
 * the per-output-channel scales land on GEMM columns; the requantize
 * loop writes the planes back in [OC, H, W] order. Weights must be
 * packed by QuantizeConvWeights (channel-last patch order).
 */
void QuantizedConvForward(const QuantizedLinear& lin,
                          const std::vector<float>& bias, int kernel,
                          const Tensor& x, Tensor& y, Int8Workspace& ws);

/**
 * Fused conv -> relu -> quantize: consumes a channel-last u8 image
 * (QuantizeImageChannelLast, or a previous fused conv) and emits the
 * next layer's quantized input directly — channel-last u8, skipping
 * the fp32 round trip. A following conv reads it as its image; a
 * following dense layer packed with QuantizeDenseWeightsChannelLast
 * reads it as its input row. @p inv_next is the NEXT layer's
 * inv_act_scale; @p out must hold OC * H * W bytes (plus padding up to
 * the next layer's lda if it feeds QuantizedDenseForwardU8 — the bytes
 * past OC * H * W are left untouched and multiply packed zeros there).
 *
 * Byte-equivalence with the unfused path: requantization computes the
 * same fp32 value v = bias + rs * (acc - zp) the unfused conv writes,
 * and quantization is monotonic with q(0) = 128, so
 * q(relu(v)) = max(q(v), 128) — fused relu is exact, not approximate
 * (see RequantReluU8Scalar in tensor/gemm_int8_kernels.h).
 */
void QuantizedConvForwardU8(const QuantizedLinear& lin,
                            const std::vector<float>& bias, int kernel,
                            const uint8_t* xq, int in_c, int h, int w,
                            float inv_next, uint8_t* out,
                            Int8Workspace& ws);

} // namespace sinan

#endif // SINAN_NN_QUANT_H
