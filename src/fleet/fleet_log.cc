#include "fleet/fleet_log.h"

#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace sinan {

namespace {

bool
EndsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/** Minimal JSON string escaping (fault specs are plain ASCII, but a
 *  quote or backslash must not corrupt the document). */
std::string
JsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
AppendClusterJson(std::ostringstream& out, const FleetClusterResult& c)
{
    out << "    {\"cluster\": " << c.spec.index << ", \"app\": \""
        << c.spec.app << "\", \"app_name\": \"" << JsonEscape(c.app_name)
        << "\", \"manager\": \"" << c.spec.manager
        << "\", \"users\": " << c.spec.users
        << ", \"seed\": " << c.spec.seed << ", \"faults\": \""
        << JsonEscape(c.spec.faults) << "\", \"qos_ms\": " << c.qos_ms
        << ", \"qos_meet_prob\": " << c.result.qos_meet_prob
        << ", \"mean_cpu\": " << c.result.mean_cpu
        << ", \"max_cpu\": " << c.result.max_cpu
        << ", \"mean_p99_ms\": " << c.result.mean_p99_ms
        << ", \"recovery_intervals\": " << c.recovery_intervals << "}";
}

} // namespace

std::string
FleetTraceToCsv(const FleetResult& result)
{
    std::ostringstream out;
    out << "interval,time_s,cluster,app,manager,seed,rps,p99_ms,qos_ms,"
           "violated,total_cpu,predicted_p99_ms,predicted_violation\n";
    out.setf(std::ios::fixed);
    out.precision(4);
    const size_t intervals =
        result.clusters.empty()
            ? 0
            : result.clusters.front().result.timeline.size();
    for (const FleetClusterResult& c : result.clusters)
        SINAN_CHECK_MSG(c.result.timeline.size() == intervals,
                        "FleetTraceToCsv: clusters disagree on "
                        "interval count");
    for (size_t i = 0; i < intervals; ++i) {
        for (const FleetClusterResult& c : result.clusters) {
            const IntervalRecord& rec = c.result.timeline[i];
            out << i << ',' << rec.time_s << ',' << c.spec.index << ','
                << c.spec.app << ',' << c.spec.manager << ','
                << c.spec.seed << ',' << rec.rps << ',' << rec.p99_ms
                << ',' << c.qos_ms << ','
                << (rec.p99_ms > c.qos_ms ? 1 : 0) << ','
                << rec.total_cpu << ',' << rec.predicted_p99_ms << ','
                << rec.predicted_violation << '\n';
        }
    }
    return out.str();
}

std::string
FleetSummaryToCsv(const FleetResult& result)
{
    std::ostringstream out;
    out << "cluster,app,manager,users,seed,faults,qos_ms,"
           "qos_meet_prob,mean_cpu,max_cpu,mean_p99_ms,"
           "recovery_intervals\n";
    out.setf(std::ios::fixed);
    out.precision(4);
    for (const FleetClusterResult& c : result.clusters) {
        out << c.spec.index << ',' << c.spec.app << ',' << c.spec.manager
            << ',' << c.spec.users << ',' << c.spec.seed << ",\""
            << c.spec.faults << "\"," << c.qos_ms << ','
            << c.result.qos_meet_prob << ',' << c.result.mean_cpu << ','
            << c.result.max_cpu << ',' << c.result.mean_p99_ms << ','
            << c.recovery_intervals << '\n';
    }
    out << "fleet,,,,,," << ',' << result.qos_meet_prob << ','
        << result.mean_total_cpu << ',' << result.max_total_cpu << ","
        << ",\n";
    return out.str();
}

std::string
FleetSummaryToJson(const FleetResult& result, bool include_timing)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(4);
    out << "{\n  \"clusters\": [\n";
    for (size_t k = 0; k < result.clusters.size(); ++k) {
        AppendClusterJson(out, result.clusters[k]);
        out << (k + 1 < result.clusters.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"fleet\": {\"n_clusters\": "
        << result.clusters.size()
        << ", \"qos_meet_prob\": " << result.qos_meet_prob
        << ", \"measured_cluster_intervals\": "
        << result.measured_cluster_intervals
        << ", \"violation_cluster_intervals\": "
        << result.violation_cluster_intervals
        << ", \"mean_total_cpu\": " << result.mean_total_cpu
        << ", \"max_total_cpu\": " << result.max_total_cpu << "}";
    if (include_timing) {
        out << ",\n  \"timing\": {\"threads\": " << result.threads
            << ", \"wall_s\": " << result.wall_s
            << ", \"shard_intervals_per_s\": "
            << result.shard_intervals_per_s
            << ", \"model_clones\": " << result.model_clones
            << ", \"decide_ms\": {\"mean\": " << result.decide.mean_ms
            << ", \"p50\": " << result.decide.p50_ms
            << ", \"p95\": " << result.decide.p95_ms
            << ", \"p99\": " << result.decide.p99_ms
            << ", \"max\": " << result.decide.max_ms << "}}";
    }
    out << "\n}\n";
    return out.str();
}

void
WriteFleetTrace(const std::string& path, const FleetResult& result)
{
    WriteFile(path, FleetTraceToCsv(result));
}

void
WriteFleetReport(const std::string& path, const FleetResult& result)
{
    if (EndsWith(path, ".json"))
        WriteFile(path, FleetSummaryToJson(result));
    else
        WriteFile(path, FleetSummaryToCsv(result));
}

} // namespace sinan
