#include "fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>

#include "baselines/autoscale.h"
#include "baselines/powerchief.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"

namespace sinan {
namespace {

/** Keep-current-allocation manager (the "hold" baseline). */
class HoldManager : public ResourceManager {
  public:
    std::vector<double>
    Decide(const IntervalObservation&, const std::vector<double>& alloc,
           const Application&) override
    {
        return alloc;
    }
    const char* Name() const override { return "Hold"; }
};

/** splitmix64 finalizer: decorrelates per-shard seeds derived from the
 *  fleet seed so neighbouring shards do not share arrival streams. */
uint64_t
MixSeed(uint64_t fleet_seed, int index)
{
    uint64_t z = fleet_seed ^
                 (0x9e3779b97f4a7c15ULL *
                  (static_cast<uint64_t>(index) + 1));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z == 0 ? 1 : z;
}

bool
KnownApp(const std::string& app)
{
    return app == "hotel" || app == "social";
}

bool
KnownManager(const std::string& manager)
{
    return manager == "sinan" || manager == "opt" || manager == "cons" ||
           manager == "powerchief" || manager == "hold";
}

/**
 * Per-app default load when the fleet config leaves users unset,
 * staggered ±20% by shard index so a default fleet exercises distinct
 * operating points rather than N copies of one cluster.
 */
double
DefaultUsers(const std::string& app, int index)
{
    const double base = app == "hotel" ? 2000.0 : 250.0;
    const double stagger[] = {1.0, 0.8, 1.2, 0.9, 1.1};
    return base * stagger[index % 5];
}

[[noreturn]] void
BadOverride(const std::string& what, const std::string& text)
{
    throw std::invalid_argument("ParseShardOverride: " + what + " in '" +
                                text + "'");
}

/** Full-consumption strtod; rejects trailing garbage. */
double
ParseOverrideDouble(const std::string& value, const std::string& text)
{
    if (value.empty())
        BadOverride("empty number", text);
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || !std::isfinite(parsed))
        BadOverride("bad number '" + value + "'", text);
    return parsed;
}

uint64_t
ParseOverrideU64(const std::string& value, const std::string& text)
{
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos)
        BadOverride("bad seed '" + value + "'", text);
    return std::strtoull(value.c_str(), nullptr, 10);
}

/** Nearest-rank percentile of an unsorted sample (q in [0,1]). */
double
Percentile(std::vector<double> xs, double q)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank = q * static_cast<double>(xs.size());
    int64_t idx = static_cast<int64_t>(std::ceil(rank)) - 1;
    idx = std::min<int64_t>(std::max<int64_t>(idx, 0),
                            static_cast<int64_t>(xs.size()) - 1);
    return xs[static_cast<size_t>(idx)];
}

/** The injected application for shard-app @p app. Null is a contract
 *  violation: the caller configured a shard it supplied no app for. */
const Application&
AppForKind(const FleetApps& apps, const std::string& app)
{
    const Application* a = app == "hotel" ? apps.hotel : apps.social;
    SINAN_CHECK_MSG(a != nullptr,
                    "fleet: FleetApps is missing the application for "
                    "a configured shard");
    return *a;
}

} // namespace

ShardOverride
ParseShardOverride(const std::string& text)
{
    ShardOverride ov;
    const size_t colon = text.find(':');
    if (colon == std::string::npos)
        BadOverride("expected 'INDEX:key=val[,...]'", text);
    const std::string idx = text.substr(0, colon);
    if (idx.empty() ||
        idx.find_first_not_of("0123456789") != std::string::npos)
        BadOverride("bad shard index '" + idx + "'", text);
    ov.index = static_cast<int>(std::strtol(idx.c_str(), nullptr, 10));

    std::string rest = text.substr(colon + 1);
    if (rest.empty())
        BadOverride("expected at least one key=val", text);
    while (!rest.empty()) {
        const size_t eq = rest.find('=');
        if (eq == std::string::npos || eq == 0)
            BadOverride("expected key=val, got '" + rest + "'", text);
        const std::string key = rest.substr(0, eq);
        if (key == "faults") {
            // Fault specs embed ',' and ';', so faults= swallows the
            // rest of the override (documented: must come last).
            ov.faults = rest.substr(eq + 1);
            ov.faults_set = true;
            break;
        }
        const size_t comma = rest.find(',', eq + 1);
        const std::string value =
            comma == std::string::npos
                ? rest.substr(eq + 1)
                : rest.substr(eq + 1, comma - eq - 1);
        if (key == "app") {
            if (!KnownApp(value))
                BadOverride("unknown app '" + value + "'", text);
            ov.app = value;
        } else if (key == "manager") {
            if (!KnownManager(value))
                BadOverride("unknown manager '" + value + "'", text);
            ov.manager = value;
        } else if (key == "users") {
            ov.users = ParseOverrideDouble(value, text);
            if (ov.users <= 0.0)
                BadOverride("users must be > 0", text);
        } else if (key == "seed") {
            ov.seed = ParseOverrideU64(value, text);
            if (ov.seed == 0)
                BadOverride("seed must be > 0", text);
        } else {
            BadOverride("unknown key '" + key + "'", text);
        }
        rest = comma == std::string::npos ? std::string()
                                          : rest.substr(comma + 1);
        if (comma != std::string::npos && rest.empty())
            BadOverride("trailing ','", text);
    }
    return ov;
}

std::vector<ShardSpec>
ResolveFleetShards(const FleetConfig& cfg, const FleetApps& apps)
{
    if (cfg.n_clusters < 1)
        throw std::invalid_argument(
            "ResolveFleetShards: --fleet must be >= 1");
    if (!cfg.default_app.empty() && !KnownApp(cfg.default_app))
        throw std::invalid_argument(
            "ResolveFleetShards: unknown app '" + cfg.default_app + "'");
    if (!KnownManager(cfg.default_manager))
        throw std::invalid_argument(
            "ResolveFleetShards: unknown manager '" +
            cfg.default_manager + "'");
    if (cfg.default_users < 0.0)
        throw std::invalid_argument(
            "ResolveFleetShards: users must be > 0");

    std::vector<const ShardOverride*> by_index(
        static_cast<size_t>(cfg.n_clusters), nullptr);
    std::set<int> seen;
    for (const ShardOverride& ov : cfg.overrides) {
        if (ov.index < 0 || ov.index >= cfg.n_clusters)
            throw std::invalid_argument(
                "ResolveFleetShards: --fleet-shard index " +
                std::to_string(ov.index) + " outside fleet of " +
                std::to_string(cfg.n_clusters));
        if (!seen.insert(ov.index).second)
            throw std::invalid_argument(
                "ResolveFleetShards: duplicate --fleet-shard index " +
                std::to_string(ov.index));
        by_index[static_cast<size_t>(ov.index)] = &ov;
    }

    std::vector<ShardSpec> specs;
    specs.reserve(static_cast<size_t>(cfg.n_clusters));
    for (int i = 0; i < cfg.n_clusters; ++i) {
        const ShardOverride* ov = by_index[static_cast<size_t>(i)];
        ShardSpec s;
        s.index = i;
        s.app = cfg.default_app.empty()
                    ? (i % 2 == 0 ? "social" : "hotel")
                    : cfg.default_app;
        if (ov && !ov->app.empty())
            s.app = ov->app;
        s.manager = cfg.default_manager;
        if (ov && !ov->manager.empty())
            s.manager = ov->manager;
        s.users = ov && ov->users > 0.0
                      ? ov->users
                      : (cfg.default_users > 0.0 ? cfg.default_users
                                                 : DefaultUsers(s.app, i));
        s.seed = ov && ov->seed != 0 ? ov->seed : MixSeed(cfg.seed, i);
        if (ov && ov->faults_set)
            s.faults = ov->faults;
        // Surface bad fault specs at resolve time, not mid-run: parse
        // and validate against the target app's tier count.
        if (!s.faults.empty()) {
            const FaultSchedule schedule = ParseFaultSpec(s.faults);
            ValidateFaultSchedule(
                schedule,
                static_cast<int>(AppForKind(apps, s.app).tiers.size()));
        }
        specs.push_back(std::move(s));
    }
    return specs;
}

std::unique_ptr<ResourceManager>
MakeBaselineManager(const std::string& name)
{
    if (name == "opt")
        return std::make_unique<AutoScaler>(MakeAutoScaleOpt());
    if (name == "cons")
        return std::make_unique<AutoScaler>(MakeAutoScaleCons());
    if (name == "powerchief")
        return std::make_unique<PowerChief>();
    if (name == "hold")
        return std::make_unique<HoldManager>();
    throw std::invalid_argument(
        "MakeBaselineManager: unknown manager '" + name + "'");
}

/**
 * Pool of weight-identical HybridModel clones, one handed to each
 * concurrently-deciding Sinan shard. Checkout order is scheduling-
 * dependent, but because every clone carries the same weights and
 * Evaluate() depends only on weights and inputs, the decisions — and
 * hence the fleet trace — are unaffected. Grows on demand, so the pool
 * never blocks regardless of the thread count.
 */
struct FleetManager::ClonePool {
    const HybridModel* source = nullptr;
    std::mutex mu;
    std::vector<std::unique_ptr<HybridModel>> owned;
    std::vector<HybridModel*> free_list;

    explicit ClonePool(const HybridModel& src, int preseed)
        : source(&src)
    {
        for (int i = 0; i < std::max(preseed, 1); ++i) {
            owned.push_back(source->Clone());
            free_list.push_back(owned.back().get());
        }
    }

    HybridModel*
    Acquire()
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (free_list.empty()) {
            owned.push_back(source->Clone());
            free_list.push_back(owned.back().get());
        }
        HybridModel* model = free_list.back();
        free_list.pop_back();
        return model;
    }

    void
    Release(HybridModel* model)
    {
        const std::lock_guard<std::mutex> lock(mu);
        free_list.push_back(model);
    }

    /** RAII checkout so a throwing Decide() cannot leak a clone. */
    class Lease {
      public:
        explicit Lease(ClonePool& pool)
            : pool_(pool), model_(pool.Acquire())
        {
        }
        ~Lease() { pool_.Release(model_); }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;

        HybridModel& Model() { return *model_; }

      private:
        ClonePool& pool_;
        HybridModel* model_;
    };
};

/** One cluster of the fleet: the full per-shard simulation state. */
struct FleetManager::Shard {
    Application app;
    std::unique_ptr<ConstantLoad> load;
    std::unique_ptr<ResourceManager> manager;
    /** Set iff the manager is a SinanScheduler (for model rebinding). */
    SinanScheduler* sinan = nullptr;
    /** 0 = hotel, 1 = social (clone-pool index). */
    int kind = 0;
    FaultSchedule faults;
    std::unique_ptr<ManagedRun> run;
};

FleetManager::FleetManager(const FleetConfig& cfg,
                           const FleetModels& models,
                           const FleetApps& apps)
    : cfg_(cfg), specs_(ResolveFleetShards(cfg, apps))
{
    int sinan_shards[2] = {0, 0};
    for (const ShardSpec& spec : specs_)
        if (spec.manager == "sinan")
            ++sinan_shards[spec.app == "hotel" ? 0 : 1];

    const HybridModel* sources[2] = {models.hotel, models.social};
    pools_.resize(2);
    for (int kind = 0; kind < 2; ++kind) {
        if (sinan_shards[kind] == 0)
            continue;
        SINAN_CHECK_MSG(sources[kind] != nullptr,
                        "FleetManager: sinan-managed shard has no "
                        "trained model for its app");
        // Pre-seed roughly one clone per concurrent decider; the pool
        // grows on demand if the thread count rises later.
        const int preseed =
            std::min(sinan_shards[kind], NumThreads());
        pools_[static_cast<size_t>(kind)] =
            std::make_unique<ClonePool>(*sources[kind], preseed);
    }

    shards_.reserve(specs_.size());
    for (const ShardSpec& spec : specs_) {
        auto shard = std::make_unique<Shard>();
        shard->app = AppForKind(apps, spec.app);
        shard->kind = spec.app == "hotel" ? 0 : 1;
        shard->load = std::make_unique<ConstantLoad>(spec.users);
        if (!spec.faults.empty())
            shard->faults = ParseFaultSpec(spec.faults);
        if (spec.manager == "sinan") {
            // Anchor binding only — every Decide() rebinds to a pool
            // clone, so the anchor is never evaluated concurrently.
            auto sinan = std::make_unique<SinanScheduler>(
                *pools_[static_cast<size_t>(shard->kind)]
                     ->owned.front(),
                cfg_.scheduler);
            shard->sinan = sinan.get();
            shard->manager = std::move(sinan);
        } else {
            shard->manager = MakeBaselineManager(spec.manager);
        }

        RunConfig rc;
        rc.duration_s = cfg_.duration_s;
        rc.warmup_s = cfg_.warmup_s;
        rc.sim = cfg_.sim;
        rc.cluster = cfg_.cluster;
        rc.bursts = cfg_.bursts;
        rc.faults = shard->faults;
        rc.seed = spec.seed;
        shard->run = std::make_unique<ManagedRun>(
            shard->app, *shard->manager, *shard->load, rc);
        shards_.push_back(std::move(shard));
    }
}

FleetManager::~FleetManager() = default;

FleetResult
FleetManager::Run()
{
    SINAN_CHECK_MSG(!ran_, "FleetManager: Run called twice");
    ran_ = true;

    FleetResult out;
    out.threads = NumThreads();
    const int64_t n = static_cast<int64_t>(shards_.size());
    const int64_t total =
        shards_.empty() ? 0 : shards_.front()->run->TotalIntervals();
    for (const std::unique_ptr<Shard>& shard : shards_)
        SINAN_CHECK_MSG(shard->run->TotalIntervals() == total,
                        "FleetManager: shards disagree on interval "
                        "count");

    const auto wall_start = std::chrono::steady_clock::now();
    out.decide_ms.reserve(static_cast<size_t>(total));
    out.timeline.reserve(static_cast<size_t>(total));
    for (int64_t interval = 0; interval < total; ++interval) {
        // Phase A: every shard advances one interval concurrently
        // (simulation ticks + harvest + telemetry fault filtering).
        ParallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k)
                shards_[static_cast<size_t>(k)]->run->AdvanceInterval();
        });

        // Phase B: centralized batched decisions. Sinan shards borrow
        // a model clone for the duration of their Decide().
        const auto decide_start = std::chrono::steady_clock::now();
        ParallelFor(0, n, 1, [&](int64_t lo, int64_t hi) {
            for (int64_t k = lo; k < hi; ++k) {
                Shard& shard = *shards_[static_cast<size_t>(k)];
                if (shard.sinan != nullptr) {
                    ClonePool::Lease lease(
                        *pools_[static_cast<size_t>(shard.kind)]);
                    shard.sinan->RebindModel(lease.Model());
                    shard.run->DecideAndApply();
                } else {
                    shard.run->DecideAndApply();
                }
            }
        });
        out.decide_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - decide_start)
                .count());

        // Deterministic rollup: fixed shard order, calling thread.
        FleetIntervalRecord fir;
        fir.interval = interval;
        for (int64_t k = 0; k < n; ++k) {
            const Shard& shard = *shards_[static_cast<size_t>(k)];
            const IntervalRecord& rec = shard.run->LastRecord();
            fir.time_s = rec.time_s;
            if (rec.p99_ms > shard.app.qos_ms)
                ++fir.violations;
            fir.worst_p99_frac = std::max(
                fir.worst_p99_frac, rec.p99_ms / shard.app.qos_ms);
            fir.total_cpu += rec.total_cpu;
            fir.total_rps += rec.rps;
        }
        out.timeline.push_back(fir);
    }
    out.wall_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
    if (out.wall_s > 0.0)
        out.shard_intervals_per_s =
            static_cast<double>(n * total) / out.wall_s;

    // Per-cluster results and fleet aggregates, fixed shard order.
    out.clusters.reserve(shards_.size());
    uint64_t met = 0;
    for (size_t k = 0; k < shards_.size(); ++k) {
        Shard& shard = *shards_[k];
        FleetClusterResult cluster;
        cluster.spec = specs_[k];
        cluster.app_name = shard.app.name;
        cluster.qos_ms = shard.app.qos_ms;
        cluster.result = shard.run->Finish();
        if (!shard.faults.Empty()) {
            const double fault_end_s =
                static_cast<double>(shard.faults.EndInterval()) *
                cfg_.sim.interval_s;
            cluster.recovery_intervals = RecoveryIntervals(
                cluster.result, fault_end_s, shard.app.qos_ms);
        }
        for (const IntervalRecord& rec : cluster.result.timeline) {
            if (rec.time_s <= cfg_.warmup_s)
                continue;
            ++out.measured_cluster_intervals;
            if (rec.p99_ms <= shard.app.qos_ms)
                ++met;
            else
                ++out.violation_cluster_intervals;
        }
        out.clusters.push_back(std::move(cluster));
    }
    if (out.measured_cluster_intervals > 0)
        out.qos_meet_prob =
            static_cast<double>(met) /
            static_cast<double>(out.measured_cluster_intervals);

    size_t measured_intervals = 0;
    for (const FleetIntervalRecord& fir : out.timeline) {
        if (fir.time_s <= cfg_.warmup_s)
            continue;
        ++measured_intervals;
        out.mean_total_cpu += fir.total_cpu;
        out.max_total_cpu = std::max(out.max_total_cpu, fir.total_cpu);
    }
    if (measured_intervals > 0)
        out.mean_total_cpu /= static_cast<double>(measured_intervals);

    if (!out.decide_ms.empty()) {
        double acc = 0.0;
        for (const double ms : out.decide_ms) {
            acc += ms;
            out.decide.max_ms = std::max(out.decide.max_ms, ms);
        }
        out.decide.mean_ms =
            acc / static_cast<double>(out.decide_ms.size());
        out.decide.p50_ms = Percentile(out.decide_ms, 0.50);
        out.decide.p95_ms = Percentile(out.decide_ms, 0.95);
        out.decide.p99_ms = Percentile(out.decide_ms, 0.99);
    }
    for (const std::unique_ptr<ClonePool>& pool : pools_)
        if (pool)
            out.model_clones += static_cast<int>(pool->owned.size());
    return out;
}

FleetResult
RunFleet(const FleetConfig& cfg, const FleetModels& models,
         const FleetApps& apps)
{
    FleetManager fleet(cfg, models, apps);
    return fleet.Run();
}

} // namespace sinan
