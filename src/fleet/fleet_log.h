/**
 * @file
 * Serializers for fleet runs, in the style of harness/telemetry_log.h:
 *
 *  - FleetTraceToCsv: the deterministic per-interval, per-cluster fleet
 *    trace (interval-major, cluster-minor in fixed shard order). This
 *    is the byte-identity surface of the fleet determinism contract —
 *    it contains no wall-clock measurement and must be identical at any
 *    thread count.
 *  - FleetSummaryToCsv / FleetSummaryToJson: per-cluster and fleet-wide
 *    aggregates. The JSON form optionally appends the wall-clock timing
 *    section (decision-latency percentiles, throughput), which is
 *    machine-dependent and therefore excluded when comparing bytes.
 */
#ifndef SINAN_FLEET_FLEET_LOG_H
#define SINAN_FLEET_FLEET_LOG_H

#include <string>

#include "fleet/fleet.h"

namespace sinan {

/** Deterministic per-cluster, per-interval fleet trace as CSV. */
std::string FleetTraceToCsv(const FleetResult& result);

/** Per-cluster summary rows + a fleet-wide footer row as CSV. */
std::string FleetSummaryToCsv(const FleetResult& result);

/**
 * Fleet report as JSON: per-cluster aggregates, fleet-wide aggregates,
 * and — when @p include_timing — the wall-clock section (threads,
 * throughput, decision-latency percentiles). Tests compare bytes with
 * include_timing=false.
 */
std::string FleetSummaryToJson(const FleetResult& result,
                               bool include_timing = true);

/** Writes the deterministic fleet trace CSV (parents created). */
void WriteFleetTrace(const std::string& path, const FleetResult& result);

/** Writes the fleet report: ".json" suffix selects JSON (with timing),
 *  anything else the summary CSV. */
void WriteFleetReport(const std::string& path,
                      const FleetResult& result);

} // namespace sinan

#endif // SINAN_FLEET_FLEET_LOG_H
