/**
 * @file
 * Fleet-scale sharded simulation: one centralized manager, ~100
 * clusters (the paper's largest evaluation runs Sinan against ~100 GCE
 * instances; the extended report, arXiv:2105.13424, frames this as
 * cluster-level management).
 *
 * A fleet is N independent shards — each a full ManagedRun (cluster +
 * workload generator + fault injector + per-shard resource-manager
 * state) with its own RNG seed — stepped in lockstep decision
 * intervals. Every interval runs in two phases on the shared thread
 * pool:
 *
 *   A. all shards advance one interval concurrently (ticks + harvest);
 *   B. the FleetManager makes batched per-cluster decisions: Sinan
 *      shards evaluate candidates through the cached-trunk single-pass
 *      Evaluate, each concurrently-deciding shard temporarily bound to
 *      a HybridModel clone drawn from a per-worker pool (clones are
 *      weight-identical, so which clone serves a shard never changes
 *      the decision).
 *
 * Determinism contract: shards never share mutable state, every
 * reduction (fleet timeline, aggregates, serialized traces) iterates
 * shards in fixed index order on the calling thread, and per-shard
 * stepping is exactly RunManaged's operation sequence — so the fleet
 * trace is byte-identical at any thread count and under any shard
 * scheduling order, and each cluster's telemetry is byte-identical to
 * the same configuration run solo. Wall-clock measurements (decision
 * latency, throughput) are collected alongside but never enter the
 * deterministic serializations (see fleet/fleet_log.h).
 */
#ifndef SINAN_FLEET_FLEET_H
#define SINAN_FLEET_FLEET_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.h"
#include "harness/harness.h"

namespace sinan {

/** Fully resolved parameters of one fleet shard (cluster). */
struct ShardSpec {
    /** Position in the fleet (also the deterministic reduction order). */
    int index = 0;
    /** Application: "hotel" or "social". */
    std::string app = "social";
    /** Manager: "sinan", "opt", "cons", "powerchief", or "hold". */
    std::string manager = "sinan";
    /** Emulated users (constant load). */
    double users = 0.0;
    /** Per-shard RNG seed (workload arrivals, cluster noise). */
    uint64_t seed = 1;
    /** Fault spec for this shard ("" = none; see ParseFaultSpec). */
    std::string faults;
};

/** A sparse per-shard override (`--fleet-shard K:key=val,...`). */
struct ShardOverride {
    int index = -1;
    /** Empty = inherit the fleet default. */
    std::string app;
    std::string manager;
    /** 0 = inherit. */
    double users = 0.0;
    uint64_t seed = 0;
    bool faults_set = false;
    std::string faults;
};

/**
 * Parses a shard override: `K:key=val[,key=val...]` with keys `app`,
 * `manager`, `users`, `seed`, and `faults`. Because fault specs embed
 * `,` and `;`, a `faults=` entry consumes the remainder of the string
 * and must therefore come last. Throws std::invalid_argument naming
 * the offending text on malformed input.
 */
ShardOverride ParseShardOverride(const std::string& text);

/** A full fleet's configuration. */
struct FleetConfig {
    /** Number of clusters (shards). */
    int n_clusters = 1;
    /**
     * Default app for every shard; "" alternates social/hotel by shard
     * index (the mixed-workload fleet of the paper's GCE evaluation).
     */
    std::string default_app;
    std::string default_manager = "sinan";
    /** Default emulated users; 0 picks a per-app default staggered
     *  ±20% across shards so the fleet is not N identical clusters. */
    double default_users = 0.0;
    /** Sparse per-shard overrides (validated by ResolveFleetShards). */
    std::vector<ShardOverride> overrides;

    double duration_s = 60.0;
    double warmup_s = 10.0;
    SimConfig sim;
    ClusterConfig cluster;
    BurstOptions bursts = RunConfig::DefaultBursts();
    /** Fleet seed; per-shard seeds are derived from it and the shard
     *  index unless overridden. */
    uint64_t seed = 1;
    SchedulerConfig scheduler;
};

/**
 * The concrete applications a fleet's shards run, injected by the
 * caller (the CLI, tests, benches) so the fleet layer never reaches up
 * into app/ to build them itself. A kind may be null when no shard of
 * that app exists; a shard whose application is missing is a contract
 * violation. The referenced applications must outlive the fleet.
 */
struct FleetApps {
    const Application* hotel = nullptr;
    const Application* social = nullptr;
};

/**
 * Expands a FleetConfig into one resolved ShardSpec per cluster and
 * validates everything that can fail (cluster count, app/manager
 * names, user counts, override indices and duplicates, fault specs
 * against the target app's tier count — which is why @p apps is
 * needed). Throws std::invalid_argument on any bad value; callers
 * (the --fleet CLI) surface the message through the strict
 * usage-and-exit-2 path.
 */
std::vector<ShardSpec> ResolveFleetShards(const FleetConfig& cfg,
                                          const FleetApps& apps);

/**
 * Trained models for the fleet's Sinan-managed shards, keyed by app.
 * A kind may be null when no sinan shard of that app exists. Models
 * are cloned per worker, never evaluated directly — the originals'
 * workspaces are untouched.
 */
struct FleetModels {
    const HybridModel* hotel = nullptr;
    const HybridModel* social = nullptr;
};

/** One cluster's outcome inside a fleet run. */
struct FleetClusterResult {
    ShardSpec spec;
    /** Display name of the application and its QoS target. */
    std::string app_name;
    double qos_ms = 0.0;
    /** Identical to a solo RunManaged of the same configuration. */
    RunResult result;
    /** RecoveryIntervals() after the shard's last fault; meaningful
     *  only when the shard has faults (-2 = no faults scheduled). */
    int recovery_intervals = -2;
};

/** One fleet-wide interval of the deterministic fleet timeline. */
struct FleetIntervalRecord {
    int64_t interval = 0;
    double time_s = 0.0;
    /** Clusters whose true p99 violated their QoS this interval. */
    int violations = 0;
    /** max over clusters of p99 / qos (tail pressure indicator). */
    double worst_p99_frac = 0.0;
    /** Aggregate allocated CPU (cores) across the fleet. */
    double total_cpu = 0.0;
    /** Aggregate served load (requests/s) across the fleet. */
    double total_rps = 0.0;
};

/** Wall-clock percentiles of the per-interval batched decision phase
 *  (nondeterministic; excluded from the deterministic trace). */
struct FleetDecideStats {
    double mean_ms = 0.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double max_ms = 0.0;
};

/** Aggregate outcome of one fleet run. */
struct FleetResult {
    /** Per-cluster outcomes, in shard-index order. */
    std::vector<FleetClusterResult> clusters;
    /** Deterministic per-interval fleet rollup. */
    std::vector<FleetIntervalRecord> timeline;

    // Post-warmup fleet aggregates (deterministic).
    /** Fraction of measured cluster-intervals meeting their QoS. */
    double qos_meet_prob = 0.0;
    uint64_t measured_cluster_intervals = 0;
    uint64_t violation_cluster_intervals = 0;
    /** Mean / max over post-warmup intervals of fleet-wide CPU. */
    double mean_total_cpu = 0.0;
    double max_total_cpu = 0.0;

    // Wall-clock measurements (nondeterministic; reporting only).
    /** Per-interval decision-phase latency, ms, in interval order. */
    std::vector<double> decide_ms;
    FleetDecideStats decide;
    double wall_s = 0.0;
    /** Shard-intervals per wall-clock second (N clusters stepping one
     *  interval each counts N). */
    double shard_intervals_per_s = 0.0;
    /** Thread-pool parallelism the run executed with. */
    int threads = 1;
    /** HybridModel clones instantiated across all pools. */
    int model_clones = 0;
};

/**
 * Baseline manager factory shared by the fleet and the CLI:
 * "opt", "cons", "powerchief", or "hold". Throws std::invalid_argument
 * on anything else (including "sinan" — Sinan shards need a model and
 * are constructed by the fleet itself).
 */
std::unique_ptr<ResourceManager>
MakeBaselineManager(const std::string& name);

/**
 * The centralized fleet manager: owns every shard (ManagedRun +
 * per-shard resource-manager state), the per-worker HybridModel clone
 * pools, and the lockstep interval loop described in the file comment.
 */
class FleetManager {
  public:
    /**
     * @param cfg fleet configuration (resolved and validated here).
     * @param models trained models for sinan shards; the referenced
     *        models must outlive the FleetManager.
     * @param apps the applications shards run (see FleetApps).
     */
    FleetManager(const FleetConfig& cfg, const FleetModels& models,
                 const FleetApps& apps);
    ~FleetManager();

    FleetManager(const FleetManager&) = delete;
    FleetManager& operator=(const FleetManager&) = delete;

    /** Runs the fleet to completion. Call exactly once. */
    FleetResult Run();

    /** Resolved shard specs, in index order. */
    const std::vector<ShardSpec>& Shards() const { return specs_; }

  private:
    struct Shard;
    struct ClonePool;

    FleetConfig cfg_;
    std::vector<ShardSpec> specs_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::unique_ptr<ClonePool>> pools_;
    bool ran_ = false;
};

/** Convenience wrapper: construct a FleetManager and run it. */
FleetResult RunFleet(const FleetConfig& cfg, const FleetModels& models,
                     const FleetApps& apps);

} // namespace sinan

#endif // SINAN_FLEET_FLEET_H
