/**
 * @file
 * The sinan_sim command-line surface, extracted into a library so the
 * strict flag-validation convention is testable at the argv level:
 * every malformed flag prints the usage text to stderr and exits 2
 * (never a throw, never a silently-misparsed number).
 *
 * Two modes share one option struct:
 *  - single-cluster (the original sinan_sim): one app, one manager,
 *    one load shape;
 *  - fleet (`--fleet N`): N concurrently-stepped clusters under the
 *    centralized FleetManager (src/fleet), with per-shard overrides
 *    (`--fleet-shard K:key=val[,...]`) and fleet trace/report outputs.
 *    Single-run-only flags (--diurnal, --mix, --log, --decision-log,
 *    --metrics, --faults) are rejected in fleet mode; --app, --manager,
 *    --users act as fleet-wide shard defaults instead.
 */
#ifndef SINAN_CLI_SIM_CLI_H
#define SINAN_CLI_SIM_CLI_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "fleet/fleet.h"
#include "nn/quant.h"
#include "sim/fault_injector.h"

namespace sinan {

/** Parsed sinan_sim options (defaults = the tool's defaults). */
struct SimOptions {
    std::string app = "social";
    bool app_set = false;
    std::string manager = "cons";
    bool manager_set = false;
    double users = 200.0;
    bool users_set = false;
    bool diurnal = false;
    double diurnal_low = 100.0;
    double diurnal_high = 300.0;
    double diurnal_period = 600.0;
    double duration_s = 120.0;
    double warmup_s = 20.0;
    uint64_t seed = 1;
    double collect_s = 800.0;
    int epochs = 8;
    /** Request-mix weights (--mix), empty = the app's default mix. */
    std::vector<double> mix_weights;
    std::string log_path;
    /** Decision-trace / metrics output (".json" selects JSON). */
    std::string decision_log_path;
    std::string metrics_path;
    /** 0 = keep the default (SINAN_THREADS or hardware concurrency). */
    int threads = 0;
    /** Microkernel dispatch override (--simd on|off|auto); applied via
     *  SetSimdMode() once the whole argv has validated. */
    SimdMode simd = SimdMode::kAuto;
    /** Inference precision (--quant off|int8) of every sinan-managed
     *  scheduler, single-run and fleet alike. int8 evaluates the CNN
     *  on the calibrated quantized path (separately validated; see
     *  DESIGN.md §5k), off is the byte-identical fp32 default. */
    QuantMode quant = QuantMode::kOff;
    /** Fault-injection schedule (see sim/fault_injector.h). */
    FaultSchedule faults;
    bool faults_set = false;
    /** Uncertainty-aware scheduling (--uncertainty; default off, which
     *  reproduces the binary fresh/degraded ladder byte-for-byte). */
    UncertaintyConfig uncertainty;
    bool uncertainty_set = false;

    /** Fleet mode: number of clusters (0 = single-cluster mode). */
    int fleet = 0;
    /** Parsed --fleet-shard overrides, in argv order. */
    std::vector<ShardOverride> fleet_shards;
    /** Deterministic per-interval fleet trace CSV (--fleet-log). */
    std::string fleet_log_path;
    /** Fleet report (--fleet-report; ".json" selects JSON). */
    std::string fleet_report_path;
};

/**
 * Prints the usage text (prefixed with "error: <msg>" when @p msg is
 * non-null) to stderr and exits 2 — the strict flag-validation
 * convention every sinan_sim flag follows.
 */
[[noreturn]] void SimUsage(const char* msg);

/**
 * Formats the chaos scenario catalog exactly as `--faults list` prints
 * it (one header line plus one aligned row per scenario) — extracted so
 * tests can golden-pin the listing without spawning the binary.
 */
std::string FormatChaosCatalog();

/**
 * Parses and cross-validates argv. On any malformed or inconsistent
 * flag this calls SimUsage (exit 2). `--faults list` prints the chaos
 * scenario catalog and exits 0. Fleet-mode shard overrides are fully
 * resolved here (index range, duplicates, fault specs), so a bad
 * --fleet-shard also exits 2 before any simulation starts.
 */
SimOptions ParseSimArgs(int argc, const char* const* argv);

/** Maps the parsed options onto a fleet configuration (fleet mode). */
FleetConfig BuildFleetConfig(const SimOptions& opt);

/**
 * Executes fleet mode end-to-end: trains one Sinan model per app kind
 * that has sinan-managed shards (skipped when none do), runs the
 * fleet, prints the per-cluster and fleet-wide summary, and writes the
 * --fleet-log / --fleet-report outputs. Returns the process exit code.
 */
int RunFleetMode(const SimOptions& opt);

} // namespace sinan

#endif // SINAN_CLI_SIM_CLI_H
