#include "cli/sim_cli.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>

#include "app/apps.h"
#include "common/thread_pool.h"
#include "fleet/fleet_log.h"
#include "harness/harness.h"

namespace sinan {

namespace {

/** Strict numeric parsers: the whole argument must be consumed, the
 *  digits must start immediately (strto* skip leading whitespace and
 *  accept a '+' sign, which the strict convention rejects — a quoted
 *  " 5" or a stray '+' is a scripting bug, not a number), and
 *  out-of-range values must not saturate silently. (std::atof-style
 *  parsing turned typos like `--users 2oo` into 2 — or 0 — and
 *  silently ran the wrong experiment.) */
bool
LaxNumericPrefix(const std::string& v)
{
    return !v.empty() &&
           (std::isspace(static_cast<unsigned char>(v[0])) ||
            v[0] == '+');
}

double
ParseDoubleArg(const char* flag, const std::string& v)
{
    char* end = nullptr;
    errno = 0;
    const double out = std::strtod(v.c_str(), &end);
    if (v.empty() || LaxNumericPrefix(v) ||
        end != v.c_str() + v.size() || errno == ERANGE)
        SimUsage((std::string(flag) + " expects a number, got '" + v +
                  "'")
                     .c_str());
    return out;
}

int
ParseIntArg(const char* flag, const std::string& v)
{
    char* end = nullptr;
    errno = 0;
    const long out = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || LaxNumericPrefix(v) ||
        end != v.c_str() + v.size() || errno == ERANGE ||
        out < INT_MIN || out > INT_MAX)
        SimUsage((std::string(flag) + " expects an integer, got '" + v +
                  "'")
                     .c_str());
    return static_cast<int>(out);
}

uint64_t
ParseU64Arg(const char* flag, const std::string& v)
{
    char* end = nullptr;
    errno = 0;
    const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
    // strtoull silently wraps negatives and clamps overflow to
    // ULLONG_MAX (with errno == ERANGE); the strict convention rejects
    // both, along with the leading whitespace/'+' it would tolerate.
    if (v.empty() || v[0] == '-' || LaxNumericPrefix(v) ||
        end != v.c_str() + v.size() || errno == ERANGE)
        SimUsage((std::string(flag) +
                  " expects an unsigned integer, got '" + v + "'")
                     .c_str());
    return out;
}

[[noreturn]] void
ListChaosScenarios()
{
    std::fputs(FormatChaosCatalog().c_str(), stdout);
    std::exit(0);
}

/**
 * Strict `--uncertainty` parser: "off" keeps the binary ladder;
 * otherwise a comma-separated `margin=F,floor=F,decay=F` list (any
 * subset, unknown keys rejected) enables the graded policy. Every
 * value must parse as a number in [0, 1] — same exit-2 contract as
 * --faults.
 */
UncertaintyConfig
ParseUncertaintyArg(const std::string& v)
{
    UncertaintyConfig cfg;
    if (v == "off")
        return cfg;
    if (v.empty())
        SimUsage("--uncertainty expects 'off' or "
                 "margin=F,floor=F,decay=F");
    cfg.enabled = true;
    size_t pos = 0;
    for (;;) {
        const size_t comma = v.find(',', pos);
        const std::string item =
            comma == std::string::npos ? v.substr(pos)
                                       : v.substr(pos, comma - pos);
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 >= item.size())
            SimUsage(("--uncertainty expects 'off' or "
                      "margin=F,floor=F,decay=F, got '" +
                      v + "'")
                         .c_str());
        const std::string key = item.substr(0, eq);
        const std::string val = item.substr(eq + 1);
        double* field = nullptr;
        if (key == "margin")
            field = &cfg.margin_frac;
        else if (key == "floor")
            field = &cfg.floor;
        else if (key == "decay")
            field = &cfg.decay;
        else
            SimUsage(("--uncertainty: unknown key '" + key +
                      "' (expected margin, floor, or decay)")
                         .c_str());
        *field = ParseDoubleArg(("--uncertainty " + key).c_str(), val);
        if (*field < 0.0 || *field > 1.0)
            SimUsage(("--uncertainty " + key + " must be in [0, 1]")
                         .c_str());
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return cfg;
}

bool
KnownManagerName(const std::string& m)
{
    return m == "sinan" || m == "opt" || m == "cons" ||
           m == "powerchief" || m == "hold";
}

/** Trains the Sinan pipeline for one app kind with the CLI's
 *  collection/epoch knobs (shared by single-run and fleet mode). */
std::unique_ptr<TrainedSinan>
TrainForCli(const Application& app, bool hotel, const SimOptions& opt)
{
    std::printf("training Sinan for %s (%.0f s collection, %d "
                "epochs)...\n",
                app.name.c_str(), opt.collect_s, opt.epochs);
    PipelineConfig pcfg;
    pcfg.collect_s = opt.collect_s;
    pcfg.users_min = hotel ? 500.0 : 50.0;
    pcfg.users_max = hotel ? 3700.0 : 450.0;
    pcfg.hybrid = DefaultHybridConfig();
    pcfg.hybrid.train.epochs = opt.epochs;
    pcfg.seed = opt.seed;
    auto trained =
        std::make_unique<TrainedSinan>(TrainSinanForApp(app, pcfg));
    std::printf("CNN val RMSE %.1f ms, BT val acc %.1f%%\n",
                trained->report.cnn.val_rmse_ms,
                100.0 * trained->report.bt_val_accuracy);
    return trained;
}

} // namespace

std::string
FormatChaosCatalog()
{
    std::string out = "named chaos scenarios (--faults chaos:NAME):\n";
    for (const ChaosScenario& s : ChaosScenarios()) {
        char line[512];
        std::snprintf(line, sizeof line, "  %-18s %-40s %s\n",
                      s.name.c_str(), s.spec.c_str(),
                      s.description.c_str());
        out += line;
    }
    return out;
}

[[noreturn]] void
SimUsage(const char* msg)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n", msg);
    std::fprintf(
        stderr,
        "usage: sinan_sim [--app hotel|social]\n"
        "                 [--manager sinan|opt|cons|powerchief|hold]\n"
        "                 [--users N | --diurnal LO:HI:PERIOD]\n"
        "                 [--duration S] [--warmup S] [--seed N]\n"
        "                 [--collect S] [--epochs N] [--mix W,W,...]\n"
        "                 [--log FILE] [--threads N]\n"
        "                 [--simd on|off|auto] [--quant off|int8]\n"
        "                 [--decision-log FILE] [--metrics FILE]\n"
        "                 [--faults SPEC]\n"
        "                 [--uncertainty off|margin=F,floor=F,decay=F]\n"
        "                 [--fleet N] [--fleet-shard K:key=val[,...]]\n"
        "                 [--fleet-log FILE] [--fleet-report FILE]\n"
        "\n"
        "  --faults accepts 'kind@start[+dur][:tier=N,mag=X]' events\n"
        "  joined with ';' (kinds: stall caploss spike steal drop delay\n"
        "  nan flash; correlated groups via tiers=A-B,jitter=N), a named\n"
        "  scenario 'chaos:NAME', or 'list' to print the scenario\n"
        "  catalog and exit.\n"
        "\n"
        "  --uncertainty grades telemetry confidence per tier and\n"
        "  scales the sinan scheduler's caution with it (off keeps the\n"
        "  binary fresh/degraded ladder; any of margin, floor, decay\n"
        "  may be set, each in [0, 1]). Applies to the sinan manager in\n"
        "  single-run and fleet mode alike.\n"
        "\n"
        "  --quant int8 runs the sinan scheduler's model inference on\n"
        "  the calibrated int8 path (faster, separately validated for\n"
        "  prediction and decision agreement); off (default) keeps the\n"
        "  bit-exact fp32 path. Other managers are unaffected.\n"
        "\n"
        "  --fleet N steps N clusters concurrently under one fleet\n"
        "  manager; --app/--manager/--users become fleet-wide shard\n"
        "  defaults. --fleet-shard overrides one shard with keys app,\n"
        "  manager, users, seed, faults (faults last: its value runs to\n"
        "  the end of the override). Single-run flags (--diurnal, --mix,\n"
        "  --log, --decision-log, --metrics, --faults) are rejected in\n"
        "  fleet mode; use --fleet-log (per-interval trace CSV) and\n"
        "  --fleet-report (summary, '.json' selects JSON) instead.\n");
    std::exit(2);
}

SimOptions
ParseSimArgs(int argc, const char* const* argv)
{
    SimOptions opt;
    // Accept both `--flag value` and `--flag=value`.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    const size_t n = args.size();
    auto need = [&](size_t i) -> const std::string& {
        if (i + 1 >= n)
            SimUsage(("missing value for " + args[i]).c_str());
        return args[i + 1];
    };
    for (size_t i = 0; i < n; ++i) {
        const std::string& a = args[i];
        if (a == "--app") {
            opt.app = need(i++);
            opt.app_set = true;
        } else if (a == "--manager") {
            opt.manager = need(i++);
            opt.manager_set = true;
        } else if (a == "--users") {
            opt.users = ParseDoubleArg("--users", need(i++));
            opt.users_set = true;
        } else if (a == "--diurnal") {
            opt.diurnal = true;
            const std::string v = need(i++);
            char lo[64], hi[64], period[64];
            if (std::sscanf(v.c_str(), "%63[^:]:%63[^:]:%63s", lo, hi,
                            period) != 3) {
                SimUsage("--diurnal expects LO:HI:PERIOD");
            }
            opt.diurnal_low = ParseDoubleArg("--diurnal LO", lo);
            opt.diurnal_high = ParseDoubleArg("--diurnal HI", hi);
            opt.diurnal_period =
                ParseDoubleArg("--diurnal PERIOD", period);
        } else if (a == "--duration") {
            opt.duration_s = ParseDoubleArg("--duration", need(i++));
        } else if (a == "--warmup") {
            opt.warmup_s = ParseDoubleArg("--warmup", need(i++));
        } else if (a == "--seed") {
            opt.seed = ParseU64Arg("--seed", need(i++));
        } else if (a == "--collect") {
            opt.collect_s = ParseDoubleArg("--collect", need(i++));
        } else if (a == "--epochs") {
            opt.epochs = ParseIntArg("--epochs", need(i++));
        } else if (a == "--mix") {
            const std::string v = need(i++);
            const char* p = v.c_str();
            char* end = nullptr;
            while (*p) {
                const double w = std::strtod(p, &end);
                if (end == p)
                    SimUsage(("--mix expects numbers, got '" + v + "'")
                                 .c_str());
                opt.mix_weights.push_back(w);
                p = *end == ',' ? end + 1 : end;
            }
            if (opt.mix_weights.empty())
                SimUsage("--mix expects at least one weight");
        } else if (a == "--log") {
            opt.log_path = need(i++);
        } else if (a == "--decision-log") {
            opt.decision_log_path = need(i++);
        } else if (a == "--metrics") {
            opt.metrics_path = need(i++);
        } else if (a == "--threads") {
            opt.threads = ParseIntArg("--threads", need(i++));
            if (opt.threads < 0)
                SimUsage("--threads must be >= 0");
        } else if (a == "--simd") {
            const std::string v = need(i++);
            if (!ParseSimdMode(v.c_str(), &opt.simd))
                SimUsage(("--simd expects on, off, or auto, got '" + v +
                          "'")
                             .c_str());
        } else if (a == "--quant") {
            const std::string v = need(i++);
            if (!ParseQuantMode(v.c_str(), &opt.quant))
                SimUsage(("--quant expects off or int8, got '" + v +
                          "'")
                             .c_str());
        } else if (a == "--faults") {
            const std::string spec = need(i++);
            if (spec == "list")
                ListChaosScenarios();
            try {
                opt.faults = ParseFaultSpec(spec);
                opt.faults_set = true;
            } catch (const std::exception& e) {
                SimUsage(e.what());
            }
        } else if (a == "--uncertainty") {
            opt.uncertainty = ParseUncertaintyArg(need(i++));
            opt.uncertainty_set = true;
        } else if (a == "--fleet") {
            opt.fleet = ParseIntArg("--fleet", need(i++));
            if (opt.fleet < 1)
                SimUsage("--fleet must be >= 1");
        } else if (a == "--fleet-shard") {
            try {
                opt.fleet_shards.push_back(
                    ParseShardOverride(need(i++)));
            } catch (const std::exception& e) {
                SimUsage(e.what());
            }
        } else if (a == "--fleet-log") {
            opt.fleet_log_path = need(i++);
        } else if (a == "--fleet-report") {
            opt.fleet_report_path = need(i++);
        } else if (a == "--help" || a == "-h") {
            SimUsage(nullptr);
        } else {
            SimUsage(("unknown flag " + a).c_str());
        }
    }
    if (opt.app != "hotel" && opt.app != "social")
        SimUsage("--app must be hotel or social");
    if (!KnownManagerName(opt.manager))
        SimUsage(("unknown --manager " + opt.manager).c_str());
    if (opt.users_set && opt.diurnal)
        SimUsage("--users and --diurnal are mutually exclusive");
    if (opt.duration_s <= 0 || opt.users <= 0)
        SimUsage("durations and users must be positive");
    if (opt.diurnal &&
        (opt.diurnal_low <= 0 || opt.diurnal_high < opt.diurnal_low ||
         opt.diurnal_period <= 0))
        SimUsage("--diurnal expects 0 < LO <= HI and PERIOD > 0");
    if (opt.warmup_s < 0)
        SimUsage("--warmup must be >= 0");
    if (opt.epochs <= 0)
        SimUsage("--epochs must be > 0");
    if (opt.collect_s <= 0)
        SimUsage("--collect must be > 0");

    if (opt.fleet == 0) {
        if (!opt.fleet_shards.empty())
            SimUsage("--fleet-shard requires --fleet");
        if (!opt.fleet_log_path.empty() ||
            !opt.fleet_report_path.empty())
            SimUsage("--fleet-log and --fleet-report require --fleet");
        if (opt.faults_set) {
            // Validate tier targets against the selected app now so a
            // bad spec exits 2 instead of throwing mid-run.
            const Application app = opt.app == "hotel"
                                        ? BuildHotelReservation()
                                        : BuildSocialNetwork();
            try {
                ValidateFaultSchedule(
                    opt.faults, static_cast<int>(app.tiers.size()));
            } catch (const std::exception& e) {
                SimUsage(e.what());
            }
        }
    } else {
        if (opt.diurnal)
            SimUsage("--diurnal is a single-run flag; fleet shards use "
                     "constant per-shard loads (--fleet-shard "
                     "K:users=N)");
        if (!opt.mix_weights.empty())
            SimUsage("--mix is a single-run flag and has no fleet "
                     "equivalent yet");
        if (!opt.log_path.empty() || !opt.decision_log_path.empty() ||
            !opt.metrics_path.empty())
            SimUsage("--log/--decision-log/--metrics are single-run "
                     "flags; use --fleet-log / --fleet-report");
        if (opt.faults_set)
            SimUsage("--faults is a single-run flag; use --fleet-shard "
                     "K:faults=SPEC for per-shard faults");
        // Resolve now so a bad shard override (index out of range,
        // duplicate index, malformed fault spec) exits 2 here rather
        // than throwing mid-run.
        try {
            const Application hotel = BuildHotelReservation();
            const Application social = BuildSocialNetwork();
            ResolveFleetShards(BuildFleetConfig(opt),
                               FleetApps{&hotel, &social});
        } catch (const std::exception& e) {
            SimUsage(e.what());
        }
    }
    // Apply the dispatch override once the whole argv validated, so a
    // later bad flag never leaves a half-applied mode behind.
    SetSimdMode(opt.simd);
    return opt;
}

FleetConfig
BuildFleetConfig(const SimOptions& opt)
{
    FleetConfig cfg;
    cfg.n_clusters = opt.fleet;
    cfg.default_app = opt.app_set ? opt.app : "";
    cfg.default_manager = opt.manager_set ? opt.manager : "sinan";
    cfg.default_users = opt.users_set ? opt.users : 0.0;
    cfg.overrides = opt.fleet_shards;
    cfg.duration_s = opt.duration_s;
    cfg.warmup_s = opt.warmup_s;
    cfg.seed = opt.seed;
    cfg.scheduler.uncertainty = opt.uncertainty;
    cfg.scheduler.quant = opt.quant;
    return cfg;
}

int
RunFleetMode(const SimOptions& opt)
{
    const FleetConfig cfg = BuildFleetConfig(opt);
    const Application hotel_app = BuildHotelReservation();
    const Application social_app = BuildSocialNetwork();
    const FleetApps apps{&hotel_app, &social_app};
    const std::vector<ShardSpec> specs = ResolveFleetShards(cfg, apps);

    bool sinan_hotel = false, sinan_social = false;
    for (const ShardSpec& spec : specs) {
        if (spec.manager != "sinan")
            continue;
        (spec.app == "hotel" ? sinan_hotel : sinan_social) = true;
    }

    std::unique_ptr<TrainedSinan> hotel_trained, social_trained;
    FleetModels models;
    if (sinan_hotel) {
        hotel_trained = TrainForCli(hotel_app, true, opt);
        models.hotel = hotel_trained->model.get();
    }
    if (sinan_social) {
        social_trained = TrainForCli(social_app, false, opt);
        models.social = social_trained->model.get();
    }

    FleetManager fleet(cfg, models, apps);
    const FleetResult r = fleet.Run();

    std::printf("\nfleet of %d clusters for %.0f s (%d threads):\n",
                cfg.n_clusters, cfg.duration_s, r.threads);
    for (const FleetClusterResult& c : r.clusters) {
        std::printf("  [%3d] %-6s %-10s users %6.0f  P(QoS) %.3f  "
                    "cpu %6.1f/%6.1f  p99 %7.1f ms",
                    c.spec.index, c.spec.app.c_str(),
                    c.spec.manager.c_str(), c.spec.users,
                    c.result.qos_meet_prob, c.result.mean_cpu,
                    c.result.max_cpu, c.result.mean_p99_ms);
        if (!c.spec.faults.empty()) {
            if (c.recovery_intervals < 0)
                std::printf("  faults: unrecovered");
            else
                std::printf("  faults: recovered +%d",
                            c.recovery_intervals);
        }
        std::printf("\n");
    }
    std::printf("  fleet P(meet QoS) : %.3f (%llu violations / %llu "
                "cluster-intervals)\n",
                r.qos_meet_prob,
                static_cast<unsigned long long>(
                    r.violation_cluster_intervals),
                static_cast<unsigned long long>(
                    r.measured_cluster_intervals));
    std::printf("  fleet CPU         : %.1f mean / %.1f max cores\n",
                r.mean_total_cpu, r.max_total_cpu);
    std::printf("  decide latency    : %.2f ms mean, %.2f p50, "
                "%.2f p95, %.2f p99, %.2f max\n",
                r.decide.mean_ms, r.decide.p50_ms, r.decide.p95_ms,
                r.decide.p99_ms, r.decide.max_ms);
    std::printf("  throughput        : %.0f shard-intervals/s "
                "(wall %.2f s, %d model clones)\n",
                r.shard_intervals_per_s, r.wall_s, r.model_clones);

    if (!opt.fleet_log_path.empty()) {
        WriteFleetTrace(opt.fleet_log_path, r);
        std::printf("  fleet trace       : %s\n",
                    opt.fleet_log_path.c_str());
    }
    if (!opt.fleet_report_path.empty()) {
        WriteFleetReport(opt.fleet_report_path, r);
        std::printf("  fleet report      : %s\n",
                    opt.fleet_report_path.c_str());
    }
    return 0;
}

} // namespace sinan
