/**
 * @file
 * Sampled distributed tracing, the simulator's stand-in for the Jaeger
 * deployment in the paper's system architecture (Fig. 8). A fraction of
 * requests is traced; each traced request yields one span per executed
 * stage with queueing/service timing, letting tools attribute end-to-end
 * latency to tiers (and letting tests validate the queueing model from
 * the inside).
 */
#ifndef SINAN_CLUSTER_TRACING_H
#define SINAN_CLUSTER_TRACING_H

#include <cstdint>
#include <vector>

namespace sinan {

/** One stage execution of a traced request. */
struct Span {
    /** Tier that executed the stage. */
    int tier = -1;
    /** Span id within the trace (0 = root) and parent (-1 for root). */
    int span_id = 0;
    int parent_span = -1;
    /** The stage was fire-and-forget (not on the latency path). */
    bool async = false;
    /** Admission-queue entry time (RPC arrival), seconds. */
    double enqueue_s = 0.0;
    /** First tick the stage consumed CPU (approximate start). */
    double start_s = 0.0;
    /** Completion time (local work + children done), seconds. */
    double end_s = 0.0;

    /** Time from arrival to completion. */
    double DurationS() const { return end_s - enqueue_s; }
    /** Time spent waiting for a concurrency slot. */
    double QueueWaitS() const { return start_s - enqueue_s; }
};

/** A traced request: spans in creation order (root first). */
struct Trace {
    int64_t trace_id = 0;
    int request_type = -1;
    double begin_s = 0.0;
    double end_s = 0.0;
    std::vector<Span> spans;

    double LatencyMs() const { return (end_s - begin_s) * 1000.0; }

    /**
     * The synchronous span whose duration is the largest — the first
     * place to look when attributing tail latency.
     */
    int SlowestSyncSpan() const;
};

/** Aggregate per-tier attribution over a set of traces. */
struct TierAttribution {
    int tier = -1;
    /** Total synchronous span-time across traces, seconds. */
    double sync_time_s = 0.0;
    /** Total queue-wait across traces, seconds. */
    double queue_wait_s = 0.0;
    /** Spans observed. */
    int64_t spans = 0;
};

/** Sums span time per tier over @p traces (sync spans only). */
std::vector<TierAttribution> AttributeByTier(
    const std::vector<Trace>& traces, int n_tiers);

} // namespace sinan

#endif // SINAN_CLUSTER_TRACING_H
