#include "cluster/tracing.h"

#include <stdexcept>

namespace sinan {

int
Trace::SlowestSyncSpan() const
{
    int best = -1;
    double best_dur = -1.0;
    for (size_t i = 0; i < spans.size(); ++i) {
        if (spans[i].async)
            continue;
        const double d = spans[i].DurationS();
        if (d > best_dur) {
            best_dur = d;
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::vector<TierAttribution>
AttributeByTier(const std::vector<Trace>& traces, int n_tiers)
{
    if (n_tiers <= 0)
        throw std::invalid_argument("AttributeByTier: no tiers");
    std::vector<TierAttribution> out(static_cast<size_t>(n_tiers));
    for (int t = 0; t < n_tiers; ++t)
        out[t].tier = t;
    for (const Trace& trace : traces) {
        for (const Span& span : trace.spans) {
            if (span.async)
                continue;
            if (span.tier < 0 || span.tier >= n_tiers)
                throw std::out_of_range("AttributeByTier: bad span tier");
            TierAttribution& a = out[span.tier];
            a.sync_time_s += span.DurationS();
            a.queue_wait_s += span.QueueWaitS();
            ++a.spans;
        }
    }
    return out;
}

} // namespace sinan
