#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sinan {

namespace {

/** Progress below this is treated as zero to terminate sharing rounds. */
constexpr double kEpsWork = 1e-12;

/** Upper bound on sharing rounds per tier per tick (safety net). */
constexpr int kMaxRounds = 64;

} // namespace

Cluster::Cluster(const Application& app, const ClusterConfig& cfg,
                 uint64_t seed)
    : app_(app), cfg_(cfg), rng_(seed)
{
    if (app.tiers.empty())
        throw std::invalid_argument("Cluster: application has no tiers");
    if (app.request_types.empty())
        throw std::invalid_argument("Cluster: application has no requests");
    if (cfg.replica_scale < 1)
        throw std::invalid_argument("Cluster: replica_scale must be >= 1");

    tiers_.resize(app.tiers.size());
    for (size_t i = 0; i < app.tiers.size(); ++i) {
        TierState& t = tiers_[i];
        t.spec = app.tiers[i];
        t.cpu_limit = t.spec.init_cpu;
        t.slots = t.spec.concurrency_per_replica * t.spec.replicas *
                  cfg.replica_scale;
        t.cache_mb = t.spec.base_cache_mb;
        t.next_sync_at = t.spec.log_sync_period_s;
    }

    trees_.resize(app.request_types.size());
    for (size_t r = 0; r < app.request_types.size(); ++r) {
        const int32_t root = FlattenTree(app.request_types[r].root,
                                         trees_[r]);
        if (root != 0)
            throw std::logic_error("Cluster: tree root must flatten to 0");
    }
}

int32_t
Cluster::FlattenTree(const CallNode& node, std::vector<FlatNode>& out)
{
    if (node.tier < 0 || node.tier >= static_cast<int>(tiers_.size()))
        throw std::invalid_argument("Cluster: call node has bad tier index");
    const int32_t idx = static_cast<int32_t>(out.size());
    out.push_back(FlatNode{node.tier, node.demand_s, node.demand_cv,
                           node.hit_prob, node.async, 0, 0});
    // Depth-first layout: a node's first child is at idx+1 and sibling
    // k+1 starts right after sibling k's whole subtree, so FinishLocalWork
    // can enumerate children by skipping subtrees. We only store the first
    // child index and the child count.
    std::vector<int32_t> child_idx;
    child_idx.reserve(node.children.size());
    for (const CallNode& c : node.children)
        child_idx.push_back(FlattenTree(c, out));
    FlatNode& fn = out[idx];
    fn.child_begin = child_idx.empty() ? 0 : child_idx.front();
    fn.child_count = static_cast<int32_t>(child_idx.size());
    return idx;
}

int32_t
Cluster::AllocStage()
{
    if (free_head_ >= 0) {
        const int32_t h = free_head_;
        free_head_ = stages_[h].next_free;
        stages_[h] = Stage{};
        return h;
    }
    stages_.emplace_back();
    return static_cast<int32_t>(stages_.size()) - 1;
}

void
Cluster::FreeStage(int32_t handle)
{
    stages_[handle].state = 0;
    stages_[handle].next_free = free_head_;
    free_head_ = handle;
}

int32_t
Cluster::SpawnStage(int16_t type, int32_t node, int32_t parent,
                    bool record_latency, double now, double birth)
{
    const FlatNode& fn = trees_[type][node];
    const int32_t h = AllocStage();
    Stage& s = stages_[h];
    s.node = node;
    s.type = type;
    s.state = 1; // queued
    s.record_latency = record_latency;
    s.parent = parent;
    s.pending_children = 0;
    s.remaining_s = rng_.LogNormal(fn.demand_s, fn.demand_cv);
    s.enqueue_time = now;
    s.birth_time = birth;
    s.ready_tick = in_tick_ ? tick_id_ + 1 : tick_id_;

    TierState& tier = tiers_[fn.tier];
    tier.queue.push_back(h);
    tier.rx_pkts += tier.spec.pkts_per_rpc;
    if (parent >= 0) {
        const FlatNode& pn = trees_[type][stages_[parent].node];
        tiers_[pn.tier].tx_pkts += tiers_[pn.tier].spec.pkts_per_rpc;
    }
    return h;
}

void
Cluster::Inject(int request_type, double now)
{
    if (request_type < 0 ||
        request_type >= static_cast<int>(trees_.size())) {
        throw std::out_of_range("Cluster::Inject: bad request type");
    }
    const int32_t h = SpawnStage(static_cast<int16_t>(request_type), 0,
                                 -1, true, now, now);
    ++injected_;
    ++in_flight_;

    if (cfg_.trace_sample > 0.0 && rng_.Bernoulli(cfg_.trace_sample)) {
        int32_t idx;
        if (!trace_free_.empty()) {
            idx = trace_free_.back();
            trace_free_.pop_back();
            active_traces_[idx] = Trace{};
            trace_open_spans_[idx] = 0;
        } else {
            idx = static_cast<int32_t>(active_traces_.size());
            active_traces_.emplace_back();
            trace_open_spans_.push_back(0);
        }
        Trace& trace = active_traces_[idx];
        trace.trace_id = ++trace_counter_;
        trace.request_type = request_type;
        trace.begin_s = now;
        AttachSpan(h, idx, -1, false, now);
    }
}

void
Cluster::AttachSpan(int32_t handle, int32_t trace_idx, int parent_span,
                    bool async, double now)
{
    Stage& s = stages_[handle];
    Trace& trace = active_traces_[trace_idx];
    Span span;
    span.tier = trees_[s.type][s.node].tier;
    span.span_id = static_cast<int>(trace.spans.size());
    span.parent_span = parent_span;
    span.async = async;
    span.enqueue_s = now;
    span.start_s = now;
    span.end_s = now;
    s.trace_idx = trace_idx;
    s.span_idx = span.span_id;
    trace.spans.push_back(span);
    ++trace_open_spans_[trace_idx];
}

void
Cluster::CloseSpan(const Stage& s, double end_time)
{
    Trace& trace = active_traces_[s.trace_idx];
    Span& span = trace.spans[s.span_idx];
    span.end_s = end_time;
    if (s.record_latency)
        trace.end_s = end_time;
    if (--trace_open_spans_[s.trace_idx] == 0) {
        completed_traces_.push_back(std::move(trace));
        trace_free_.push_back(s.trace_idx);
    }
}

std::vector<Trace>
Cluster::TakeTraces()
{
    std::vector<Trace> out;
    out.swap(completed_traces_);
    return out;
}

void
Cluster::AdmitFromQueue(TierState& tier, double now)
{
    while (tier.active < tier.slots && !tier.queue.empty()) {
        const int32_t h = tier.queue.front();
        tier.queue.pop_front();
        Stage& s = stages_[h];
        s.state = 2; // running
        // Children spawned mid-tick carry the tick-end timestamp while
        // admission runs at tick start, so the difference is clamped.
        tier.wait_acc += std::max(0.0, now - s.enqueue_time);
        ++tier.wait_count;
        ++tier.active;
        tier.running.push_back(h);
        if (s.trace_idx >= 0) {
            Span& span =
                active_traces_[s.trace_idx].spans[s.span_idx];
            span.start_s = std::max(now, span.enqueue_s);
        }
    }
}

void
Cluster::FinishLocalWork(int32_t handle, double end_time)
{
    // Copy what we need up front: SpawnStage can grow the stage arena and
    // invalidate references into it.
    const int16_t type = stages_[handle].type;
    const int32_t node = stages_[handle].node;
    const double birth = stages_[handle].birth_time;
    const FlatNode& fn = trees_[type][node];

    const bool invoke_children =
        fn.child_count > 0 && !rng_.Bernoulli(fn.hit_prob);

    if (!invoke_children) {
        CompleteStage(handle, end_time);
        return;
    }

    // Spawn all children in parallel. Depth-first flattening means the
    // k-th child's root index is the previous child's root plus the size
    // of that child's subtree; the subtree is skipped by a preorder walk.
    const int32_t parent_trace = stages_[handle].trace_idx;
    const int32_t parent_span = stages_[handle].span_idx;
    int32_t child = fn.child_begin;
    int sync_children = 0;
    for (int k = 0; k < fn.child_count; ++k) {
        const bool async = trees_[type][child].async;
        const int32_t ch = SpawnStage(type, child,
                                      async ? -1 : handle, false,
                                      end_time, birth);
        if (parent_trace >= 0)
            AttachSpan(ch, parent_trace, parent_span, async, end_time);
        if (!async)
            ++sync_children;
        int32_t cursor = child;
        int32_t remaining = 1;
        while (remaining > 0) {
            remaining += trees_[type][cursor].child_count - 1;
            ++cursor;
        }
        child = cursor;
    }

    if (sync_children == 0) {
        CompleteStage(handle, end_time);
    } else {
        Stage& s = stages_[handle];
        s.pending_children = sync_children;
        s.state = 3; // blocked, still holding its slot
    }
}

void
Cluster::CompleteStage(int32_t handle, double end_time)
{
    Stage s = stages_[handle]; // copy: FreeStage invalidates the slot
    const FlatNode& fn = trees_[s.type][s.node];
    TierState& tier = tiers_[fn.tier];

    --tier.active;
    ++tier.completions;
    tier.tx_pkts += tier.spec.pkts_per_rpc;
    tier.written_mb += tier.spec.written_mb_per_req;
    tier.cache_mb = std::min(tier.spec.max_cache_mb,
                             tier.cache_mb + tier.spec.cache_per_req_mb);
    if (s.parent >= 0) {
        const FlatNode& pn = trees_[s.type][stages_[s.parent].node];
        tiers_[pn.tier].rx_pkts += tiers_[pn.tier].spec.pkts_per_rpc;
    }

    if (s.record_latency) {
        latency_.Add((end_time - s.birth_time) * 1000.0);
        ++completed_;
        --in_flight_;
    }
    if (s.trace_idx >= 0)
        CloseSpan(s, end_time);

    const int32_t parent = s.parent;
    FreeStage(handle);

    if (parent >= 0) {
        Stage& p = stages_[parent];
        if (--p.pending_children == 0 && p.state == 3)
            CompleteStage(parent, end_time);
    }
}

void
Cluster::Tick(double now, double dt)
{
    in_tick_ = true;
    const double end_time = now + dt;
    for (TierState& tier : tiers_) {
        // Log-sync stall model: at each period boundary the tier forks and
        // copies dirty memory, serving nothing while it does.
        if (tier.spec.log_sync && cfg_.enable_log_sync &&
            now >= tier.next_sync_at) {
            const double stall = tier.spec.stall_base_s +
                                 tier.spec.stall_s_per_mb * tier.written_mb;
            // max: an injected stall (InjectStall) may already reach
            // further than this sync's own pause.
            tier.stall_until = std::max(tier.stall_until, now + stall);
            tier.written_mb = 0.0;
            tier.next_sync_at += tier.spec.log_sync_period_s;
        }

        // Fraction of this tick the tier is able to run.
        double avail = 1.0;
        if (tier.stall_until > now)
            avail = std::max(0.0, (end_time - tier.stall_until) / dt);

        AdmitFromQueue(tier, now);

        double cap_s = tier.cpu_limit * cfg_.speed_factor *
                       tier.capacity_factor * dt * avail;
        const double per_stage_cap = dt * avail; // one core per stage

        for (int round = 0; round < kMaxRounds && cap_s > kEpsWork;
             ++round) {
            runnable_.clear();
            for (const int32_t h : tier.running) {
                Stage& s = stages_[h];
                if (s.last_tick != tick_id_) {
                    s.last_tick = tick_id_;
                    s.consumed_tick_s = 0.0;
                }
                if (s.ready_tick <= tick_id_ &&
                    s.remaining_s > kEpsWork &&
                    s.consumed_tick_s < per_stage_cap - kEpsWork) {
                    runnable_.push_back(h);
                }
            }
            if (runnable_.empty())
                break;

            const double share =
                cap_s / static_cast<double>(runnable_.size());
            bool progressed = false;
            for (const int32_t h : runnable_) {
                Stage& s = stages_[h];
                const double give =
                    std::min({share, s.remaining_s,
                              per_stage_cap - s.consumed_tick_s});
                if (give <= kEpsWork)
                    continue;
                s.remaining_s -= give;
                s.consumed_tick_s += give;
                cap_s -= give;
                tier.cpu_used_acc += give;
                progressed = true;
                if (s.remaining_s <= kEpsWork) {
                    s.remaining_s = 0.0;
                    // Remove from running before fan-out.
                    auto& run = tier.running;
                    run.erase(std::find(run.begin(), run.end(), h));
                    FinishLocalWork(h, end_time);
                }
            }
            if (!progressed)
                break;
            AdmitFromQueue(tier, now);
        }

        tier.queue_len_acc += static_cast<double>(tier.queue.size());
        tier.active_acc += static_cast<double>(tier.active);
        ++tier.tick_samples;
    }
    ++tick_id_;
    in_tick_ = false;
}

IntervalObservation
Cluster::Harvest(double now, double interval_s)
{
    IntervalObservation obs;
    obs.time_s = now;
    obs.rps = static_cast<double>(injected_) / interval_s;
    obs.completed_rps = static_cast<double>(completed_) / interval_s;
    obs.tiers.reserve(tiers_.size());

    auto noisy = [&](double v) {
        if (cfg_.metric_noise <= 0.0)
            return v;
        return std::max(0.0, v * (1.0 + rng_.Normal(0.0,
                                                    cfg_.metric_noise)));
    };

    for (TierState& tier : tiers_) {
        TierMetrics m;
        const double samples =
            std::max<double>(1.0, static_cast<double>(tier.tick_samples));
        m.cpu_limit = tier.cpu_limit;
        m.cpu_used = noisy(tier.cpu_used_acc / interval_s);
        const double inflight = tier.queue_len_acc / samples +
                                tier.active_acc / samples;
        m.rss_mb = noisy(tier.spec.base_rss_mb + tier.written_mb +
                         tier.spec.rss_per_inflight_mb * inflight);
        m.cache_mb = noisy(tier.cache_mb);
        m.rx_pps = noisy(tier.rx_pkts / interval_s);
        m.tx_pps = noisy(tier.tx_pkts / interval_s);
        m.queue_len = tier.queue_len_acc / samples;
        m.active = tier.active_acc / samples;
        m.queue_wait_s =
            tier.wait_count ? tier.wait_acc /
                                  static_cast<double>(tier.wait_count)
                            : 0.0;
        obs.tiers.push_back(m);

        tier.cpu_used_acc = 0.0;
        tier.queue_len_acc = 0.0;
        tier.active_acc = 0.0;
        tier.tick_samples = 0;
        tier.rx_pkts = 0.0;
        tier.tx_pkts = 0.0;
        tier.wait_acc = 0.0;
        tier.wait_count = 0;
        tier.completions = 0;
    }

    latency_.Seal(); // sort once in place; Quantiles then copies nothing
    obs.latency_ms = latency_.Quantiles(LatencyQuantiles());
    latency_.Reset();
    injected_ = 0;
    completed_ = 0;
    return obs;
}

void
Cluster::SetCpuLimit(int tier, double cores)
{
    if (tier < 0 || tier >= NumTiers())
        throw std::out_of_range("Cluster::SetCpuLimit: bad tier");
    TierState& t = tiers_[tier];
    t.cpu_limit = std::clamp(cores, t.spec.min_cpu, t.spec.max_cpu);
}

void
Cluster::SetCapacityFactor(int tier, double factor)
{
    if (tier < 0 || tier >= NumTiers())
        throw std::out_of_range("Cluster::SetCapacityFactor: bad tier");
    tiers_[tier].capacity_factor = std::clamp(factor, 0.0, 1.0);
}

void
Cluster::InjectStall(int tier, double until_s)
{
    if (tier < 0 || tier >= NumTiers())
        throw std::out_of_range("Cluster::InjectStall: bad tier");
    TierState& t = tiers_[tier];
    t.stall_until = std::max(t.stall_until, until_s);
}

void
Cluster::SetAllocation(const std::vector<double>& cores)
{
    if (static_cast<int>(cores.size()) != NumTiers())
        throw std::invalid_argument("Cluster::SetAllocation: size mismatch");
    for (int i = 0; i < NumTiers(); ++i)
        SetCpuLimit(i, cores[i]);
}

std::vector<double>
Cluster::Allocation() const
{
    std::vector<double> out;
    out.reserve(tiers_.size());
    for (const TierState& t : tiers_)
        out.push_back(t.cpu_limit);
    return out;
}

} // namespace sinan
