/**
 * @file
 * Static description of a microservice application: the tiers (services)
 * it is composed of, and the RPC call tree executed for each request type.
 *
 * These specs are the simulator-side stand-in for a DeathStarBench
 * docker-compose deployment: src/app builds the Hotel Reservation and
 * Social Network graphs of the paper's Figures 1 and 2 out of them, and
 * src/cluster instantiates the runtime queueing network.
 */
#ifndef SINAN_CLUSTER_SPEC_H
#define SINAN_CLUSTER_SPEC_H

#include <string>
#include <vector>

namespace sinan {

/** Static per-tier (per-microservice) configuration. */
struct TierSpec {
    /** Service name, e.g. "nginx" or "socialGraph-redis". */
    std::string name;

    /** Request-handling slots (threads/connections) per replica. A stage
     *  occupies one slot from admission until completion, including while
     *  blocked on downstream RPCs — this is what propagates back-pressure
     *  upstream when a downstream tier is slow. */
    int concurrency_per_replica = 16;

    /** Number of container replicas (scaled out in the GCE experiments). */
    int replicas = 1;

    /** Initial CPU limit in cores for the whole tier (cgroup cpu quota). */
    double init_cpu = 2.0;

    /** Bounds the manager may allocate within. */
    double min_cpu = 0.2;
    double max_cpu = 16.0;

    // --- memory / network metric model -------------------------------
    /** Baseline resident set size in MB. */
    double base_rss_mb = 80.0;
    /** RSS added per queued or in-flight request (buffers, stacks). */
    double rss_per_inflight_mb = 0.5;
    /** Baseline page-cache / dataset-cache footprint in MB. */
    double base_cache_mb = 40.0;
    /** Cache growth per processed request (disk-backed tiers), MB. */
    double cache_per_req_mb = 0.0;
    /** Cap for the cache growth model. */
    double max_cache_mb = 512.0;
    /** Network packets generated per RPC in/out of this tier. */
    double pkts_per_rpc = 4.0;

    // --- log-synchronization stall model (Sec. 5.6.2 Redis pathology) --
    /** Enables the periodic fork-and-persist stall. */
    bool log_sync = false;
    /** Seconds between synchronizations (Redis default: every minute). */
    double log_sync_period_s = 60.0;
    /** Dirty memory written per processed request, MB. */
    double written_mb_per_req = 0.02;
    /** Stall seconds per dirty MB copied at synchronization time. */
    double stall_s_per_mb = 0.02;
    /** Fixed fork cost in seconds. */
    double stall_base_s = 0.05;
};

/**
 * One node of a request's RPC call tree.
 *
 * Semantics: the stage first executes its local CPU work on @ref tier,
 * then (unless a cache hit short-circuits them) invokes all children in
 * parallel. Synchronous children must complete before this stage
 * completes; children marked async are fire-and-forget and contribute
 * load but not end-to-end latency (e.g. RabbitMQ timeline fan-out).
 */
struct CallNode {
    /** Index into Application::tiers. */
    int tier = -1;

    /** Mean local CPU demand in core-seconds (at one dedicated core). */
    double demand_s = 0.001;

    /** Coefficient of variation of the log-normal demand distribution. */
    double demand_cv = 0.15;

    /** Probability that children are skipped (cache hit fast path). */
    double hit_prob = 0.0;

    /** This call does not block its parent. */
    bool async = false;

    std::vector<CallNode> children;
};

/** A class of end-to-end requests (e.g. ComposePost). */
struct RequestType {
    std::string name;
    /** Sampling weight within the workload mix. */
    double weight = 1.0;
    CallNode root;
};

/** A complete application: graph + request classes + QoS target. */
struct Application {
    std::string name;
    /** End-to-end p99 tail-latency target in milliseconds. */
    double qos_ms = 200.0;
    /** Request type that traffic bursts skew toward (-1: none). Flash
     *  crowds on social media are post-heavy, which is what makes them
     *  hard for per-tier reactive autoscaling (the compute-heavy filter
     *  tiers see sudden demand their average utilization hides). */
    int burst_bias_type = -1;
    /** Extra probability mass moved to burst_bias_type during a burst. */
    double burst_bias_extra = 0.25;
    std::vector<TierSpec> tiers;
    std::vector<RequestType> request_types;

    /** Returns the tier index with the given name, or -1. */
    int
    TierIndex(const std::string& tier_name) const
    {
        for (size_t i = 0; i < tiers.size(); ++i) {
            if (tiers[i].name == tier_name)
                return static_cast<int>(i);
        }
        return -1;
    }
};

} // namespace sinan

#endif // SINAN_CLUSTER_SPEC_H
