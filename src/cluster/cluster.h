/**
 * @file
 * Runtime queueing-network model of a microservice deployment.
 *
 * Each tier is a processor-sharing queue with a cgroup-style fractional
 * CPU limit and a finite number of concurrency slots (threads). A request
 * executes a call tree (cluster/spec.h): a stage does its local CPU work,
 * then invokes its children in parallel and blocks — still holding its
 * slot — until synchronous children complete. Holding slots across
 * downstream RPCs is what produces the cascading back-pressure and delayed
 * queueing effects that Sinan targets (paper Sec. 2.3).
 *
 * Time advances in fixed ticks. Within a tick, each tier distributes its
 * CPU capacity over runnable stages in rounds (so short stages do not
 * quantize throughput to one completion per slot per tick), capped at one
 * core per stage (single-threaded request handling).
 */
#ifndef SINAN_CLUSTER_CLUSTER_H
#define SINAN_CLUSTER_CLUSTER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "common/telemetry.h"
#include "cluster/tracing.h"
#include "cluster/spec.h"
#include "common/rng.h"
#include "common/stats.h"

namespace sinan {

/** Environment knobs that model platform changes (Sec. 5.4 scenarios). */
struct ClusterConfig {
    /** CPU speed relative to the training platform (GCE migration). */
    double speed_factor = 1.0;
    /** Multiplies every tier's replica count (scale-out scenario). */
    int replica_scale = 1;
    /** Relative telemetry noise applied at interval harvest. */
    double metric_noise = 0.01;
    /** Fraction of requests traced (Jaeger stand-in; 0 disables). */
    double trace_sample = 0.0;
    /** Master switch for all log-sync stall models (Sec. 5.6.2). */
    bool enable_log_sync = true;
};

/** Runtime state of one tier (exposed for tests and white-box benches). */
struct TierState {
    TierSpec spec;
    /** Current CPU limit in cores. */
    double cpu_limit = 0.0;
    /** Total concurrency slots. */
    int slots = 0;
    /** Occupied slots (running + blocked on children). */
    int active = 0;
    /** Admission queue of stage handles. */
    std::deque<int32_t> queue;
    /** Stages admitted and still owing local CPU work. */
    std::vector<int32_t> running;

    /** Externally imposed capacity multiplier in [0, 1] (fault
     *  injection: capacity loss / noisy neighbor). Invisible to the
     *  telemetry, which keeps reporting the configured cpu_limit. */
    double capacity_factor = 1.0;

    // Log-sync stall model.
    double stall_until = -1.0;
    double next_sync_at = 0.0;
    double written_mb = 0.0;
    double cache_mb = 0.0;

    // Interval accumulators.
    double cpu_used_acc = 0.0;
    double queue_len_acc = 0.0;
    double active_acc = 0.0;
    int64_t tick_samples = 0;
    double rx_pkts = 0.0;
    double tx_pkts = 0.0;
    double wait_acc = 0.0;
    int64_t wait_count = 0;
    int64_t completions = 0;
};

/**
 * The simulated cluster: owns tier runtimes and in-flight request stages,
 * advances them per tick, and rolls telemetry up per decision interval.
 */
class Cluster {
  public:
    Cluster(const Application& app, const ClusterConfig& cfg, uint64_t seed);

    /** Injects one request of the given type at time @p now. */
    void Inject(int request_type, double now);

    /** Advances all tiers by one tick of length @p dt starting at @p now. */
    void Tick(double now, double dt);

    /**
     * Rolls up and resets the current interval's telemetry.
     * @param now end-of-interval timestamp.
     * @param interval_s interval length used for rate normalization.
     */
    IntervalObservation Harvest(double now, double interval_s);

    /** Sets one tier's CPU limit, clamped to the spec's [min,max]. */
    void SetCpuLimit(int tier, double cores);

    /** Applies a full allocation vector (one entry per tier). */
    void SetAllocation(const std::vector<double>& cores);

    /** Current allocation vector. */
    std::vector<double> Allocation() const;

    /** Enables/disables the log-sync stall model at runtime. */
    void SetLogSyncEnabled(bool enabled) { cfg_.enable_log_sync = enabled; }

    /**
     * Fault hook: multiplies one tier's effective CPU capacity by
     * @p factor (clamped to [0, 1]) until changed again. Telemetry
     * still reports the configured limit — this models capacity the
     * manager cannot see (failed replica, noisy neighbor).
     */
    void SetCapacityFactor(int tier, double factor);

    /**
     * Fault hook: the tier serves nothing until simulated time
     * @p until_s (extends, never shortens, a stall in progress).
     * Reuses the log-sync stall machinery.
     */
    void InjectStall(int tier, double until_s);

    int NumTiers() const { return static_cast<int>(tiers_.size()); }
    const Application& App() const { return app_; }
    const TierState& TierAt(int i) const { return tiers_[i]; }

    /** Requests injected but not yet completed (all types). */
    int64_t InFlight() const { return in_flight_; }

    /**
     * Completed-request latency digest of the current interval,
     * sealed here so callers can query it directly (the digest's
     * sealed-before-query contract).
     */
    const PercentileDigest&
    Latencies()
    {
        latency_.Seal();
        return latency_;
    }

    /** Removes and returns the traces completed since the last call. */
    std::vector<Trace> TakeTraces();

  private:
    /** One node of a flattened call tree. */
    struct FlatNode {
        int tier;
        double demand_s;
        double demand_cv;
        double hit_prob;
        bool async;
        /** Index of the first child (the node right after this one). */
        int32_t child_begin;
        /** Number of direct children. */
        int32_t child_count;
    };

    /** In-flight execution of one call-tree node. */
    struct Stage {
        int32_t node = -1;
        int16_t type = -1;
        int8_t state = 0; // 0 free, 1 queued, 2 running, 3 blocked
        bool record_latency = false;
        int32_t parent = -1;
        int32_t pending_children = 0;
        double remaining_s = 0.0;
        double consumed_tick_s = 0.0;
        int64_t last_tick = -1;
        double enqueue_time = 0.0;
        double birth_time = 0.0; // root: request injection time
        /** Tracing handles (-1: untraced). */
        int32_t trace_idx = -1;
        int32_t span_idx = -1;
        /** First tick in which this stage may consume CPU. Children
         *  spawned mid-tick wait one tick, so a serial RPC chain cannot
         *  compress multiple hops of work into a single tick. */
        int64_t ready_tick = 0;
        int32_t next_free = -1;
    };

    int32_t AllocStage();
    void FreeStage(int32_t handle);

    /** Opens a span on an active trace for a freshly spawned stage. */
    void AttachSpan(int32_t handle, int32_t trace_idx, int parent_span,
                    bool async, double now);

    /** Closes the stage's span; finalizes the trace when drained. */
    void CloseSpan(const Stage& s, double end_time);
    int32_t FlattenTree(const CallNode& node, std::vector<FlatNode>& out);

    /** Creates a stage for @p node and enqueues it at its tier. */
    int32_t SpawnStage(int16_t type, int32_t node, int32_t parent,
                       bool record_latency, double now, double birth);

    /** Moves queued stages into running while slots are free. */
    void AdmitFromQueue(TierState& tier, double now);

    /** Local work finished: fan out to children or complete. */
    void FinishLocalWork(int32_t handle, double end_time);

    /** Stage (and its sync subtree) fully done; notify parent. */
    void CompleteStage(int32_t handle, double end_time);

    Application app_;
    ClusterConfig cfg_;
    Rng rng_;

    std::vector<TierState> tiers_;
    /** Flattened call trees, one vector per request type. */
    std::vector<std::vector<FlatNode>> trees_;

    std::vector<Stage> stages_;
    int32_t free_head_ = -1;

    // Tracing state: active traces (arena + free list), open-span
    // counts, and the completed traces awaiting TakeTraces().
    std::vector<Trace> active_traces_;
    std::vector<int32_t> trace_free_;
    std::vector<int32_t> trace_open_spans_;
    std::vector<Trace> completed_traces_;
    int64_t trace_counter_ = 0;

    int64_t tick_id_ = 0;
    /** True while Tick() is running (stages spawned then wait a tick). */
    bool in_tick_ = false;
    int64_t injected_ = 0;  // this interval
    int64_t completed_ = 0; // this interval
    int64_t in_flight_ = 0;
    PercentileDigest latency_;

    // Scratch buffer reused across ticks to avoid reallocations.
    std::vector<int32_t> runnable_;
};

} // namespace sinan

#endif // SINAN_CLUSTER_CLUSTER_H
