#include "tensor/gemm_int8_kernels.h"

#include "common/cpu_features.h"

namespace sinan {

void
PackInt8B(const int8_t* b, int64_t ldb, int64_t k, int64_t n,
          int8_t* packed)
{
    const int64_t groups = Int8KGroups(k);
    for (int64_t g = 0; g < groups; ++g) {
        int8_t* dst = packed + g * n * 4;
        for (int64_t j = 0; j < n; ++j) {
            for (int64_t t = 0; t < 4; ++t) {
                const int64_t p = g * 4 + t;
                dst[j * 4 + t] = p < k ? b[p * ldb + j] : int8_t{0};
            }
        }
    }
}

void
GemmInt8RowsScalar(const uint8_t* a, int64_t lda, const int8_t* bpack,
                   int32_t* c, int64_t ldc, int64_t r0, int64_t r1,
                   int64_t k, int64_t n)
{
    const int64_t groups = Int8KGroups(k);
    for (int64_t r = r0; r < r1; ++r) {
        const uint8_t* arow = a + r * lda;
        int32_t* crow = c + r * ldc;
        for (int64_t g = 0; g < groups; ++g) {
            const uint8_t* ag = arow + g * 4;
            const int8_t* bg = bpack + g * n * 4;
            const int32_t a0 = ag[0], a1 = ag[1], a2 = ag[2], a3 = ag[3];
            for (int64_t j = 0; j < n; ++j) {
                const int8_t* bj = bg + j * 4;
                crow[j] += a0 * bj[0] + a1 * bj[1] + a2 * bj[2] +
                           a3 * bj[3];
            }
        }
    }
}

GemmInt8RowsFn
ActiveGemmInt8Rows()
{
#ifdef SINAN_HAVE_AVX2
    if (SimdActive())
        return GemmInt8RowsAvx2;
#endif
    return GemmInt8RowsScalar;
}

void
QuantizeU8Scalar(const float* x, int64_t count, float inv_scale,
                 uint8_t* out)
{
    for (int64_t i = 0; i < count; ++i)
        out[i] = QuantizeU8One(x[i], inv_scale);
}

QuantizeU8Fn
ActiveQuantizeU8()
{
#ifdef SINAN_HAVE_AVX2
    if (SimdActive())
        return QuantizeU8Avx2;
#endif
    return QuantizeU8Scalar;
}

void
RequantReluU8Scalar(const int32_t* acc, int64_t rows, int64_t oc,
                    const float* bias, const float* rscale,
                    const int32_t* zp128, float inv_next, uint8_t* out)
{
    for (int64_t i = 0; i < rows; ++i) {
        const int32_t* arow = acc + i * oc;
        uint8_t* orow = out + i * oc;
        for (int64_t c = 0; c < oc; ++c) {
            const float v =
                bias[c] +
                rscale[c] * static_cast<float>(arow[c] - zp128[c]);
            const uint8_t q = QuantizeU8One(v, inv_next);
            orow[c] = q < 128 ? uint8_t{128} : q;
        }
    }
}

RequantReluU8Fn
ActiveRequantReluU8()
{
#ifdef SINAN_HAVE_AVX2
    if (SimdActive())
        return RequantReluU8Avx2;
#endif
    return RequantReluU8Scalar;
}

} // namespace sinan
