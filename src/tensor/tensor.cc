#include "tensor/tensor.h"

#include <atomic>
#include <cstdint>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tensor/gemm_kernels.h"

namespace sinan {

namespace {

size_t
ShapeSize(const std::vector<int>& shape)
{
    size_t n = 1;
    for (int d : shape) {
        SINAN_CHECK_GE(d, 0);
        n *= static_cast<size_t>(d);
    }
    return shape.empty() ? 0 : n;
}

/** Buffer-acquisition counter behind Tensor::AllocationEvents().
 *  Relaxed: the tests that read it only need a per-thread-quiescent
 *  total, never ordering against other memory. */
std::atomic<uint64_t> g_alloc_events{0};

void
BumpAllocEvents()
{
    g_alloc_events.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)), data_(ShapeSize(shape_), 0.0f)
{
    if (!data_.empty())
        BumpAllocEvents();
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_)
{
    if (!data_.empty())
        BumpAllocEvents();
}

Tensor&
Tensor::operator=(const Tensor& other)
{
    if (this != &other) {
        if (other.data_.size() > data_.capacity())
            BumpAllocEvents();
        shape_ = other.shape_;
        data_ = other.data_;
    }
    return *this;
}

uint64_t
Tensor::AllocationEvents()
{
    return g_alloc_events.load(std::memory_order_relaxed);
}

Tensor
Tensor::FromVector(const std::vector<float>& values)
{
    Tensor t({static_cast<int>(values.size())});
    for (size_t i = 0; i < values.size(); ++i)
        t[i] = values[i];
    return t;
}

Tensor
Tensor::Randn(std::vector<int> shape, Rng& rng, float stddev)
{
    Tensor t(std::move(shape));
    for (size_t i = 0; i < t.Size(); ++i)
        t[i] = static_cast<float>(rng.Normal(0.0, stddev));
    return t;
}

int
Tensor::Dim(int d) const
{
    if (d < 0 || d >= Rank())
        throw std::out_of_range("Tensor::Dim");
    return shape_[d];
}

size_t
Tensor::Offset2(int i, int j) const
{
    return static_cast<size_t>(i) * shape_[1] + j;
}

size_t
Tensor::Offset3(int i, int j, int k) const
{
    return (static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k;
}

size_t
Tensor::Offset4(int i, int j, int k, int l) const
{
    return ((static_cast<size_t>(i) * shape_[1] + j) * shape_[2] + k) *
               shape_[3] +
           l;
}

Tensor
Tensor::Reshaped(std::vector<int> shape) const
{
    SINAN_CHECK_EQ(ShapeSize(shape), Size());
    Tensor t;
    t.shape_ = std::move(shape);
    t.data_ = data_;
    if (!t.data_.empty())
        BumpAllocEvents();
    return t;
}

void
Tensor::ReshapeInPlace(const std::vector<int>& shape)
{
    SINAN_CHECK_EQ(ShapeSize(shape), Size());
    shape_ = shape;
}

void
Tensor::EnsureShape(const std::vector<int>& shape)
{
    if (shape_ == shape)
        return;
    const size_t n = ShapeSize(shape);
    if (n > data_.capacity()) {
        BumpAllocEvents();
        // Pad fresh workspace allocations to a full 8-float SIMD lane:
        // the microkernels use unaligned loads and scalar tails, so
        // this is not a correctness requirement, but the rounded
        // capacity absorbs the +/- few-element shape wobble between
        // candidate batches without reallocating.
        data_.reserve((n + 7) & ~static_cast<size_t>(7));
    }
    shape_ = shape;
    data_.resize(n);
}

void
Tensor::Fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Tensor::Scale(float s)
{
    for (float& v : data_)
        v *= s;
}

void
Tensor::Add(const Tensor& other)
{
    SINAN_CHECK_EQ(other.Size(), Size());
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
}

void
Tensor::Axpy(float alpha, const Tensor& other)
{
    SINAN_CHECK_EQ(other.Size(), Size());
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += alpha * other.data_[i];
}

double
Tensor::Sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

void
Tensor::Save(std::ostream& out) const
{
    const int32_t rank = Rank();
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (int d : shape_) {
        const int32_t v = d;
        out.write(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size() * sizeof(float)));
}

Tensor
Tensor::Load(std::istream& in)
{
    int32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    if (!in || rank < 0 || rank > 8)
        throw std::runtime_error("Tensor::Load: corrupt header");
    std::vector<int> shape(rank);
    for (int i = 0; i < rank; ++i) {
        int32_t v = 0;
        in.read(reinterpret_cast<char*>(&v), sizeof(v));
        shape[i] = v;
    }
    Tensor t(shape);
    in.read(reinterpret_cast<char*>(t.Data()),
            static_cast<std::streamsize>(t.Size() * sizeof(float)));
    if (!in)
        throw std::runtime_error("Tensor::Load: truncated data");
    return t;
}

namespace {

void
CheckMatmul(const Tensor& a, const Tensor& b, const Tensor& c, int m,
            int k, int k2, int n)
{
    SINAN_CHECK_MSG(a.Rank() == 2 && b.Rank() == 2 && c.Rank() == 2,
                    "MatMul: rank-2 tensors required (ranks "
                        << a.Rank() << ", " << b.Rank() << ", "
                        << c.Rank() << ")");
    SINAN_CHECK_MSG(k == k2, "MatMul: inner dimension mismatch ("
                                 << k << " vs " << k2 << ")");
    SINAN_CHECK_SHAPE(c, m, n);
}

/**
 * Rows of C per ParallelFor block: enough inner work (~flops) per block
 * that scheduling overhead stays negligible, collapsing to one block
 * (serial) for small products. Depends only on the shapes, so the block
 * structure — and therefore the result — is thread-count independent
 * (each row of C is written by exactly one block).
 */
int64_t
RowGrain(int m, int k, int n)
{
    constexpr int64_t kMinWorkPerBlock = 1 << 15;
    const int64_t row_work =
        std::max<int64_t>(1, static_cast<int64_t>(k) * n);
    const int64_t rows = kMinWorkPerBlock / row_work + 1;
    return std::min<int64_t>(std::max<int64_t>(rows, 1), m);
}

} // namespace

void
MatMul(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate)
{
    SINAN_CHECK_MSG(a.Rank() == 2 && b.Rank() == 2 && c.Rank() == 2,
                    "MatMul: rank-2 tensors required");
    const int m = a.Dim(0), k = a.Dim(1), n = b.Dim(1);
    CheckMatmul(a, b, c, m, k, b.Dim(0), n);
    if (!accumulate)
        c.Fill(0.0f);
    const float* ap = a.Data();
    const float* bp = b.Data();
    float* cp = c.Data();
    // Row-blocked over C (disjoint per block, structure fixed by
    // RowGrain) with the dispatched row-panel kernel inside: scalar
    // and AVX2 share the ascending-p mul-then-add contract, so the
    // result is bit-identical across kernels and thread counts.
    const GemmRowsFn kern = ActiveGemmRows();
    ParallelFor(0, m, RowGrain(m, k, n), [&](int64_t lo, int64_t hi) {
        kern(ap, k, bp, n, cp, n, lo, hi, k, n);
    });
}

void
MatMulTa(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate)
{
    SINAN_CHECK_MSG(a.Rank() == 2 && b.Rank() == 2 && c.Rank() == 2,
                    "MatMulTa: rank-2 tensors required");
    const int k = a.Dim(0), m = a.Dim(1), n = b.Dim(1);
    CheckMatmul(a, b, c, m, k, b.Dim(0), n);
    if (!accumulate)
        c.Fill(0.0f);
    const float* ap = a.Data();
    const float* bp = b.Data();
    float* cp = c.Data();
    // Row-blocked over C so concurrent blocks never share an output
    // row; per-element accumulation stays in increasing-p order, so the
    // result is bit-identical at any thread count.
    ParallelFor(0, m, RowGrain(m, k, n), [&](int64_t lo, int64_t hi) {
        for (int p = 0; p < k; ++p) {
            const float* arow = ap + static_cast<size_t>(p) * m;
            const float* brow = bp + static_cast<size_t>(p) * n;
            for (int64_t i = lo; i < hi; ++i) {
                const float av = arow[i];
                float* crow = cp + static_cast<size_t>(i) * n;
                for (int j = 0; j < n; ++j)
                    crow[j] += av * brow[j];
            }
        }
    });
}

void
MatMulTb(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate)
{
    SINAN_CHECK_MSG(a.Rank() == 2 && b.Rank() == 2 && c.Rank() == 2,
                    "MatMulTb: rank-2 tensors required");
    const int m = a.Dim(0), k = a.Dim(1), n = b.Dim(0);
    CheckMatmul(a, b, c, m, k, b.Dim(1), n);
    if (!accumulate)
        c.Fill(0.0f);
    const float* ap = a.Data();
    const float* bp = b.Data();
    float* cp = c.Data();
    ParallelFor(0, m, RowGrain(m, k, n), [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const float* arow = ap + static_cast<size_t>(i) * k;
            float* crow = cp + static_cast<size_t>(i) * n;
            for (int j = 0; j < n; ++j) {
                const float* brow = bp + static_cast<size_t>(j) * k;
                float acc = 0.0f;
                for (int p = 0; p < k; ++p)
                    acc += arow[p] * brow[p];
                crow[j] += acc;
            }
        }
    });
}

} // namespace sinan
