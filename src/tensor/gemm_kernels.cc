#include "tensor/gemm_kernels.h"

#include <algorithm>

#include "common/cpu_features.h"

namespace sinan {

namespace {

/** Output positions per accumulation tile. Tiling only affects cache
 *  behaviour, never bytes: each element's terms still accumulate in
 *  ascending p regardless of how columns are grouped. */
constexpr int64_t kPosTile = 256;

} // namespace

void
GemmRowsScalar(const float* a, int64_t lda, const float* b, int64_t ldb,
               float* c, int64_t ldc, int64_t r0, int64_t r1, int64_t k,
               int64_t n)
{
    for (int64_t r = r0; r < r1; ++r) {
        const float* arow = a + r * lda;
        float* crow = c + r * ldc;
        for (int64_t t0 = 0; t0 < n; t0 += kPosTile) {
            const int64_t t1 = std::min(n, t0 + kPosTile);
            for (int64_t p = 0; p < k; ++p) {
                const float av = arow[p];
                const float* brow = b + p * ldb;
                for (int64_t t = t0; t < t1; ++t)
                    crow[t] += av * brow[t];
            }
        }
    }
}

GemmRowsFn
ActiveGemmRows()
{
#ifdef SINAN_HAVE_AVX2
    if (SimdActive())
        return GemmRowsAvx2;
#endif
    return GemmRowsScalar;
}

} // namespace sinan
