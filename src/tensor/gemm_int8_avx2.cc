/**
 * @file
 * AVX2 int8 row-panel GEMM microkernel (see gemm_int8_kernels.h for
 * the packed-operand contract). Compiled only under SINAN_HAVE_AVX2 in
 * its own -mavx2 translation unit — with gemm_avx2.cc, the only files
 * allowed to use vector intrinsics (sinan_analyze raw-simd-intrinsic).
 *
 * The inner step is _mm256_maddubs_epi16(activations, weights): each
 * 32-byte weight load covers 8 output columns x 4 k positions of the
 * K4-packed panel, multiplied by a 4-byte activation group broadcast
 * to every 32-bit lane. maddubs produces per-pair int16 sums — exact,
 * never saturated, because weights are clamped to +/-kInt8WeightMax —
 * and _mm256_madd_epi16 against ones widens them into the int32 lane
 * accumulators. All arithmetic is exact integer arithmetic, so the
 * result equals GemmInt8RowsScalar byte-for-byte regardless of
 * blocking: the panels below exist purely for speed.
 *
 * Blocking: 4 rows x 8 columns (weight loads shared across four row
 * accumulators), a 1-row x 16-column panel for single-row products
 * (the trunk's [1, k] dense layers), and a scalar column tail.
 */
#include "tensor/gemm_int8_kernels.h"

#ifdef SINAN_HAVE_AVX2

#include <immintrin.h>

#include <cstring>

namespace sinan {

namespace {

/** Broadcasts the 4-byte activation group at @p p to all epi32 lanes. */
inline __m256i
BroadcastA4(const uint8_t* p)
{
    int32_t quad;
    std::memcpy(&quad, p, sizeof(quad));
    return _mm256_set1_epi32(quad);
}

/** Scalar column tail [j0, n): same exact integer sums. */
inline void
TailColsInt8(const uint8_t* arow, const int8_t* bpack, int32_t* crow,
             int64_t j0, int64_t n, int64_t groups)
{
    for (int64_t g = 0; g < groups; ++g) {
        const uint8_t* ag = arow + g * 4;
        const int8_t* bg = bpack + g * n * 4;
        const int32_t a0 = ag[0], a1 = ag[1], a2 = ag[2], a3 = ag[3];
        for (int64_t j = j0; j < n; ++j) {
            const int8_t* bj = bg + j * 4;
            crow[j] += a0 * bj[0] + a1 * bj[1] + a2 * bj[2] + a3 * bj[3];
        }
    }
}

/** One row, 16 columns (two weight loads per broadcast). */
inline void
Panel1x16(const uint8_t* arow, const int8_t* bpack, int32_t* crow,
          int64_t j, int64_t n, int64_t groups)
{
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    for (int64_t g = 0; g < groups; ++g) {
        const int8_t* bg = bpack + g * n * 4 + j * 4;
        const __m256i av = BroadcastA4(arow + g * 4);
        const __m256i b0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bg));
        const __m256i b1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bg + 32));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b0), ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(_mm256_maddubs_epi16(av, b1), ones));
    }
    __m256i* c0 = reinterpret_cast<__m256i*>(crow + j);
    __m256i* c1 = reinterpret_cast<__m256i*>(crow + j + 8);
    _mm256_storeu_si256(c0, _mm256_add_epi32(_mm256_loadu_si256(c0),
                                             acc0));
    _mm256_storeu_si256(c1, _mm256_add_epi32(_mm256_loadu_si256(c1),
                                             acc1));
}

/** One row, 8 columns. */
inline void
Panel1x8(const uint8_t* arow, const int8_t* bpack, int32_t* crow,
         int64_t j, int64_t n, int64_t groups)
{
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc = _mm256_setzero_si256();
    for (int64_t g = 0; g < groups; ++g) {
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bpack + g * n * 4 + j * 4));
        const __m256i av = BroadcastA4(arow + g * 4);
        acc = _mm256_add_epi32(
            acc, _mm256_madd_epi16(_mm256_maddubs_epi16(av, bv), ones));
    }
    __m256i* cj = reinterpret_cast<__m256i*>(crow + j);
    _mm256_storeu_si256(cj, _mm256_add_epi32(_mm256_loadu_si256(cj),
                                             acc));
}

/** Four rows, 8 columns: weight loads shared across the four rows. */
inline void
Panel4x8(const uint8_t* a, int64_t lda, const int8_t* bpack, int32_t* c,
         int64_t ldc, int64_t r, int64_t j, int64_t n, int64_t groups)
{
    const uint8_t* a0 = a + r * lda;
    const uint8_t* a1 = a0 + lda;
    const uint8_t* a2 = a1 + lda;
    const uint8_t* a3 = a2 + lda;
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    for (int64_t g = 0; g < groups; ++g) {
        const __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(bpack + g * n * 4 + j * 4));
        const int64_t p = g * 4;
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(BroadcastA4(a0 + p), bv),
                      ones));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(BroadcastA4(a1 + p), bv),
                      ones));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(BroadcastA4(a2 + p), bv),
                      ones));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      _mm256_maddubs_epi16(BroadcastA4(a3 + p), bv),
                      ones));
    }
    int32_t* c0 = c + r * ldc + j;
    int32_t* c1 = c0 + ldc;
    int32_t* c2 = c1 + ldc;
    int32_t* c3 = c2 + ldc;
    __m256i* v0 = reinterpret_cast<__m256i*>(c0);
    __m256i* v1 = reinterpret_cast<__m256i*>(c1);
    __m256i* v2 = reinterpret_cast<__m256i*>(c2);
    __m256i* v3 = reinterpret_cast<__m256i*>(c3);
    _mm256_storeu_si256(v0, _mm256_add_epi32(_mm256_loadu_si256(v0),
                                             acc0));
    _mm256_storeu_si256(v1, _mm256_add_epi32(_mm256_loadu_si256(v1),
                                             acc1));
    _mm256_storeu_si256(v2, _mm256_add_epi32(_mm256_loadu_si256(v2),
                                             acc2));
    _mm256_storeu_si256(v3, _mm256_add_epi32(_mm256_loadu_si256(v3),
                                             acc3));
}

} // namespace

void
QuantizeU8Avx2(const float* x, int64_t count, float inv_scale,
               uint8_t* out)
{
    // Vector image of QuantizeU8One: mul, clamp (max/min, second
    // operand wins on NaN — matching the scalar compare direction),
    // ties-away-from-zero rounding via sign-copied 0.5 and truncation,
    // +128, then saturating packs to u8. Identical bytes to the scalar
    // quantizer for every input.
    const __m256 inv = _mm256_set1_ps(inv_scale);
    const __m256 lo = _mm256_set1_ps(-kQuantClamp);
    const __m256 hi = _mm256_set1_ps(kQuantClamp);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 signmask = _mm256_set1_ps(-0.0f);
    const __m256i zp = _mm256_set1_epi32(128);
    int64_t i = 0;
    for (; i + 8 <= count; i += 8) {
        __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), inv);
        v = _mm256_min_ps(_mm256_max_ps(v, lo), hi);
        const __m256 signed_half =
            _mm256_or_ps(_mm256_and_ps(v, signmask), half);
        const __m256i q = _mm256_add_epi32(
            _mm256_cvttps_epi32(_mm256_add_ps(v, signed_half)), zp);
        // 128-bit packs keep element order (no lane interleave): the
        // saturating pack chain is exactly the scalar [0, 255] clamp.
        const __m128i lo128 = _mm256_castsi256_si128(q);
        const __m128i hi128 = _mm256_extracti128_si256(q, 1);
        const __m128i words = _mm_packs_epi32(lo128, hi128);
        const __m128i bytes = _mm_packus_epi16(words, words);
        std::memcpy(out + i, &bytes, 8);
    }
    for (; i < count; ++i)
        out[i] = QuantizeU8One(x[i], inv_scale);
}

void
RequantReluU8Avx2(const int32_t* acc, int64_t rows, int64_t oc,
                  const float* bias, const float* rscale,
                  const int32_t* zp128, float inv_next, uint8_t* out)
{
    // Same pipeline as QuantizeU8Avx2 with the dequantize expression
    // v = bias + rscale * float(acc - zp128) prepended (explicit mul
    // then add — no FMA contraction — to match the scalar TU, which
    // cannot emit FMA) and the relu fused as max(q, 128) before the
    // packs.
    const __m256 inv = _mm256_set1_ps(inv_next);
    const __m256 lo = _mm256_set1_ps(-kQuantClamp);
    const __m256 hi = _mm256_set1_ps(kQuantClamp);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 signmask = _mm256_set1_ps(-0.0f);
    const __m256i zpq = _mm256_set1_epi32(128);
    const int64_t oc8 = oc & ~int64_t{7};
    for (int64_t i = 0; i < rows; ++i) {
        const int32_t* arow = acc + i * oc;
        uint8_t* orow = out + i * oc;
        int64_t c = 0;
        for (; c < oc8; c += 8) {
            const __m256i ai = _mm256_sub_epi32(
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(arow + c)),
                _mm256_loadu_si256(
                    reinterpret_cast<const __m256i*>(zp128 + c)));
            __m256 v = _mm256_add_ps(
                _mm256_loadu_ps(bias + c),
                _mm256_mul_ps(_mm256_loadu_ps(rscale + c),
                              _mm256_cvtepi32_ps(ai)));
            v = _mm256_mul_ps(v, inv);
            v = _mm256_min_ps(_mm256_max_ps(v, lo), hi);
            const __m256 signed_half =
                _mm256_or_ps(_mm256_and_ps(v, signmask), half);
            __m256i q = _mm256_add_epi32(
                _mm256_cvttps_epi32(_mm256_add_ps(v, signed_half)),
                zpq);
            q = _mm256_max_epi32(q, zpq);
            const __m128i words =
                _mm_packs_epi32(_mm256_castsi256_si128(q),
                                _mm256_extracti128_si256(q, 1));
            const __m128i bytes = _mm_packus_epi16(words, words);
            std::memcpy(orow + c, &bytes, 8);
        }
        for (; c < oc; ++c) {
            const float v =
                bias[c] +
                rscale[c] * static_cast<float>(arow[c] - zp128[c]);
            const uint8_t q = QuantizeU8One(v, inv_next);
            orow[c] = q < 128 ? uint8_t{128} : q;
        }
    }
}

void
GemmInt8RowsAvx2(const uint8_t* a, int64_t lda, const int8_t* bpack,
                 int32_t* c, int64_t ldc, int64_t r0, int64_t r1,
                 int64_t k, int64_t n)
{
    const int64_t groups = Int8KGroups(k);
    int64_t r = r0;
    for (; r + 4 <= r1; r += 4) {
        int64_t j = 0;
        for (; j + 8 <= n; j += 8)
            Panel4x8(a, lda, bpack, c, ldc, r, j, n, groups);
        if (j < n) {
            for (int64_t rr = r; rr < r + 4; ++rr)
                TailColsInt8(a + rr * lda, bpack, c + rr * ldc, j, n,
                             groups);
        }
    }
    for (; r < r1; ++r) {
        const uint8_t* arow = a + r * lda;
        int32_t* crow = c + r * ldc;
        int64_t j = 0;
        for (; j + 16 <= n; j += 16)
            Panel1x16(arow, bpack, crow, j, n, groups);
        for (; j + 8 <= n; j += 8)
            Panel1x8(arow, bpack, crow, j, n, groups);
        if (j < n)
            TailColsInt8(arow, bpack, crow, j, n, groups);
    }
}

} // namespace sinan

#endif // SINAN_HAVE_AVX2
