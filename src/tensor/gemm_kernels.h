/**
 * @file
 * Row-panel GEMM microkernels behind MatMul and the im2col conv
 * matmul, with runtime scalar/AVX2 dispatch (common/cpu_features).
 *
 * Contract shared by every implementation — this is what makes the
 * SIMD path bit-identical to the scalar one, and both thread-count
 * independent:
 *
 *   c[r, 0..n) += sum_p a[r, p] * b[p, 0..n)   for r in [r0, r1)
 *
 * where, per output element c[r, j], the k terms accumulate in
 * ascending p order and each term is one IEEE-rounded multiply
 * followed by one IEEE-rounded add (never a fused multiply-add: FMA's
 * single rounding would diverge from the scalar path). Vector lanes
 * map to distinct output elements, so lane width never changes any
 * element's accumulation order. Callers pre-fill c (zeros for a plain
 * product, bias for the conv planes) and parallelize over disjoint
 * row ranges; the kernel itself never spawns work.
 *
 * The AVX2 implementation is compiled only when CMake's SINAN_SIMD
 * option and the toolchain allow it (SINAN_HAVE_AVX2), in its own
 * translation unit built with -mavx2 -ffp-contract=off; it is the one
 * file allowed to use _mm256 intrinsics (enforced by sinan_analyze's
 * raw-simd-intrinsic rule).
 */
#ifndef SINAN_TENSOR_GEMM_KERNELS_H
#define SINAN_TENSOR_GEMM_KERNELS_H

#include <cstdint>

namespace sinan {

/**
 * Accumulates the row panel [r0, r1) of c += a * b.
 * @param a    [*, k] row-major, leading dimension @p lda
 * @param b    [k, n] row-major, leading dimension @p ldb
 * @param c    [*, n] row-major, leading dimension @p ldc (accumulated
 *             into — callers pre-fill with zeros or bias)
 */
using GemmRowsFn = void (*)(const float* a, int64_t lda, const float* b,
                            int64_t ldb, float* c, int64_t ldc,
                            int64_t r0, int64_t r1, int64_t k, int64_t n);

/** Portable reference implementation (position-tiled scalar loops). */
void GemmRowsScalar(const float* a, int64_t lda, const float* b,
                    int64_t ldb, float* c, int64_t ldc, int64_t r0,
                    int64_t r1, int64_t k, int64_t n);

#ifdef SINAN_HAVE_AVX2
/** Register-blocked AVX2 implementation (same bytes as scalar). */
void GemmRowsAvx2(const float* a, int64_t lda, const float* b,
                  int64_t ldb, float* c, int64_t ldc, int64_t r0,
                  int64_t r1, int64_t k, int64_t n);
#endif

/** The kernel the current dispatch decision selects (see
 *  common/cpu_features.h: compile gate, CPUID, SINAN_SIMD override). */
GemmRowsFn ActiveGemmRows();

} // namespace sinan

#endif // SINAN_TENSOR_GEMM_KERNELS_H
