/**
 * @file
 * Int8 row-panel GEMM microkernels — the quantized counterpart of
 * gemm_kernels.h, behind the same dispatch contract (row panels,
 * caller-driven parallelism, runtime scalar/AVX2 selection via
 * common/cpu_features).
 *
 * Contract shared by every implementation:
 *
 *   c[r, 0..n) += sum_p a[r, p] * b[p, 0..n)   for r in [r0, r1)
 *
 * with a unsigned 8-bit (activations, zero point 128), b signed 8-bit
 * (weights, clamped to [-kInt8WeightMax, kInt8WeightMax]), and c 32-bit
 * integer accumulators. Every product fits an int32 exactly and integer
 * addition is associative, so — unlike the fp32 kernels, whose
 * bit-identity needs a pinned accumulation order — the scalar and AVX2
 * int8 kernels are byte-identical by construction, at any thread count.
 * Requantization back to float happens in the caller (nn/quant.cc),
 * after the integer accumulation is complete.
 *
 * The b operand is consumed in a packed "K4" panel layout produced by
 * PackInt8B: k is grouped in fours, and each group stores its n columns
 * as 4 consecutive bytes per column —
 *
 *   packed[g * n * 4 + j * 4 + t] = b[g * 4 + t, j]   (0 beyond k)
 *
 * — so the AVX2 kernel can load 8 columns x 4 k-steps as one 32-byte
 * vector and feed _mm256_maddubs_epi16 directly. maddubs saturates its
 * int16 pair sums; clamping weights to +/-kInt8WeightMax keeps every
 * pair sum <= 2 * 255 * 63 = 32130 < 32767, so no saturation can occur
 * and the vector path computes the exact integer sum. The a rows must
 * be readable (not necessarily zeroed) up to lda >= 4 * Int8KGroups(k)
 * bytes: positions past k multiply packed zeros and contribute nothing.
 *
 * The AVX2 implementation lives in gemm_int8_avx2.cc — with
 * gemm_avx2.cc, the only files allowed to use _mm256 intrinsics
 * (enforced by sinan_analyze's raw-simd-intrinsic rule).
 */
#ifndef SINAN_TENSOR_GEMM_INT8_KERNELS_H
#define SINAN_TENSOR_GEMM_INT8_KERNELS_H

#include <cstdint>

namespace sinan {

/** Quantized weights are clamped to +/- this (7-bit symmetric), the
 *  price of exact, saturation-free maddubs pair sums (see above). */
constexpr int kInt8WeightMax = 63;

/** Number of 4-wide k groups in the packed layout. */
inline int64_t
Int8KGroups(int64_t k)
{
    return (k + 3) / 4;
}

/** Bytes of a packed [k, n] panel (zero-padded to a multiple of 4 k). */
inline int64_t
Int8PackedSize(int64_t k, int64_t n)
{
    return Int8KGroups(k) * n * 4;
}

/**
 * Packs row-major b [k, n] (leading dimension @p ldb) into the K4 panel
 * layout described above; @p packed must hold Int8PackedSize(k, n)
 * bytes. Positions past k are stored as zero.
 */
void PackInt8B(const int8_t* b, int64_t ldb, int64_t k, int64_t n,
               int8_t* packed);

/**
 * Accumulates the row panel [r0, r1) of c += a * b.
 * @param a      [*, >=k] row-major uint8, leading dimension @p lda
 *               (lda >= 4 * Int8KGroups(k); bytes past k are read but
 *               multiply zero weights)
 * @param bpack  K4-packed b panel (PackInt8B)
 * @param c      [*, n] row-major int32, leading dimension @p ldc
 *               (accumulated into — callers pre-fill with zeros)
 */
using GemmInt8RowsFn = void (*)(const uint8_t* a, int64_t lda,
                                const int8_t* bpack, int32_t* c,
                                int64_t ldc, int64_t r0, int64_t r1,
                                int64_t k, int64_t n);

/** Portable reference implementation (exact int32 accumulation). */
void GemmInt8RowsScalar(const uint8_t* a, int64_t lda, const int8_t* bpack,
                        int32_t* c, int64_t ldc, int64_t r0, int64_t r1,
                        int64_t k, int64_t n);

#ifdef SINAN_HAVE_AVX2
/** maddubs-based AVX2 implementation (same bytes as scalar). */
void GemmInt8RowsAvx2(const uint8_t* a, int64_t lda, const int8_t* bpack,
                      int32_t* c, int64_t ldc, int64_t r0, int64_t r1,
                      int64_t k, int64_t n);
#endif

/** The kernel the current dispatch decision selects — the same
 *  SINAN_SIMD / SetSimdMode switch as the fp32 kernels, so --simd=off
 *  exercises the int8 scalar reference. */
GemmInt8RowsFn ActiveGemmInt8Rows();

/**
 * Quantizes one activation to u8 with zero point 128:
 *   q = clamp(round_ties_away(clamp(x * inv_scale, ±kQuantClamp)) + 128,
 *             0, 255).
 * The float-domain clamp keeps the int cast defined for any input
 * (values beyond ±129 saturate to 0/255 regardless); its compare
 * direction mirrors the AVX2 max/min semantics, so NaN deterministically
 * maps to byte 0 on both paths. This is the single rounding rule of the
 * whole int8 pipeline — the scalar and AVX2 quantizers and both GEMM
 * kernels compose to byte-identical results by construction.
 */
constexpr float kQuantClamp = 200.0f;

inline uint8_t
QuantizeU8One(float x, float inv_scale)
{
    float v = x * inv_scale;
    // Ordered exactly like _mm256_max_ps/_mm256_min_ps: the second
    // operand wins on NaN.
    v = v > -kQuantClamp ? v : -kQuantClamp;
    v = v < kQuantClamp ? v : kQuantClamp;
    const int32_t r =
        static_cast<int32_t>(v >= 0.0f ? v + 0.5f : v - 0.5f) + 128;
    return static_cast<uint8_t>(r < 0 ? 0 : (r > 255 ? 255 : r));
}

/** Bulk activation quantization: out[i] = QuantizeU8One(x[i]). The
 *  AVX2 version needs no tail slack — byte-identical to scalar. */
using QuantizeU8Fn = void (*)(const float* x, int64_t count,
                              float inv_scale, uint8_t* out);

void QuantizeU8Scalar(const float* x, int64_t count, float inv_scale,
                      uint8_t* out);

#ifdef SINAN_HAVE_AVX2
void QuantizeU8Avx2(const float* x, int64_t count, float inv_scale,
                    uint8_t* out);
#endif

/** Dispatched like ActiveGemmInt8Rows (same SINAN_SIMD switch). */
QuantizeU8Fn ActiveQuantizeU8();

/**
 * Fused requantize + relu + next-layer quantize over channel-last conv
 * accumulators acc [rows, oc]:
 *
 *   v         = bias[c] + rscale[c] * (acc[i, c] - zp128[c])
 *   out[i, c] = max(QuantizeU8One(v, inv_next), 128)
 *
 * zp128[c] is the precomputed zero-point correction 128 * colsum_w[c].
 * The max with 128 IS relu: quantization is monotonic with q(0) = 128,
 * so q(relu(v)) = max(q(v), 128) exactly. Both implementations compute
 * v as an explicit multiply then add (int -> float conversion rounds
 * to nearest in both), so scalar and AVX2 are byte-identical.
 */
using RequantReluU8Fn = void (*)(const int32_t* acc, int64_t rows,
                                 int64_t oc, const float* bias,
                                 const float* rscale,
                                 const int32_t* zp128, float inv_next,
                                 uint8_t* out);

void RequantReluU8Scalar(const int32_t* acc, int64_t rows, int64_t oc,
                         const float* bias, const float* rscale,
                         const int32_t* zp128, float inv_next,
                         uint8_t* out);

#ifdef SINAN_HAVE_AVX2
void RequantReluU8Avx2(const int32_t* acc, int64_t rows, int64_t oc,
                       const float* bias, const float* rscale,
                       const int32_t* zp128, float inv_next,
                       uint8_t* out);
#endif

/** Dispatched like ActiveGemmInt8Rows (same SINAN_SIMD switch). */
RequantReluU8Fn ActiveRequantReluU8();

} // namespace sinan

#endif // SINAN_TENSOR_GEMM_INT8_KERNELS_H
