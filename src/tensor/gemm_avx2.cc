/**
 * @file
 * AVX2 row-panel GEMM microkernel (see gemm_kernels.h for the shared
 * accumulation-order contract). Compiled only under SINAN_HAVE_AVX2,
 * with -mavx2 -ffp-contract=off: every term is an explicit
 * _mm256_mul_ps followed by _mm256_add_ps, and contraction is disabled
 * so the compiler cannot fuse them into an FMA whose single rounding
 * would diverge from the scalar path. Vector lanes are distinct output
 * elements; per element the k terms accumulate in ascending p exactly
 * like GemmRowsScalar, so the two kernels produce identical bytes.
 *
 * Blocking: 4 rows x 16 columns (8 ymm accumulators live across the
 * whole k loop, b rows loaded once per 4 output rows), with a 1-row x
 * 64-column panel for single-row products (the trunk's [1, k] dense
 * layers) so enough independent add chains stay in flight to cover the
 * add latency. Column tails fall back to scalar code with the same
 * per-element order.
 */
#include "tensor/gemm_kernels.h"

#ifdef SINAN_HAVE_AVX2

#include <immintrin.h>

namespace sinan {

namespace {

/** Scalar column tail [j0, n) for one row; ascending-p mul-then-add. */
inline void
TailCols(const float* arow, const float* b, int64_t ldb, float* crow,
         int64_t j0, int64_t n, int64_t k)
{
    for (int64_t j = j0; j < n; ++j) {
        float acc = crow[j];
        const float* bp = b + j;
        for (int64_t p = 0; p < k; ++p)
            acc += arow[p] * bp[p * ldb];
        crow[j] = acc;
    }
}

/** One row, 64 columns: 8 independent accumulator chains. */
inline void
Panel1x64(const float* arow, const float* b, int64_t ldb, float* crow,
          int64_t j, int64_t k)
{
    __m256 acc0 = _mm256_loadu_ps(crow + j);
    __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
    __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
    __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
    __m256 acc4 = _mm256_loadu_ps(crow + j + 32);
    __m256 acc5 = _mm256_loadu_ps(crow + j + 40);
    __m256 acc6 = _mm256_loadu_ps(crow + j + 48);
    __m256 acc7 = _mm256_loadu_ps(crow + j + 56);
    for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * ldb + j;
        const __m256 av = _mm256_set1_ps(arow[p]);
        acc0 = _mm256_add_ps(acc0,
                             _mm256_mul_ps(av, _mm256_loadu_ps(brow)));
        acc1 = _mm256_add_ps(
            acc1, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 8)));
        acc2 = _mm256_add_ps(
            acc2, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 16)));
        acc3 = _mm256_add_ps(
            acc3, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 24)));
        acc4 = _mm256_add_ps(
            acc4, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 32)));
        acc5 = _mm256_add_ps(
            acc5, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 40)));
        acc6 = _mm256_add_ps(
            acc6, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 48)));
        acc7 = _mm256_add_ps(
            acc7, _mm256_mul_ps(av, _mm256_loadu_ps(brow + 56)));
    }
    _mm256_storeu_ps(crow + j, acc0);
    _mm256_storeu_ps(crow + j + 8, acc1);
    _mm256_storeu_ps(crow + j + 16, acc2);
    _mm256_storeu_ps(crow + j + 24, acc3);
    _mm256_storeu_ps(crow + j + 32, acc4);
    _mm256_storeu_ps(crow + j + 40, acc5);
    _mm256_storeu_ps(crow + j + 48, acc6);
    _mm256_storeu_ps(crow + j + 56, acc7);
}

/** One row, 8 columns. */
inline void
Panel1x8(const float* arow, const float* b, int64_t ldb, float* crow,
         int64_t j, int64_t k)
{
    __m256 acc = _mm256_loadu_ps(crow + j);
    for (int64_t p = 0; p < k; ++p) {
        const __m256 av = _mm256_set1_ps(arow[p]);
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(av, _mm256_loadu_ps(b + p * ldb + j)));
    }
    _mm256_storeu_ps(crow + j, acc);
}

/** Four rows, 16 columns: b rows loaded once per four output rows. */
inline void
Panel4x16(const float* a, int64_t lda, const float* b, int64_t ldb,
          float* c, int64_t ldc, int64_t r, int64_t j, int64_t k)
{
    const float* a0 = a + r * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    float* c0 = c + r * ldc + j;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    __m256 acc00 = _mm256_loadu_ps(c0);
    __m256 acc01 = _mm256_loadu_ps(c0 + 8);
    __m256 acc10 = _mm256_loadu_ps(c1);
    __m256 acc11 = _mm256_loadu_ps(c1 + 8);
    __m256 acc20 = _mm256_loadu_ps(c2);
    __m256 acc21 = _mm256_loadu_ps(c2 + 8);
    __m256 acc30 = _mm256_loadu_ps(c3);
    __m256 acc31 = _mm256_loadu_ps(c3 + 8);
    for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * ldb + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        __m256 av = _mm256_set1_ps(a0[p]);
        acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av, b0));
        acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a1[p]);
        acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av, b0));
        acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a2[p]);
        acc20 = _mm256_add_ps(acc20, _mm256_mul_ps(av, b0));
        acc21 = _mm256_add_ps(acc21, _mm256_mul_ps(av, b1));
        av = _mm256_set1_ps(a3[p]);
        acc30 = _mm256_add_ps(acc30, _mm256_mul_ps(av, b0));
        acc31 = _mm256_add_ps(acc31, _mm256_mul_ps(av, b1));
    }
    _mm256_storeu_ps(c0, acc00);
    _mm256_storeu_ps(c0 + 8, acc01);
    _mm256_storeu_ps(c1, acc10);
    _mm256_storeu_ps(c1 + 8, acc11);
    _mm256_storeu_ps(c2, acc20);
    _mm256_storeu_ps(c2 + 8, acc21);
    _mm256_storeu_ps(c3, acc30);
    _mm256_storeu_ps(c3 + 8, acc31);
}

/** Four rows, 8 columns. */
inline void
Panel4x8(const float* a, int64_t lda, const float* b, int64_t ldb,
         float* c, int64_t ldc, int64_t r, int64_t j, int64_t k)
{
    const float* a0 = a + r * lda;
    const float* a1 = a0 + lda;
    const float* a2 = a1 + lda;
    const float* a3 = a2 + lda;
    float* c0 = c + r * ldc + j;
    float* c1 = c0 + ldc;
    float* c2 = c1 + ldc;
    float* c3 = c2 + ldc;
    __m256 acc0 = _mm256_loadu_ps(c0);
    __m256 acc1 = _mm256_loadu_ps(c1);
    __m256 acc2 = _mm256_loadu_ps(c2);
    __m256 acc3 = _mm256_loadu_ps(c3);
    for (int64_t p = 0; p < k; ++p) {
        const __m256 b0 = _mm256_loadu_ps(b + p * ldb + j);
        acc0 = _mm256_add_ps(
            acc0, _mm256_mul_ps(_mm256_set1_ps(a0[p]), b0));
        acc1 = _mm256_add_ps(
            acc1, _mm256_mul_ps(_mm256_set1_ps(a1[p]), b0));
        acc2 = _mm256_add_ps(
            acc2, _mm256_mul_ps(_mm256_set1_ps(a2[p]), b0));
        acc3 = _mm256_add_ps(
            acc3, _mm256_mul_ps(_mm256_set1_ps(a3[p]), b0));
    }
    _mm256_storeu_ps(c0, acc0);
    _mm256_storeu_ps(c1, acc1);
    _mm256_storeu_ps(c2, acc2);
    _mm256_storeu_ps(c3, acc3);
}

} // namespace

void
GemmRowsAvx2(const float* a, int64_t lda, const float* b, int64_t ldb,
             float* c, int64_t ldc, int64_t r0, int64_t r1, int64_t k,
             int64_t n)
{
    int64_t r = r0;
    for (; r + 4 <= r1; r += 4) {
        int64_t j = 0;
        for (; j + 16 <= n; j += 16)
            Panel4x16(a, lda, b, ldb, c, ldc, r, j, k);
        for (; j + 8 <= n; j += 8)
            Panel4x8(a, lda, b, ldb, c, ldc, r, j, k);
        if (j < n) {
            for (int64_t rr = r; rr < r + 4; ++rr)
                TailCols(a + rr * lda, b, ldb, c + rr * ldc, j, n, k);
        }
    }
    for (; r < r1; ++r) {
        const float* arow = a + r * lda;
        float* crow = c + r * ldc;
        int64_t j = 0;
        for (; j + 64 <= n; j += 64)
            Panel1x64(arow, b, ldb, crow, j, k);
        for (; j + 8 <= n; j += 8)
            Panel1x8(arow, b, ldb, crow, j, k);
        if (j < n)
            TailCols(arow, b, ldb, crow, j, n, k);
    }
}

} // namespace sinan

#endif // SINAN_HAVE_AVX2
