/**
 * @file
 * Minimal dense float tensor used by the neural-network substrate.
 *
 * Row-major storage, up to 4 dimensions in practice (batch, channel,
 * height, width). The NN layers implement their math with explicit loops
 * over contiguous innermost dimensions so the compiler can vectorize; the
 * tensor class itself only manages shape and storage.
 */
#ifndef SINAN_TENSOR_TENSOR_H
#define SINAN_TENSOR_TENSOR_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/rng.h"

namespace sinan {

/** Dense row-major float tensor. */
class Tensor {
  public:
    /** Empty (rank-0, size-0) tensor. */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Copies count toward AllocationEvents() when they acquire a new
     *  buffer; moves never do. */
    Tensor(const Tensor& other);
    Tensor& operator=(const Tensor& other);
    Tensor(Tensor&&) noexcept = default;
    Tensor& operator=(Tensor&&) noexcept = default;

    /** Builds a 1-D tensor from values. */
    static Tensor FromVector(const std::vector<float>& values);

    /** Tensor with i.i.d. normal entries (for weight init). */
    static Tensor Randn(std::vector<int> shape, Rng& rng,
                        float stddev = 1.0f);

    const std::vector<int>& Shape() const { return shape_; }
    int Rank() const { return static_cast<int>(shape_.size()); }

    /** Extent of dimension @p d (throws on bad index). */
    int Dim(int d) const;

    /** Total number of elements. */
    size_t Size() const { return data_.size(); }

    bool Empty() const { return data_.empty(); }

    float* Data() { return data_.data(); }
    const float* Data() const { return data_.data(); }

    float& operator[](size_t i) { return data_[i]; }
    float operator[](size_t i) const { return data_[i]; }

    /** 2-D indexed access (row-major). */
    float& At(int i, int j) { return data_[Offset2(i, j)]; }
    float At(int i, int j) const { return data_[Offset2(i, j)]; }

    /** 3-D indexed access. */
    float& At(int i, int j, int k) { return data_[Offset3(i, j, k)]; }
    float At(int i, int j, int k) const { return data_[Offset3(i, j, k)]; }

    /** 4-D indexed access. */
    float&
    At(int i, int j, int k, int l)
    {
        return data_[Offset4(i, j, k, l)];
    }
    float
    At(int i, int j, int k, int l) const
    {
        return data_[Offset4(i, j, k, l)];
    }

    /** Reinterprets the shape; total size must match. */
    Tensor Reshaped(std::vector<int> shape) const;

    /**
     * Reinterprets the shape in place without touching the buffer;
     * total size must match. Unlike Reshaped, never copies data — the
     * workspace fast path uses this to view a [1, C, H, W] conv output
     * as the [1, C*H*W] input of the following dense layer.
     */
    void ReshapeInPlace(const std::vector<int>& shape);

    /**
     * Resizes to @p shape, reusing the existing buffer whenever its
     * capacity suffices (no allocation in that case). Element contents
     * are unspecified afterwards — intended for workspace buffers that
     * are fully overwritten by the caller.
     */
    void EnsureShape(const std::vector<int>& shape);

    /**
     * Process-wide count of tensor buffer acquisitions (constructions,
     * growing EnsureShape calls, and copies that could not reuse
     * capacity). The workspace-reuse tests assert this stays flat
     * across steady-state Evaluate calls.
     */
    static uint64_t AllocationEvents();

    /** Sets every element to @p v. */
    void Fill(float v);

    /** Element-wise in-place scale. */
    void Scale(float s);

    /** Element-wise in-place add (shapes must match). */
    void Add(const Tensor& other);

    /** In-place axpy: this += alpha * other. */
    void Axpy(float alpha, const Tensor& other);

    /** Sum of all elements. */
    double Sum() const;

    /** Binary serialization. */
    void Save(std::ostream& out) const;
    static Tensor Load(std::istream& in);

  private:
    size_t Offset2(int i, int j) const;
    size_t Offset3(int i, int j, int k) const;
    size_t Offset4(int i, int j, int k, int l) const;

    std::vector<int> shape_;
    std::vector<float> data_;
};

/**
 * C[m,n] = sum_k A[m,k] * B[k,n] (+= when accumulate).
 * Shapes are validated; plain loop ordering (m,k,n) for vectorizable
 * innermost stride-1 access.
 */
void MatMul(const Tensor& a, const Tensor& b, Tensor& c,
            bool accumulate = false);

/** C[m,n] = sum_k A[k,m] * B[k,n] — i.e. A^T * B. */
void MatMulTa(const Tensor& a, const Tensor& b, Tensor& c,
              bool accumulate = false);

/** C[m,n] = sum_k A[m,k] * B[n,k] — i.e. A * B^T. */
void MatMulTb(const Tensor& a, const Tensor& b, Tensor& c,
              bool accumulate = false);

} // namespace sinan

#endif // SINAN_TENSOR_TENSOR_H
