/**
 * @file
 * Sinan's hybrid prediction service (paper Figure 5): the CNN short-term
 * latency predictor feeding its latent variable L_f, together with the
 * candidate allocation, into a Boosted-Trees long-term violation
 * predictor. The online scheduler queries this model with candidate
 * allocations every decision interval.
 */
#ifndef SINAN_MODELS_HYBRID_H
#define SINAN_MODELS_HYBRID_H

#include <memory>
#include <string>

#include "gbt/boosted_trees.h"
#include "models/sinan_cnn.h"
#include "models/trainer.h"

namespace sinan {

/** Hyper-parameters of the full hybrid model. */
struct HybridConfig {
    SinanCnnConfig cnn;
    GbtConfig bt;
    TrainOptions train;
};

/** What the scheduler receives for one candidate allocation. */
struct Prediction {
    /** Predicted next-interval latency percentiles, ms (p95..p99). */
    std::vector<double> latency_ms;
    /** Probability of a QoS violation within the next k intervals. */
    double p_violation = 0.0;

    double P99() const { return latency_ms.empty() ? 0.0 : latency_ms.back(); }
};

/** Accuracy summary of the hybrid model (Tables 2 and 3). */
struct HybridReport {
    TrainReport cnn;
    double bt_train_accuracy = 0.0;
    double bt_val_accuracy = 0.0;
    double bt_val_false_pos = 0.0;
    double bt_val_false_neg = 0.0;
    int bt_trees = 0;
    double bt_train_time_s = 0.0;
};

/** Wall-clock breakdown of one Evaluate call (bench instrumentation;
 *  filled only when a non-null pointer is passed to EvaluateTimed). */
struct EvalStageTimes {
    double feature_build_s = 0.0;
    double trunk_s = 0.0;
    double head_s = 0.0;
    double bt_s = 0.0;
    /** Microkernel that produced these bytes ("scalar-v1"/"avx2-v1" on
     *  the fp32 path, "int8-scalar-v1"/"int8-avx2-v1" when quant mode
     *  is int8; see common/cpu_features.h); ids sharing a version
     *  suffix are bit-compatible, so a changed id with changed bytes
     *  marks a deliberate kernel revision, not nondeterminism. */
    const char* kernel_id = "";
};

/**
 * Versioned model-container header. Legacy files (any stream whose
 * first int32 is a plausible tensor rank, i.e. written before the
 * container existed) remain loadable: Load sniffs the first word and
 * rewinds. The magic is deliberately > 8 so an old reader handed a new
 * file fails its Tensor rank check with a clear "corrupt header" error
 * instead of misparsing the payload.
 */
constexpr int32_t kModelMagic = 0x4e4e4953;   // "SINN" little-endian
constexpr int32_t kModelVersion = 2;          // v2: + quant section

/** The CNN + Boosted-Trees hybrid model. */
class HybridModel {
  public:
    HybridModel(const FeatureConfig& fcfg, const HybridConfig& cfg,
                uint64_t seed);

    virtual ~HybridModel() = default;

    HybridModel& operator=(const HybridModel&) = delete;

    /** Trains CNN then BT (on the CNN's latents), as in Sec. 3.2. */
    HybridReport Train(const Dataset& train, const Dataset& valid);

    /**
     * Incremental retraining (Sec. 5.4): fine-tunes the CNN with a small
     * learning rate on newly collected data and refits the BT on the
     * updated latents. Existing weights are the starting point.
     */
    HybridReport FineTune(const Dataset& train, const Dataset& valid,
                          const TrainOptions& opts);

    /**
     * Evaluates a set of candidate allocations against one window via
     * the single-pass fast path: the CNN trunk (rh + lh branches) runs
     * once on the shared window features, and only the per-candidate
     * head is computed per allocation, with every buffer drawn from
     * the model-owned workspace (zero tensor allocations in steady
     * state). Bit-identical to EvaluateFullBatch. Virtual so tests can
     * interpose fault-injecting stubs on the scheduler's only model
     * call.
     */
    virtual std::vector<Prediction>
    Evaluate(const MetricWindow& window,
             const std::vector<std::vector<double>>& allocations);

    /**
     * Evaluate with an optional per-stage wall-clock breakdown (used
     * by bench_inference_speed; pass nullptr to skip timing).
     */
    std::vector<Prediction>
    EvaluateTimed(const MetricWindow& window,
                  const std::vector<std::vector<double>>& allocations,
                  EvalStageTimes* stages);

    /**
     * Legacy full-batch evaluation path: stacks every candidate into
     * one batch and runs the complete CNN per row. Retained as the
     * reference for the fast-path parity tests and the before/after
     * benchmark; the scheduler uses Evaluate().
     */
    std::vector<Prediction>
    EvaluateFullBatch(const MetricWindow& window,
                      const std::vector<std::vector<double>>& allocations);

    /** Validation RMSE (ms) of the CNN from the last (re)training. */
    double ValRmseMs() const { return val_rmse_ms_; }

    /** Validation RMSE (ms) over sub-QoS samples — the scheduler's
     *  latency-filter margin (see TrainReport::val_rmse_subqos_ms). */
    double ValRmseSubQosMs() const { return val_rmse_subqos_ms_; }

    const FeatureConfig& Features() const { return fcfg_; }
    SinanCnn& Cnn() { return cnn_; }
    const BoostedTrees& Bt() const { return bt_; }

    /**
     * Runs up to @p max_samples calibration samples through the fp32
     * fast path, observing per-tensor activation ranges, then
     * quantizes the CNN weights (per-output-channel symmetric int8)
     * and fixes the activation scales. Must run before SetQuantMode
     * (kInt8); TrainSinan* harnesses call it unconditionally after
     * training so every saved model carries scales.
     */
    void CalibrateInt8(const Dataset& calib, int max_samples = 256);

    /**
     * Selects the inference path used by Evaluate/EvaluateTimed.
     * kInt8 requires a calibrated model (throws std::runtime_error
     * otherwise); kOff restores the fp32 path, byte-identical to a
     * model that never had quantization enabled.
     */
    void SetQuantMode(QuantMode mode);
    QuantMode GetQuantMode() const { return quant_; }

    /** True once CalibrateInt8 has run (or a model with a quant
     *  section was loaded). */
    bool Int8Calibrated() const { return cnn_.Int8Ready(); }

    /**
     * Serializes the versioned container: magic, version, the legacy
     * payload (CNN weights, BT trees, RMSE floats), then the quant
     * section (flag + activation scales when calibrated).
     */
    void Save(std::ostream& out) const;

    /** Writes the pre-container legacy layout (format round-trip
     *  tests; old readers parse this directly). */
    void SaveLegacy(std::ostream& out) const;

    /** Loads either a versioned container or a legacy stream
     *  (auto-detected). Rejects unknown future versions with a clear
     *  error. */
    void Load(std::istream& in);

    /**
     * Direct member-wise deep copy (no serialization round-trip).
     * Evaluate() mutates the internal workspace, so concurrent users
     * (e.g. the parallel benchmark sweeps) must each own a clone
     * instead of sharing one instance.
     */
    std::unique_ptr<HybridModel> Clone() const;

  protected:
    /** Used by Clone(); copies weights, trees, and workspace. */
    HybridModel(const HybridModel&) = default;

  private:
    /** BT feature row: latent L_f, the normalized X_RC, and digested
     *  aggregates (total allocation, current p99, mean utilization,
     *  traffic level) that let the trees anchor the load-vs-allocation
     *  boundary without relying on latent extrapolation. */
    std::vector<float> BtRow(const Tensor& latent, int row,
                             const Batch& batch) const;

    /** Aggregates shared by every candidate of one window: current
     *  p99, mean utilization, and traffic from the newest history
     *  step of the given (single- or multi-row) inputs. */
    void SharedAggregates(const Tensor& xrh, const Tensor& xlh, int row,
                          float* cur_p99, float* util,
                          float* traffic) const;

    /** Scores candidates from per-row latent/xrc tensors into @p out,
     *  writing BT feature rows into the workspace (shared by both
     *  evaluation paths; bit-identical to the legacy BtRow loop). */
    void ScoreCandidates(const Tensor& latent, const Tensor& xrc,
                         const Tensor& pred, float cur_p99, float util,
                         float traffic, std::vector<Prediction>& out);

    /** Fits the BT on the CNN's latents; fills the BT report fields. */
    void TrainBt(const Dataset& train, const Dataset& valid,
                 HybridReport& report);

    /** Reads the legacy payload (shared by the legacy and versioned
     *  Load paths). */
    void LoadLegacyPayload(std::istream& in);

    FeatureConfig fcfg_;
    HybridConfig cfg_;
    SinanCnn cnn_;
    BoostedTrees bt_;
    QuantMode quant_ = QuantMode::kOff;
    double val_rmse_ms_ = 0.0;
    double val_rmse_subqos_ms_ = 0.0;

    /** Reusable buffers of the fast path (cloned with the model). */
    CnnEvalWorkspace ws_;
    Tensor bt_rows_; // [B, latent + n_tiers + 4]
};

} // namespace sinan

#endif // SINAN_MODELS_HYBRID_H
