/**
 * @file
 * Baseline latency predictors for the paper's Table 2: a multilayer
 * perceptron over the flattened inputs, and an LSTM over the timeseries
 * (X_RH rearranged to [B, T, F*N], as the paper describes).
 */
#ifndef SINAN_MODELS_BASELINE_NETS_H
#define SINAN_MODELS_BASELINE_NETS_H

#include "models/latency_model.h"
#include "nn/layers.h"
#include "nn/lstm.h"
#include "nn/sequential.h"

namespace sinan {

/** MLP over concat(flatten(X_RH), X_LH, X_RC). */
class MlpPredictor : public LatencyModel {
  public:
    MlpPredictor(const FeatureConfig& fcfg, int hidden1, int hidden2,
                 uint64_t seed);

    Tensor Forward(const Batch& batch) override;
    void Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override { return net_.Params(); }
    const char* Name() const override { return "MLP"; }
    void Save(std::ostream& out) const override { net_.Save(out); }
    void Load(std::istream& in) override { net_.Load(in); }

  private:
    FeatureConfig fcfg_;
    Sequential net_;
    int rh_len_ = 0;
    int lh_len_ = 0;
    int rc_len_ = 0;
};

/**
 * LSTM over per-timestep feature vectors (resource usage of all tiers
 * plus that interval's latency percentiles), with X_RC joined at the
 * dense head.
 */
class LstmPredictor : public LatencyModel {
  public:
    LstmPredictor(const FeatureConfig& fcfg, int hidden, uint64_t seed);

    Tensor Forward(const Batch& batch) override;
    void Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override;
    const char* Name() const override { return "LSTM"; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

  private:
    /** Rearranges a Batch into the [B, T, F*N + M] sequence tensor. */
    Tensor MakeSequence(const Batch& batch) const;

    FeatureConfig fcfg_;
    Lstm lstm_;
    Sequential head_; // Dense(hidden + N -> out)
    int hidden_ = 0;

    Tensor head_in_; // cached concat(h_T, xrc)
};

} // namespace sinan

#endif // SINAN_MODELS_BASELINE_NETS_H
