#include "models/hybrid.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/check.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"

namespace sinan {

namespace {

using Clock = std::chrono::steady_clock;

double
Seconds(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

HybridModel::HybridModel(const FeatureConfig& fcfg, const HybridConfig& cfg,
                         uint64_t seed)
    : fcfg_(fcfg), cfg_(cfg), cnn_(fcfg, cfg.cnn, seed), bt_(cfg.bt)
{
}

std::vector<float>
HybridModel::BtRow(const Tensor& latent, int row, const Batch& batch) const
{
    const Tensor& xrc = batch.xrc;
    const int latent_dim = latent.Dim(1);
    const int n = xrc.Dim(1);
    std::vector<float> out;
    out.reserve(static_cast<size_t>(latent_dim + n + 4));
    for (int j = 0; j < latent_dim; ++j)
        out.push_back(latent.At(row, j));
    float total_alloc = 0.0f;
    for (int j = 0; j < n; ++j) {
        out.push_back(xrc.At(row, j));
        total_alloc += xrc.At(row, j);
    }
    float cur_p99 = 0.0f, util = 0.0f, traffic = 0.0f;
    SharedAggregates(batch.xrh, batch.xlh, row, &cur_p99, &util, &traffic);
    out.push_back(total_alloc);
    out.push_back(cur_p99);
    out.push_back(util);
    out.push_back(traffic);
    return out;
}

void
HybridModel::SharedAggregates(const Tensor& xrh, const Tensor& xlh, int row,
                              float* cur_p99, float* util,
                              float* traffic) const
{
    // Aggregates from the newest history step.
    const int n = fcfg_.n_tiers;
    const int t_last = fcfg_.history - 1;
    const int m = fcfg_.n_percentiles;
    *cur_p99 = xlh.At(row, fcfg_.history * m - 1);
    float u = 0.0f, tr = 0.0f;
    for (int i = 0; i < n; ++i) {
        const float limit = xrh.At(row, 0, i, t_last);
        const float used = xrh.At(row, 1, i, t_last);
        u += limit > 1e-6f ? used / limit : 0.0f;
        tr += xrh.At(row, 4, i, t_last);
    }
    *util = u / static_cast<float>(n);
    *traffic = tr;
}

void
HybridModel::ScoreCandidates(const Tensor& latent, const Tensor& xrc,
                             const Tensor& pred, float cur_p99, float util,
                             float traffic, std::vector<Prediction>& out)
{
    const int n_cands = pred.Dim(0);
    const int m = pred.Dim(1);
    const int latent_dim = latent.Dim(1);
    const int n = xrc.Dim(1);
    const int nf = latent_dim + n + 4;
    bt_rows_.EnsureShape({n_cands, nf});
    out.resize(static_cast<size_t>(n_cands));

    // Per-candidate BT scoring is the scheduler's per-interval hot
    // loop (one Predict per Table-1 action); candidates are
    // independent, so score them in parallel. The feature row layout
    // matches BtRow exactly: latent, xrc, then the aggregates.
    ParallelFor(0, n_cands, 8, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            const int row = static_cast<int>(i);
            Prediction& p = out[static_cast<size_t>(i)];
            p.latency_ms.resize(static_cast<size_t>(m));
            for (int j = 0; j < m; ++j) {
                p.latency_ms[static_cast<size_t>(j)] =
                    static_cast<double>(pred.At(row, j)) * fcfg_.qos_ms;
            }
            float* fr = bt_rows_.Data() + static_cast<size_t>(i) * nf;
            for (int j = 0; j < latent_dim; ++j)
                fr[j] = latent.At(row, j);
            float total_alloc = 0.0f;
            for (int j = 0; j < n; ++j) {
                fr[latent_dim + j] = xrc.At(row, j);
                total_alloc += xrc.At(row, j);
            }
            fr[latent_dim + n] = total_alloc;
            fr[latent_dim + n + 1] = cur_p99;
            fr[latent_dim + n + 2] = util;
            fr[latent_dim + n + 3] = traffic;
            p.p_violation = bt_.Predict(fr);
        }
    });
}

void
HybridModel::TrainBt(const Dataset& train, const Dataset& valid,
                     HybridReport& report)
{
    auto build = [&](const Dataset& data) {
        GbtDataset out;
        std::vector<int> order(data.samples.size());
        std::iota(order.begin(), order.end(), 0);
        constexpr size_t kChunk = 256;
        for (size_t begin = 0; begin < order.size(); begin += kChunk) {
            const size_t end = std::min(begin + kChunk, order.size());
            const Batch batch = data.MakeBatch(order, begin, end);
            (void)cnn_.Forward(batch);
            const Tensor& latent = cnn_.Latent();
            for (size_t i = begin; i < end; ++i) {
                out.AddRow(BtRow(latent, static_cast<int>(i - begin),
                                 batch),
                           data.samples[order[i]].violation);
            }
        }
        return out;
    };

    const GbtDataset bt_train = build(train);
    const GbtDataset bt_valid = build(valid);

    const auto t0 = Clock::now();
    bt_ = BoostedTrees(cfg_.bt);
    bt_.Train(bt_train, bt_valid.n_rows ? &bt_valid : nullptr);
    report.bt_train_time_s = Seconds(t0, Clock::now());
    report.bt_trees = bt_.NumTrees();

    auto eval = [&](const GbtDataset& data, double* false_pos,
                    double* false_neg) {
        if (data.n_rows == 0)
            return 0.0;
        int correct = 0, fp = 0, fn = 0, neg = 0, pos = 0;
        for (int i = 0; i < data.n_rows; ++i) {
            const double p =
                bt_.Predict(&data.x[static_cast<size_t>(i) *
                                    data.n_features]);
            const bool pred = p >= 0.5;
            const bool truth = static_cast<double>(data.y[i]) >= 0.5;
            if (pred == truth)
                ++correct;
            if (truth) {
                ++pos;
                if (!pred)
                    ++fn;
            } else {
                ++neg;
                if (pred)
                    ++fp;
            }
        }
        if (false_pos)
            *false_pos = neg ? static_cast<double>(fp) / neg : 0.0;
        if (false_neg)
            *false_neg = pos ? static_cast<double>(fn) / pos : 0.0;
        return static_cast<double>(correct) / data.n_rows;
    };
    report.bt_train_accuracy = eval(bt_train, nullptr, nullptr);
    report.bt_val_accuracy =
        eval(bt_valid, &report.bt_val_false_pos, &report.bt_val_false_neg);
}

HybridReport
HybridModel::Train(const Dataset& train, const Dataset& valid)
{
    HybridReport report;
    report.cnn = TrainLatencyModel(cnn_, train, valid, fcfg_, cfg_.train);
    val_rmse_ms_ = report.cnn.val_rmse_ms;
    val_rmse_subqos_ms_ = report.cnn.val_rmse_subqos_ms;
    TrainBt(train, valid, report);
    return report;
}

HybridReport
HybridModel::FineTune(const Dataset& train, const Dataset& valid,
                      const TrainOptions& opts)
{
    HybridReport report;
    report.cnn = TrainLatencyModel(cnn_, train, valid, fcfg_, opts);
    val_rmse_ms_ = report.cnn.val_rmse_ms;
    val_rmse_subqos_ms_ = report.cnn.val_rmse_subqos_ms;
    TrainBt(train, valid, report);
    return report;
}

std::vector<Prediction>
HybridModel::Evaluate(const MetricWindow& window,
                      const std::vector<std::vector<double>>& allocations)
{
    return EvaluateTimed(window, allocations, nullptr);
}

std::vector<Prediction>
HybridModel::EvaluateTimed(const MetricWindow& window,
                           const std::vector<std::vector<double>>& allocations,
                           EvalStageTimes* stages)
{
    if (allocations.empty())
        return {};
    const int n = window.Config().n_tiers;
    const int n_cands = static_cast<int>(allocations.size());

    // Feature build: the shared window row once, one allocation row
    // per candidate — no Sample materialization, no stacking copy.
    auto t0 = Clock::now();
    ws_.xrh.EnsureShape(
        {1, FeatureConfig::kChannels, n, fcfg_.history});
    ws_.xlh.EnsureShape({1, fcfg_.LatFeatures()});
    BuildHistoryRow(window, ws_.xrh, ws_.xlh, 0);
    ws_.xrc.EnsureShape({n_cands, n});
    for (int i = 0; i < n_cands; ++i) {
        SINAN_CHECK_EQ(allocations[static_cast<size_t>(i)].size(),
                       static_cast<size_t>(n));
        BuildAllocRow(window.Config(), allocations[static_cast<size_t>(i)],
                      ws_.xrc, i);
    }
    auto t1 = Clock::now();

    // Trunk once per interval, head once per candidate batch.
    const bool int8 = quant_ == QuantMode::kInt8;
    if (int8)
        cnn_.ForwardTrunkInt8(ws_);
    else
        cnn_.ForwardTrunk(ws_);
    auto t2 = Clock::now();
    // The head runs fp32 in both modes: quantizing it perturbs the
    // latent rows the tree ensemble thresholds on and flips decisions
    // (see SinanCnn::ForwardTrunkInt8), while the trunk carries the
    // fixed per-interval cost int8 is after.
    cnn_.ForwardHead(ws_);
    auto t3 = Clock::now();
    SINAN_CHECK_EQ(ws_.pred.Dim(0), n_cands);

    float cur_p99 = 0.0f, util = 0.0f, traffic = 0.0f;
    SharedAggregates(ws_.xrh, ws_.xlh, 0, &cur_p99, &util, &traffic);
    std::vector<Prediction> out;
    ScoreCandidates(ws_.latent, ws_.xrc, ws_.pred, cur_p99, util, traffic,
                    out);
    auto t4 = Clock::now();

    if (stages) {
        stages->feature_build_s = Seconds(t0, t1);
        stages->trunk_s = Seconds(t1, t2);
        stages->head_s = Seconds(t2, t3);
        stages->bt_s = Seconds(t3, t4);
        stages->kernel_id = int8 ? ActiveInt8KernelId() : ActiveKernelId();
    }
    return out;
}

std::vector<Prediction>
HybridModel::EvaluateFullBatch(
    const MetricWindow& window,
    const std::vector<std::vector<double>>& allocations)
{
    if (allocations.empty())
        return {};
    const int n = window.Config().n_tiers;
    const int n_cands = static_cast<int>(allocations.size());

    // Row-direct stacking: every candidate repeats the window history.
    Batch batch;
    batch.xrh =
        Tensor({n_cands, FeatureConfig::kChannels, n, fcfg_.history});
    batch.xlh = Tensor({n_cands, fcfg_.LatFeatures()});
    batch.xrc = Tensor({n_cands, n});
    for (int i = 0; i < n_cands; ++i) {
        SINAN_CHECK_EQ(allocations[static_cast<size_t>(i)].size(),
                       static_cast<size_t>(n));
        BuildHistoryRow(window, batch.xrh, batch.xlh, i);
        BuildAllocRow(window.Config(), allocations[static_cast<size_t>(i)],
                      batch.xrc, i);
    }

    const Tensor pred = cnn_.Forward(batch);
    const Tensor& latent = cnn_.Latent();
    SINAN_CHECK_EQ(pred.Dim(0), n_cands);

    float cur_p99 = 0.0f, util = 0.0f, traffic = 0.0f;
    SharedAggregates(batch.xrh, batch.xlh, 0, &cur_p99, &util, &traffic);
    std::vector<Prediction> out;
    ScoreCandidates(latent, batch.xrc, pred, cur_p99, util, traffic, out);
    return out;
}

std::unique_ptr<HybridModel>
HybridModel::Clone() const
{
    return std::unique_ptr<HybridModel>(new HybridModel(*this));
}

void
HybridModel::CalibrateInt8(const Dataset& calib, int max_samples)
{
    SINAN_CHECK_MSG(!calib.samples.empty(),
                    "CalibrateInt8: empty calibration set");
    const int count = std::min(
        max_samples, static_cast<int>(calib.samples.size()));
    CnnCalibration cal;
    for (int i = 0; i < count; ++i) {
        const Sample& s = calib.samples[static_cast<size_t>(i)];
        ws_.xrh.EnsureShape({1, s.xrh.Dim(0), s.xrh.Dim(1), s.xrh.Dim(2)});
        std::copy(s.xrh.Data(), s.xrh.Data() + s.xrh.Size(),
                  ws_.xrh.Data());
        ws_.xlh.EnsureShape({1, s.xlh.Dim(0)});
        std::copy(s.xlh.Data(), s.xlh.Data() + s.xlh.Size(),
                  ws_.xlh.Data());
        ws_.xrc.EnsureShape({1, s.xrc.Dim(0)});
        std::copy(s.xrc.Data(), s.xrc.Data() + s.xrc.Size(),
                  ws_.xrc.Data());
        cnn_.ForwardTrunk(ws_);
        cnn_.ForwardHead(ws_);
        SinanCnn::ObserveCalibration(ws_, cal);
    }
    cnn_.FinalizeInt8(cal);
}

void
HybridModel::SetQuantMode(QuantMode mode)
{
    if (mode == QuantMode::kInt8 && !cnn_.Int8Ready())
        throw std::runtime_error(
            "SetQuantMode: int8 requested but the model is not "
            "calibrated — run CalibrateInt8 or load a model with a "
            "quant section");
    quant_ = mode;
}

void
HybridModel::SaveLegacy(std::ostream& out) const
{
    cnn_.Save(out);
    bt_.Save(out);
    out.write(reinterpret_cast<const char*>(&val_rmse_ms_),
              sizeof(val_rmse_ms_));
    out.write(reinterpret_cast<const char*>(&val_rmse_subqos_ms_),
              sizeof(val_rmse_subqos_ms_));
}

void
HybridModel::Save(std::ostream& out) const
{
    out.write(reinterpret_cast<const char*>(&kModelMagic),
              sizeof(kModelMagic));
    out.write(reinterpret_cast<const char*>(&kModelVersion),
              sizeof(kModelVersion));
    SaveLegacy(out);
    const int32_t has_quant = cnn_.Int8Ready() ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&has_quant),
              sizeof(has_quant));
    if (has_quant) {
        const auto scales = cnn_.Int8ActScales();
        out.write(reinterpret_cast<const char*>(scales.data()),
                  sizeof(float) * scales.size());
    }
}

void
HybridModel::LoadLegacyPayload(std::istream& in)
{
    cnn_.Load(in);
    bt_.Load(in);
    in.read(reinterpret_cast<char*>(&val_rmse_ms_), sizeof(val_rmse_ms_));
    in.read(reinterpret_cast<char*>(&val_rmse_subqos_ms_),
            sizeof(val_rmse_subqos_ms_));
    if (!in)
        throw std::runtime_error("HybridModel::Load: truncated stream");
}

void
HybridModel::Load(std::istream& in)
{
    // Sniff the first word: versioned containers start with the magic,
    // legacy streams with a small tensor rank. Rewind for the latter.
    const std::istream::pos_type start = in.tellg();
    int32_t first = 0;
    in.read(reinterpret_cast<char*>(&first), sizeof(first));
    if (!in)
        throw std::runtime_error("HybridModel::Load: truncated stream");
    if (first != kModelMagic) {
        in.seekg(start);
        LoadLegacyPayload(in);
        return;
    }
    int32_t version = 0;
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    if (!in)
        throw std::runtime_error("HybridModel::Load: truncated stream");
    if (version != kModelVersion)
        throw std::runtime_error(
            "HybridModel::Load: unsupported model format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(kModelVersion) +
            " and legacy pre-container files)");
    LoadLegacyPayload(in);
    int32_t has_quant = 0;
    in.read(reinterpret_cast<char*>(&has_quant), sizeof(has_quant));
    if (!in)
        throw std::runtime_error(
            "HybridModel::Load: truncated quant section");
    if (has_quant) {
        std::array<float, kCnnInt8NumScales> scales{};
        in.read(reinterpret_cast<char*>(scales.data()),
                sizeof(float) * scales.size());
        if (!in)
            throw std::runtime_error(
                "HybridModel::Load: truncated quant section");
        cnn_.LoadInt8Scales(scales);
    }
}

} // namespace sinan
