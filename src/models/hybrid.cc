#include "models/hybrid.h"

#include <chrono>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "common/check.h"
#include "common/thread_pool.h"

namespace sinan {

namespace {

using Clock = std::chrono::steady_clock;

} // namespace

HybridModel::HybridModel(const FeatureConfig& fcfg, const HybridConfig& cfg,
                         uint64_t seed)
    : fcfg_(fcfg), cfg_(cfg), cnn_(fcfg, cfg.cnn, seed), bt_(cfg.bt)
{
}

std::vector<float>
HybridModel::BtRow(const Tensor& latent, int row, const Batch& batch) const
{
    const Tensor& xrc = batch.xrc;
    const int latent_dim = latent.Dim(1);
    const int n = xrc.Dim(1);
    std::vector<float> out;
    out.reserve(latent_dim + n + 4);
    for (int j = 0; j < latent_dim; ++j)
        out.push_back(latent.At(row, j));
    float total_alloc = 0.0f;
    for (int j = 0; j < n; ++j) {
        out.push_back(xrc.At(row, j));
        total_alloc += xrc.At(row, j);
    }
    // Aggregates from the newest history step.
    const int t_last = fcfg_.history - 1;
    const int m = fcfg_.n_percentiles;
    const float cur_p99 =
        batch.xlh.At(row, fcfg_.history * m - 1);
    float util = 0.0f, traffic = 0.0f;
    for (int i = 0; i < n; ++i) {
        const float limit = batch.xrh.At(row, 0, i, t_last);
        const float used = batch.xrh.At(row, 1, i, t_last);
        util += limit > 1e-6f ? used / limit : 0.0f;
        traffic += batch.xrh.At(row, 4, i, t_last);
    }
    out.push_back(total_alloc);
    out.push_back(cur_p99);
    out.push_back(util / static_cast<float>(n));
    out.push_back(traffic);
    return out;
}

void
HybridModel::TrainBt(const Dataset& train, const Dataset& valid,
                     HybridReport& report)
{
    auto build = [&](const Dataset& data) {
        GbtDataset out;
        std::vector<int> order(data.samples.size());
        std::iota(order.begin(), order.end(), 0);
        constexpr size_t kChunk = 256;
        for (size_t begin = 0; begin < order.size(); begin += kChunk) {
            const size_t end = std::min(begin + kChunk, order.size());
            const Batch batch = data.MakeBatch(order, begin, end);
            (void)cnn_.Forward(batch);
            const Tensor& latent = cnn_.Latent();
            for (size_t i = begin; i < end; ++i) {
                out.AddRow(BtRow(latent, static_cast<int>(i - begin),
                                 batch),
                           data.samples[order[i]].violation);
            }
        }
        return out;
    };

    const GbtDataset bt_train = build(train);
    const GbtDataset bt_valid = build(valid);

    const auto t0 = Clock::now();
    bt_ = BoostedTrees(cfg_.bt);
    bt_.Train(bt_train, bt_valid.n_rows ? &bt_valid : nullptr);
    report.bt_train_time_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    report.bt_trees = bt_.NumTrees();

    auto eval = [&](const GbtDataset& data, double* false_pos,
                    double* false_neg) {
        if (data.n_rows == 0)
            return 0.0;
        int correct = 0, fp = 0, fn = 0, neg = 0, pos = 0;
        for (int i = 0; i < data.n_rows; ++i) {
            const double p =
                bt_.Predict(&data.x[static_cast<size_t>(i) *
                                    data.n_features]);
            const bool pred = p >= 0.5;
            const bool truth = static_cast<double>(data.y[i]) >= 0.5;
            if (pred == truth)
                ++correct;
            if (truth) {
                ++pos;
                if (!pred)
                    ++fn;
            } else {
                ++neg;
                if (pred)
                    ++fp;
            }
        }
        if (false_pos)
            *false_pos = neg ? static_cast<double>(fp) / neg : 0.0;
        if (false_neg)
            *false_neg = pos ? static_cast<double>(fn) / pos : 0.0;
        return static_cast<double>(correct) / data.n_rows;
    };
    report.bt_train_accuracy = eval(bt_train, nullptr, nullptr);
    report.bt_val_accuracy =
        eval(bt_valid, &report.bt_val_false_pos, &report.bt_val_false_neg);
}

HybridReport
HybridModel::Train(const Dataset& train, const Dataset& valid)
{
    HybridReport report;
    report.cnn = TrainLatencyModel(cnn_, train, valid, fcfg_, cfg_.train);
    val_rmse_ms_ = report.cnn.val_rmse_ms;
    val_rmse_subqos_ms_ = report.cnn.val_rmse_subqos_ms;
    TrainBt(train, valid, report);
    return report;
}

HybridReport
HybridModel::FineTune(const Dataset& train, const Dataset& valid,
                      const TrainOptions& opts)
{
    HybridReport report;
    report.cnn = TrainLatencyModel(cnn_, train, valid, fcfg_, opts);
    val_rmse_ms_ = report.cnn.val_rmse_ms;
    val_rmse_subqos_ms_ = report.cnn.val_rmse_subqos_ms;
    TrainBt(train, valid, report);
    return report;
}

std::vector<Prediction>
HybridModel::Evaluate(const MetricWindow& window,
                      const std::vector<std::vector<double>>& allocations)
{
    if (allocations.empty())
        return {};
    const size_t n_tiers = static_cast<size_t>(window.Config().n_tiers);
    std::vector<Sample> samples;
    samples.reserve(allocations.size());
    for (const auto& alloc : allocations) {
        SINAN_CHECK_EQ(alloc.size(), n_tiers);
        samples.push_back(BuildInput(window, alloc));
    }
    std::vector<const Sample*> ptrs;
    ptrs.reserve(samples.size());
    for (const Sample& s : samples)
        ptrs.push_back(&s);
    const Batch batch = StackSamples(ptrs);

    const Tensor pred = cnn_.Forward(batch);
    const Tensor& latent = cnn_.Latent();
    SINAN_CHECK_EQ(pred.Dim(0), static_cast<int>(allocations.size()));

    // Per-candidate BT scoring is the scheduler's per-interval hot
    // loop (one Predict per Table-1 action); candidates are
    // independent, so score them in parallel.
    std::vector<Prediction> out(allocations.size());
    const int m = pred.Dim(1);
    const int64_t n_cands = static_cast<int64_t>(allocations.size());
    ParallelFor(0, n_cands, 8, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
            Prediction& p = out[i];
            p.latency_ms.resize(m);
            for (int j = 0; j < m; ++j) {
                p.latency_ms[j] =
                    static_cast<double>(pred.At(static_cast<int>(i), j)) *
                    fcfg_.qos_ms;
            }
            p.p_violation =
                bt_.Predict(BtRow(latent, static_cast<int>(i), batch));
        }
    });
    return out;
}

std::unique_ptr<HybridModel>
HybridModel::Clone() const
{
    std::stringstream buf;
    Save(buf);
    auto copy = std::make_unique<HybridModel>(fcfg_, cfg_, /*seed=*/0);
    copy->Load(buf);
    return copy;
}

void
HybridModel::Save(std::ostream& out) const
{
    cnn_.Save(out);
    bt_.Save(out);
    out.write(reinterpret_cast<const char*>(&val_rmse_ms_),
              sizeof(val_rmse_ms_));
    out.write(reinterpret_cast<const char*>(&val_rmse_subqos_ms_),
              sizeof(val_rmse_subqos_ms_));
}

void
HybridModel::Load(std::istream& in)
{
    cnn_.Load(in);
    bt_.Load(in);
    in.read(reinterpret_cast<char*>(&val_rmse_ms_), sizeof(val_rmse_ms_));
    in.read(reinterpret_cast<char*>(&val_rmse_subqos_ms_),
            sizeof(val_rmse_subqos_ms_));
    if (!in)
        throw std::runtime_error("HybridModel::Load: truncated stream");
}

} // namespace sinan
