#include "models/trainer.h"

#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace sinan {

namespace {

using Clock = std::chrono::steady_clock;

double
SecondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

} // namespace

TrainReport
TrainLatencyModel(LatencyModel& model, const Dataset& train,
                  const Dataset& valid, const FeatureConfig& fcfg,
                  const TrainOptions& opts)
{
    if (train.samples.empty())
        throw std::invalid_argument("TrainLatencyModel: empty train set");
    TrainReport report;
    report.n_params = model.NumParams();

    Sgd sgd(model.Params(), opts.lr, opts.momentum, opts.weight_decay,
            opts.grad_clip);
    Rng rng(opts.seed);

    std::vector<int> order(train.samples.size());
    std::iota(order.begin(), order.end(), 0);

    const auto t0 = Clock::now();
    size_t steps = 0;
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        for (size_t i = order.size(); i > 1; --i) {
            const size_t j = rng.UniformInt(static_cast<uint64_t>(i));
            std::swap(order[i - 1], order[j]);
        }
        for (size_t begin = 0; begin < order.size();
             begin += opts.batch_size) {
            const size_t end =
                std::min(begin + opts.batch_size, order.size());
            const Batch batch = train.MakeBatch(order, begin, end);
            const Tensor target =
                train.MakeLatencyTargets(order, begin, end);
            const Tensor pred = model.Forward(batch);
            const LossResult loss =
                opts.scaled_loss
                    ? ScaledMseLoss(pred, target, opts.loss_knee,
                                    opts.loss_alpha, opts.loss_leak)
                    : MseLoss(pred, target);
            sgd.ZeroGrad();
            model.Backward(loss.grad);
            sgd.Step();
            ++steps;
        }
        sgd.SetLearningRate(sgd.LearningRate() * opts.lr_decay);
        ++report.epochs_run;
    }
    report.train_time_s = SecondsSince(t0);
    report.train_ms_per_batch =
        steps ? 1000.0 * report.train_time_s / static_cast<double>(steps)
              : 0.0;

    report.train_rmse_ms = EvalRmseMs(model, train, fcfg);
    if (!valid.samples.empty()) {
        report.val_rmse_ms = EvalRmseMs(model, valid, fcfg);
        report.val_rmse_subqos_ms = EvalRmseSubQosMs(model, valid, fcfg);
    }

    // Inference timing on a representative batch.
    {
        const size_t nb =
            std::min<size_t>(opts.batch_size, train.samples.size());
        std::vector<int> idx(nb);
        std::iota(idx.begin(), idx.end(), 0);
        const Batch batch = train.MakeBatch(idx, 0, nb);
        const auto ti = Clock::now();
        constexpr int kReps = 20;
        for (int r = 0; r < kReps; ++r)
            (void)model.Forward(batch);
        report.infer_ms_per_batch = 1000.0 * SecondsSince(ti) / kReps;
    }
    return report;
}

double
EvalRmseMs(LatencyModel& model, const Dataset& data,
           const FeatureConfig& fcfg, int batch_size)
{
    if (data.samples.empty())
        return 0.0;
    std::vector<int> order(data.samples.size());
    std::iota(order.begin(), order.end(), 0);
    double acc = 0.0;
    size_t count = 0;
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(batch_size)) {
        const size_t end =
            std::min(begin + static_cast<size_t>(batch_size), order.size());
        const Batch batch = data.MakeBatch(order, begin, end);
        const Tensor target = data.MakeLatencyTargets(order, begin, end);
        const Tensor pred = model.Forward(batch);
        for (size_t i = 0; i < pred.Size(); ++i) {
            const double d =
                static_cast<double>(pred[i] - target[i]) * fcfg.qos_ms;
            acc += d * d;
            ++count;
        }
    }
    return std::sqrt(acc / static_cast<double>(count));
}

double
EvalRmseSubQosMs(LatencyModel& model, const Dataset& data,
                 const FeatureConfig& fcfg, int batch_size)
{
    Dataset sub;
    for (const Sample& s : data.samples) {
        if (s.p99_ms <= fcfg.qos_ms)
            sub.samples.push_back(s);
    }
    return EvalRmseMs(model, sub, fcfg, batch_size);
}

std::vector<double>
PredictP99Ms(LatencyModel& model, const Dataset& data,
             const FeatureConfig& fcfg, int batch_size)
{
    std::vector<double> out;
    out.reserve(data.samples.size());
    std::vector<int> order(data.samples.size());
    std::iota(order.begin(), order.end(), 0);
    for (size_t begin = 0; begin < order.size();
         begin += static_cast<size_t>(batch_size)) {
        const size_t end =
            std::min(begin + static_cast<size_t>(batch_size), order.size());
        const Batch batch = data.MakeBatch(order, begin, end);
        const Tensor pred = model.Forward(batch);
        const int m = pred.Dim(1);
        for (int i = 0; i < pred.Dim(0); ++i)
            out.push_back(static_cast<double>(pred.At(i, m - 1)) *
                          fcfg.qos_ms);
    }
    return out;
}

} // namespace sinan
