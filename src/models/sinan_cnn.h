/**
 * @file
 * Sinan's short-term latency predictor (paper Sec. 3.1 / Figure 5).
 *
 * Three input branches — a small CNN over the resource-history image
 * X_RH, and dense encoders for the latency history X_LH and the candidate
 * allocation X_RC — are concatenated into the latent representation L_f,
 * from which a final dense layer predicts next-interval tail latencies
 * (p95..p99). L_f is exposed because the Boosted-Trees violation
 * predictor consumes it (Sec. 3.2).
 */
#ifndef SINAN_MODELS_SINAN_CNN_H
#define SINAN_MODELS_SINAN_CNN_H

#include "models/latency_model.h"
#include "nn/layers.h"
#include "nn/sequential.h"

namespace sinan {

/** Architecture hyper-parameters of the CNN predictor. */
struct SinanCnnConfig {
    int conv_channels1 = 8;
    int conv_channels2 = 8;
    int kernel = 3;
    int rh_embed = 48;
    int lh_embed = 24;
    int rc_embed = 24;
    int latent = 32;
};

/** The hybrid model's CNN component. */
class SinanCnn : public LatencyModel {
  public:
    /**
     * @param fcfg feature-space dimensions.
     * @param cfg architecture knobs.
     * @param seed weight-init RNG seed.
     */
    SinanCnn(const FeatureConfig& fcfg, const SinanCnnConfig& cfg,
             uint64_t seed);

    Tensor Forward(const Batch& batch) override;
    void Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override;
    const char* Name() const override { return "CNN"; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    /** Latent representation L_f [B, latent] of the last Forward. */
    const Tensor& Latent() const { return latent_; }

    int LatentSize() const { return cfg_.latent; }
    const FeatureConfig& Features() const { return fcfg_; }

  private:
    FeatureConfig fcfg_;
    SinanCnnConfig cfg_;

    Sequential rh_branch_;
    Sequential lh_branch_;
    Sequential rc_branch_;
    Dense fc_latent_;
    ReLU relu_latent_;
    Dense fc_out_;

    Tensor latent_;
    int rh_out_ = 0;
    int lh_out_ = 0;
    int rc_out_ = 0;
};

} // namespace sinan

#endif // SINAN_MODELS_SINAN_CNN_H
