/**
 * @file
 * Sinan's short-term latency predictor (paper Sec. 3.1 / Figure 5).
 *
 * Three input branches — a small CNN over the resource-history image
 * X_RH, and dense encoders for the latency history X_LH and the candidate
 * allocation X_RC — are concatenated into the latent representation L_f,
 * from which a final dense layer predicts next-interval tail latencies
 * (p95..p99). L_f is exposed because the Boosted-Trees violation
 * predictor consumes it (Sec. 3.2).
 *
 * Two forward paths exist:
 *  - Forward(): the legacy full-batch pass used for training/backward
 *    (and as the reference in the fast-path parity tests);
 *  - ForwardTrunk()/ForwardHead(): the online scheduler's single-pass
 *    candidate inference. Within one decision interval every candidate
 *    shares identical X_RH/X_LH, so the rh/lh branches (the trunk, and
 *    by far the dominant cost) run once on a batch of 1 and their
 *    embeddings are broadcast across the candidate batch in the head
 *    (rc branch + latent + output layers). Both paths accumulate every
 *    output element in the same order, so they are bit-identical.
 */
#ifndef SINAN_MODELS_SINAN_CNN_H
#define SINAN_MODELS_SINAN_CNN_H

#include "models/latency_model.h"
#include "nn/layers.h"

namespace sinan {

/** Architecture hyper-parameters of the CNN predictor. */
struct SinanCnnConfig {
    int conv_channels1 = 8;
    int conv_channels2 = 8;
    int kernel = 3;
    int rh_embed = 48;
    int lh_embed = 24;
    int rc_embed = 24;
    int latent = 32;
};

/**
 * Preallocated buffers of the single-pass candidate inference path.
 * Owned by HybridModel and cloned with it; every tensor is resized via
 * EnsureShape on first use (or when the window/candidate shapes
 * change) and reused afterwards, so the steady-state Evaluate loop
 * performs no tensor allocations.
 *
 * Lifetime rules: the trunk buffers (conv outputs and rh/lh
 * embeddings) are valid from ForwardTrunk until the next ForwardTrunk
 * on the same workspace; ForwardHead may be called any number of times
 * in between with different candidate batches. A workspace must not be
 * shared between threads — concurrent users clone the owning model.
 */
struct CnnEvalWorkspace {
    // Window inputs on a batch of 1 (shared by every candidate).
    Tensor xrh; // [1, F, N, T]
    Tensor xlh; // [1, T*M]
    // Per-candidate allocations.
    Tensor xrc; // [B, N]
    // Trunk intermediates and cached embeddings.
    Tensor conv1_out; // [1, C1, N, T]
    Tensor conv2_out; // [1, C2, N, T] (viewed as [1, C2*N*T])
    Tensor col;       // conv im2col scratch
    Tensor rh_embed;  // [1, rh_embed]
    Tensor lh_embed;  // [1, lh_embed]
    // Head intermediates.
    Tensor rc_embed; // [B, rc_embed]
    Tensor concat;   // [B, rh_embed + lh_embed + rc_embed]
    Tensor latent;   // [B, latent]
    Tensor pred;     // [B, M]
};

/** The hybrid model's CNN component. */
class SinanCnn : public LatencyModel {
  public:
    /**
     * @param fcfg feature-space dimensions.
     * @param cfg architecture knobs.
     * @param seed weight-init RNG seed.
     */
    SinanCnn(const FeatureConfig& fcfg, const SinanCnnConfig& cfg,
             uint64_t seed);

    Tensor Forward(const Batch& batch) override;
    void Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override;
    const char* Name() const override { return "CNN"; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    /**
     * Trunk pass of the cached inference path: runs the rh branch
     * (conv stack + dense) and lh branch on ws.xrh/ws.xlh — a batch of
     * 1 — caching the embeddings in the workspace. Const: never
     * touches the training caches.
     */
    void ForwardTrunk(CnnEvalWorkspace& ws) const;

    /**
     * Head pass: encodes ws.xrc (one row per candidate), broadcasts
     * the cached trunk embeddings across the candidate batch, and
     * fills ws.latent ([B, latent], the L_f rows the Boosted Trees
     * consume) and ws.pred ([B, M], with the persistence residual
     * applied). Requires a preceding ForwardTrunk on @p ws.
     */
    void ForwardHead(CnnEvalWorkspace& ws) const;

    /** Latent representation L_f [B, latent] of the last Forward. */
    const Tensor& Latent() const { return latent_; }

    int LatentSize() const { return cfg_.latent; }
    const FeatureConfig& Features() const { return fcfg_; }

  private:
    FeatureConfig fcfg_;
    SinanCnnConfig cfg_;

    // rh branch: conv -> relu -> conv -> relu -> flatten -> dense -> relu.
    Conv2D conv1_;
    ReLU conv1_relu_;
    Conv2D conv2_;
    ReLU conv2_relu_;
    Flatten flatten_;
    Dense rh_fc_;
    ReLU rh_relu_;
    // lh / rc branches: dense -> relu.
    Dense lh_fc_;
    ReLU lh_relu_;
    Dense rc_fc_;
    ReLU rc_relu_;

    Dense fc_latent_;
    ReLU relu_latent_;
    Dense fc_out_;

    Tensor latent_;
    int rh_out_ = 0;
    int lh_out_ = 0;
    int rc_out_ = 0;
};

} // namespace sinan

#endif // SINAN_MODELS_SINAN_CNN_H
