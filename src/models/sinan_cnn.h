/**
 * @file
 * Sinan's short-term latency predictor (paper Sec. 3.1 / Figure 5).
 *
 * Three input branches — a small CNN over the resource-history image
 * X_RH, and dense encoders for the latency history X_LH and the candidate
 * allocation X_RC — are concatenated into the latent representation L_f,
 * from which a final dense layer predicts next-interval tail latencies
 * (p95..p99). L_f is exposed because the Boosted-Trees violation
 * predictor consumes it (Sec. 3.2).
 *
 * Two forward paths exist:
 *  - Forward(): the legacy full-batch pass used for training/backward
 *    (and as the reference in the fast-path parity tests);
 *  - ForwardTrunk()/ForwardHead(): the online scheduler's single-pass
 *    candidate inference. Within one decision interval every candidate
 *    shares identical X_RH/X_LH, so the rh/lh branches (the trunk, and
 *    by far the dominant cost) run once on a batch of 1 and their
 *    embeddings are broadcast across the candidate batch in the head
 *    (rc branch + latent + output layers). Both paths accumulate every
 *    output element in the same order, so they are bit-identical.
 */
#ifndef SINAN_MODELS_SINAN_CNN_H
#define SINAN_MODELS_SINAN_CNN_H

#include <array>

#include "models/latency_model.h"
#include "nn/layers.h"
#include "nn/quant.h"

namespace sinan {

/** Architecture hyper-parameters of the CNN predictor. */
struct SinanCnnConfig {
    int conv_channels1 = 8;
    int conv_channels2 = 8;
    int kernel = 3;
    int rh_embed = 48;
    int lh_embed = 24;
    int rc_embed = 24;
    int latent = 32;
};

/**
 * Preallocated buffers of the single-pass candidate inference path.
 * Owned by HybridModel and cloned with it; every tensor is resized via
 * EnsureShape on first use (or when the window/candidate shapes
 * change) and reused afterwards, so the steady-state Evaluate loop
 * performs no tensor allocations.
 *
 * Lifetime rules: the trunk buffers (conv outputs and rh/lh
 * embeddings) are valid from ForwardTrunk until the next ForwardTrunk
 * on the same workspace; ForwardHead may be called any number of times
 * in between with different candidate batches. A workspace must not be
 * shared between threads — concurrent users clone the owning model.
 */
struct CnnEvalWorkspace {
    // Window inputs on a batch of 1 (shared by every candidate).
    Tensor xrh; // [1, F, N, T]
    Tensor xlh; // [1, T*M]
    // Per-candidate allocations.
    Tensor xrc; // [B, N]
    // Trunk intermediates and cached embeddings.
    Tensor conv1_out; // [1, C1, N, T]
    Tensor conv2_out; // [1, C2, N, T] (viewed as [1, C2*N*T])
    Tensor col;       // conv im2col scratch
    Tensor rh_embed;  // [1, rh_embed]
    Tensor lh_embed;  // [1, lh_embed]
    // Head intermediates.
    Tensor rc_embed; // [B, rc_embed]
    Tensor concat;   // [B, rh_embed + lh_embed + rc_embed]
    Tensor latent;   // [B, latent]
    Tensor pred;     // [B, M]
    // Quantized-path scratch (u8 activations, int32 accumulators);
    // grows once on first int8 use, then stays allocation-free.
    Int8Workspace i8;
};

/** Running per-tensor max-|x| observations of every quantization
 *  candidate's input, accumulated over a calibration set by
 *  ObserveCalibration and turned into activation scales by
 *  SinanCnn::FinalizeInt8. The head observations (xrc, concat,
 *  latent) are recorded and serialized like the rest even though the
 *  head currently runs fp32 (see ForwardTrunkInt8): the format stays
 *  stable if the int8/fp32 boundary ever moves. */
struct CnnCalibration {
    float xrh = 0.0f;       // conv1 input
    float conv1_out = 0.0f; // conv2 input (post-ReLU)
    float conv2_out = 0.0f; // rh_fc input (post-ReLU, flattened)
    float xlh = 0.0f;       // lh_fc input
    float xrc = 0.0f;       // rc_fc input
    float concat = 0.0f;    // fc_latent input
    float latent = 0.0f;    // fc_out input (post-ReLU)
};

/** Number of per-tensor activation scales in the serialized quant
 *  section (one per CnnCalibration field, in declaration order). */
constexpr int kCnnInt8NumScales = 7;

/** The hybrid model's CNN component. */
class SinanCnn : public LatencyModel {
  public:
    /**
     * @param fcfg feature-space dimensions.
     * @param cfg architecture knobs.
     * @param seed weight-init RNG seed.
     */
    SinanCnn(const FeatureConfig& fcfg, const SinanCnnConfig& cfg,
             uint64_t seed);

    Tensor Forward(const Batch& batch) override;
    void Backward(const Tensor& dy) override;
    std::vector<Param*> Params() override;
    const char* Name() const override { return "CNN"; }
    void Save(std::ostream& out) const override;
    void Load(std::istream& in) override;

    /**
     * Trunk pass of the cached inference path: runs the rh branch
     * (conv stack + dense) and lh branch on ws.xrh/ws.xlh — a batch of
     * 1 — caching the embeddings in the workspace. Const: never
     * touches the training caches.
     */
    void ForwardTrunk(CnnEvalWorkspace& ws) const;

    /**
     * Head pass: encodes ws.xrc (one row per candidate), broadcasts
     * the cached trunk embeddings across the candidate batch, and
     * fills ws.latent ([B, latent], the L_f rows the Boosted Trees
     * consume) and ws.pred ([B, M], with the persistence residual
     * applied). Requires a preceding ForwardTrunk on @p ws.
     */
    void ForwardHead(CnnEvalWorkspace& ws) const;

    /**
     * Int8 counterpart of ForwardTrunk: the same layer sequence with
     * every conv/dense matmul running on quantized operands
     * (nn/quant.h). Requires FinalizeInt8 (or LoadInt8Scales) first.
     * Bit-identical against itself across thread counts and
     * scalar/AVX2 dispatch; close to — but not bit-identical with —
     * the fp32 trunk.
     *
     * The head deliberately has no int8 counterpart: quantizing
     * fc_latent perturbs the L_f rows the Boosted Trees threshold on,
     * and a flipped tree split jumps p_violation discretely — measured
     * decision agreement vs fp32 dropped from 100% to 97% on the
     * bundled models when the head ran int8. The head is also cheap
     * (its per-candidate cost is dominated by the fp32 tree ensemble
     * next to it), so int8 mode runs the quantized trunk and the fp32
     * head/ForwardHead.
     */
    void ForwardTrunkInt8(CnnEvalWorkspace& ws) const;

    /** Folds one fp32-evaluated workspace (after ForwardTrunk +
     *  ForwardHead) into the running calibration maxima. */
    static void ObserveCalibration(const CnnEvalWorkspace& ws,
                                   CnnCalibration& cal);

    /**
     * Post-training quantization: derives per-output-channel symmetric
     * weight scales from the fp32 weights (a pure function of the
     * weights), fixes the per-tensor activation scales from @p cal,
     * and packs the int8 panels. Idempotent; call again after weight
     * updates (e.g. FineTune) to refresh.
     */
    void FinalizeInt8(const CnnCalibration& cal);

    /** Rebuilds the quantized state from serialized activation scales
     *  (model-load path; weight scales are re-derived). */
    void LoadInt8Scales(const std::array<float, kCnnInt8NumScales>& s);

    /** Activation scales in serialization order (requires Int8Ready). */
    std::array<float, kCnnInt8NumScales> Int8ActScales() const;

    /** True once FinalizeInt8/LoadInt8Scales has run. */
    bool Int8Ready() const { return int8_.ready; }

    /** Latent representation L_f [B, latent] of the last Forward. */
    const Tensor& Latent() const { return latent_; }

    int LatentSize() const { return cfg_.latent; }
    const FeatureConfig& Features() const { return fcfg_; }

  private:
    FeatureConfig fcfg_;
    SinanCnnConfig cfg_;

    // rh branch: conv -> relu -> conv -> relu -> flatten -> dense -> relu.
    Conv2D conv1_;
    ReLU conv1_relu_;
    Conv2D conv2_;
    ReLU conv2_relu_;
    Flatten flatten_;
    Dense rh_fc_;
    ReLU rh_relu_;
    // lh / rc branches: dense -> relu.
    Dense lh_fc_;
    ReLU lh_relu_;
    Dense rc_fc_;
    ReLU rc_relu_;

    Dense fc_latent_;
    ReLU relu_latent_;
    Dense fc_out_;

    Tensor latent_;
    int rh_out_ = 0;
    int lh_out_ = 0;
    int rc_out_ = 0;

    /** Broadcast-concat of the cached trunk embeddings with ws.rc_embed
     *  into ws.concat. */
    void BroadcastConcat(CnnEvalWorkspace& ws) const;

    /** Adds the persistence residual to ws.pred from ws.xlh. */
    void AddPersistence(CnnEvalWorkspace& ws) const;

    /** One quantized conv/dense layer: packed weights + fp32 bias. */
    struct QuantLayer {
        QuantizedLinear lin;
        std::vector<float> bias;
    };

    /** Quantized mirror of the trunk layers (empty until FinalizeInt8;
     *  copied with the model, so clones stay calibrated). The head
     *  layers are never quantized — see ForwardTrunkInt8 — but the
     *  full calibration record is kept for serialization, so the
     *  on-disk format is independent of where the int8/fp32 boundary
     *  sits. */
    struct Int8State {
        bool ready = false;
        QuantLayer conv1, conv2, rh_fc, lh_fc;
        CnnCalibration cal;
    };
    Int8State int8_;
};

} // namespace sinan

#endif // SINAN_MODELS_SINAN_CNN_H
