/**
 * @file
 * Featurization of cluster telemetry into the paper's model inputs
 * (Sec. 3.1):
 *
 *  - X_RH: a 3-D "image" [F channels, N tiers, T timestamps] of per-tier
 *    resource usage over the past T decision intervals;
 *  - X_LH: the end-to-end latency-percentile history [T, M];
 *  - X_RC: the candidate per-tier CPU allocation for the next interval.
 *
 * Everything is normalized with fixed, platform-independent scales so
 * that models transfer across deployments (the paper's Sec. 5.4 relies on
 * this generalizability of the selected input features).
 */
#ifndef SINAN_MODELS_FEATURES_H
#define SINAN_MODELS_FEATURES_H

#include <vector>

#include "common/telemetry.h"
#include "common/rng.h"
#include "common/timeseries.h"
#include "tensor/tensor.h"

namespace sinan {

/** Dimensions and normalization scales of the feature space. */
struct FeatureConfig {
    /** Tiers in the application graph (N). */
    int n_tiers = 0;
    /** History window length in decision intervals (T). */
    int history = 5;
    /** Latency percentiles reported per interval (M = p95..p99). */
    int n_percentiles = 5;
    /** QoS target in ms; latencies are expressed as fractions of it. */
    double qos_ms = 500.0;
    /** Lookahead (intervals) for the violation label (the paper's k). */
    int violation_lookahead = 5;

    // Fixed normalization scales.
    double cpu_scale = 16.0;
    double rss_scale = 1000.0;
    double cache_scale = 512.0;
    double pps_scale = 20000.0;

    /** Resource channels per tier (F). */
    static constexpr int kChannels = 6;

    /** Flattened X_LH length. */
    int LatFeatures() const { return history * n_percentiles; }
};

/** Rolling window of the last T interval observations. */
class MetricWindow {
  public:
    explicit MetricWindow(const FeatureConfig& cfg)
        : cfg_(cfg), win_(static_cast<size_t>(cfg.history))
    {
    }

    void Push(const IntervalObservation& obs) { win_.Push(obs); }

    /** True once T observations have been collected. */
    bool Ready() const { return win_.Full(); }

    const IntervalObservation& Newest() const { return win_.Back(); }

    const IntervalObservation& At(size_t i) const { return win_.At(i); }

    size_t Size() const { return win_.Size(); }

    void Clear() { win_.Clear(); }

    const FeatureConfig& Config() const { return cfg_; }

  private:
    FeatureConfig cfg_;
    RingWindow<IntervalObservation> win_;
};

/** A batch of model inputs (B samples). */
struct Batch {
    /** [B, F, N, T] resource-history image. */
    Tensor xrh;
    /** [B, T*M] flattened latency history (normalized by QoS). */
    Tensor xlh;
    /** [B, N] candidate allocation (normalized by cpu_scale). */
    Tensor xrc;

    int Size() const { return xrh.Empty() ? 0 : xrh.Dim(0); }
};

/** One training sample (inputs without the batch dimension). */
struct Sample {
    Tensor xrh; // [F, N, T]
    Tensor xlh; // [T*M]
    Tensor xrc; // [N]
    /** Next-interval latency percentiles, normalized by QoS. */
    std::vector<float> y_latency;
    /** 1 if p99 exceeds QoS within the next k intervals. */
    float violation = 0.0f;
    /** Raw next-interval p99 in ms (reporting convenience). */
    double p99_ms = 0.0;
};

/** A labeled dataset with deterministic shuffling / splitting. */
struct Dataset {
    std::vector<Sample> samples;

    /**
     * Shuffles and splits into train/validation (the paper uses 9:1).
     * @returns pair of datasets; this object is left unchanged.
     */
    std::pair<Dataset, Dataset> Split(double train_frac, Rng& rng) const;

    /** Assembles a batch from samples[indices[begin..end)]. */
    Batch MakeBatch(const std::vector<int>& indices, size_t begin,
                    size_t end) const;

    /** Latency targets [B, M] aligned with MakeBatch. */
    Tensor MakeLatencyTargets(const std::vector<int>& indices, size_t begin,
                              size_t end) const;

    /** Fraction of samples labeled as violations. */
    double ViolationRate() const;
};

/**
 * Builds the model input for the current window and one candidate
 * allocation. @p window must be Ready().
 */
Sample BuildInput(const MetricWindow& window,
                  const std::vector<double>& next_alloc);

/**
 * Writes the window's history features directly into row @p row of
 * pre-sized batch tensors @p xrh [B, F, N, T] and @p xlh [B, T*M] —
 * the allocation-free building block of HybridModel::Evaluate, which
 * stacks candidates without the intermediate Sample copies.
 * @p window must be Ready().
 */
void BuildHistoryRow(const MetricWindow& window, Tensor& xrh, Tensor& xlh,
                     int row);

/** Writes one normalized candidate allocation into row @p row of the
 *  pre-sized @p xrc [B, N]. */
void BuildAllocRow(const FeatureConfig& cfg,
                   const std::vector<double>& next_alloc, Tensor& xrc,
                   int row);

/** Stacks single samples into a batched input. */
Batch StackSamples(const std::vector<const Sample*>& samples);

} // namespace sinan

#endif // SINAN_MODELS_FEATURES_H
