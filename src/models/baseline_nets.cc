#include "models/baseline_nets.h"

#include <stdexcept>

namespace sinan {

MlpPredictor::MlpPredictor(const FeatureConfig& fcfg, int hidden1,
                           int hidden2, uint64_t seed)
    : fcfg_(fcfg)
{
    Rng rng(seed);
    rh_len_ = FeatureConfig::kChannels * fcfg.n_tiers * fcfg.history;
    lh_len_ = fcfg.LatFeatures();
    rc_len_ = fcfg.n_tiers;
    const int in = rh_len_ + lh_len_ + rc_len_;
    net_.Emplace<Dense>(in, hidden1, rng);
    net_.Emplace<ReLU>();
    net_.Emplace<Dense>(hidden1, hidden2, rng);
    net_.Emplace<ReLU>();
    net_.Emplace<Dense>(hidden2, fcfg.n_percentiles, rng);
}

Tensor
MlpPredictor::Forward(const Batch& batch)
{
    const int b = batch.Size();
    Tensor x({b, rh_len_ + lh_len_ + rc_len_});
    for (int i = 0; i < b; ++i) {
        float* row = x.Data() +
                     static_cast<size_t>(i) * (rh_len_ + lh_len_ + rc_len_);
        std::copy(batch.xrh.Data() + static_cast<size_t>(i) * rh_len_,
                  batch.xrh.Data() + static_cast<size_t>(i + 1) * rh_len_,
                  row);
        std::copy(batch.xlh.Data() + static_cast<size_t>(i) * lh_len_,
                  batch.xlh.Data() + static_cast<size_t>(i + 1) * lh_len_,
                  row + rh_len_);
        std::copy(batch.xrc.Data() + static_cast<size_t>(i) * rc_len_,
                  batch.xrc.Data() + static_cast<size_t>(i + 1) * rc_len_,
                  row + rh_len_ + lh_len_);
    }
    Tensor y = net_.Forward(x);
    AddPersistenceResidual(batch, fcfg_, y);
    return y;
}

void
MlpPredictor::Backward(const Tensor& dy)
{
    net_.Backward(dy);
}

LstmPredictor::LstmPredictor(const FeatureConfig& fcfg, int hidden,
                             uint64_t seed)
    : fcfg_(fcfg), hidden_(hidden)
{
    Rng rng(seed);
    const int step_features =
        FeatureConfig::kChannels * fcfg.n_tiers + fcfg.n_percentiles;
    lstm_ = Lstm(step_features, hidden, rng);
    head_.Emplace<Dense>(hidden + fcfg.n_tiers, fcfg.n_percentiles, rng);
}

Tensor
LstmPredictor::MakeSequence(const Batch& batch) const
{
    const int b = batch.Size();
    const int t_len = fcfg_.history;
    const int n = fcfg_.n_tiers;
    const int m = fcfg_.n_percentiles;
    const int fpt = FeatureConfig::kChannels * n;
    Tensor seq({b, t_len, fpt + m});
    for (int i = 0; i < b; ++i) {
        for (int t = 0; t < t_len; ++t) {
            float* row = &seq.At(i, t, 0);
            // X_RH is [B, F, N, T]: gather all channels/tiers at time t.
            int k = 0;
            for (int c = 0; c < FeatureConfig::kChannels; ++c)
                for (int tier = 0; tier < n; ++tier)
                    row[k++] = batch.xrh.At(i, c, tier, t);
            for (int p = 0; p < m; ++p)
                row[k++] = batch.xlh.At(i, t * m + p);
        }
    }
    return seq;
}

Tensor
LstmPredictor::Forward(const Batch& batch)
{
    const int b = batch.Size();
    const Tensor h = lstm_.Forward(MakeSequence(batch));
    head_in_ = Tensor({b, hidden_ + fcfg_.n_tiers});
    for (int i = 0; i < b; ++i) {
        float* row =
            head_in_.Data() +
            static_cast<size_t>(i) * (hidden_ + fcfg_.n_tiers);
        std::copy(h.Data() + static_cast<size_t>(i) * hidden_,
                  h.Data() + static_cast<size_t>(i + 1) * hidden_, row);
        std::copy(
            batch.xrc.Data() + static_cast<size_t>(i) * fcfg_.n_tiers,
            batch.xrc.Data() + static_cast<size_t>(i + 1) * fcfg_.n_tiers,
            row + hidden_);
    }
    Tensor y = head_.Forward(head_in_);
    AddPersistenceResidual(batch, fcfg_, y);
    return y;
}

void
LstmPredictor::Backward(const Tensor& dy)
{
    const Tensor g = head_.Backward(dy);
    const int b = g.Dim(0);
    Tensor dh({b, hidden_});
    for (int i = 0; i < b; ++i) {
        const float* row =
            g.Data() + static_cast<size_t>(i) * (hidden_ + fcfg_.n_tiers);
        std::copy(row, row + hidden_,
                  dh.Data() + static_cast<size_t>(i) * hidden_);
    }
    lstm_.Backward(dh);
}

std::vector<Param*>
LstmPredictor::Params()
{
    std::vector<Param*> all = lstm_.Params();
    for (Param* p : head_.Params())
        all.push_back(p);
    return all;
}

void
LstmPredictor::Save(std::ostream& out) const
{
    lstm_.Save(out);
    head_.Save(out);
}

void
LstmPredictor::Load(std::istream& in)
{
    lstm_.Load(in);
    head_.Load(in);
}

} // namespace sinan
