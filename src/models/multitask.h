/**
 * @file
 * The multi-task network the paper rejects (Sec. 3, Figure 4): one trunk
 * predicting both the next-interval latency percentiles and the
 * probability of a QoS violation k intervals ahead. The semantic gap
 * between the bounded violation probability and the unbounded latency
 * makes this joint model overpredict latency — the motivation for
 * Sinan's two-stage CNN + Boosted-Trees design.
 */
#ifndef SINAN_MODELS_MULTITASK_H
#define SINAN_MODELS_MULTITASK_H

#include "models/latency_model.h"
#include "nn/layers.h"
#include "nn/sequential.h"

namespace sinan {

/** Joint latency + violation predictor sharing one trunk. */
class MultiTaskNn {
  public:
    MultiTaskNn(const FeatureConfig& fcfg, uint64_t seed);

    /**
     * Forward pass. @p latency receives [B, M] normalized latencies and
     * @p violation_logit receives [B, 1].
     */
    void Forward(const Batch& batch, Tensor& latency,
                 Tensor& violation_logit);

    /** Joint backward from both heads' loss gradients. */
    void Backward(const Tensor& d_latency, const Tensor& d_violation);

    std::vector<Param*> Params();

  private:
    FeatureConfig fcfg_;
    Sequential trunk_;       // flattened inputs -> shared embedding
    Dense latency_head_;
    Dense violation_head_;
    Tensor trunk_out_;
    int in_len_ = 0;

    Tensor FlattenBatch(const Batch& batch) const;
};

} // namespace sinan

#endif // SINAN_MODELS_MULTITASK_H
