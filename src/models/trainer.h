/**
 * @file
 * Minibatch SGD training loop for latency predictors, with the paper's
 * scaled squared loss (Eq. 2) and the timing/size metrics reported in
 * Table 2.
 */
#ifndef SINAN_MODELS_TRAINER_H
#define SINAN_MODELS_TRAINER_H

#include "models/latency_model.h"

namespace sinan {

/** Knobs of one training run. */
struct TrainOptions {
    int epochs = 20;
    int batch_size = 64;
    double lr = 0.02;
    double momentum = 0.9;
    double weight_decay = 1e-4;
    /** Multiplicative learning-rate decay per epoch. */
    double lr_decay = 0.95;
    /** Use the scaled loss of Eq. 2 (false = plain MSE, for ablation). */
    bool scaled_loss = true;
    /** Knee of phi(.) in normalized latency units (1.0 = the QoS). */
    double loss_knee = 1.0;
    /** Decay coefficient of phi(.) in normalized units (alpha * QoS). */
    double loss_alpha = 5.0;
    /** Gradient leak above the knee (see ScaledMseLoss). */
    double loss_leak = 0.05;
    /** Global gradient-norm clip (0 disables). */
    double grad_clip = 5.0;
    /** Minibatch shuffling seed. */
    uint64_t seed = 1;
};

/** Accuracy and cost summary of a training run (Table 2's columns). */
struct TrainReport {
    double train_rmse_ms = 0.0;
    double val_rmse_ms = 0.0;
    /** Validation RMSE restricted to samples whose true p99 met QoS —
     *  the operating region the scheduler's latency margin cares about
     *  (overall RMSE is dominated by unbounded queueing spikes). */
    double val_rmse_subqos_ms = 0.0;
    double train_time_s = 0.0;
    /** Mean wall-clock per training step (fwd+bwd+update) per batch. */
    double train_ms_per_batch = 0.0;
    /** Mean wall-clock of a forward pass per batch. */
    double infer_ms_per_batch = 0.0;
    size_t n_params = 0;
    int epochs_run = 0;
};

/**
 * Trains @p model on @p train, evaluating on @p valid.
 * RMSEs are reported in milliseconds over all predicted percentiles.
 */
TrainReport TrainLatencyModel(LatencyModel& model, const Dataset& train,
                              const Dataset& valid,
                              const FeatureConfig& fcfg,
                              const TrainOptions& opts);

/** RMSE in ms of @p model on @p data (all percentiles). */
double EvalRmseMs(LatencyModel& model, const Dataset& data,
                  const FeatureConfig& fcfg, int batch_size = 256);

/** RMSE in ms over the subset of @p data with true p99 <= QoS. */
double EvalRmseSubQosMs(LatencyModel& model, const Dataset& data,
                        const FeatureConfig& fcfg, int batch_size = 256);

/**
 * Per-sample p99 predictions in ms, in dataset order (used by the
 * figure benches that plot predicted vs. true latency).
 */
std::vector<double> PredictP99Ms(LatencyModel& model, const Dataset& data,
                                 const FeatureConfig& fcfg,
                                 int batch_size = 256);

} // namespace sinan

#endif // SINAN_MODELS_TRAINER_H
