#include "models/multitask.h"

namespace sinan {

MultiTaskNn::MultiTaskNn(const FeatureConfig& fcfg, uint64_t seed)
    : fcfg_(fcfg)
{
    Rng rng(seed);
    const int rh = FeatureConfig::kChannels * fcfg.n_tiers * fcfg.history;
    in_len_ = rh + fcfg.LatFeatures() + fcfg.n_tiers;
    trunk_.Emplace<Dense>(in_len_, 96, rng);
    trunk_.Emplace<ReLU>();
    trunk_.Emplace<Dense>(96, 48, rng);
    trunk_.Emplace<ReLU>();
    latency_head_ = Dense(48, fcfg.n_percentiles, rng);
    violation_head_ = Dense(48, 1, rng);
}

Tensor
MultiTaskNn::FlattenBatch(const Batch& batch) const
{
    const int b = batch.Size();
    const int rh = static_cast<int>(batch.xrh.Size()) / b;
    const int lh = batch.xlh.Dim(1);
    const int rc = batch.xrc.Dim(1);
    Tensor x({b, rh + lh + rc});
    for (int i = 0; i < b; ++i) {
        float* row = x.Data() + static_cast<size_t>(i) * (rh + lh + rc);
        std::copy(batch.xrh.Data() + static_cast<size_t>(i) * rh,
                  batch.xrh.Data() + static_cast<size_t>(i + 1) * rh, row);
        std::copy(batch.xlh.Data() + static_cast<size_t>(i) * lh,
                  batch.xlh.Data() + static_cast<size_t>(i + 1) * lh,
                  row + rh);
        std::copy(batch.xrc.Data() + static_cast<size_t>(i) * rc,
                  batch.xrc.Data() + static_cast<size_t>(i + 1) * rc,
                  row + rh + lh);
    }
    return x;
}

void
MultiTaskNn::Forward(const Batch& batch, Tensor& latency,
                     Tensor& violation_logit)
{
    trunk_out_ = trunk_.Forward(FlattenBatch(batch));
    latency = latency_head_.Forward(trunk_out_);
    violation_logit = violation_head_.Forward(trunk_out_);
}

void
MultiTaskNn::Backward(const Tensor& d_latency, const Tensor& d_violation)
{
    Tensor g = latency_head_.Backward(d_latency);
    g.Add(violation_head_.Backward(d_violation));
    trunk_.Backward(g);
}

std::vector<Param*>
MultiTaskNn::Params()
{
    std::vector<Param*> all = trunk_.Params();
    for (Param* p : latency_head_.Params())
        all.push_back(p);
    for (Param* p : violation_head_.Params())
        all.push_back(p);
    return all;
}

} // namespace sinan
