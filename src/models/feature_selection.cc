#include "models/feature_selection.h"

#include <algorithm>
#include <numeric>

#include "models/trainer.h"

namespace sinan {

std::vector<int>
FeatureSelectionReport::SpuriousChannels(double frac) const
{
    double max_delta = 0.0;
    for (const ChannelImportance& c : channels)
        max_delta = std::max(max_delta, c.delta_rmse_ms);
    std::vector<int> out;
    for (const ChannelImportance& c : channels) {
        if (c.delta_rmse_ms < frac * max_delta)
            out.push_back(c.channel);
    }
    return out;
}

FeatureSelectionReport
PermutationImportance(LatencyModel& model, const Dataset& data,
                      const FeatureConfig& fcfg, uint64_t seed)
{
    FeatureSelectionReport report;
    report.baseline_rmse_ms = EvalRmseMs(model, data, fcfg);

    const size_t n = data.samples.size();
    std::vector<int> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (size_t i = n; i > 1; --i) {
        const size_t j = rng.UniformInt(static_cast<uint64_t>(i));
        std::swap(perm[i - 1], perm[j]);
    }

    for (int channel = 0; channel < FeatureConfig::kChannels; ++channel) {
        // Swap the channel's data between sample i and perm[i].
        Dataset shuffled = data;
        for (size_t i = 0; i < n; ++i) {
            const Sample& src = data.samples[perm[i]];
            Sample& dst = shuffled.samples[i];
            for (int tier = 0; tier < fcfg.n_tiers; ++tier) {
                for (int t = 0; t < fcfg.history; ++t) {
                    dst.xrh.At(channel, tier, t) =
                        src.xrh.At(channel, tier, t);
                }
            }
        }
        ChannelImportance ci;
        ci.channel = channel;
        ci.permuted_rmse_ms = EvalRmseMs(model, shuffled, fcfg);
        ci.delta_rmse_ms =
            ci.permuted_rmse_ms - report.baseline_rmse_ms;
        report.channels.push_back(ci);
    }
    std::sort(report.channels.begin(), report.channels.end(),
              [](const ChannelImportance& a, const ChannelImportance& b) {
                  return a.delta_rmse_ms > b.delta_rmse_ms;
              });
    return report;
}

} // namespace sinan
