#include "models/features.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sinan {

namespace {

/** Inputs are clipped to a sane normalized range: during queueing
 *  explosions raw latencies can reach tens of times the QoS, which
 *  destabilizes training (exploding gradients) without adding signal. */
constexpr float kMaxNormalizedInput = 4.0f;

float
Clip(double v)
{
    return static_cast<float>(std::clamp(v, 0.0,
                                         double{kMaxNormalizedInput}));
}

} // namespace

void
BuildHistoryRow(const MetricWindow& window, Tensor& xrh, Tensor& xlh,
                int row)
{
    const FeatureConfig& cfg = window.Config();
    if (!window.Ready())
        throw std::logic_error("BuildInput: window not full yet");

    const int n = cfg.n_tiers;
    const int t_len = cfg.history;
    const int m = cfg.n_percentiles;

    for (int t = 0; t < t_len; ++t) {
        const IntervalObservation& obs = window.At(static_cast<size_t>(t));
        if (static_cast<int>(obs.tiers.size()) != n)
            throw std::invalid_argument("BuildInput: tier count mismatch");
        for (int i = 0; i < n; ++i) {
            const TierMetrics& tm = obs.tiers[i];
            xrh.At(row, 0, i, t) = Clip(tm.cpu_limit / cfg.cpu_scale);
            xrh.At(row, 1, i, t) = Clip(tm.cpu_used / cfg.cpu_scale);
            xrh.At(row, 2, i, t) = Clip(tm.rss_mb / cfg.rss_scale);
            xrh.At(row, 3, i, t) = Clip(tm.cache_mb / cfg.cache_scale);
            xrh.At(row, 4, i, t) = Clip(tm.rx_pps / cfg.pps_scale);
            xrh.At(row, 5, i, t) = Clip(tm.tx_pps / cfg.pps_scale);
        }
        for (int p = 0; p < m; ++p) {
            const double lat =
                p < static_cast<int>(obs.latency_ms.size())
                    ? obs.latency_ms[p]
                    : 0.0;
            xlh.At(row, t * m + p) = Clip(lat / cfg.qos_ms);
        }
    }
}

void
BuildAllocRow(const FeatureConfig& cfg,
              const std::vector<double>& next_alloc, Tensor& xrc, int row)
{
    if (static_cast<int>(next_alloc.size()) != cfg.n_tiers)
        throw std::invalid_argument("BuildInput: allocation size mismatch");
    for (int i = 0; i < cfg.n_tiers; ++i)
        xrc.At(row, i) = Clip(next_alloc[i] / cfg.cpu_scale);
}

Sample
BuildInput(const MetricWindow& window, const std::vector<double>& next_alloc)
{
    const FeatureConfig& cfg = window.Config();
    if (!window.Ready())
        throw std::logic_error("BuildInput: window not full yet");
    if (static_cast<int>(next_alloc.size()) != cfg.n_tiers)
        throw std::invalid_argument("BuildInput: allocation size mismatch");

    Sample s;
    const int n = cfg.n_tiers;
    const int t_len = cfg.history;
    const int m = cfg.n_percentiles;

    // Build through the row writers on a batch of 1, then drop the
    // batch dimension in place (no data copy).
    s.xrh = Tensor({1, FeatureConfig::kChannels, n, t_len});
    s.xlh = Tensor({1, t_len * m});
    s.xrc = Tensor({1, n});
    BuildHistoryRow(window, s.xrh, s.xlh, 0);
    BuildAllocRow(cfg, next_alloc, s.xrc, 0);
    s.xrh.ReshapeInPlace({FeatureConfig::kChannels, n, t_len});
    s.xlh.ReshapeInPlace({t_len * m});
    s.xrc.ReshapeInPlace({n});
    return s;
}

Batch
StackSamples(const std::vector<const Sample*>& samples)
{
    if (samples.empty())
        throw std::invalid_argument("StackSamples: empty batch");
    const int b = static_cast<int>(samples.size());
    const auto& rh_shape = samples[0]->xrh.Shape();
    Batch batch;
    batch.xrh = Tensor({b, rh_shape[0], rh_shape[1], rh_shape[2]});
    batch.xlh = Tensor({b, samples[0]->xlh.Dim(0)});
    batch.xrc = Tensor({b, samples[0]->xrc.Dim(0)});
    const size_t rh_sz = samples[0]->xrh.Size();
    const size_t lh_sz = samples[0]->xlh.Size();
    const size_t rc_sz = samples[0]->xrc.Size();
    for (int i = 0; i < b; ++i) {
        const Sample& s = *samples[i];
        if (s.xrh.Size() != rh_sz || s.xlh.Size() != lh_sz ||
            s.xrc.Size() != rc_sz) {
            throw std::invalid_argument("StackSamples: ragged samples");
        }
        std::copy(s.xrh.Data(), s.xrh.Data() + rh_sz,
                  batch.xrh.Data() + static_cast<size_t>(i) * rh_sz);
        std::copy(s.xlh.Data(), s.xlh.Data() + lh_sz,
                  batch.xlh.Data() + static_cast<size_t>(i) * lh_sz);
        std::copy(s.xrc.Data(), s.xrc.Data() + rc_sz,
                  batch.xrc.Data() + static_cast<size_t>(i) * rc_sz);
    }
    return batch;
}

std::pair<Dataset, Dataset>
Dataset::Split(double train_frac, Rng& rng) const
{
    if (train_frac <= 0.0 || train_frac >= 1.0)
        throw std::invalid_argument("Dataset::Split: bad fraction");
    std::vector<int> order(samples.size());
    std::iota(order.begin(), order.end(), 0);
    // Fisher-Yates with the deterministic Rng.
    for (size_t i = order.size(); i > 1; --i) {
        const size_t j = rng.UniformInt(static_cast<uint64_t>(i));
        std::swap(order[i - 1], order[j]);
    }
    const size_t n_train =
        static_cast<size_t>(train_frac * static_cast<double>(order.size()));
    Dataset train, valid;
    train.samples.reserve(n_train);
    valid.samples.reserve(order.size() - n_train);
    for (size_t i = 0; i < order.size(); ++i) {
        if (i < n_train)
            train.samples.push_back(samples[order[i]]);
        else
            valid.samples.push_back(samples[order[i]]);
    }
    return {std::move(train), std::move(valid)};
}

Batch
Dataset::MakeBatch(const std::vector<int>& indices, size_t begin,
                   size_t end) const
{
    std::vector<const Sample*> ptrs;
    ptrs.reserve(end - begin);
    for (size_t i = begin; i < end; ++i)
        ptrs.push_back(&samples[indices[i]]);
    return StackSamples(ptrs);
}

Tensor
Dataset::MakeLatencyTargets(const std::vector<int>& indices, size_t begin,
                            size_t end) const
{
    const int b = static_cast<int>(end - begin);
    const int m = static_cast<int>(samples[indices[begin]].y_latency.size());
    Tensor y({b, m});
    for (int i = 0; i < b; ++i) {
        const Sample& s = samples[indices[begin + i]];
        for (int p = 0; p < m; ++p)
            y.At(i, p) = s.y_latency[p];
    }
    return y;
}

double
Dataset::ViolationRate() const
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (const Sample& s : samples)
        acc += static_cast<double>(s.violation);
    return acc / static_cast<double>(samples.size());
}

} // namespace sinan
