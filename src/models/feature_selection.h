/**
 * @file
 * Feature selection over the resource channels (paper Sec. 3.1: "the
 * set of necessary and sufficient resource metrics is narrowed down via
 * feature selection"). Permutation importance: shuffle one channel
 * across the validation set and measure how much the latency predictor's
 * RMSE degrades; channels whose permutation barely matters are spurious
 * and can be dropped to shrink the model and speed up inference
 * (Sec. 5.6's third benefit of interpretability).
 */
#ifndef SINAN_MODELS_FEATURE_SELECTION_H
#define SINAN_MODELS_FEATURE_SELECTION_H

#include <vector>

#include "models/latency_model.h"

namespace sinan {

/** One channel's permutation-importance result. */
struct ChannelImportance {
    int channel = -1;
    /** RMSE (ms) with this channel permuted across samples. */
    double permuted_rmse_ms = 0.0;
    /** Increase over the unpermuted baseline RMSE (ms). */
    double delta_rmse_ms = 0.0;
};

/** Permutation importance of every X_RH resource channel. */
struct FeatureSelectionReport {
    double baseline_rmse_ms = 0.0;
    /** One entry per channel, sorted by descending delta. */
    std::vector<ChannelImportance> channels;

    /** Channels whose delta is below @p frac of the largest delta. */
    std::vector<int> SpuriousChannels(double frac = 0.05) const;
};

/**
 * Computes permutation importance of each resource channel of X_RH on
 * @p data. The permutation is deterministic given @p seed. @p model is
 * only read (forward passes).
 */
FeatureSelectionReport PermutationImportance(LatencyModel& model,
                                             const Dataset& data,
                                             const FeatureConfig& fcfg,
                                             uint64_t seed = 1);

} // namespace sinan

#endif // SINAN_MODELS_FEATURE_SELECTION_H
