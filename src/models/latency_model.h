/**
 * @file
 * Interface shared by all short-term latency predictors (the paper's
 * Table 2 compares a CNN against MLP and LSTM under this contract):
 * forward maps a Batch to normalized latency percentiles [B, M];
 * backward consumes the loss gradient.
 */
#ifndef SINAN_MODELS_LATENCY_MODEL_H
#define SINAN_MODELS_LATENCY_MODEL_H

#include <iosfwd>
#include <vector>

#include "models/features.h"
#include "nn/layer.h"

namespace sinan {

/** A trainable latency predictor over (X_RH, X_LH, X_RC) batches. */
class LatencyModel {
  public:
    virtual ~LatencyModel() = default;

    /** Predicts [B, M] normalized latency percentiles. */
    virtual Tensor Forward(const Batch& batch) = 0;

    /** Backpropagates the loss gradient of the last Forward. */
    virtual void Backward(const Tensor& dy) = 0;

    /** All trainable parameters. */
    virtual std::vector<Param*> Params() = 0;

    /** Human-readable name used in reports ("CNN", "MLP", "LSTM"). */
    virtual const char* Name() const = 0;

    virtual void Save(std::ostream& out) const = 0;
    virtual void Load(std::istream& in) = 0;

    /** Scalar parameter count (Table 2's model-size column). */
    size_t
    NumParams()
    {
        size_t n = 0;
        for (Param* p : Params())
            n += p->value.Size();
        return n;
    }
};

/**
 * Adds the persistence prior to a model's raw output: the newest
 * latency percentiles from X_LH are the natural baseline for the next
 * interval, so models predict the *deviation* from them. This
 * reparametrization conditions the optimization dramatically (the
 * trivial solution "latency persists" is the zero function).
 */
inline void
AddPersistenceResidual(const Batch& batch, const FeatureConfig& fcfg,
                       Tensor& y)
{
    const int b = y.Dim(0);
    const int m = fcfg.n_percentiles;
    const int base = (fcfg.history - 1) * m;
    for (int i = 0; i < b; ++i) {
        for (int p = 0; p < m; ++p)
            y.At(i, p) += batch.xlh.At(i, base + p);
    }
}

} // namespace sinan

#endif // SINAN_MODELS_LATENCY_MODEL_H
