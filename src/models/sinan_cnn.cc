#include "models/sinan_cnn.h"

#include <stdexcept>

namespace sinan {

namespace {

/** Concatenates three [B, *] tensors along dim 1. */
Tensor
ConcatCols(const Tensor& a, const Tensor& b, const Tensor& c)
{
    const int batch = a.Dim(0);
    const int na = a.Dim(1), nb = b.Dim(1), nc = c.Dim(1);
    Tensor out({batch, na + nb + nc});
    for (int i = 0; i < batch; ++i) {
        float* row = out.Data() + static_cast<size_t>(i) * (na + nb + nc);
        std::copy(a.Data() + static_cast<size_t>(i) * na,
                  a.Data() + static_cast<size_t>(i + 1) * na, row);
        std::copy(b.Data() + static_cast<size_t>(i) * nb,
                  b.Data() + static_cast<size_t>(i + 1) * nb, row + na);
        std::copy(c.Data() + static_cast<size_t>(i) * nc,
                  c.Data() + static_cast<size_t>(i + 1) * nc,
                  row + na + nb);
    }
    return out;
}

/** Splits a [B, na+nb+nc] gradient back into its three parts. */
void
SplitCols(const Tensor& g, int na, int nb, int nc, Tensor& ga, Tensor& gb,
          Tensor& gc)
{
    const int batch = g.Dim(0);
    ga = Tensor({batch, na});
    gb = Tensor({batch, nb});
    gc = Tensor({batch, nc});
    for (int i = 0; i < batch; ++i) {
        const float* row =
            g.Data() + static_cast<size_t>(i) * (na + nb + nc);
        std::copy(row, row + na,
                  ga.Data() + static_cast<size_t>(i) * na);
        std::copy(row + na, row + na + nb,
                  gb.Data() + static_cast<size_t>(i) * nb);
        std::copy(row + na + nb, row + na + nb + nc,
                  gc.Data() + static_cast<size_t>(i) * nc);
    }
}

} // namespace

SinanCnn::SinanCnn(const FeatureConfig& fcfg, const SinanCnnConfig& cfg,
                   uint64_t seed)
    : fcfg_(fcfg), cfg_(cfg)
{
    Rng rng(seed);
    const int n = fcfg.n_tiers;
    const int t_len = fcfg.history;

    rh_branch_.Emplace<Conv2D>(FeatureConfig::kChannels,
                               cfg.conv_channels1, cfg.kernel, rng);
    rh_branch_.Emplace<ReLU>();
    rh_branch_.Emplace<Conv2D>(cfg.conv_channels1, cfg.conv_channels2,
                               cfg.kernel, rng);
    rh_branch_.Emplace<ReLU>();
    rh_branch_.Emplace<Flatten>();
    rh_branch_.Emplace<Dense>(cfg.conv_channels2 * n * t_len, cfg.rh_embed,
                              rng);
    rh_branch_.Emplace<ReLU>();

    lh_branch_.Emplace<Dense>(fcfg.LatFeatures(), cfg.lh_embed, rng);
    lh_branch_.Emplace<ReLU>();

    rc_branch_.Emplace<Dense>(n, cfg.rc_embed, rng);
    rc_branch_.Emplace<ReLU>();

    fc_latent_ = Dense(cfg.rh_embed + cfg.lh_embed + cfg.rc_embed,
                       cfg.latent, rng);
    fc_out_ = Dense(cfg.latent, fcfg.n_percentiles, rng);

    rh_out_ = cfg.rh_embed;
    lh_out_ = cfg.lh_embed;
    rc_out_ = cfg.rc_embed;
}

Tensor
SinanCnn::Forward(const Batch& batch)
{
    const Tensor ha = rh_branch_.Forward(batch.xrh);
    const Tensor hb = lh_branch_.Forward(batch.xlh);
    const Tensor hc = rc_branch_.Forward(batch.xrc);
    const Tensor concat = ConcatCols(ha, hb, hc);
    latent_ = relu_latent_.Forward(fc_latent_.Forward(concat));
    Tensor y = fc_out_.Forward(latent_);
    AddPersistenceResidual(batch, fcfg_, y);
    return y;
}

void
SinanCnn::Backward(const Tensor& dy)
{
    Tensor g = fc_out_.Backward(dy);
    g = fc_latent_.Backward(relu_latent_.Backward(g));
    Tensor ga, gb, gc;
    SplitCols(g, rh_out_, lh_out_, rc_out_, ga, gb, gc);
    rh_branch_.Backward(ga);
    lh_branch_.Backward(gb);
    rc_branch_.Backward(gc);
}

std::vector<Param*>
SinanCnn::Params()
{
    std::vector<Param*> all;
    for (Param* p : rh_branch_.Params())
        all.push_back(p);
    for (Param* p : lh_branch_.Params())
        all.push_back(p);
    for (Param* p : rc_branch_.Params())
        all.push_back(p);
    for (Param* p : fc_latent_.Params())
        all.push_back(p);
    for (Param* p : fc_out_.Params())
        all.push_back(p);
    return all;
}

void
SinanCnn::Save(std::ostream& out) const
{
    rh_branch_.Save(out);
    lh_branch_.Save(out);
    rc_branch_.Save(out);
    fc_latent_.Save(out);
    fc_out_.Save(out);
}

void
SinanCnn::Load(std::istream& in)
{
    rh_branch_.Load(in);
    lh_branch_.Load(in);
    rc_branch_.Load(in);
    fc_latent_.Load(in);
    fc_out_.Load(in);
}

} // namespace sinan
