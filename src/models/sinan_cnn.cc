#include "models/sinan_cnn.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

namespace {

/** Concatenates three [B, *] tensors along dim 1. */
Tensor
ConcatCols(const Tensor& a, const Tensor& b, const Tensor& c)
{
    const int batch = a.Dim(0);
    const int na = a.Dim(1), nb = b.Dim(1), nc = c.Dim(1);
    Tensor out({batch, na + nb + nc});
    for (int i = 0; i < batch; ++i) {
        float* row = out.Data() + static_cast<size_t>(i) * (na + nb + nc);
        std::copy(a.Data() + static_cast<size_t>(i) * na,
                  a.Data() + static_cast<size_t>(i + 1) * na, row);
        std::copy(b.Data() + static_cast<size_t>(i) * nb,
                  b.Data() + static_cast<size_t>(i + 1) * nb, row + na);
        std::copy(c.Data() + static_cast<size_t>(i) * nc,
                  c.Data() + static_cast<size_t>(i + 1) * nc,
                  row + na + nb);
    }
    return out;
}

/** Splits a [B, na+nb+nc] gradient back into its three parts. */
void
SplitCols(const Tensor& g, int na, int nb, int nc, Tensor& ga, Tensor& gb,
          Tensor& gc)
{
    const int batch = g.Dim(0);
    ga = Tensor({batch, na});
    gb = Tensor({batch, nb});
    gc = Tensor({batch, nc});
    for (int i = 0; i < batch; ++i) {
        const float* row =
            g.Data() + static_cast<size_t>(i) * (na + nb + nc);
        std::copy(row, row + na,
                  ga.Data() + static_cast<size_t>(i) * na);
        std::copy(row + na, row + na + nb,
                  gb.Data() + static_cast<size_t>(i) * nb);
        std::copy(row + na + nb, row + na + nb + nc,
                  gc.Data() + static_cast<size_t>(i) * nc);
    }
}

} // namespace

SinanCnn::SinanCnn(const FeatureConfig& fcfg, const SinanCnnConfig& cfg,
                   uint64_t seed)
    : fcfg_(fcfg), cfg_(cfg)
{
    Rng rng(seed);
    const int n = fcfg.n_tiers;
    const int t_len = fcfg.history;

    // Construction order matches the serialization order (and the
    // pre-refactor Sequential layout), so existing saved models load
    // unchanged.
    conv1_ = Conv2D(FeatureConfig::kChannels, cfg.conv_channels1,
                    cfg.kernel, rng);
    conv2_ = Conv2D(cfg.conv_channels1, cfg.conv_channels2, cfg.kernel,
                    rng);
    rh_fc_ = Dense(cfg.conv_channels2 * n * t_len, cfg.rh_embed, rng);

    lh_fc_ = Dense(fcfg.LatFeatures(), cfg.lh_embed, rng);

    rc_fc_ = Dense(n, cfg.rc_embed, rng);

    fc_latent_ = Dense(cfg.rh_embed + cfg.lh_embed + cfg.rc_embed,
                       cfg.latent, rng);
    fc_out_ = Dense(cfg.latent, fcfg.n_percentiles, rng);

    rh_out_ = cfg.rh_embed;
    lh_out_ = cfg.lh_embed;
    rc_out_ = cfg.rc_embed;
}

Tensor
SinanCnn::Forward(const Batch& batch)
{
    Tensor h = conv1_relu_.Forward(conv1_.Forward(batch.xrh));
    h = conv2_relu_.Forward(conv2_.Forward(h));
    h = flatten_.Forward(h);
    const Tensor ha = rh_relu_.Forward(rh_fc_.Forward(h));
    const Tensor hb = lh_relu_.Forward(lh_fc_.Forward(batch.xlh));
    const Tensor hc = rc_relu_.Forward(rc_fc_.Forward(batch.xrc));
    const Tensor concat = ConcatCols(ha, hb, hc);
    latent_ = relu_latent_.Forward(fc_latent_.Forward(concat));
    Tensor y = fc_out_.Forward(latent_);
    AddPersistenceResidual(batch, fcfg_, y);
    return y;
}

void
SinanCnn::ForwardTrunk(CnnEvalWorkspace& ws) const
{
    SINAN_CHECK_EQ(ws.xrh.Rank(), 4);
    SINAN_CHECK_EQ(ws.xrh.Dim(0), 1);
    SINAN_CHECK_EQ(ws.xlh.Rank(), 2);
    SINAN_CHECK_EQ(ws.xlh.Dim(0), 1);
    conv1_.ForwardInto(ws.xrh, ws.conv1_out, ws.col);
    ReluInPlace(ws.conv1_out);
    conv2_.ForwardInto(ws.conv1_out, ws.conv2_out, ws.col);
    ReluInPlace(ws.conv2_out);
    // Flatten is a pure view change on a batch of 1.
    SINAN_CHECK_MSG(
        ws.conv2_out.Size() <=
            static_cast<size_t>(std::numeric_limits<int>::max()),
        "ForwardTrunk: conv output too large to flatten");
    ws.conv2_out.ReshapeInPlace(
        {1, static_cast<int>(ws.conv2_out.Size())});
    rh_fc_.ForwardInto(ws.conv2_out, ws.rh_embed);
    ReluInPlace(ws.rh_embed);
    lh_fc_.ForwardInto(ws.xlh, ws.lh_embed);
    ReluInPlace(ws.lh_embed);
}

void
SinanCnn::ForwardHead(CnnEvalWorkspace& ws) const
{
    SINAN_CHECK_EQ(ws.xrc.Rank(), 2);
    SINAN_CHECK_MSG(ws.rh_embed.Size() ==
                            static_cast<size_t>(rh_out_) &&
                        ws.lh_embed.Size() == static_cast<size_t>(lh_out_),
                    "ForwardHead: trunk embeddings missing — call "
                    "ForwardTrunk first");
    const int batch = ws.xrc.Dim(0);

    rc_fc_.ForwardInto(ws.xrc, ws.rc_embed);
    ReluInPlace(ws.rc_embed);

    // Broadcast-concat: every candidate row is [ha | hb | hc_i] with
    // the shared trunk embeddings ha/hb — exactly the rows the
    // full-batch ConcatCols would build from B identical trunk inputs.
    const int na = rh_out_, nb = lh_out_, nc = rc_out_;
    const int width = na + nb + nc;
    ws.concat.EnsureShape({batch, width});
    const float* ha = ws.rh_embed.Data();
    const float* hb = ws.lh_embed.Data();
    for (int i = 0; i < batch; ++i) {
        float* row = ws.concat.Data() + static_cast<size_t>(i) * width;
        std::copy(ha, ha + na, row);
        std::copy(hb, hb + nb, row + na);
        const float* hc =
            ws.rc_embed.Data() + static_cast<size_t>(i) * nc;
        std::copy(hc, hc + nc, row + na + nb);
    }

    fc_latent_.ForwardInto(ws.concat, ws.latent);
    ReluInPlace(ws.latent);
    fc_out_.ForwardInto(ws.latent, ws.pred);

    // Persistence residual, broadcast from the shared window row: the
    // full-batch path adds batch.xlh.At(i, base + p), and every row i
    // carries the same latency history here.
    const int m = fcfg_.n_percentiles;
    const int base = (fcfg_.history - 1) * m;
    for (int i = 0; i < batch; ++i) {
        for (int p = 0; p < m; ++p)
            ws.pred.At(i, p) += ws.xlh.At(0, base + p);
    }
}

void
SinanCnn::Backward(const Tensor& dy)
{
    Tensor g = fc_out_.Backward(dy);
    g = fc_latent_.Backward(relu_latent_.Backward(g));
    Tensor ga, gb, gc;
    SplitCols(g, rh_out_, lh_out_, rc_out_, ga, gb, gc);
    ga = rh_fc_.Backward(rh_relu_.Backward(ga));
    ga = flatten_.Backward(ga);
    ga = conv2_.Backward(conv2_relu_.Backward(ga));
    (void)conv1_.Backward(conv1_relu_.Backward(ga));
    (void)lh_fc_.Backward(lh_relu_.Backward(gb));
    (void)rc_fc_.Backward(rc_relu_.Backward(gc));
}

std::vector<Param*>
SinanCnn::Params()
{
    std::vector<Param*> all;
    for (Layer* l : {static_cast<Layer*>(&conv1_),
                     static_cast<Layer*>(&conv2_),
                     static_cast<Layer*>(&rh_fc_),
                     static_cast<Layer*>(&lh_fc_),
                     static_cast<Layer*>(&rc_fc_),
                     static_cast<Layer*>(&fc_latent_),
                     static_cast<Layer*>(&fc_out_)}) {
        for (Param* p : l->Params())
            all.push_back(p);
    }
    return all;
}

void
SinanCnn::Save(std::ostream& out) const
{
    conv1_.Save(out);
    conv2_.Save(out);
    rh_fc_.Save(out);
    lh_fc_.Save(out);
    rc_fc_.Save(out);
    fc_latent_.Save(out);
    fc_out_.Save(out);
}

void
SinanCnn::Load(std::istream& in)
{
    conv1_.Load(in);
    conv2_.Load(in);
    rh_fc_.Load(in);
    lh_fc_.Load(in);
    rc_fc_.Load(in);
    fc_latent_.Load(in);
    fc_out_.Load(in);
}

} // namespace sinan
