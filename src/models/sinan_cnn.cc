#include "models/sinan_cnn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/check.h"

namespace sinan {

namespace {

/** Concatenates three [B, *] tensors along dim 1. */
Tensor
ConcatCols(const Tensor& a, const Tensor& b, const Tensor& c)
{
    const int batch = a.Dim(0);
    const int na = a.Dim(1), nb = b.Dim(1), nc = c.Dim(1);
    Tensor out({batch, na + nb + nc});
    for (int i = 0; i < batch; ++i) {
        float* row = out.Data() + static_cast<size_t>(i) * (na + nb + nc);
        std::copy(a.Data() + static_cast<size_t>(i) * na,
                  a.Data() + static_cast<size_t>(i + 1) * na, row);
        std::copy(b.Data() + static_cast<size_t>(i) * nb,
                  b.Data() + static_cast<size_t>(i + 1) * nb, row + na);
        std::copy(c.Data() + static_cast<size_t>(i) * nc,
                  c.Data() + static_cast<size_t>(i + 1) * nc,
                  row + na + nb);
    }
    return out;
}

/** Splits a [B, na+nb+nc] gradient back into its three parts. */
void
SplitCols(const Tensor& g, int na, int nb, int nc, Tensor& ga, Tensor& gb,
          Tensor& gc)
{
    const int batch = g.Dim(0);
    ga = Tensor({batch, na});
    gb = Tensor({batch, nb});
    gc = Tensor({batch, nc});
    for (int i = 0; i < batch; ++i) {
        const float* row =
            g.Data() + static_cast<size_t>(i) * (na + nb + nc);
        std::copy(row, row + na,
                  ga.Data() + static_cast<size_t>(i) * na);
        std::copy(row + na, row + na + nb,
                  gb.Data() + static_cast<size_t>(i) * nb);
        std::copy(row + na + nb, row + na + nb + nc,
                  gc.Data() + static_cast<size_t>(i) * nc);
    }
}

} // namespace

SinanCnn::SinanCnn(const FeatureConfig& fcfg, const SinanCnnConfig& cfg,
                   uint64_t seed)
    : fcfg_(fcfg), cfg_(cfg)
{
    Rng rng(seed);
    const int n = fcfg.n_tiers;
    const int t_len = fcfg.history;

    // Construction order matches the serialization order (and the
    // pre-refactor Sequential layout), so existing saved models load
    // unchanged.
    conv1_ = Conv2D(FeatureConfig::kChannels, cfg.conv_channels1,
                    cfg.kernel, rng);
    conv2_ = Conv2D(cfg.conv_channels1, cfg.conv_channels2, cfg.kernel,
                    rng);
    rh_fc_ = Dense(cfg.conv_channels2 * n * t_len, cfg.rh_embed, rng);

    lh_fc_ = Dense(fcfg.LatFeatures(), cfg.lh_embed, rng);

    rc_fc_ = Dense(n, cfg.rc_embed, rng);

    fc_latent_ = Dense(cfg.rh_embed + cfg.lh_embed + cfg.rc_embed,
                       cfg.latent, rng);
    fc_out_ = Dense(cfg.latent, fcfg.n_percentiles, rng);

    rh_out_ = cfg.rh_embed;
    lh_out_ = cfg.lh_embed;
    rc_out_ = cfg.rc_embed;
}

Tensor
SinanCnn::Forward(const Batch& batch)
{
    Tensor h = conv1_relu_.Forward(conv1_.Forward(batch.xrh));
    h = conv2_relu_.Forward(conv2_.Forward(h));
    h = flatten_.Forward(h);
    const Tensor ha = rh_relu_.Forward(rh_fc_.Forward(h));
    const Tensor hb = lh_relu_.Forward(lh_fc_.Forward(batch.xlh));
    const Tensor hc = rc_relu_.Forward(rc_fc_.Forward(batch.xrc));
    const Tensor concat = ConcatCols(ha, hb, hc);
    latent_ = relu_latent_.Forward(fc_latent_.Forward(concat));
    Tensor y = fc_out_.Forward(latent_);
    AddPersistenceResidual(batch, fcfg_, y);
    return y;
}

void
SinanCnn::ForwardTrunk(CnnEvalWorkspace& ws) const
{
    SINAN_CHECK_EQ(ws.xrh.Rank(), 4);
    SINAN_CHECK_EQ(ws.xrh.Dim(0), 1);
    SINAN_CHECK_EQ(ws.xlh.Rank(), 2);
    SINAN_CHECK_EQ(ws.xlh.Dim(0), 1);
    conv1_.ForwardInto(ws.xrh, ws.conv1_out, ws.col);
    ReluInPlace(ws.conv1_out);
    conv2_.ForwardInto(ws.conv1_out, ws.conv2_out, ws.col);
    ReluInPlace(ws.conv2_out);
    // Flatten is a pure view change on a batch of 1.
    SINAN_CHECK_MSG(
        ws.conv2_out.Size() <=
            static_cast<size_t>(std::numeric_limits<int>::max()),
        "ForwardTrunk: conv output too large to flatten");
    ws.conv2_out.ReshapeInPlace(
        {1, static_cast<int>(ws.conv2_out.Size())});
    rh_fc_.ForwardInto(ws.conv2_out, ws.rh_embed);
    ReluInPlace(ws.rh_embed);
    lh_fc_.ForwardInto(ws.xlh, ws.lh_embed);
    ReluInPlace(ws.lh_embed);
}

void
SinanCnn::BroadcastConcat(CnnEvalWorkspace& ws) const
{
    // Broadcast-concat: every candidate row is [ha | hb | hc_i] with
    // the shared trunk embeddings ha/hb — exactly the rows the
    // full-batch ConcatCols would build from B identical trunk inputs.
    const int batch = ws.xrc.Dim(0);
    const int na = rh_out_, nb = lh_out_, nc = rc_out_;
    const int width = na + nb + nc;
    ws.concat.EnsureShape({batch, width});
    const float* ha = ws.rh_embed.Data();
    const float* hb = ws.lh_embed.Data();
    for (int i = 0; i < batch; ++i) {
        float* row = ws.concat.Data() + static_cast<size_t>(i) * width;
        std::copy(ha, ha + na, row);
        std::copy(hb, hb + nb, row + na);
        const float* hc =
            ws.rc_embed.Data() + static_cast<size_t>(i) * nc;
        std::copy(hc, hc + nc, row + na + nb);
    }
}

void
SinanCnn::AddPersistence(CnnEvalWorkspace& ws) const
{
    // Persistence residual, broadcast from the shared window row: the
    // full-batch path adds batch.xlh.At(i, base + p), and every row i
    // carries the same latency history here.
    const int batch = ws.pred.Dim(0);
    const int m = fcfg_.n_percentiles;
    const int base = (fcfg_.history - 1) * m;
    for (int i = 0; i < batch; ++i) {
        for (int p = 0; p < m; ++p)
            ws.pred.At(i, p) += ws.xlh.At(0, base + p);
    }
}

void
SinanCnn::ForwardHead(CnnEvalWorkspace& ws) const
{
    SINAN_CHECK_EQ(ws.xrc.Rank(), 2);
    SINAN_CHECK_MSG(ws.rh_embed.Size() ==
                            static_cast<size_t>(rh_out_) &&
                        ws.lh_embed.Size() == static_cast<size_t>(lh_out_),
                    "ForwardHead: trunk embeddings missing — call "
                    "ForwardTrunk first");
    rc_fc_.ForwardInto(ws.xrc, ws.rc_embed);
    ReluInPlace(ws.rc_embed);
    BroadcastConcat(ws);
    fc_latent_.ForwardInto(ws.concat, ws.latent);
    ReluInPlace(ws.latent);
    fc_out_.ForwardInto(ws.latent, ws.pred);
    AddPersistence(ws);
}

namespace {

float
MaxAbs(const Tensor& t)
{
    float m = 0.0f;
    const float* p = t.Data();
    const size_t n = t.Size();
    for (size_t i = 0; i < n; ++i)
        m = std::max(m, std::fabs(p[i]));
    return m;
}

std::vector<float>
BiasVector(const Tensor& b)
{
    return std::vector<float>(b.Data(), b.Data() + b.Size());
}

} // namespace

void
SinanCnn::ForwardTrunkInt8(CnnEvalWorkspace& ws) const
{
    SINAN_CHECK_MSG(int8_.ready,
                    "ForwardTrunkInt8: model not calibrated — run "
                    "FinalizeInt8 or load a model with a quant section");
    SINAN_CHECK_EQ(ws.xrh.Rank(), 4);
    SINAN_CHECK_EQ(ws.xrh.Dim(0), 1);
    SINAN_CHECK_EQ(ws.xlh.Rank(), 2);
    SINAN_CHECK_EQ(ws.xlh.Dim(0), 1);
    // Fully fused conv stack: the activations stay u8 from the input
    // image until rh_fc's accumulators — relu and the next layer's
    // quantization are folded into each requantize pass, which is
    // byte-identical to the unfused int8 sequence (see nn/quant.h) and
    // skips two fp32 round trips.
    const int in_c = ws.xrh.Dim(1);
    const int h = ws.xrh.Dim(2);
    const int w = ws.xrh.Dim(3);
    const int64_t hw = static_cast<int64_t>(h) * w;
    const int64_t oc1 = int8_.conv1.lin.n;
    const int64_t flat = int8_.rh_fc.lin.k;
    SINAN_CHECK_EQ(flat, int8_.conv2.lin.n * hw);
    uint8_t* xq = ws.i8.Act(static_cast<size_t>(in_c) * hw);
    QuantizeImageChannelLast(ws.xrh.Data(), in_c, hw,
                             int8_.conv1.lin.inv_act_scale, xq);
    uint8_t* u1 = ws.i8.Out(static_cast<size_t>(oc1) * hw);
    QuantizedConvForwardU8(int8_.conv1.lin, int8_.conv1.bias,
                           conv1_.Kernel(), xq, in_c, h, w,
                           int8_.conv2.lin.inv_act_scale, u1, ws.i8);
    // Reuses the image buffer (dead once conv1 has consumed it), sized
    // up to rh_fc's lda so the GEMM may read its zero-weight tail.
    // conv2's output stays channel-last; rh_fc's weights are packed in
    // that row order (QuantizeDenseWeightsChannelLast), so no
    // transpose happens between the conv stack and the dense trunk.
    const int64_t lda2 = Int8KGroups(flat) * 4;
    uint8_t* u2 = ws.i8.Act(static_cast<size_t>(
        std::max(static_cast<int64_t>(in_c) * hw, lda2)));
    QuantizedConvForwardU8(int8_.conv2.lin, int8_.conv2.bias,
                           conv2_.Kernel(), u1, static_cast<int>(oc1),
                           h, w, int8_.rh_fc.lin.inv_act_scale, u2,
                           ws.i8);
    QuantizedDenseForwardU8(int8_.rh_fc.lin, int8_.rh_fc.bias, u2,
                            ws.rh_embed, ws.i8);
    ReluInPlace(ws.rh_embed);
    QuantizedDenseForward(int8_.lh_fc.lin, int8_.lh_fc.bias, ws.xlh,
                          ws.lh_embed, ws.i8);
    ReluInPlace(ws.lh_embed);
}

void
SinanCnn::ObserveCalibration(const CnnEvalWorkspace& ws,
                             CnnCalibration& cal)
{
    cal.xrh = std::max(cal.xrh, MaxAbs(ws.xrh));
    cal.conv1_out = std::max(cal.conv1_out, MaxAbs(ws.conv1_out));
    cal.conv2_out = std::max(cal.conv2_out, MaxAbs(ws.conv2_out));
    cal.xlh = std::max(cal.xlh, MaxAbs(ws.xlh));
    cal.xrc = std::max(cal.xrc, MaxAbs(ws.xrc));
    cal.concat = std::max(cal.concat, MaxAbs(ws.concat));
    cal.latent = std::max(cal.latent, MaxAbs(ws.latent));
}

void
SinanCnn::FinalizeInt8(const CnnCalibration& cal)
{
    // Convs are consumed transposed — positions x output channels, in
    // the channel-last patch order — so the per-output-channel scales
    // sit on GEMM columns (see QuantizeConvWeights).
    auto quant_conv = [](const Conv2D& src, QuantLayer& dst) {
        const Tensor& w = src.Weight(); // [OC, C, K, K]
        QuantizeConvWeights(dst.lin, w.Data(), w.Dim(1), w.Dim(0),
                            w.Dim(2));
        dst.bias = BiasVector(src.Bias());
    };
    auto quant_dense = [](const Dense& src, QuantLayer& dst) {
        const Tensor& w = src.Weight(); // [in, out]
        dst.lin.QuantizeWeights(w.Data(), w.Dim(0), w.Dim(1),
                                /*row_stride=*/w.Dim(1),
                                /*col_stride=*/1);
        dst.bias = BiasVector(src.Bias());
    };
    quant_conv(conv1_, int8_.conv1);
    quant_conv(conv2_, int8_.conv2);
    // rh_fc consumes the fused conv stack's channel-last u8 output, so
    // its input rows are permuted to that order at pack time (results
    // are identical — see QuantizeDenseWeightsChannelLast).
    {
        const Tensor& w = rh_fc_.Weight(); // [in, out]
        QuantizeDenseWeightsChannelLast(int8_.rh_fc.lin, w.Data(),
                                        w.Dim(0), w.Dim(1),
                                        cfg_.conv_channels2);
        int8_.rh_fc.bias = BiasVector(rh_fc_.Bias());
    }
    quant_dense(lh_fc_, int8_.lh_fc);

    int8_.conv1.lin.SetActivationScale(cal.xrh);
    int8_.conv2.lin.SetActivationScale(cal.conv1_out);
    int8_.rh_fc.lin.SetActivationScale(cal.conv2_out);
    int8_.lh_fc.lin.SetActivationScale(cal.xlh);
    // The head observations are retained verbatim for serialization
    // even though the head runs fp32 (see ForwardTrunkInt8's doc).
    int8_.cal = cal;
    int8_.ready = true;
}

void
SinanCnn::LoadInt8Scales(const std::array<float, kCnnInt8NumScales>& s)
{
    // The serialized scales are the max-|x| observations (not the
    // derived s_a), so FinalizeInt8 reproduces the calibrated state
    // exactly from weights + these seven numbers.
    CnnCalibration cal;
    cal.xrh = s[0];
    cal.conv1_out = s[1];
    cal.conv2_out = s[2];
    cal.xlh = s[3];
    cal.xrc = s[4];
    cal.concat = s[5];
    cal.latent = s[6];
    FinalizeInt8(cal);
}

std::array<float, kCnnInt8NumScales>
SinanCnn::Int8ActScales() const
{
    SINAN_CHECK_MSG(int8_.ready, "Int8ActScales: model not calibrated");
    // The serialized form is the raw max-|x| record, so a save/load
    // round trip feeds FinalizeInt8 exactly the same inputs.
    const CnnCalibration& c = int8_.cal;
    return {c.xrh, c.conv1_out, c.conv2_out, c.xlh,
            c.xrc, c.concat,    c.latent};
}

void
SinanCnn::Backward(const Tensor& dy)
{
    Tensor g = fc_out_.Backward(dy);
    g = fc_latent_.Backward(relu_latent_.Backward(g));
    Tensor ga, gb, gc;
    SplitCols(g, rh_out_, lh_out_, rc_out_, ga, gb, gc);
    ga = rh_fc_.Backward(rh_relu_.Backward(ga));
    ga = flatten_.Backward(ga);
    ga = conv2_.Backward(conv2_relu_.Backward(ga));
    (void)conv1_.Backward(conv1_relu_.Backward(ga));
    (void)lh_fc_.Backward(lh_relu_.Backward(gb));
    (void)rc_fc_.Backward(rc_relu_.Backward(gc));
}

std::vector<Param*>
SinanCnn::Params()
{
    std::vector<Param*> all;
    for (Layer* l : {static_cast<Layer*>(&conv1_),
                     static_cast<Layer*>(&conv2_),
                     static_cast<Layer*>(&rh_fc_),
                     static_cast<Layer*>(&lh_fc_),
                     static_cast<Layer*>(&rc_fc_),
                     static_cast<Layer*>(&fc_latent_),
                     static_cast<Layer*>(&fc_out_)}) {
        for (Param* p : l->Params())
            all.push_back(p);
    }
    return all;
}

void
SinanCnn::Save(std::ostream& out) const
{
    conv1_.Save(out);
    conv2_.Save(out);
    rh_fc_.Save(out);
    lh_fc_.Save(out);
    rc_fc_.Save(out);
    fc_latent_.Save(out);
    fc_out_.Save(out);
}

void
SinanCnn::Load(std::istream& in)
{
    conv1_.Load(in);
    conv2_.Load(in);
    rh_fc_.Load(in);
    lh_fc_.Load(in);
    rc_fc_.Load(in);
    fc_latent_.Load(in);
    fc_out_.Load(in);
}

} // namespace sinan
