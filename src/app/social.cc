#include "app/apps.h"

#include <stdexcept>

namespace sinan {

namespace {

TierSpec
MakeTier(const std::string& name, int conc_per_replica, int replicas,
         double init_cpu, double max_cpu, double base_rss_mb,
         double base_cache_mb, double cache_per_req_mb = 0.0)
{
    TierSpec t;
    t.name = name;
    t.concurrency_per_replica = conc_per_replica;
    t.replicas = replicas;
    t.init_cpu = init_cpu;
    t.min_cpu = 0.4;
    t.max_cpu = max_cpu;
    t.base_rss_mb = base_rss_mb;
    t.base_cache_mb = base_cache_mb;
    t.cache_per_req_mb = cache_per_req_mb;
    return t;
}

} // namespace

Application
BuildSocialNetwork(const SocialOptions& opts)
{
    Application app;
    app.name = "social-network";
    app.qos_ms = 500.0;
    app.burst_bias_type = 0;    // bursts are ComposePost-heavy
    app.burst_bias_extra = 0.05; // mild skew: Cons's headroom absorbs it

    // The 28 tiers of Figure 2 / Figure 12's legend.
    app.tiers = {
        MakeTier("nginx", 64, 8, 3.0, 12.0, 110, 20),
        MakeTier("composePost", 32, 4, 2.0, 10.0, 100, 20),
        MakeTier("compPost-redis", 64, 2, 0.6, 4.0, 90, 120),
        MakeTier("uniqueID", 32, 2, 0.6, 4.0, 60, 10),
        MakeTier("urlShorten", 32, 2, 0.6, 4.0, 70, 10),
        MakeTier("userMention", 32, 2, 0.6, 4.0, 70, 10),
        MakeTier("text", 32, 2, 1.0, 6.0, 80, 10),
        MakeTier("textFilter", 32, 4, 3.0, 24.0, 400, 50),
        MakeTier("media", 32, 2, 1.0, 6.0, 90, 10),
        MakeTier("mediaFilter", 32, 4, 4.0, 32.0, 900, 80),
        MakeTier("user", 32, 2, 1.0, 6.0, 80, 10),
        MakeTier("user-memc", 64, 2, 0.6, 4.0, 60, 180),
        MakeTier("user-mongodb", 64, 2, 1.0, 8.0, 150, 250, 0.002),
        MakeTier("postStore", 32, 4, 2.0, 10.0, 90, 20),
        MakeTier("postStore-memc", 64, 2, 1.0, 6.0, 60, 220),
        MakeTier("postStore-mongodb", 64, 2, 2.0, 12.0, 170, 300, 0.004),
        MakeTier("userTimeline", 32, 2, 1.0, 8.0, 90, 20),
        MakeTier("userTl-redis", 64, 2, 1.0, 6.0, 120, 150),
        MakeTier("userTl-mongodb", 64, 2, 1.0, 8.0, 150, 260, 0.003),
        MakeTier("homeTimeline", 32, 4, 2.0, 10.0, 90, 20),
        MakeTier("homeTl-redis", 64, 2, 1.5, 8.0, 130, 170),
        MakeTier("writeHomeTimeline", 32, 2, 1.0, 6.0, 80, 10),
        MakeTier("writeHomeTl-rabbitmq", 64, 2, 0.6, 4.0, 90, 20),
        MakeTier("writeUserTimeline", 32, 2, 1.0, 6.0, 80, 10),
        MakeTier("writeUserTl-rabbitmq", 64, 2, 0.6, 4.0, 90, 20),
        MakeTier("graph", 32, 2, 1.0, 6.0, 80, 10),
        MakeTier("graph-redis", 64, 2, 1.0, 6.0, 130, 160),
        MakeTier("graph-mongodb", 64, 2, 1.0, 8.0, 150, 260, 0.002),
    };

    // Burst-capacity floors: the ML content filters run 40-60 ms shards
    // that need around a core each even when average utilization is low;
    // a cgroup quota below that stretches single-request latency past
    // QoS regardless of load (the frontend is sized similarly).
    app.tiers[app.TierIndex("nginx")].min_cpu = 0.6;
    app.tiers[app.TierIndex("composePost")].min_cpu = 0.6;
    app.tiers[app.TierIndex("textFilter")].min_cpu = 2.0;
    app.tiers[app.TierIndex("mediaFilter")].min_cpu = 3.0;
    app.tiers[app.TierIndex("homeTimeline")].min_cpu = 0.6;
    app.tiers[app.TierIndex("postStore")].min_cpu = 0.6;

    // Sec. 5.6.2 pathology: social-graph Redis persists its log every
    // minute, forking and copying all written memory while serving nothing.
    if (opts.redis_log_sync) {
        TierSpec& redis = app.tiers[app.TierIndex("graph-redis")];
        redis.log_sync = true;
        redis.log_sync_period_s = 60.0;
        redis.written_mb_per_req = 0.12;
        redis.stall_s_per_mb = 0.025;
        redis.stall_base_s = 0.08;
    }

    auto tix = [&](const char* n) {
        const int i = app.TierIndex(n);
        if (i < 0)
            throw std::logic_error(std::string("social: unknown tier ") + n);
        return i;
    };
    auto node = [&](const char* n, double demand_ms, double hit_prob = 0.0,
                    std::vector<CallNode> children = {}) {
        CallNode c;
        c.tier = tix(n);
        c.demand_s = demand_ms / 1000.0;
        c.hit_prob = hit_prob;
        c.children = std::move(children);
        return c;
    };
    auto async_node = [&](const char* n, double demand_ms,
                          std::vector<CallNode> children = {}) {
        CallNode c = node(n, demand_ms, 0.0, std::move(children));
        c.async = true;
        return c;
    };
    // The ML content filters run data-parallel inference: a coordinator
    // stage fans out shards to the same tier, bounding latency while
    // keeping total CPU demand high (CNN/SVM classifiers of Sec. 2.2.2).
    auto sharded = [&](const char* n, double coord_ms, int shards,
                       double shard_ms) {
        std::vector<CallNode> kids;
        for (int i = 0; i < shards; ++i)
            kids.push_back(node(n, shard_ms));
        return node(n, coord_ms, 0.0, std::move(kids));
    };

    // AES post encryption (retraining scenario 3 of Sec. 5.4).
    const double aes_compose_ms = opts.aes_encryption ? 6.0 : 0.0;
    const double aes_store_ms = opts.aes_encryption ? 4.0 : 0.0;

    // ComposePost (Figure 2 write path). Roughly half the posts carry
    // media; hit_prob on "media" models text-only posts that skip the
    // image pipeline.
    RequestType compose;
    compose.name = "ComposePost";
    compose.weight = 5.0;
    compose.root = node("nginx", 3.0, 0.0, {
        node("composePost", 6.0 + aes_compose_ms, 0.0, {
            node("compPost-redis", 1.0),
            node("uniqueID", 1.0),
            node("urlShorten", 2.0),
            node("userMention", 2.0, 0.0, {
                node("user-memc", 0.6, 0.8, {node("user-mongodb", 4.0)}),
            }),
            node("text", 3.0, 0.0,
                 {sharded("textFilter", 2.0, 3, 40.0)}),
            node("media", 3.0, 0.5,
                 {sharded("mediaFilter", 2.0, 4, 60.0)}),
            node("user", 2.0, 0.0, {
                node("user-memc", 0.6, 0.8, {node("user-mongodb", 4.0)}),
            }),
            node("graph", 2.0, 0.0, {
                node("graph-redis", 1.0, 0.9, {node("graph-mongodb", 4.0)}),
            }),
            node("postStore", 4.0 + aes_store_ms, 0.0, {
                node("postStore-memc", 1.0),
                node("postStore-mongodb", 5.0),
            }),
            node("writeUserTimeline", 3.0, 0.0, {
                node("userTl-redis", 1.5),
                node("userTl-mongodb", 4.0),
                async_node("writeUserTl-rabbitmq", 1.0,
                           {node("userTl-redis", 2.0)}),
            }),
            node("writeHomeTimeline", 3.0, 0.0, {
                node("homeTl-redis", 2.0),
                async_node("writeHomeTl-rabbitmq", 1.0,
                           {node("homeTl-redis", 6.0)}),
            }),
        }),
    });

    // ReadHomeTimeline (Figure 2 read path; the bulk of the traffic).
    RequestType read_home;
    read_home.name = "ReadHomeTimeline";
    read_home.weight = 80.0;
    read_home.root = node("nginx", 3.0, 0.0, {
        node("homeTimeline", 8.0, 0.0, {
            node("homeTl-redis", 6.0),
            node("postStore", 6.0, 0.0, {
                node("postStore-memc", 3.0, 0.85,
                     {node("postStore-mongodb", 8.0)}),
            }),
            node("user", 2.0, 0.0, {
                node("user-memc", 1.0, 0.9, {node("user-mongodb", 4.0)}),
            }),
        }),
    });

    // ReadUserTimeline.
    RequestType read_user;
    read_user.name = "ReadUserTimeline";
    read_user.weight = 15.0;
    read_user.root = node("nginx", 3.0, 0.0, {
        node("userTimeline", 6.0, 0.0, {
            node("userTl-redis", 4.0, 0.7, {node("userTl-mongodb", 8.0)}),
            node("postStore", 6.0, 0.0, {
                node("postStore-memc", 3.0, 0.85,
                     {node("postStore-mongodb", 8.0)}),
            }),
            node("user", 2.0, 0.0, {
                node("user-memc", 1.0, 0.9, {node("user-mongodb", 4.0)}),
            }),
        }),
    });

    app.request_types = {compose, read_home, read_user};
    return app;
}

void
SetRequestMix(Application& app, const std::vector<double>& weights)
{
    if (weights.size() != app.request_types.size())
        throw std::invalid_argument("SetRequestMix: weight count mismatch");
    for (size_t i = 0; i < weights.size(); ++i) {
        if (weights[i] < 0.0)
            throw std::invalid_argument("SetRequestMix: negative weight");
        app.request_types[i].weight = weights[i];
    }
}

std::vector<std::vector<double>>
SocialNetworkMixes()
{
    return {
        {5.0, 80.0, 15.0},  // W0 (training mix)
        {10.0, 80.0, 10.0}, // W1
        {1.0, 90.0, 9.0},   // W2
        {5.0, 70.0, 25.0},  // W3
    };
}

} // namespace sinan
