#include "app/apps.h"

#include <stdexcept>

namespace sinan {

namespace {

/** Convenience factory for a tier spec with the fields that vary. */
TierSpec
MakeTier(const std::string& name, int conc_per_replica, int replicas,
         double init_cpu, double max_cpu, double base_rss_mb,
         double base_cache_mb, double cache_per_req_mb = 0.0)
{
    TierSpec t;
    t.name = name;
    t.concurrency_per_replica = conc_per_replica;
    t.replicas = replicas;
    t.init_cpu = init_cpu;
    t.min_cpu = 0.4;
    t.max_cpu = max_cpu;
    t.base_rss_mb = base_rss_mb;
    t.base_cache_mb = base_cache_mb;
    t.cache_per_req_mb = cache_per_req_mb;
    return t;
}

} // namespace

Application
BuildHotelReservation(const HotelOptions& /*opts*/)
{
    Application app;
    app.name = "hotel-reservation";
    app.qos_ms = 200.0;

    // Tiers of Figure 1: frontend, business logic, caches and databases.
    // (name, conc/replica, replicas, init cpu, max cpu, rss, cache)
    app.tiers = {
        MakeTier("frontend", 64, 8, 4.0, 16.0, 120, 20),
        MakeTier("search", 32, 4, 3.0, 16.0, 90, 20),
        MakeTier("geo", 32, 4, 2.0, 16.0, 80, 20),
        MakeTier("rate", 32, 4, 2.0, 16.0, 80, 20),
        MakeTier("profile", 32, 4, 2.0, 16.0, 80, 20),
        MakeTier("recommend", 32, 4, 2.0, 16.0, 90, 20),
        MakeTier("user", 32, 4, 1.0, 8.0, 70, 20),
        MakeTier("reserve", 32, 4, 1.0, 8.0, 80, 20),
        MakeTier("profile-memc", 64, 2, 1.0, 8.0, 60, 200),
        MakeTier("profile-mongo", 64, 2, 2.0, 16.0, 150, 250, 0.002),
        MakeTier("geo-mongo", 64, 2, 2.0, 16.0, 150, 250, 0.002),
        MakeTier("rate-memc", 64, 2, 1.0, 8.0, 60, 200),
        MakeTier("rate-mongo", 64, 2, 2.0, 16.0, 150, 250, 0.002),
        MakeTier("user-mongo", 64, 2, 1.0, 8.0, 140, 200, 0.002),
        MakeTier("recommend-mongo", 64, 2, 2.0, 16.0, 150, 250, 0.002),
        MakeTier("reserve-memc", 64, 2, 1.0, 8.0, 60, 150),
        MakeTier("reserve-mongo", 64, 2, 1.0, 8.0, 150, 250, 0.002),
    };

    // The frontend serves every request and needs burst headroom even at
    // the smallest allocation (a cgroup quota stretches single-request
    // service time, so floors are sized to per-request burst needs).
    app.tiers[app.TierIndex("frontend")].min_cpu = 0.8;

    auto tix = [&](const char* n) {
        const int i = app.TierIndex(n);
        if (i < 0)
            throw std::logic_error(std::string("hotel: unknown tier ") + n);
        return i;
    };
    // Node helper: demand is given in milliseconds of single-core time.
    auto node = [&](const char* n, double demand_ms, double hit_prob = 0.0,
                    std::vector<CallNode> children = {}) {
        CallNode c;
        c.tier = tix(n);
        c.demand_s = demand_ms / 1000.0;
        c.hit_prob = hit_prob;
        c.children = std::move(children);
        return c;
    };

    // SearchHotel: frontend -> search -> {geo, rate}, then profiles.
    RequestType search;
    search.name = "SearchHotel";
    search.weight = 60.0;
    search.root = node("frontend", 1.5, 0.0, {
        node("search", 2.0, 0.0, {
            node("geo", 2.0, 0.0, {node("geo-mongo", 3.0)}),
            node("rate", 2.0, 0.0, {
                node("rate-memc", 0.4, 0.8, {node("rate-mongo", 3.5)}),
            }),
        }),
        node("profile", 2.0, 0.0, {
            node("profile-memc", 0.4, 0.8, {node("profile-mongo", 3.5)}),
        }),
    });

    // Recommend: frontend -> recommend -> recommend-mongo, plus profiles.
    RequestType recommend;
    recommend.name = "Recommend";
    recommend.weight = 30.0;
    recommend.root = node("frontend", 1.5, 0.0, {
        node("recommend", 3.0, 0.0, {node("recommend-mongo", 3.5)}),
        node("profile", 2.0, 0.0, {
            node("profile-memc", 0.4, 0.8, {node("profile-mongo", 3.5)}),
        }),
    });

    // ReserveHotel: frontend -> user auth, then reservation write path.
    RequestType reserve;
    reserve.name = "ReserveHotel";
    reserve.weight = 5.0;
    reserve.root = node("frontend", 1.5, 0.0, {
        node("user", 1.5, 0.0, {node("user-mongo", 3.0)}),
        node("reserve", 2.5, 0.0, {
            node("reserve-memc", 0.5),
            node("reserve-mongo", 4.0),
        }),
    });

    // UserLogin: frontend -> user -> user-mongo.
    RequestType login;
    login.name = "UserLogin";
    login.weight = 5.0;
    login.root = node("frontend", 1.2, 0.0, {
        node("user", 1.5, 0.0, {node("user-mongo", 3.0)}),
    });

    app.request_types = {search, recommend, reserve, login};
    return app;
}

} // namespace sinan
