/**
 * @file
 * Builders for the two end-to-end DeathStarBench applications the paper
 * evaluates (Sec. 2.2): the Hotel Reservation site (Figure 1) and the
 * Social Network (Figure 2). Tier names follow the paper's Figure 12
 * legend so the explainability results (Table 4) are directly comparable.
 *
 * Service demands are calibrated so that, at the paper's load points,
 * aggregate CPU needs fall in the same tens-to-hundreds-of-cores range as
 * the paper's Figure 11, and so that the end-to-end p99 sits near the QoS
 * target (200 ms hotel / 500 ms social) exactly when per-tier allocations
 * approach the boundary of the feasible region.
 */
#ifndef SINAN_APP_APPS_H
#define SINAN_APP_APPS_H

#include "cluster/spec.h"

namespace sinan {

/** Knobs for BuildHotelReservation. */
struct HotelOptions {
    // Currently the hotel app has no paper variants; reserved for growth.
};

/** Knobs for BuildSocialNetwork (the paper's Sec. 5.4 / 5.6 variants). */
struct SocialOptions {
    /**
     * Posts are AES-encrypted before storage (retraining scenario 3 of
     * Sec. 5.4): adds CPU demand on the compose/post-storage path.
     */
    bool aes_encryption = false;

    /**
     * Enables the social-graph Redis minutely log synchronization whose
     * fork-and-copy stalls cause the latency spikes of Fig. 16. Disabled
     * by default, matching the fixed deployment.
     */
    bool redis_log_sync = false;
};

/** Builds the 17-tier Hotel Reservation application (QoS: 200 ms p99). */
Application BuildHotelReservation(const HotelOptions& opts = {});

/** Builds the 28-tier Social Network application (QoS: 500 ms p99). */
Application BuildSocialNetwork(const SocialOptions& opts = {});

/**
 * Overrides the request-type mix weights. @p weights must have one entry
 * per request type, in Application::request_types order. Used for the
 * W0..W3 mixes of Sec. 5.5.
 */
void SetRequestMix(Application& app, const std::vector<double>& weights);

/**
 * The four Social Network mixes of Sec. 5.5, as
 * ComposePost : ReadHomeTimeline : ReadUserTimeline weights.
 * W0 = 5:80:15 (training mix), W1 = 10:80:10, W2 = 1:90:9, W3 = 5:70:25.
 */
std::vector<std::vector<double>> SocialNetworkMixes();

} // namespace sinan

#endif // SINAN_APP_APPS_H
