#include "gbt/boosted_trees.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "common/check.h"
#include "common/thread_pool.h"

namespace sinan {

namespace {

double
Sigmoid(double z)
{
    return 1.0 / (1.0 + std::exp(-z));
}

/** Per-(feature,bin) gradient/hessian accumulator. */
struct HistCell {
    double g = 0.0;
    double h = 0.0;
};

} // namespace

BoostedTrees::BoostedTrees(const GbtConfig& cfg, Objective obj)
    : cfg_(cfg), obj_(obj)
{
    SINAN_CHECK_MSG(cfg.n_trees > 0 && cfg.max_depth >= 0 &&
                        cfg.max_bins >= 2,
                    "BoostedTrees: bad config (n_trees "
                        << cfg.n_trees << ", max_depth " << cfg.max_depth
                        << ", max_bins " << cfg.max_bins << ")");
}

void
BoostedTrees::Train(const GbtDataset& train, const GbtDataset* valid)
{
    const int n = train.n_rows;
    const int d = train.n_features;
    SINAN_CHECK_MSG(n > 0 && d > 0,
                    "BoostedTrees::Train: empty dataset (" << n << "x"
                                                           << d << ")");
    SINAN_CHECK_EQ(train.y.size(), static_cast<size_t>(n));
    SINAN_CHECK_EQ(train.x.size(),
                   static_cast<size_t>(n) * static_cast<size_t>(d));
    if (valid) {
        SINAN_CHECK_EQ(valid->n_features, d);
        SINAN_CHECK_EQ(valid->x.size(),
                       static_cast<size_t>(valid->n_rows) *
                           static_cast<size_t>(d));
    }
    // Non-finite features or labels would silently poison every split
    // gain downstream; reject them at the training boundary.
    for (float v : train.y)
        SINAN_CHECK_FINITE(v);
    for (float v : train.x)
        SINAN_CHECK_FINITE(v);
    n_features_ = d;
    trees_.clear();
    feature_gain_.assign(d, 0.0);

    // Base score: mean target (log-odds for the logistic objective).
    double mean_y = 0.0;
    for (float v : train.y)
        mean_y += static_cast<double>(v);
    mean_y /= n;
    if (obj_ == Objective::kLogistic) {
        const double p = std::clamp(mean_y, 1e-6, 1.0 - 1e-6);
        base_score_ = std::log(p / (1.0 - p));
    } else {
        base_score_ = mean_y;
    }

    // --- Quantile binning -------------------------------------------
    // Feature-parallel: each feature's edges and bin column are
    // computed independently (disjoint writes, deterministic at any
    // thread count).
    const int bins = cfg_.max_bins;
    // edges[f] has (bins-1) thresholds; bin b covers
    // (edge[b-1], edge[b]].
    std::vector<std::vector<float>> edges(d);
    // Feature-major bin matrix: binned[f * n + i]. Column-contiguous so
    // the per-feature histogram pass below streams linearly.
    std::vector<uint8_t> binned(static_cast<size_t>(n) * d);
    ParallelFor(0, d, 1, [&](int64_t lo, int64_t hi) {
        std::vector<float> col(n);
        for (int64_t f = lo; f < hi; ++f) {
            for (int i = 0; i < n; ++i)
                col[i] = train.x[static_cast<size_t>(i) * d + f];
            std::sort(col.begin(), col.end());
            auto& e = edges[f];
            for (int b = 1; b < bins; ++b) {
                const size_t idx =
                    static_cast<size_t>(static_cast<double>(b) * n / bins);
                e.push_back(col[std::min<size_t>(idx, n - 1)]);
            }
            e.erase(std::unique(e.begin(), e.end()), e.end());
            uint8_t* out_col = &binned[static_cast<size_t>(f) * n];
            for (int i = 0; i < n; ++i) {
                const float v = train.x[static_cast<size_t>(i) * d + f];
                out_col[i] = static_cast<uint8_t>(
                    std::upper_bound(e.begin(), e.end(), v) - e.begin());
            }
        }
    });

    // --- Boosting ----------------------------------------------------
    std::vector<double> margin(n, base_score_);
    std::vector<double> val_margin;
    if (valid)
        val_margin.assign(valid->n_rows, base_score_);

    std::vector<double> grad(n), hess(n);
    std::vector<int> node_of(n); // current leaf assignment per sample

    double best_val_loss = std::numeric_limits<double>::infinity();
    int best_round = 0;
    int since_best = 0;

    for (int round = 0; round < cfg_.n_trees; ++round) {
        ParallelFor(0, n, 1024, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                if (obj_ == Objective::kLogistic) {
                    const double p = Sigmoid(margin[i]);
                    grad[i] = p - static_cast<double>(train.y[i]);
                    hess[i] = std::max(p * (1.0 - p), 1e-9);
                } else {
                    grad[i] =
                        margin[i] - static_cast<double>(train.y[i]);
                    hess[i] = 1.0;
                }
            }
        });

        Tree tree;
        tree.nodes.push_back(Node{});
        std::fill(node_of.begin(), node_of.end(), 0);
        std::vector<int> frontier = {0};
        std::vector<int> node_depth = {0};

        while (!frontier.empty()) {
            // Histograms for every frontier node, feature-parallel:
            // each feature owns the hist cells of its own (slot,
            // feature) planes, streaming its contiguous bin column, so
            // concurrent tasks never touch the same cell and per-cell
            // accumulation stays in sample order (bit-identical to
            // serial). The cheap per-node g/h totals stay serial.
            const int n_front = static_cast<int>(frontier.size());
            std::vector<int> front_slot(tree.nodes.size(), -1);
            for (int s = 0; s < n_front; ++s)
                front_slot[frontier[s]] = s;
            std::vector<HistCell> hist(
                static_cast<size_t>(n_front) * d * bins);
            std::vector<double> node_g(n_front, 0.0);
            std::vector<double> node_h(n_front, 0.0);
            // Pre-resolved slot per sample (-1: settled in a leaf).
            std::vector<int> slot_of(n);
            for (int i = 0; i < n; ++i) {
                const int nd = node_of[i];
                const int s = nd >= 0 &&
                                      nd < static_cast<int>(
                                               front_slot.size())
                                  ? front_slot[nd]
                                  : -1;
                slot_of[i] = s;
                if (s >= 0) {
                    node_g[s] += grad[i];
                    node_h[s] += hess[i];
                }
            }
            ParallelFor(0, d, 1, [&](int64_t lo, int64_t hi) {
                for (int64_t f = lo; f < hi; ++f) {
                    const uint8_t* col =
                        &binned[static_cast<size_t>(f) * n];
                    for (int i = 0; i < n; ++i) {
                        const int s = slot_of[i];
                        if (s < 0)
                            continue;
                        HistCell& cell =
                            hist[(static_cast<size_t>(s) * d + f) *
                                     bins +
                                 col[i]];
                        cell.g += grad[i];
                        cell.h += hess[i];
                    }
                }
            });

            // Pick the best split per frontier node. Feature-parallel
            // into a per-(slot, feature) table, then a serial reduction
            // in increasing-feature order — the same first-strictly-
            // greater tie-breaking as the original single loop.
            struct Split {
                double gain = 0.0;
                int feature = -1;
                int bin = -1; // split between bin and bin+1
            };
            std::vector<Split> best_sf(
                static_cast<size_t>(n_front) * d);
            ParallelFor(0, d, 1, [&](int64_t lo, int64_t hi) {
                for (int64_t f = lo; f < hi; ++f) {
                    const int nb =
                        static_cast<int>(edges[f].size()) + 1;
                    for (int s = 0; s < n_front; ++s) {
                        const double G = node_g[s];
                        const double H = node_h[s];
                        const double parent_score =
                            G * G / (H + cfg_.lambda);
                        Split& out =
                            best_sf[static_cast<size_t>(s) * d + f];
                        const HistCell* cells =
                            &hist[(static_cast<size_t>(s) * d + f) *
                                  bins];
                        double gl = 0.0, hl = 0.0;
                        for (int b = 0; b + 1 < nb; ++b) {
                            gl += cells[b].g;
                            hl += cells[b].h;
                            const double gr = G - gl;
                            const double hr = H - hl;
                            if (hl < cfg_.min_child_weight ||
                                hr < cfg_.min_child_weight) {
                                continue;
                            }
                            const double gain =
                                gl * gl / (hl + cfg_.lambda) +
                                gr * gr / (hr + cfg_.lambda) -
                                parent_score - cfg_.gamma;
                            if (gain > out.gain) {
                                out = Split{gain, static_cast<int>(f),
                                            b};
                            }
                        }
                    }
                }
            });
            std::vector<Split> best(n_front);
            for (int s = 0; s < n_front; ++s) {
                for (int f = 0; f < d; ++f) {
                    const Split& cand =
                        best_sf[static_cast<size_t>(s) * d + f];
                    if (cand.gain > best[s].gain)
                        best[s] = cand;
                }
            }

            // Materialize splits / leaves.
            std::vector<int> next_frontier;
            std::vector<int> next_depth;
            for (int s = 0; s < n_front; ++s) {
                const int nd = frontier[s];
                Node& node = tree.nodes[nd]; // note: stable, see below
                const bool can_split =
                    best[s].feature >= 0 &&
                    node_depth[s] < cfg_.max_depth;
                if (!can_split) {
                    node.feature = -1;
                    node.value = static_cast<float>(
                        -cfg_.learning_rate * node_g[s] /
                        (node_h[s] + cfg_.lambda));
                    continue;
                }
                feature_gain_[best[s].feature] += best[s].gain;
                const int li = static_cast<int>(tree.nodes.size());
                // Reserve before taking references: push_back may move.
                tree.nodes.push_back(Node{});
                tree.nodes.push_back(Node{});
                Node& parent = tree.nodes[nd];
                parent.feature = best[s].feature;
                parent.threshold = best[s].bin < static_cast<int>(
                                                     edges[best[s].feature]
                                                         .size())
                                       ? edges[best[s].feature][best[s].bin]
                                       : std::numeric_limits<float>::max();
                parent.left = li;
                parent.right = li + 1;
                next_frontier.push_back(li);
                next_frontier.push_back(li + 1);
                next_depth.push_back(node_depth[s] + 1);
                next_depth.push_back(node_depth[s] + 1);
            }
            // Reassign samples to children (disjoint per-sample writes).
            ParallelFor(0, n, 2048, [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                    if (slot_of[i] < 0)
                        continue;
                    const Node& node = tree.nodes[node_of[i]];
                    if (node.feature < 0) {
                        node_of[i] = -1; // settled in a leaf
                        continue;
                    }
                    const float v =
                        train.x[static_cast<size_t>(i) * d +
                                node.feature];
                    node_of[i] =
                        v < node.threshold ? node.left : node.right;
                }
            });
            frontier = std::move(next_frontier);
            node_depth = std::move(next_depth);
        }

        // Update margins with the completed tree.
        ParallelFor(0, n, 1024, [&](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
                margin[i] += TreePredict(
                    tree, &train.x[static_cast<size_t>(i) * d]);
            }
        });
        trees_.push_back(std::move(tree));

        // Early stopping on validation loss.
        if (valid && cfg_.early_stop_rounds > 0) {
            double loss = 0.0;
            for (int i = 0; i < valid->n_rows; ++i) {
                val_margin[i] += TreePredict(
                    trees_.back(),
                    &valid->x[static_cast<size_t>(i) * d]);
                if (obj_ == Objective::kLogistic) {
                    const double z = val_margin[i];
                    const double y = static_cast<double>(valid->y[i]);
                    loss += std::log1p(std::exp(-std::abs(z))) +
                            std::max(z, 0.0) - z * y;
                } else {
                    const double e =
                        val_margin[i] - static_cast<double>(valid->y[i]);
                    loss += e * e;
                }
            }
            if (loss < best_val_loss - 1e-9) {
                best_val_loss = loss;
                best_round = round + 1;
                since_best = 0;
            } else if (++since_best >= cfg_.early_stop_rounds) {
                trees_.resize(best_round);
                break;
            }
        }
    }
}

double
BoostedTrees::TreePredict(const Tree& tree, const float* row) const
{
    int nd = 0;
    while (tree.nodes[nd].feature >= 0) {
        const Node& node = tree.nodes[nd];
        nd = row[node.feature] < node.threshold ? node.left : node.right;
    }
    return tree.nodes[nd].value;
}

double
BoostedTrees::PredictMargin(const float* row) const
{
    double m = base_score_;
    for (const Tree& t : trees_)
        m += TreePredict(t, row);
    return m;
}

double
BoostedTrees::Predict(const float* row) const
{
    const double m = PredictMargin(row);
    return obj_ == Objective::kLogistic ? Sigmoid(m) : m;
}

std::vector<double>
BoostedTrees::FeatureImportance() const
{
    return feature_gain_;
}

void
BoostedTrees::Save(std::ostream& out) const
{
    const int32_t obj = obj_ == Objective::kLogistic ? 0 : 1;
    const int32_t nt = static_cast<int32_t>(trees_.size());
    const int32_t nf = n_features_;
    out.write(reinterpret_cast<const char*>(&obj), sizeof(obj));
    out.write(reinterpret_cast<const char*>(&nf), sizeof(nf));
    const double base = base_score_;
    out.write(reinterpret_cast<const char*>(&base), sizeof(base));
    out.write(reinterpret_cast<const char*>(&nt), sizeof(nt));
    for (const Tree& t : trees_) {
        const int32_t nn = static_cast<int32_t>(t.nodes.size());
        out.write(reinterpret_cast<const char*>(&nn), sizeof(nn));
        out.write(reinterpret_cast<const char*>(t.nodes.data()),
                  static_cast<std::streamsize>(nn * sizeof(Node)));
    }
}

void
BoostedTrees::Load(std::istream& in)
{
    int32_t obj = 0, nf = 0, nt = 0;
    double base = 0.0;
    in.read(reinterpret_cast<char*>(&obj), sizeof(obj));
    in.read(reinterpret_cast<char*>(&nf), sizeof(nf));
    in.read(reinterpret_cast<char*>(&base), sizeof(base));
    in.read(reinterpret_cast<char*>(&nt), sizeof(nt));
    if (!in || nt < 0 || nf < 0)
        throw std::runtime_error("BoostedTrees::Load: corrupt header");
    obj_ = obj == 0 ? Objective::kLogistic : Objective::kSquared;
    n_features_ = nf;
    base_score_ = base;
    trees_.assign(nt, Tree{});
    for (Tree& t : trees_) {
        int32_t nn = 0;
        in.read(reinterpret_cast<char*>(&nn), sizeof(nn));
        if (!in || nn < 0)
            throw std::runtime_error("BoostedTrees::Load: corrupt tree");
        t.nodes.resize(nn);
        in.read(reinterpret_cast<char*>(t.nodes.data()),
                static_cast<std::streamsize>(nn * sizeof(Node)));
    }
    feature_gain_.assign(n_features_, 0.0);
    if (!in)
        throw std::runtime_error("BoostedTrees::Load: truncated");
}

} // namespace sinan
