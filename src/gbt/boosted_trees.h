/**
 * @file
 * Gradient-boosted decision trees, the paper's long-term QoS-violation
 * predictor (Sec. 3.2). This is a compact XGBoost-style implementation:
 * second-order boosting with L2-regularized leaf weights, histogram-based
 * split finding (the "approximate split finding" the paper cites XGBoost
 * for), shrinkage, and optional early stopping on a validation set.
 *
 * The classifier's raw margin is the sum of leaf scores across trees; the
 * violation probability is the logistic transform of that margin, which
 * is exactly the paper's p_V = e^{s_V} / (e^{s_V} + e^{s_NV}) with
 * s = s_V - s_NV.
 */
#ifndef SINAN_GBT_BOOSTED_TREES_H
#define SINAN_GBT_BOOSTED_TREES_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/check.h"

namespace sinan {

/** Training hyper-parameters. */
struct GbtConfig {
    /** Maximum number of boosting rounds. */
    int n_trees = 200;
    /** Maximum tree depth (root = depth 0). */
    int max_depth = 4;
    /** Shrinkage applied to each tree's contribution. */
    double learning_rate = 0.1;
    /** L2 regularization on leaf weights. */
    double lambda = 1.0;
    /** Minimum loss reduction to make a split. */
    double gamma = 0.0;
    /** Minimum hessian mass per child. */
    double min_child_weight = 1.0;
    /** Histogram bins per feature. */
    int max_bins = 32;
    /** Early-stop patience on validation loss (0 disables). */
    int early_stop_rounds = 10;
};

/** Dense row-major training matrix. */
struct GbtDataset {
    /** Row-major features, n_rows x n_features. */
    std::vector<float> x;
    /** Targets: {0,1} for classification, reals for regression. */
    std::vector<float> y;
    int n_rows = 0;
    int n_features = 0;

    void
    AddRow(const std::vector<float>& features, float target)
    {
        if (n_features == 0)
            n_features = static_cast<int>(features.size());
        x.insert(x.end(), features.begin(), features.end());
        y.push_back(target);
        ++n_rows;
    }
};

/** Boosted-trees model for binary classification or regression. */
class BoostedTrees {
  public:
    enum class Objective { kLogistic, kSquared };

    explicit BoostedTrees(const GbtConfig& cfg = GbtConfig(),
                          Objective obj = Objective::kLogistic);

    /**
     * Trains on @p train; if @p valid is non-null and early stopping is
     * enabled, keeps the round count minimizing validation loss.
     */
    void Train(const GbtDataset& train, const GbtDataset* valid = nullptr);

    /** Raw additive margin for one row of n_features floats. */
    double PredictMargin(const float* row) const;

    /** Probability (logistic objective) or value (squared objective). */
    double Predict(const float* row) const;

    /** Convenience overload; checks the row width against training. */
    double
    Predict(const std::vector<float>& row) const
    {
        if (n_features_ > 0)
            SINAN_CHECK_EQ(row.size(),
                           static_cast<size_t>(n_features_));
        return Predict(row.data());
    }

    /** Number of trees kept after (optional) early stopping. */
    int NumTrees() const { return static_cast<int>(trees_.size()); }

    /** Total split gain attributed to each feature. */
    std::vector<double> FeatureImportance() const;

    /** Binary serialization. */
    void Save(std::ostream& out) const;
    void Load(std::istream& in);

  private:
    struct Node {
        int feature = -1;       // -1 marks a leaf
        float threshold = 0.0f; // go left when x[feature] < threshold
        int left = -1;
        int right = -1;
        float value = 0.0f; // leaf weight (already shrunk)
    };
    struct Tree {
        std::vector<Node> nodes;
    };

    double TreePredict(const Tree& tree, const float* row) const;

    GbtConfig cfg_;
    Objective obj_;
    double base_score_ = 0.0;
    std::vector<Tree> trees_;
    std::vector<double> feature_gain_;
    int n_features_ = 0;
};

} // namespace sinan

#endif // SINAN_GBT_BOOSTED_TREES_H
