/**
 * @file
 * Reproduces Figure 9: (left) the latency distribution of the
 * bandit-collected Social Network training dataset — an approximately
 * balanced spread across the sub-QoS and violation regions; (right) the
 * CNN's train/validation RMSE and the BT's error rate as a function of
 * the maximum latency admitted into the training set. Training only on
 * low-latency samples (no violations) causes severe overfitting:
 * validation error explodes while training error stays flat.
 */
#include <cstdio>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "models/hybrid.h"

namespace sinan {
namespace {

/** Fraction of the dataset's samples with next-interval p99 <= cutoff. */
double
CdfAt(const Dataset& d, double cutoff_ms)
{
    size_t n = 0;
    for (const Sample& s : d.samples)
        n += s.p99_ms <= cutoff_ms;
    return static_cast<double>(n) /
           static_cast<double>(d.samples.size());
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 9 — training-set distribution & latency-range ablation",
        "Fig. 9: dataset latency CDF; train/val error vs latency cutoff");

    const Application app = BuildSocialNetwork();
    const PipelineConfig pcfg = bench::SocialPipeline();
    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = pcfg.collect_s;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = f;
    col.seed = pcfg.seed;
    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    std::printf("collecting dataset with the bandit explorer...\n");
    const Dataset all = Collect(app, bandit, col);
    Rng rng(pcfg.seed ^ 0x5eed);
    const auto [train_full, valid] = all.Split(0.9, rng);

    // Left panel: CDF of next-interval p99 in the training data.
    std::printf("\nDataset latency CDF (%zu samples, violation-label rate "
                "%.2f):\n",
                all.samples.size(), all.ViolationRate());
    TextTable cdf({"latency(ms)", "CDF(%)"});
    for (double cut = 100.0; cut <= 1000.0 + 1e-9; cut += 100.0)
        cdf.Row().Add(cut, 0).Add(100.0 * CdfAt(all, cut), 1);
    std::printf("%s", cdf.RenderCsv().c_str());

    // Right panel: train/val error vs admitted latency range. The model
    // is trained only on samples whose target p99 is below the cutoff;
    // validation always uses the full distribution.
    std::printf("\ntraining with latency-capped subsets (validation on "
                "the full range):\n");
    TextTable t({"cutoff(ms)", "#train", "CNN train RMSE(ms)",
                 "CNN val RMSE(ms)", "BT train err(%)", "BT val err(%)"});
    HybridConfig hcfg = pcfg.hybrid;
    hcfg.train.epochs = std::max(4, hcfg.train.epochs / 2);
    for (double cutoff : {200.0, 400.0, 500.0, 700.0, 1000.0}) {
        Dataset capped;
        for (const Sample& s : train_full.samples) {
            if (s.p99_ms <= cutoff)
                capped.samples.push_back(s);
        }
        if (capped.samples.size() < 100)
            continue;
        HybridModel model(f, hcfg, 31);
        const HybridReport rep = model.Train(capped, valid);
        t.Row()
            .Add(cutoff, 0)
            .Add(static_cast<long long>(capped.samples.size()))
            .Add(rep.cnn.train_rmse_ms, 1)
            .Add(rep.cnn.val_rmse_ms, 1)
            .Add(100.0 * (1.0 - rep.bt_train_accuracy), 1)
            .Add(100.0 * (1.0 - rep.bt_val_accuracy), 1);
        std::printf("  cutoff %.0f ms done\n", cutoff);
    }
    std::printf("\n%s", t.Render().c_str());
    std::printf("\nExpected shape: validation error falls sharply once "
                "the training range covers QoS violations (>%.0f ms); "
                "below it the models overfit.\n", app.qos_ms);
    return 0;
}
