/**
 * @file
 * Reproduces Table 2: validation RMSE, model size, and train/inference
 * speed of the MLP, LSTM, and CNN short-term latency predictors, on the
 * bandit-collected datasets of both applications.
 *
 * Expected shape (paper): the CNN achieves the lowest RMSE with the
 * smallest model; the MLP is largest and least accurate; all inference
 * latencies are far below the 1 s decision interval.
 */
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "models/baseline_nets.h"
#include "models/sinan_cnn.h"
#include "models/trainer.h"

namespace sinan {
namespace {

void
RunApp(const Application& app, const PipelineConfig& pcfg)
{
    std::printf("\n--- %s (QoS %.0f ms) ---\n", app.name.c_str(),
                app.qos_ms);

    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = pcfg.collect_s;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = f;
    col.seed = pcfg.seed;

    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    const Dataset all = Collect(app, bandit, col);
    Rng rng(pcfg.seed ^ 0x5eed);
    const auto [train, valid] = all.Split(0.9, rng);
    std::printf("dataset: %zu train / %zu val samples, violation rate "
                "%.2f\n",
                train.samples.size(), valid.samples.size(),
                all.ViolationRate());

    TextTable t({"model", "train RMSE(ms)", "val RMSE(ms)", "size(KB)",
                 "train ms/batch", "infer ms/batch"});
    for (const char* name : {"MLP", "LSTM", "CNN"}) {
        std::unique_ptr<LatencyModel> model;
        const std::string n = name;
        if (n == "CNN") {
            model = std::make_unique<SinanCnn>(f, SinanCnnConfig{},
                                               pcfg.seed ^ 1);
        } else if (n == "MLP") {
            // Sized like the paper's: widest flattened-input network.
            model = std::make_unique<MlpPredictor>(f, 160, 64,
                                                   pcfg.seed ^ 2);
        } else {
            model = std::make_unique<LstmPredictor>(f, 72,
                                                    pcfg.seed ^ 3);
        }
        TrainOptions opts = pcfg.hybrid.train;
        // Per the paper, learning rates are tuned per architecture.
        if (n == "MLP")
            opts.lr = 0.01;
        if (n == "LSTM")
            opts.lr = 0.015;
        const TrainReport rep =
            TrainLatencyModel(*model, train, valid, f, opts);
        t.Row()
            .Add(name)
            .Add(rep.train_rmse_ms, 1)
            .Add(rep.val_rmse_ms, 1)
            .Add(static_cast<double>(rep.n_params) * 4.0 / 1024.0, 0)
            .Add(rep.train_ms_per_batch, 2)
            .Add(rep.infer_ms_per_batch, 2);
    }
    std::printf("%s", t.Render().c_str());
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Table 2 — short-term latency predictor comparison",
        "Table 2: RMSE / model size / speed of MLP, LSTM, CNN");
    RunApp(BuildHotelReservation(), bench::HotelPipeline());
    RunApp(BuildSocialNetwork(), bench::SocialPipeline());
    return 0;
}
