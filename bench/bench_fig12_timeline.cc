/**
 * @file
 * Reproduces Figure 12: detailed Sinan timelines on the Social Network —
 * (top) constant 250 emulated users, (bottom) a diurnal load pattern.
 * For each decision interval we report the offered RPS, the measured
 * p99, the model's predicted p99 and violation probability for the
 * chosen action, and the aggregate and per-tier CPU allocation.
 *
 * Expected shape: predicted latency tracks measured latency, violations
 * are avoided, and the allocation follows the diurnal load.
 *
 * A third timeline runs the constant load under a telemetry blackout
 * followed by capacity loss, showing the degraded-mode ladder (hold →
 * watchdog upscale → recovery) and reporting the recovery time.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "harness/telemetry_log.h"

namespace sinan {
namespace {

void
PrintTimeline(const Application& app, const RunResult& r, int stride)
{
    std::printf("%6s %7s %9s %10s %7s %9s\n", "t(s)", "RPS", "p99(ms)",
                "pred(ms)", "P(viol)", "CPU(cores)");
    for (size_t i = 0; i < r.timeline.size(); i += stride) {
        const IntervalRecord& rec = r.timeline[i];
        std::printf("%6.0f %7.0f %9.1f %10.1f %7.2f %9.1f\n", rec.time_s,
                    rec.rps, rec.p99_ms, rec.predicted_p99_ms,
                    rec.predicted_violation, rec.total_cpu);
    }
    std::printf("\nP(meet QoS)=%.3f  mean CPU=%.1f  max CPU=%.1f\n",
                r.qos_meet_prob, r.mean_cpu, r.max_cpu);

    // Per-tier average allocation (the paper's right-hand column).
    std::printf("\nPer-tier mean CPU allocation (cores):\n");
    std::vector<double> acc(app.tiers.size(), 0.0);
    for (const IntervalRecord& rec : r.timeline)
        for (size_t t = 0; t < rec.alloc.size(); ++t)
            acc[t] += rec.alloc[t];
    for (size_t t = 0; t < acc.size(); ++t) {
        std::printf("  %-22s %6.2f\n", app.tiers[t].name.c_str(),
                    acc[t] / static_cast<double>(r.timeline.size()));
    }

    // Prediction tracking quality over intervals with a prediction.
    double abs_err = 0.0;
    int n = 0;
    for (const IntervalRecord& rec : r.timeline) {
        if (rec.predicted_p99_ms < 0.0 || rec.time_s < 20.0)
            continue;
        abs_err += std::abs(rec.predicted_p99_ms - rec.p99_ms);
        ++n;
    }
    if (n) {
        std::printf("\nMean |predicted - measured| p99: %.1f ms over %d "
                    "intervals\n",
                    abs_err / n, n);
    }

    // Decision telemetry from the scheduler's metric registry.
    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    std::printf("Prediction accuracy %.3f (%llu/%llu mispredicted); "
                "fallbacks %llu (%llu escalated, rate %.3f); trust "
                "lost/restored %llu/%llu\n",
                tel.PredictionAccuracy(),
                static_cast<unsigned long long>(tel.mispredictions),
                static_cast<unsigned long long>(tel.predictions),
                static_cast<unsigned long long>(tel.fallbacks),
                static_cast<unsigned long long>(tel.escalations),
                tel.FallbackRate(),
                static_cast<unsigned long long>(tel.trust_lost),
                static_cast<unsigned long long>(tel.trust_restored));
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 12 — Sinan timelines on Social Network",
        "Fig. 12 top: 250 users constant; bottom: diurnal load");

    const Application app = BuildSocialNetwork();
    TrainedSinan trained =
        bench::GetTrainedSinan(app, bench::SocialPipeline(), "social");
    std::printf("CNN val RMSE: %.1f ms\n\n", trained.model->ValRmseMs());

    {
        std::printf("--- constant load: 250 users ---\n");
        SinanScheduler sinan(*trained.model, SchedulerConfig{});
        ConstantLoad load(250.0);
        RunConfig cfg;
        cfg.duration_s = bench::RunSeconds(300.0);
        cfg.warmup_s = 20.0;
        cfg.seed = 21;
        const RunResult r = RunManaged(app, sinan, load, cfg);
        PrintTimeline(app, r, 10);
    }
    {
        std::printf("\n--- diurnal load: 100..300 users ---\n");
        SinanScheduler sinan(*trained.model, SchedulerConfig{});
        DiurnalLoad load(100.0, 300.0, bench::RunSeconds(600.0));
        RunConfig cfg;
        cfg.duration_s = bench::RunSeconds(600.0);
        cfg.warmup_s = 20.0;
        cfg.seed = 22;
        const RunResult r = RunManaged(app, sinan, load, cfg);
        PrintTimeline(app, r, 20);
    }
    {
        std::printf("\n--- constant 250 users under faults: telemetry "
                    "blackout, then capacity loss ---\n");
        SinanScheduler sinan(*trained.model, SchedulerConfig{});
        ConstantLoad load(250.0);
        RunConfig cfg;
        cfg.duration_s = bench::RunSeconds(120.0);
        cfg.warmup_s = 10.0;
        cfg.seed = 23;
        // Ends at interval 32 so even the fast-mode run (48 s) leaves
        // room to observe the recovery.
        cfg.faults = ParseFaultSpec("drop@14+6;caploss@24+8:mag=0.5");
        const RunResult r = RunManaged(app, sinan, load, cfg);
        PrintTimeline(app, r, 5);

        const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
        const double fault_end_s =
            static_cast<double>(cfg.faults.EndInterval()) *
            cfg.sim.interval_s;
        const int rec = RecoveryIntervals(r, fault_end_s, app.qos_ms);
        std::printf("Degraded decisions %llu (model %llu, heuristic "
                    "%llu, hold %llu); watchdog upscales %llu\n",
                    static_cast<unsigned long long>(tel.degraded),
                    static_cast<unsigned long long>(tel.degraded_model),
                    static_cast<unsigned long long>(
                        tel.degraded_heuristic),
                    static_cast<unsigned long long>(tel.degraded_hold),
                    static_cast<unsigned long long>(
                        tel.watchdog_upscales));
        if (rec < 0) {
            std::printf("Recovery after last fault: not within the "
                        "run\n");
        } else {
            std::printf("Recovery after last fault: %d intervals to "
                        "p99 <= QoS\n",
                        rec);
        }
    }
    return 0;
}
