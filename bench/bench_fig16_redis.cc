/**
 * @file
 * Reproduces Figure 16: the Social Network's tail latency with the
 * social-graph Redis minutely log synchronization enabled (periodic
 * fork-and-copy stalls cause latency spikes) versus disabled.
 *
 * Expected shape: with sync enabled, p99 spikes every ~60 s; disabling
 * it removes the spikes (paper Sec. 5.6.2 — the fix Sinan's explainable
 * models pointed to).
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {
namespace {

std::vector<std::pair<double, double>>
RunTrace(bool sync_enabled, double duration_s)
{
    SocialOptions opts;
    opts.redis_log_sync = true; // tier configured for sync...
    Application app = BuildSocialNetwork(opts);
    ClusterConfig ccfg;
    ccfg.enable_log_sync = sync_enabled; // ...switchable at runtime
    Cluster cluster(app, ccfg, 9);
    // Fixed generous allocation at low load, as in the paper's figure
    // (the spikes are unrelated to resource pressure).
    std::vector<double> alloc;
    for (const TierSpec& t : app.tiers)
        alloc.push_back(std::min(t.max_cpu, t.init_cpu * 2.0));
    cluster.SetAllocation(alloc);
    ConstantLoad load(150.0);
    WorkloadGenerator gen(cluster, load, 77);
    Simulator sim;
    std::vector<std::pair<double, double>> series;
    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t, double now) {
        series.emplace_back(now, cluster.Harvest(now, 1.0).P99());
    });
    sim.RunFor(duration_s);
    return series;
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 16 — Redis log synchronization latency spikes",
        "Fig. 16: Social Network p99 with Redis logging on vs off");

    const double duration = bench::FastMode() ? 200.0 : 400.0;
    const auto with_sync = RunTrace(true, duration);
    const auto without = RunTrace(false, duration);

    TextTable t({"t(s)", "sync on p99(ms)", "sync off p99(ms)"});
    for (size_t i = 0; i < with_sync.size(); i += 10) {
        t.Row()
            .Add(with_sync[i].first, 0)
            .Add(with_sync[i].second, 1)
            .Add(without[i].second, 1);
    }
    std::printf("%s", t.Render().c_str());

    auto spike_stats = [](const std::vector<std::pair<double, double>>& s,
                          const char* name) {
        int spikes = 0;
        double max_p99 = 0.0, mean = 0.0;
        for (const auto& [time, p99] : s) {
            spikes += p99 > 500.0;
            max_p99 = std::max(max_p99, p99);
            mean += p99;
        }
        std::printf("%-9s: %3d intervals above QoS, max p99 %.0f ms, "
                    "mean p99 %.0f ms\n",
                    name, spikes, max_p99,
                    mean / static_cast<double>(s.size()));
    };
    std::printf("\n");
    spike_stats(with_sync, "sync on");
    spike_stats(without, "sync off");
    return 0;
}
