/**
 * @file
 * Reproduces Table 3: accuracy, false positives/negatives, tree count,
 * and training time of the Boosted-Trees violation predictor (on the
 * CNN's latent variable), anticipating QoS violations over the next
 * k = 5 decision intervals, for both applications.
 *
 * Expected shape (paper): validation accuracy above ~94%, small tree
 * ensembles, training in seconds.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"

namespace sinan {
namespace {

void
RunApp(const Application& app, const PipelineConfig& pcfg, TextTable& t)
{
    std::printf("[%s] collecting + training hybrid model...\n",
                app.name.c_str());
    const TrainedSinan trained = TrainSinanForApp(app, pcfg);
    const HybridReport& r = trained.report;
    std::printf("[%s] dataset violation rate %.2f, CNN val RMSE %.1f ms\n",
                app.name.c_str(), trained.train.ViolationRate(),
                r.cnn.val_rmse_ms);
    t.Row()
        .Add(app.name)
        .Add(100.0 * r.bt_train_accuracy, 1)
        .Add(100.0 * r.bt_val_accuracy, 1)
        .Add(100.0 * (r.bt_val_false_pos + r.bt_val_false_neg), 1)
        .Add(static_cast<long long>(r.bt_trees))
        .Add(r.bt_train_time_s, 2);
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Table 3 — Boosted-Trees violation predictor",
        "Table 3: accuracy / #trees / training time, k=5 lookahead");
    TextTable t({"app", "train acc(%)", "val acc(%)",
                 "val FP+FN(%)", "#trees", "train time(s)"});
    RunApp(BuildHotelReservation(), bench::HotelPipeline(), t);
    RunApp(BuildSocialNetwork(), bench::SocialPipeline(), t);
    std::printf("\n%s", t.Render().c_str());
    return 0;
}
