/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  A. Scaled loss (Eq. 2) vs plain MSE — accuracy in the sub-QoS
 *     operating region (the paper's rationale for phi).
 *  B. Boosted Trees on the CNN latent vs on raw flattened inputs —
 *     accuracy and training cost (Sec. 3.2's rationale for L_f).
 *  C. Bandit exploration coefficients — dataset balance when the
 *     boundary-seeking bias is removed.
 *  D. Simulator tick size — latency quantile stability (fluid-model
 *     fidelity knob).
 *  E. CNN capacity sweep — channels vs accuracy (the paper sizes nets
 *     "until accuracy levels off").
 */
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "models/hybrid.h"
#include "models/trainer.h"
#include "workload/workload.h"

namespace sinan {
namespace {

Dataset
CollectSocial(const PipelineConfig& pcfg, const FeatureConfig& f,
              double duration)
{
    const Application app = BuildSocialNetwork();
    CollectionConfig col;
    col.duration_s = duration;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = f;
    col.seed = pcfg.seed;
    BanditConfig bcfg;
    bcfg.qos_ms = f.qos_ms;
    BanditExplorer bandit(bcfg);
    return Collect(app, bandit, col);
}

void
AblationScaledLoss(const Dataset& train, const Dataset& valid,
                   const FeatureConfig& f, const PipelineConfig& pcfg)
{
    std::printf("\n--- A. scaled loss (Eq. 2) vs plain MSE ---\n");
    TextTable t({"loss", "val RMSE all (ms)", "val RMSE sub-QoS (ms)"});
    for (bool scaled : {true, false}) {
        SinanCnn cnn(f, SinanCnnConfig{}, 5);
        TrainOptions opts = pcfg.hybrid.train;
        opts.scaled_loss = scaled;
        const TrainReport rep =
            TrainLatencyModel(cnn, train, valid, f, opts);
        t.Row()
            .Add(scaled ? "scaled (Eq. 2)" : "plain MSE")
            .Add(rep.val_rmse_ms, 1)
            .Add(rep.val_rmse_subqos_ms, 1);
    }
    std::printf("%s", t.Render().c_str());
    std::printf("expected: the scaled loss trades spike accuracy for "
                "the sub-QoS region the scheduler operates in.\n");
}

void
AblationBtInput(const Dataset& train, const Dataset& valid,
                const FeatureConfig& f, const PipelineConfig& pcfg)
{
    std::printf("\n--- B. BT on CNN latent vs raw inputs ---\n");

    // Latent-input BT: the standard hybrid.
    HybridModel hybrid(f, pcfg.hybrid, 7);
    const HybridReport rep = hybrid.Train(train, valid);

    // Raw-input BT: flattened (X_RH, X_LH, X_RC) per sample.
    auto raw_row = [&](const Sample& s) {
        std::vector<float> row;
        row.reserve(s.xrh.Size() + s.xlh.Size() + s.xrc.Size());
        for (size_t i = 0; i < s.xrh.Size(); ++i)
            row.push_back(s.xrh[i]);
        for (size_t i = 0; i < s.xlh.Size(); ++i)
            row.push_back(s.xlh[i]);
        for (size_t i = 0; i < s.xrc.Size(); ++i)
            row.push_back(s.xrc[i]);
        return row;
    };
    GbtDataset raw_train, raw_valid;
    for (const Sample& s : train.samples)
        raw_train.AddRow(raw_row(s), s.violation);
    for (const Sample& s : valid.samples)
        raw_valid.AddRow(raw_row(s), s.violation);
    BoostedTrees raw_bt(pcfg.hybrid.bt);
    bench::Stopwatch watch;
    raw_bt.Train(raw_train, &raw_valid);
    const double raw_time = watch.Seconds();
    int correct = 0;
    for (int i = 0; i < raw_valid.n_rows; ++i) {
        const double p = raw_bt.Predict(
            &raw_valid.x[static_cast<size_t>(i) * raw_valid.n_features]);
        correct += (p >= 0.5) == (raw_valid.y[i] >= 0.5f);
    }
    const double raw_acc =
        static_cast<double>(correct) / raw_valid.n_rows;

    TextTable t({"BT input", "features", "val acc(%)", "train time(s)"});
    t.Row()
        .Add("CNN latent + aggregates")
        .Add(static_cast<long long>(32 + f.n_tiers + 4))
        .Add(100.0 * rep.bt_val_accuracy, 1)
        .Add(rep.bt_train_time_s, 2);
    t.Row()
        .Add("raw flattened inputs")
        .Add(static_cast<long long>(raw_train.n_features))
        .Add(100.0 * raw_acc, 1)
        .Add(raw_time, 2);
    std::printf("%s", t.Render().c_str());
}

void
AblationBanditCoefficients(const PipelineConfig& pcfg,
                           const FeatureConfig& f)
{
    std::printf("\n--- C. bandit C_op coefficients ---\n");
    const Application app = BuildSocialNetwork();
    const double duration = bench::FastMode() ? 400.0 : 1000.0;
    TextTable t({"explorer", "samples", "violation-label rate",
                 "frac p99>QoS", "mean total alloc (cores)"});
    auto run = [&](const char* name, ResourceManager& policy) {
        CollectionConfig col;
        col.duration_s = duration;
        col.users_min = pcfg.users_min;
        col.users_max = pcfg.users_max;
        col.features = f;
        col.seed = 77;
        const Dataset d = Collect(app, policy, col);
        size_t viol = 0;
        double alloc = 0.0;
        for (const Sample& s : d.samples) {
            viol += s.p99_ms > f.qos_ms;
            double total = 0.0;
            for (int i = 0; i < f.n_tiers; ++i)
                total += static_cast<double>(s.xrc[i]) * f.cpu_scale;
            alloc += total;
        }
        t.Row()
            .Add(name)
            .Add(static_cast<long long>(d.samples.size()))
            .Add(d.ViolationRate(), 2)
            .Add(static_cast<double>(viol) /
                     static_cast<double>(d.samples.size()),
                 3)
            .Add(alloc / static_cast<double>(d.samples.size()), 1);
    };
    {
        BanditConfig cfg;
        cfg.qos_ms = f.qos_ms;
        BanditExplorer bandit(cfg);
        run("boundary-seeking (default)", bandit);
    }
    {
        // Neutral coefficients: no preference for reclaiming.
        BanditConfig cfg;
        cfg.qos_ms = f.qos_ms;
        cfg.down_eligibility = 0.15;
        cfg.idle_down_eligibility = 0.15;
        BanditExplorer bandit(cfg);
        run("reclaim-averse C_op", bandit);
    }
    std::printf("%s", t.Render().c_str());
    std::printf("expected: the reclaim-averse explorer drifts to high "
                "allocations and sees few boundary samples.\n");
}

void
AblationTickSize()
{
    std::printf("\n--- D. simulator tick-size sweep ---\n");
    const Application app = BuildSocialNetwork();
    TextTable t({"tick(ms)", "p50(ms)", "p99(ms)", "sim cost(rel)"});
    for (double tick_ms : {5.0, 10.0, 20.0}) {
        Cluster cluster(app, ClusterConfig{}, 3);
        ConstantLoad load(250.0);
        WorkloadGenerator gen(cluster, load, 5);
        PercentileDigest all;
        const double dt = tick_ms / 1000.0;
        const int ticks = static_cast<int>(40.0 / dt);
        for (int i = 0; i < ticks; ++i) {
            gen.Tick(i * dt, dt);
            cluster.Tick(i * dt, dt);
            if ((i + 1) % (ticks / 40) == 0) {
                const IntervalObservation obs =
                    cluster.Harvest((i + 1) * dt, 1.0);
                if ((i + 1) * dt > 10.0 && !obs.latency_ms.empty()) {
                    all.Add(obs.latency_ms[0]);
                    all.Add(obs.P99());
                }
            }
        }
        all.Seal();
        t.Row()
            .Add(tick_ms, 0)
            .Add(all.Quantile(0.25), 1)
            .Add(all.Quantile(0.95), 1)
            .Add(10.0 / tick_ms, 2);
        (void)all;
    }
    std::printf("%s", t.Render().c_str());
    std::printf("expected: quantiles shift by at most the tick size; "
                "cost scales inversely with it.\n");
}

void
AblationCnnCapacity(const Dataset& train, const Dataset& valid,
                    const FeatureConfig& f, const PipelineConfig& pcfg)
{
    std::printf("\n--- E. CNN capacity sweep ---\n");
    TextTable t({"conv channels", "params", "val RMSE(ms)"});
    for (int ch : {4, 8, 16}) {
        SinanCnnConfig cfg;
        cfg.conv_channels1 = ch;
        cfg.conv_channels2 = ch;
        SinanCnn cnn(f, cfg, 9);
        const TrainReport rep = TrainLatencyModel(
            cnn, train, valid, f, pcfg.hybrid.train);
        t.Row()
            .Add(static_cast<long long>(ch))
            .Add(static_cast<long long>(rep.n_params))
            .Add(rep.val_rmse_ms, 1);
    }
    std::printf("%s", t.Render().c_str());
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader("Ablations", "design choices called out in "
                                    "DESIGN.md (not a paper exhibit)");

    const PipelineConfig pcfg = bench::SocialPipeline();
    FeatureConfig f;
    f.n_tiers = 28;
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = 500.0;

    std::printf("collecting the shared dataset...\n");
    const Dataset all = CollectSocial(pcfg, f, pcfg.collect_s);
    Rng rng(3);
    const auto [train, valid] = all.Split(0.9, rng);

    AblationScaledLoss(train, valid, f, pcfg);
    AblationBtInput(train, valid, f, pcfg);
    AblationBanditCoefficients(pcfg, f);
    AblationTickSize();
    AblationCnnCapacity(train, valid, f, pcfg);
    return 0;
}
