/**
 * @file
 * Reproduces Figure 7: the scaling function phi(.) of Eq. 2 with knee
 * t = 100 and alpha in {0.005, 0.01, 0.02} — identity below the knee,
 * progressively compressed above it.
 */
#include <cstdio>

#include "common/table.h"
#include "nn/loss.h"

int
main()
{
    using namespace sinan;
    std::printf("Figure 7 — scaling function phi(x) (Eq. 2), t = 100\n\n");
    TextTable t({"x(ms)", "alpha=0.005", "alpha=0.01", "alpha=0.02"});
    for (double x = 0.0; x <= 300.0 + 1e-9; x += 25.0) {
        t.Row()
            .Add(x, 0)
            .Add(ScalePhi(x, 100.0, 0.005), 1)
            .Add(ScalePhi(x, 100.0, 0.01), 1)
            .Add(ScalePhi(x, 100.0, 0.02), 1);
    }
    std::printf("%s", t.Render().c_str());
    std::printf("\nAsymptotes: t + 1/alpha = %.0f / %.0f / %.0f ms\n",
                100.0 + 1.0 / 0.005, 100.0 + 1.0 / 0.01,
                100.0 + 1.0 / 0.02);
    return 0;
}
