/**
 * @file
 * Google-benchmark microbenchmarks backing the paper's performance
 * claims: model inference is far below the 1 s decision interval
 * (Sec. 5.2: CNN inference within 1% of the interval), boosted-trees
 * prediction is microseconds, a full scheduler decision (candidate
 * enumeration + hybrid evaluation) fits comfortably in the interval, and
 * the simulator substrate itself is fast enough for the experiment
 * sweeps.
 *
 * The *Threads benchmarks sweep the shared thread pool across
 * 1/2/4/8 threads to report serial-vs-parallel throughput for the hot
 * paths wired into ParallelFor (matmul, GBT training, hybrid candidate
 * evaluation). They use real time — wall clock is what the 1 s decision
 * interval budget cares about.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "app/apps.h"
#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "models/baseline_nets.h"
#include "models/hybrid.h"
#include "models/sinan_cnn.h"
#include "workload/workload.h"

namespace sinan {
namespace {

FeatureConfig
SocialFeatures()
{
    FeatureConfig f;
    f.n_tiers = 28;
    f.qos_ms = 500.0;
    return f;
}

/** A full synthetic metric window matching @p f (deterministic). */
MetricWindow
MakeWindow(const FeatureConfig& f)
{
    MetricWindow window(f);
    for (int t = 0; t < f.history; ++t) {
        IntervalObservation obs;
        obs.time_s = t;
        obs.rps = 200;
        obs.tiers.assign(static_cast<size_t>(f.n_tiers), TierMetrics{});
        for (TierMetrics& m : obs.tiers) {
            m.cpu_limit = 2.0;
            m.cpu_used = 1.0;
            m.rss_mb = 100;
            m.cache_mb = 50;
            m.rx_pps = 800;
            m.tx_pps = 800;
        }
        obs.latency_ms = {80, 90, 100, 110, 120};
        window.Push(obs);
    }
    return window;
}

/** A deterministic candidate allocation list of size @p n with some
 *  per-candidate variation (so rows are not all identical). */
std::vector<std::vector<double>>
MakeCandidates(const FeatureConfig& f, int n)
{
    std::vector<std::vector<double>> cands(
        static_cast<size_t>(n),
        std::vector<double>(static_cast<size_t>(f.n_tiers), 2.0));
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < f.n_tiers; ++j)
            cands[static_cast<size_t>(i)][static_cast<size_t>(j)] =
                1.0 + 0.1 * ((i + j) % 12);
    return cands;
}

/**
 * The model behind the legacy-vs-cached sweep and the JSON dump: the
 * cached trained Social Network model when the bundled weights are
 * present (run from the repo root), otherwise a freshly-initialized
 * model of the same architecture. Lives for the whole process.
 */
/** A tiny synthetic calibration set matching @p f (deterministic);
 *  gives the untrained fallback model int8 scales so the quantized
 *  sweep always runs. */
Dataset
SyntheticCalibrationSet(const FeatureConfig& f, int n)
{
    Rng rng(29);
    Dataset d;
    d.samples.resize(static_cast<size_t>(n));
    for (Sample& s : d.samples) {
        s.xrh = Tensor::Randn(
            {FeatureConfig::kChannels, f.n_tiers, f.history}, rng, 0.2f);
        s.xlh = Tensor::Randn({f.LatFeatures()}, rng, 0.2f);
        s.xrc = Tensor::Randn({f.n_tiers}, rng, 0.2f);
    }
    return d;
}

HybridModel&
SweepModel(std::string* name_out = nullptr)
{
    static std::string name;
    static std::unique_ptr<HybridModel> owned = [] {
        if (std::filesystem::exists("bench_cache/social.model")) {
            TrainedSinan trained = bench::GetTrainedSinan(
                BuildSocialNetwork(), bench::SocialPipeline(), "social");
            name = "social-trained";
            return std::move(trained.model);
        }
        name = "social-untrained";
        HybridConfig cfg;
        cfg.train.epochs = 1;
        auto model =
            std::make_unique<HybridModel>(SocialFeatures(), cfg, 3);
        model->CalibrateInt8(
            SyntheticCalibrationSet(SocialFeatures(), 32));
        return model;
    }();
    if (name_out != nullptr)
        *name_out = name;
    return *owned;
}

/** A random but deterministic batch of model inputs. */
Batch
MakeBatch(const FeatureConfig& f, int n)
{
    Rng rng(11);
    Batch b;
    b.xrh = Tensor::Randn({n, FeatureConfig::kChannels, f.n_tiers,
                           f.history},
                          rng, 0.2f);
    b.xlh = Tensor::Randn({n, f.LatFeatures()}, rng, 0.2f);
    b.xrc = Tensor::Randn({n, f.n_tiers}, rng, 0.2f);
    return b;
}

void
BM_CnnInference(benchmark::State& state)
{
    const FeatureConfig f = SocialFeatures();
    SinanCnn cnn(f, SinanCnnConfig{}, 3);
    const Batch batch = MakeBatch(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(cnn.Forward(batch));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CnnInference)->Arg(1)->Arg(32)->Arg(128);

void
BM_MlpInference(benchmark::State& state)
{
    const FeatureConfig f = SocialFeatures();
    MlpPredictor mlp(f, 160, 64, 3);
    const Batch batch = MakeBatch(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(mlp.Forward(batch));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpInference)->Arg(32)->Arg(128);

void
BM_LstmInference(benchmark::State& state)
{
    const FeatureConfig f = SocialFeatures();
    LstmPredictor lstm(f, 48, 3);
    const Batch batch = MakeBatch(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(lstm.Forward(batch));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LstmInference)->Arg(32)->Arg(128);

void
BM_BoostedTreesPredict(benchmark::State& state)
{
    Rng rng(5);
    GbtDataset train;
    for (int i = 0; i < 2000; ++i) {
        std::vector<float> row(64);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform());
        train.AddRow(row, row[0] > 0.5f ? 1.0f : 0.0f);
    }
    BoostedTrees bt;
    bt.Train(train);
    std::vector<float> row(64, 0.4f);
    for (auto _ : state)
        benchmark::DoNotOptimize(bt.Predict(row.data()));
}
BENCHMARK(BM_BoostedTreesPredict);

void
BM_ClusterTickSocial(benchmark::State& state)
{
    const Application app = BuildSocialNetwork();
    Cluster cluster(app, ClusterConfig{}, 3);
    ConstantLoad load(static_cast<double>(state.range(0)));
    WorkloadGenerator gen(cluster, load, 7);
    double now = 0.0;
    for (auto _ : state) {
        gen.Tick(now, 0.01);
        cluster.Tick(now, 0.01);
        now += 0.01;
    }
    state.SetLabel("simulated_seconds_per_second");
    state.counters["sim_speedup"] = benchmark::Counter(
        0.01 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterTickSocial)->Arg(100)->Arg(450);

void
BM_ClusterTickHotel(benchmark::State& state)
{
    const Application app = BuildHotelReservation();
    Cluster cluster(app, ClusterConfig{}, 3);
    ConstantLoad load(static_cast<double>(state.range(0)));
    WorkloadGenerator gen(cluster, load, 7);
    double now = 0.0;
    for (auto _ : state) {
        gen.Tick(now, 0.01);
        cluster.Tick(now, 0.01);
        now += 0.01;
    }
    state.counters["sim_speedup"] = benchmark::Counter(
        0.01 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterTickHotel)->Arg(1000)->Arg(3700);

void
BM_HybridEvaluateCandidates(benchmark::State& state)
{
    // A full scheduler-style evaluation: ~120 candidate allocations
    // against one window (the per-interval cost of Sinan's decision).
    const FeatureConfig f = SocialFeatures();
    HybridConfig cfg;
    cfg.train.epochs = 1;
    HybridModel model(f, cfg, 3);

    MetricWindow window = MakeWindow(f);
    std::vector<std::vector<double>> cands(
        static_cast<size_t>(state.range(0)),
        std::vector<double>(f.n_tiers, 2.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.Evaluate(window, cands));
}
BENCHMARK(BM_HybridEvaluateCandidates)->Arg(120);

void
BM_HybridEvaluateLegacy(benchmark::State& state)
{
    // Reference full-batch path (pre-optimization behaviour): the trunk
    // is recomputed once per candidate inside a batched Forward.
    HybridModel& model = SweepModel();
    const FeatureConfig& f = model.Features();
    const MetricWindow window = MakeWindow(f);
    const auto cands = MakeCandidates(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.EvaluateFullBatch(window, cands));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HybridEvaluateLegacy)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void
BM_HybridEvaluateCached(benchmark::State& state)
{
    // Cached-trunk fast path: one trunk pass per window, broadcast to
    // every candidate head, reusing the model-owned workspace.
    HybridModel& model = SweepModel();
    const FeatureConfig& f = model.Features();
    const MetricWindow window = MakeWindow(f);
    const auto cands = MakeCandidates(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.Evaluate(window, cands));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HybridEvaluateCached)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void
BM_HybridEvaluateStages(benchmark::State& state)
{
    // Per-stage wall-clock breakdown of the fast path (feature build /
    // trunk / head / boosted trees), reported as per-call counters.
    HybridModel& model = SweepModel();
    const FeatureConfig& f = model.Features();
    const MetricWindow window = MakeWindow(f);
    const auto cands = MakeCandidates(f, static_cast<int>(state.range(0)));
    EvalStageTimes acc{};
    int64_t calls = 0;
    for (auto _ : state) {
        EvalStageTimes stages{};
        benchmark::DoNotOptimize(
            model.EvaluateTimed(window, cands, &stages));
        acc.feature_build_s += stages.feature_build_s;
        acc.trunk_s += stages.trunk_s;
        acc.head_s += stages.head_s;
        acc.bt_s += stages.bt_s;
        ++calls;
    }
    const double per_call = calls > 0 ? 1.0 / static_cast<double>(calls)
                                      : 0.0;
    state.counters["feature_build_us"] =
        acc.feature_build_s * 1e6 * per_call;
    state.counters["trunk_us"] = acc.trunk_s * 1e6 * per_call;
    state.counters["head_us"] = acc.head_s * 1e6 * per_call;
    state.counters["bt_us"] = acc.bt_s * 1e6 * per_call;
}
BENCHMARK(BM_HybridEvaluateStages)->Arg(8)->Arg(128);

/** Restores the entry thread count when a thread-sweep benchmark ends. */
class ThreadGuard {
  public:
    ThreadGuard(int n) : saved_(NumThreads()) { SetNumThreads(n); }
    ~ThreadGuard() { SetNumThreads(saved_); }

  private:
    int saved_;
};

void
BM_MatMulThreads(benchmark::State& state)
{
    ThreadGuard guard(static_cast<int>(state.range(0)));
    Rng rng(17);
    const Tensor a = Tensor::Randn({256, 192}, rng, 0.3f);
    const Tensor b = Tensor::Randn({192, 224}, rng, 0.3f);
    Tensor c({256, 224});
    for (auto _ : state) {
        MatMul(a, b, c);
        benchmark::DoNotOptimize(c.Data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_GbtTrainThreads(benchmark::State& state)
{
    ThreadGuard guard(static_cast<int>(state.range(0)));
    Rng rng(5);
    GbtDataset train;
    for (int i = 0; i < 2000; ++i) {
        std::vector<float> row(64);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform());
        train.AddRow(row, row[0] > 0.5f ? 1.0f : 0.0f);
    }
    GbtConfig cfg;
    cfg.n_trees = 40;
    cfg.early_stop_rounds = 0;
    for (auto _ : state) {
        BoostedTrees bt(cfg);
        bt.Train(train);
        benchmark::DoNotOptimize(bt.NumTrees());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GbtTrainThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_HybridEvaluateThreads(benchmark::State& state)
{
    ThreadGuard guard(static_cast<int>(state.range(0)));
    const FeatureConfig f = SocialFeatures();
    HybridConfig cfg;
    cfg.train.epochs = 1;
    HybridModel model(f, cfg, 3);

    MetricWindow window = MakeWindow(f);
    std::vector<std::vector<double>> cands(
        120, std::vector<double>(f.n_tiers, 2.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.Evaluate(window, cands));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(cands.size()));
}
BENCHMARK(BM_HybridEvaluateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

/**
 * Explicit legacy-vs-cached timing sweep across candidate counts,
 * written to BENCH_inference.json. Each point is the best-of-@p reps
 * mean over a small inner loop (minimum is robust against scheduler
 * noise on shared CI runners). Returns the measured rows.
 */
std::vector<bench::InferenceBenchRow>
RunInferenceSweep(const std::string& json_path)
{
    std::string model_name;
    HybridModel& model = SweepModel(&model_name);
    const FeatureConfig& f = model.Features();
    const MetricWindow window = MakeWindow(f);

    const int kInner = 5;
    const int kReps = 12;
    std::vector<bench::InferenceBenchRow> rows;
    std::printf("\nLegacy vs cached-trunk Evaluate (%s, %d tiers, "
                "kernel %s)\n",
                model_name.c_str(), f.n_tiers, ActiveKernelId());
    std::printf("%10s %12s %12s %9s %10s %13s %10s\n", "cands",
                "legacy_ms", "cached_ms", "speedup", "trunk_us",
                "scalar_trunk", "int8_us");
    for (const int n : {1, 8, 32, 128}) {
        const auto cands = MakeCandidates(f, n);
        bench::InferenceBenchRow row;
        row.candidates = n;

        // Warm up both paths (first calls grow workspace buffers).
        (void)model.EvaluateFullBatch(window, cands);
        (void)model.Evaluate(window, cands);

        double best_legacy = 0.0;
        double best_cached = 0.0;
        EvalStageTimes best_stages{};
        for (int rep = 0; rep < kReps; ++rep) {
            bench::Stopwatch watch;
            for (int k = 0; k < kInner; ++k)
                benchmark::DoNotOptimize(
                    model.EvaluateFullBatch(window, cands));
            const double legacy_ms = watch.Millis() / kInner;
            watch.Restart();
            EvalStageTimes acc{};
            for (int k = 0; k < kInner; ++k) {
                EvalStageTimes stages{};
                benchmark::DoNotOptimize(
                    model.EvaluateTimed(window, cands, &stages));
                acc.feature_build_s += stages.feature_build_s;
                acc.trunk_s += stages.trunk_s;
                acc.head_s += stages.head_s;
                acc.bt_s += stages.bt_s;
            }
            const double cached_ms = watch.Millis() / kInner;
            if (rep == 0 || legacy_ms < best_legacy)
                best_legacy = legacy_ms;
            if (rep == 0 || cached_ms < best_cached) {
                best_cached = cached_ms;
                best_stages = acc;
            }
        }
        row.legacy_ms = best_legacy;
        row.cached_ms = best_cached;
        row.feature_ms = best_stages.feature_build_s * 1e3 / kInner;
        row.trunk_ms = best_stages.trunk_s * 1e3 / kInner;
        row.head_ms = best_stages.head_s * 1e3 / kInner;
        row.bt_ms = best_stages.bt_s * 1e3 / kInner;

        // Re-measure the trunk stage under forced-scalar dispatch so
        // the dump always carries the scalar-vs-SIMD comparison (the
        // README perf table reads it straight from the JSON).
        if (SimdActive()) {
            const SimdMode saved = CurrentSimdMode();
            SetSimdMode(SimdMode::kOff);
            (void)model.Evaluate(window, cands);
            double best_scalar = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                EvalStageTimes acc{};
                for (int k = 0; k < kInner; ++k) {
                    EvalStageTimes stages{};
                    benchmark::DoNotOptimize(
                        model.EvaluateTimed(window, cands, &stages));
                    acc.trunk_s += stages.trunk_s;
                }
                const double trunk_ms = acc.trunk_s * 1e3 / kInner;
                if (rep == 0 || trunk_ms < best_scalar)
                    best_scalar = trunk_ms;
            }
            SetSimdMode(saved);
            row.scalar_trunk_ms = best_scalar;
        } else {
            row.scalar_trunk_ms = row.trunk_ms;
        }

        // Quantized fast path (same stage plumbing, int8 kernels).
        if (model.Int8Calibrated()) {
            model.SetQuantMode(QuantMode::kInt8);
            (void)model.Evaluate(window, cands);
            double best_cached_i8 = 0.0;
            double best_trunk_i8 = 0.0;
            for (int rep = 0; rep < kReps; ++rep) {
                bench::Stopwatch watch;
                EvalStageTimes acc{};
                for (int k = 0; k < kInner; ++k) {
                    EvalStageTimes stages{};
                    benchmark::DoNotOptimize(
                        model.EvaluateTimed(window, cands, &stages));
                    acc.trunk_s += stages.trunk_s;
                }
                const double cached_ms = watch.Millis() / kInner;
                if (rep == 0 || cached_ms < best_cached_i8) {
                    best_cached_i8 = cached_ms;
                    best_trunk_i8 = acc.trunk_s * 1e3 / kInner;
                }
            }
            row.int8_cached_ms = best_cached_i8;
            row.int8_trunk_ms = best_trunk_i8;
            if (SimdActive()) {
                const SimdMode saved = CurrentSimdMode();
                SetSimdMode(SimdMode::kOff);
                (void)model.Evaluate(window, cands);
                double best_scalar_i8 = 0.0;
                for (int rep = 0; rep < kReps; ++rep) {
                    EvalStageTimes acc{};
                    for (int k = 0; k < kInner; ++k) {
                        EvalStageTimes stages{};
                        benchmark::DoNotOptimize(
                            model.EvaluateTimed(window, cands, &stages));
                        acc.trunk_s += stages.trunk_s;
                    }
                    const double trunk_ms = acc.trunk_s * 1e3 / kInner;
                    if (rep == 0 || trunk_ms < best_scalar_i8)
                        best_scalar_i8 = trunk_ms;
                }
                SetSimdMode(saved);
                row.int8_scalar_trunk_ms = best_scalar_i8;
            } else {
                row.int8_scalar_trunk_ms = row.int8_trunk_ms;
            }
            model.SetQuantMode(QuantMode::kOff);
        }

        std::printf("%10d %12.4f %12.4f %8.2fx %10.1f %12.1fus %10.1f\n",
                    n, row.legacy_ms, row.cached_ms,
                    row.cached_ms > 0.0 ? row.legacy_ms / row.cached_ms
                                        : 0.0,
                    row.trunk_ms * 1e3, row.scalar_trunk_ms * 1e3,
                    row.int8_trunk_ms * 1e3);
        rows.push_back(row);
    }
    bench::WriteInferenceJson(json_path, model_name, ActiveKernelId(),
                              ActiveInt8KernelId(),
                              model.Int8Calibrated(), 1000.0, rows);
    std::printf("\nWrote %s\n", json_path.c_str());
    return rows;
}

/**
 * CI gate (SINAN_BENCH_CHECK=1): the cached-trunk path must be
 * measurably faster than the legacy full-batch path at every candidate
 * count >= 8. The local acceptance bar is >= 3x; CI uses a conservative
 * 1.5x so shared-runner noise cannot flake the job. With the AVX2
 * kernels active the trunk stage must additionally stay under 80 us
 * (local acceptance bar: 50 us on an AVX2 host; the measured number is
 * ~47 us scalar-free, so the CI margin is ~1.7x). When the model
 * carries int8 calibration the quantized trunk must additionally stay
 * under 15 us with AVX2 — the quantized path's acceptance bar.
 */
bool
CheckSweep(const std::vector<bench::InferenceBenchRow>& rows)
{
    constexpr double kMinSpeedup = 1.5;
    constexpr double kMaxSimdTrunkMs = 0.080;
    constexpr double kMaxInt8TrunkMs = 0.015;
    bool ok = true;
    bool int8_checked = false;
    for (const bench::InferenceBenchRow& row : rows) {
        if (row.candidates < 8)
            continue;
        const double speedup =
            row.cached_ms > 0.0 ? row.legacy_ms / row.cached_ms : 0.0;
        if (speedup < kMinSpeedup) {
            std::printf("FAIL: %d candidates: cached path %.2fx vs legacy "
                        "(need >= %.1fx)\n",
                        row.candidates, speedup, kMinSpeedup);
            ok = false;
        }
        if (SimdActive() && row.trunk_ms > kMaxSimdTrunkMs) {
            std::printf("FAIL: %d candidates: trunk %.1f us with the "
                        "%s kernel (need <= %.0f us)\n",
                        row.candidates, row.trunk_ms * 1e3,
                        ActiveKernelId(), kMaxSimdTrunkMs * 1e3);
            ok = false;
        }
        if (SimdActive() && row.int8_trunk_ms > 0.0) {
            int8_checked = true;
            if (row.int8_trunk_ms > kMaxInt8TrunkMs) {
                std::printf("FAIL: %d candidates: int8 trunk %.1f us "
                            "with the %s kernel (need <= %.0f us)\n",
                            row.candidates, row.int8_trunk_ms * 1e3,
                            ActiveInt8KernelId(), kMaxInt8TrunkMs * 1e3);
                ok = false;
            }
        }
    }
    if (ok) {
        std::printf("PASS: cached path >= %.1fx at every count >= 8\n",
                    kMinSpeedup);
        if (SimdActive())
            std::printf("PASS: %s trunk <= %.0f us at every count >= "
                        "8\n",
                        ActiveKernelId(), kMaxSimdTrunkMs * 1e3);
        if (int8_checked)
            std::printf("PASS: %s trunk <= %.0f us at every count >= "
                        "8\n",
                        ActiveInt8KernelId(), kMaxInt8TrunkMs * 1e3);
    }
    return ok;
}

} // namespace
} // namespace sinan

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const auto rows = sinan::RunInferenceSweep("BENCH_inference.json");
    const char* check = std::getenv("SINAN_BENCH_CHECK");
    if (check != nullptr && std::string(check) == "1" &&
        !sinan::CheckSweep(rows)) {
        return 1;
    }
    return 0;
}
