/**
 * @file
 * Google-benchmark microbenchmarks backing the paper's performance
 * claims: model inference is far below the 1 s decision interval
 * (Sec. 5.2: CNN inference within 1% of the interval), boosted-trees
 * prediction is microseconds, a full scheduler decision (candidate
 * enumeration + hybrid evaluation) fits comfortably in the interval, and
 * the simulator substrate itself is fast enough for the experiment
 * sweeps.
 *
 * The *Threads benchmarks sweep the shared thread pool across
 * 1/2/4/8 threads to report serial-vs-parallel throughput for the hot
 * paths wired into ParallelFor (matmul, GBT training, hybrid candidate
 * evaluation). They use real time — wall clock is what the 1 s decision
 * interval budget cares about.
 */
#include <benchmark/benchmark.h>

#include "app/apps.h"
#include "cluster/cluster.h"
#include "common/thread_pool.h"
#include "models/baseline_nets.h"
#include "models/hybrid.h"
#include "models/sinan_cnn.h"
#include "workload/workload.h"

namespace sinan {
namespace {

FeatureConfig
SocialFeatures()
{
    FeatureConfig f;
    f.n_tiers = 28;
    f.qos_ms = 500.0;
    return f;
}

/** A random but deterministic batch of model inputs. */
Batch
MakeBatch(const FeatureConfig& f, int n)
{
    Rng rng(11);
    Batch b;
    b.xrh = Tensor::Randn({n, FeatureConfig::kChannels, f.n_tiers,
                           f.history},
                          rng, 0.2f);
    b.xlh = Tensor::Randn({n, f.LatFeatures()}, rng, 0.2f);
    b.xrc = Tensor::Randn({n, f.n_tiers}, rng, 0.2f);
    return b;
}

void
BM_CnnInference(benchmark::State& state)
{
    const FeatureConfig f = SocialFeatures();
    SinanCnn cnn(f, SinanCnnConfig{}, 3);
    const Batch batch = MakeBatch(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(cnn.Forward(batch));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CnnInference)->Arg(1)->Arg(32)->Arg(128);

void
BM_MlpInference(benchmark::State& state)
{
    const FeatureConfig f = SocialFeatures();
    MlpPredictor mlp(f, 160, 64, 3);
    const Batch batch = MakeBatch(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(mlp.Forward(batch));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpInference)->Arg(32)->Arg(128);

void
BM_LstmInference(benchmark::State& state)
{
    const FeatureConfig f = SocialFeatures();
    LstmPredictor lstm(f, 48, 3);
    const Batch batch = MakeBatch(f, static_cast<int>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(lstm.Forward(batch));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LstmInference)->Arg(32)->Arg(128);

void
BM_BoostedTreesPredict(benchmark::State& state)
{
    Rng rng(5);
    GbtDataset train;
    for (int i = 0; i < 2000; ++i) {
        std::vector<float> row(64);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform());
        train.AddRow(row, row[0] > 0.5f ? 1.0f : 0.0f);
    }
    BoostedTrees bt;
    bt.Train(train);
    std::vector<float> row(64, 0.4f);
    for (auto _ : state)
        benchmark::DoNotOptimize(bt.Predict(row.data()));
}
BENCHMARK(BM_BoostedTreesPredict);

void
BM_ClusterTickSocial(benchmark::State& state)
{
    const Application app = BuildSocialNetwork();
    Cluster cluster(app, ClusterConfig{}, 3);
    ConstantLoad load(static_cast<double>(state.range(0)));
    WorkloadGenerator gen(cluster, load, 7);
    double now = 0.0;
    for (auto _ : state) {
        gen.Tick(now, 0.01);
        cluster.Tick(now, 0.01);
        now += 0.01;
    }
    state.SetLabel("simulated_seconds_per_second");
    state.counters["sim_speedup"] = benchmark::Counter(
        0.01 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterTickSocial)->Arg(100)->Arg(450);

void
BM_ClusterTickHotel(benchmark::State& state)
{
    const Application app = BuildHotelReservation();
    Cluster cluster(app, ClusterConfig{}, 3);
    ConstantLoad load(static_cast<double>(state.range(0)));
    WorkloadGenerator gen(cluster, load, 7);
    double now = 0.0;
    for (auto _ : state) {
        gen.Tick(now, 0.01);
        cluster.Tick(now, 0.01);
        now += 0.01;
    }
    state.counters["sim_speedup"] = benchmark::Counter(
        0.01 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ClusterTickHotel)->Arg(1000)->Arg(3700);

void
BM_HybridEvaluateCandidates(benchmark::State& state)
{
    // A full scheduler-style evaluation: ~120 candidate allocations
    // against one window (the per-interval cost of Sinan's decision).
    const FeatureConfig f = SocialFeatures();
    HybridConfig cfg;
    cfg.train.epochs = 1;
    HybridModel model(f, cfg, 3);

    MetricWindow window(f);
    for (int t = 0; t < f.history; ++t) {
        IntervalObservation obs;
        obs.time_s = t;
        obs.rps = 200;
        obs.tiers.assign(f.n_tiers, TierMetrics{});
        for (TierMetrics& m : obs.tiers) {
            m.cpu_limit = 2.0;
            m.cpu_used = 1.0;
            m.rss_mb = 100;
            m.cache_mb = 50;
            m.rx_pps = 800;
            m.tx_pps = 800;
        }
        obs.latency_ms = {80, 90, 100, 110, 120};
        window.Push(obs);
    }
    std::vector<std::vector<double>> cands(
        static_cast<size_t>(state.range(0)),
        std::vector<double>(f.n_tiers, 2.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.Evaluate(window, cands));
}
BENCHMARK(BM_HybridEvaluateCandidates)->Arg(120);

/** Restores the entry thread count when a thread-sweep benchmark ends. */
class ThreadGuard {
  public:
    ThreadGuard(int n) : saved_(NumThreads()) { SetNumThreads(n); }
    ~ThreadGuard() { SetNumThreads(saved_); }

  private:
    int saved_;
};

void
BM_MatMulThreads(benchmark::State& state)
{
    ThreadGuard guard(static_cast<int>(state.range(0)));
    Rng rng(17);
    const Tensor a = Tensor::Randn({256, 192}, rng, 0.3f);
    const Tensor b = Tensor::Randn({192, 224}, rng, 0.3f);
    Tensor c({256, 224});
    for (auto _ : state) {
        MatMul(a, b, c);
        benchmark::DoNotOptimize(c.Data());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_GbtTrainThreads(benchmark::State& state)
{
    ThreadGuard guard(static_cast<int>(state.range(0)));
    Rng rng(5);
    GbtDataset train;
    for (int i = 0; i < 2000; ++i) {
        std::vector<float> row(64);
        for (float& v : row)
            v = static_cast<float>(rng.Uniform());
        train.AddRow(row, row[0] > 0.5f ? 1.0f : 0.0f);
    }
    GbtConfig cfg;
    cfg.n_trees = 40;
    cfg.early_stop_rounds = 0;
    for (auto _ : state) {
        BoostedTrees bt(cfg);
        bt.Train(train);
        benchmark::DoNotOptimize(bt.NumTrees());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GbtTrainThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void
BM_HybridEvaluateThreads(benchmark::State& state)
{
    ThreadGuard guard(static_cast<int>(state.range(0)));
    const FeatureConfig f = SocialFeatures();
    HybridConfig cfg;
    cfg.train.epochs = 1;
    HybridModel model(f, cfg, 3);

    MetricWindow window(f);
    for (int t = 0; t < f.history; ++t) {
        IntervalObservation obs;
        obs.time_s = t;
        obs.rps = 200;
        obs.tiers.assign(f.n_tiers, TierMetrics{});
        for (TierMetrics& m : obs.tiers) {
            m.cpu_limit = 2.0;
            m.cpu_used = 1.0;
            m.rss_mb = 100;
            m.cache_mb = 50;
            m.rx_pps = 800;
            m.tx_pps = 800;
        }
        obs.latency_ms = {80, 90, 100, 110, 120};
        window.Push(obs);
    }
    std::vector<std::vector<double>> cands(
        120, std::vector<double>(f.n_tiers, 2.0));
    for (auto _ : state)
        benchmark::DoNotOptimize(model.Evaluate(window, cands));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(cands.size()));
}
BENCHMARK(BM_HybridEvaluateThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

} // namespace
} // namespace sinan

BENCHMARK_MAIN();
