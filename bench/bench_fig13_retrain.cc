/**
 * @file
 * Reproduces Figure 13: incremental retraining. A hybrid model trained
 * on the "local cluster" Social Network is fine-tuned (low learning
 * rate, weights preserved) for three deployment changes:
 *   1. platform migration (GCE: slower cores, more replicas),
 *   2. a different replica scale-out factor, and
 *   3. an application change (AES-encrypted posts).
 * For growing amounts of newly collected data we report train/val RMSE;
 * the zero-sample row is the original model applied directly.
 */
#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"

namespace sinan {
namespace {

struct Scenario {
    const char* name;
    Application app;
    ClusterConfig cluster;
};

Dataset
CollectScenario(const Scenario& sc, const FeatureConfig& f,
                double duration_s, uint64_t seed)
{
    CollectionConfig col;
    col.duration_s = duration_s;
    col.users_min = 50;
    col.users_max = 450;
    col.features = f;
    col.cluster = sc.cluster;
    col.seed = seed;
    BanditConfig bcfg;
    bcfg.qos_ms = f.qos_ms;
    bcfg.seed = seed ^ 0x77;
    BanditExplorer bandit(bcfg);
    return Collect(sc.app, bandit, col);
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 13 — incremental retraining across deployment changes",
        "Fig. 13: fine-tuned CNN RMSE vs newly collected samples "
        "(GCE / replicas / modified app)");

    const Application base_app = BuildSocialNetwork();
    const PipelineConfig pcfg = bench::SocialPipeline();
    std::printf("training the base (local-cluster) model...\n");
    TrainedSinan base =
        bench::GetTrainedSinan(base_app, pcfg, "social");
    std::printf("base model val RMSE: %.1f ms\n",
                base.model->ValRmseMs());

    FeatureConfig f;
    f.n_tiers = static_cast<int>(base_app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = base_app.qos_ms;

    ClusterConfig gce;
    gce.speed_factor = 0.85;
    gce.replica_scale = 2;
    ClusterConfig replicas;
    replicas.replica_scale = 3;
    SocialOptions aes_opts;
    aes_opts.aes_encryption = true;

    std::vector<Scenario> scenarios = {
        {"GCE platform", base_app, gce},
        {"replica scale-out", base_app, replicas},
        {"AES-modified app", BuildSocialNetwork(aes_opts),
         ClusterConfig{}},
    };

    // Fine-tuning uses a much smaller learning rate, as in Sec. 5.4
    // ("1/100 of the original lambda"), to stay near the local optimum.
    TrainOptions ft = pcfg.hybrid.train;
    ft.lr = pcfg.hybrid.train.lr / 100.0;
    ft.epochs = std::max(6, pcfg.hybrid.train.epochs);

    const std::vector<double> budgets_s =
        bench::FastMode() ? std::vector<double>{200.0, 400.0}
                          : std::vector<double>{250.0, 500.0, 1000.0,
                                                2000.0};

    for (const Scenario& sc : scenarios) {
        std::printf("\n--- scenario: %s ---\n", sc.name);
        // A fixed validation set from the new environment.
        const Dataset val_all = CollectScenario(sc, f, 400.0, 900);
        Rng vrng(901);
        const auto [unused, val] = val_all.Split(0.5, vrng);
        (void)unused;

        TextTable t({"new samples", "train RMSE(ms)", "val RMSE(ms)"});
        // Zero new samples: the original model evaluated directly.
        {
            const double rmse =
                EvalRmseMs(base.model->Cnn(), val, f);
            t.Row().Add(static_cast<long long>(0)).Add("-").Add(rmse, 1);
        }
        for (double budget : budgets_s) {
            const Dataset fresh =
                CollectScenario(sc, f, budget, 1000 + (uint64_t)budget);
            // Restart from the base model each time (paper: fine-tune
            // the original weights with the newly collected data).
            HybridModel tuned(f, pcfg.hybrid, 1);
            {
                std::stringstream buf;
                base.model->Save(buf);
                tuned.Load(buf);
            }
            Rng srng(7);
            const auto [ft_train, ft_val] = fresh.Split(0.9, srng);
            (void)ft_val;
            const HybridReport rep = tuned.FineTune(ft_train, val, ft);
            t.Row()
                .Add(static_cast<long long>(ft_train.samples.size()))
                .Add(rep.cnn.train_rmse_ms, 1)
                .Add(rep.cnn.val_rmse_ms, 1);
            std::printf("  %4.0f s of new data done\n", budget);
        }
        std::printf("%s", t.Render().c_str());
    }
    std::printf("\nExpected shape: the zero-sample RMSE is already "
                "reasonable for the platform/replica scenarios (feature "
                "generalizability), highest for the modified app, and "
                "fine-tuning converges with a fraction of the original "
                "16 h collection.\n");
    return 0;
}
