/**
 * @file
 * Fleet-scale throughput bench: how many cluster-intervals per second
 * the sharded fleet harness (src/fleet) sustains as the fleet grows
 * from 1 to 100 clusters, serial vs. on the shared thread pool.
 *
 * For each fleet size the same mixed hotel/social fleet is run twice —
 * SetNumThreads(1) and SetNumThreads(min(8, hardware threads)), so the
 * threaded leg never oversubscribes a small runner — and the bench
 * records wall time, shard-interval throughput, the manager's
 * per-interval decision latency percentiles, and whether the two runs
 * produced byte-identical fleet traces (the determinism contract; they
 * must). Results go to stdout and to BENCH_fleet.json (which records
 * both the requested and the effective thread count next to the
 * detected hardware concurrency, plus "degraded_env": true — with a
 * stdout WARNING — whenever the runner clamped the thread count below
 * the request) for the CI artifact and the README throughput table.
 *
 * CI gate (SINAN_BENCH_CHECK=1): trace bytes must match at every fleet
 * size, and — only on machines with >= 4 hardware threads, since the
 * speedup is meaningless on a 1-core runner — the 8-thread run of the
 * largest fleet must beat serial by >= 1.5x (the local acceptance bar
 * on an 8-core box is >= 3x; CI uses a conservative margin so shared
 * runners cannot flake the job).
 *
 * SINAN_BENCH_FAST=1 shrinks the horizon for quick iteration.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "fleet/fleet.h"
#include "fleet/fleet_log.h"

namespace sinan {
namespace {

struct SweepRow {
    int clusters = 0;
    int64_t intervals_per_cluster = 0;
    double serial_s = 0.0;
    double threaded_s = 0.0;
    double speedup = 0.0;
    /** Cluster-intervals per second of the threaded run. */
    double intervals_per_s = 0.0;
    FleetDecideStats decide;
    bool trace_identical = false;
};

FleetConfig
SweepConfig(int clusters, double duration_s)
{
    FleetConfig cfg;
    cfg.n_clusters = clusters;
    cfg.default_manager = "sinan";
    cfg.duration_s = duration_s;
    cfg.warmup_s = 3.0;
    cfg.seed = 7;
    // A little per-shard spice: one faulted shard and one baseline
    // shard per 16 so the sweep also covers the degraded and
    // non-model decision paths at scale.
    for (int k = 12; k < clusters; k += 16) {
        ShardOverride fault;
        fault.index = k;
        fault.faults_set = true;
        fault.faults = "stall@4+2:tier=1;drop@8";
        cfg.overrides.push_back(fault);
    }
    for (int k = 5; k < clusters; k += 16) {
        ShardOverride cons;
        cons.index = k;
        cons.manager = "cons";
        cfg.overrides.push_back(cons);
    }
    return cfg;
}

struct TimedRun {
    double wall_s = 0.0;
    std::string trace;
    FleetResult result;
};

TimedRun
RunAtThreads(const FleetConfig& cfg, const FleetModels& models,
             const FleetApps& apps, int threads)
{
    SetNumThreads(threads);
    TimedRun out;
    bench::Stopwatch watch;
    out.result = RunFleet(cfg, models, apps);
    out.wall_s = watch.Seconds();
    out.trace = FleetTraceToCsv(out.result);
    SetNumThreads(0);
    return out;
}

void
WriteFleetBenchJson(const std::string& path, double duration_s,
                    int threads_requested, int threads_effective,
                    unsigned hardware_concurrency,
                    const std::vector<SweepRow>& rows)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(4);
    out << "{\n  \"bench\": \"fleet_scale\",\n";
    out << "  \"duration_s\": " << duration_s << ",\n";
    out << "  \"threads_requested\": " << threads_requested << ",\n";
    out << "  \"threads_effective\": " << threads_effective << ",\n";
    // Machine-readable "the runner clamped the thread count" marker so
    // downstream consumers (CI dashboards, the README table) can tell a
    // real scaling number from a 1-core-runner artifact at a glance.
    out << "  \"degraded_env\": "
        << (threads_effective < threads_requested ? "true" : "false")
        << ",\n";
    out << "  \"hardware_concurrency\": " << hardware_concurrency
        << ",\n";
    out << "  \"sweep\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow& r = rows[i];
        out << "    {\"clusters\": " << r.clusters
            << ", \"intervals_per_cluster\": "
            << r.intervals_per_cluster
            << ", \"serial_s\": " << r.serial_s
            << ", \"threaded_s\": " << r.threaded_s
            << ", \"speedup\": " << r.speedup
            << ", \"intervals_per_s\": " << r.intervals_per_s
            << ", \"trace_identical\": "
            << (r.trace_identical ? "true" : "false")
            << ",\n     \"decide_ms\": {\"mean\": " << r.decide.mean_ms
            << ", \"p50\": " << r.decide.p50_ms
            << ", \"p95\": " << r.decide.p95_ms
            << ", \"p99\": " << r.decide.p99_ms
            << ", \"max\": " << r.decide.max_ms << "}}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::ofstream f(path, std::ios::binary);
    f << out.str();
}

bool
CheckSweep(const std::vector<SweepRow>& rows, unsigned cores,
           int threads_effective)
{
    bool ok = true;
    for (const SweepRow& r : rows) {
        if (!r.trace_identical) {
            std::printf("FAIL: %d clusters: serial and threaded fleet "
                        "traces differ\n",
                        r.clusters);
            ok = false;
        }
    }
    if (cores < 4) {
        std::printf("NOTE: %u hardware thread(s); skipping the speedup "
                    "gate (needs >= 4 cores to be meaningful)\n",
                    cores);
    } else if (!rows.empty()) {
        constexpr double kMinSpeedup = 1.5;
        const SweepRow& largest = rows.back();
        if (largest.speedup < kMinSpeedup) {
            std::printf("FAIL: %d clusters: %.2fx speedup at %d "
                        "threads (need >= %.1fx)\n",
                        largest.clusters, largest.speedup,
                        threads_effective, kMinSpeedup);
            ok = false;
        }
    }
    if (ok)
        std::printf("PASS: traces byte-identical at every fleet size\n");
    return ok;
}

int
Run()
{
    bench::PrintHeader("Fleet-scale sharded simulation throughput",
                       "fleet harness, src/fleet");

    const Application hotel_app = BuildHotelReservation();
    const Application social_app = BuildSocialNetwork();
    const TrainedSinan hotel = bench::GetTrainedSinan(
        hotel_app, bench::HotelPipeline(), "hotel");
    const TrainedSinan social = bench::GetTrainedSinan(
        social_app, bench::SocialPipeline(), "social");
    FleetModels models;
    models.hotel = hotel.model.get();
    models.social = social.model.get();
    const FleetApps apps{&hotel_app, &social_app};

    const double duration_s = bench::FastMode() ? 8.0 : 30.0;
    const std::vector<int> fleet_sizes = {1, 8, 32, 100};
    // Detect the hardware concurrency ONCE and thread it through both
    // the JSON dump and the gate: reading it in two places let the
    // recorded value and the gate decision drift apart, and an
    // 8-thread pool on a 1-core runner measured scheduler churn, not
    // fleet scaling.
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const int threads_requested = 8;
    const int threads = std::min(threads_requested,
                                 static_cast<int>(cores));
    std::printf("hardware threads: %u (threaded leg uses %d of %d "
                "requested)\n",
                cores, threads, threads_requested);
    if (threads < threads_requested) {
        std::printf("WARNING: degraded environment — only %d of %d "
                    "requested threads available; throughput and "
                    "speedup numbers are not representative "
                    "(BENCH_fleet.json is marked \"degraded_env\": "
                    "true)\n",
                    threads, threads_requested);
    }
    std::printf("\n");

    std::printf("%9s %10s %11s %9s %13s %10s\n", "clusters", "serial_s",
                "thread_s", "speedup", "intervals/s", "decide_p99");
    std::vector<SweepRow> rows;
    for (int clusters : fleet_sizes) {
        const FleetConfig cfg = SweepConfig(clusters, duration_s);
        const TimedRun serial = RunAtThreads(cfg, models, apps, 1);
        const TimedRun threaded =
            RunAtThreads(cfg, models, apps, threads);

        SweepRow row;
        row.clusters = clusters;
        row.intervals_per_cluster =
            serial.result.timeline.empty()
                ? 0
                : static_cast<int64_t>(serial.result.timeline.size());
        row.serial_s = serial.wall_s;
        row.threaded_s = threaded.wall_s;
        row.speedup =
            threaded.wall_s > 0.0 ? serial.wall_s / threaded.wall_s : 0.0;
        row.intervals_per_s = threaded.result.shard_intervals_per_s;
        row.decide = threaded.result.decide;
        row.trace_identical = serial.trace == threaded.trace;
        rows.push_back(row);

        std::printf("%9d %10.3f %11.3f %8.2fx %13.0f %9.3fms\n",
                    clusters, row.serial_s, row.threaded_s, row.speedup,
                    row.intervals_per_s, row.decide.p99_ms);
    }

    WriteFleetBenchJson("BENCH_fleet.json", duration_s,
                        threads_requested, threads, cores, rows);
    std::printf("\nWrote BENCH_fleet.json\n");

    const char* check = std::getenv("SINAN_BENCH_CHECK");
    if (check != nullptr && std::string(check) == "1" &&
        !CheckSweep(rows, cores, threads))
        return 1;
    return 0;
}

} // namespace
} // namespace sinan

int
main()
{
    return sinan::Run();
}
