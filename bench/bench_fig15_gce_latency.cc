/**
 * @file
 * Reproduces Figure 15: the distribution of per-interval p99 end-to-end
 * latency for the four Social Network request mixes W0..W3 on the
 * GCE-scale deployment, managed by Sinan. The paper shows violin plots;
 * we report the distribution summary (min / p25 / p50 / p75 / p95 / max)
 * pooled over the user sweep.
 *
 * Expected shape: all mixes stay below the 500 ms QoS; compose-heavy W1
 * has the widest, highest distribution.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/scheduler.h"

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 15 — Sinan on GCE: p99 latency distribution per mix",
        "Fig. 15: 99th-percentile latency distributions, W0..W3");

    Application app = BuildSocialNetwork();
    ClusterConfig gce;
    gce.speed_factor = 0.85;
    gce.replica_scale = 2;
    TrainedSinan trained = bench::GceFineTunedSinan(app, gce);

    const auto mixes = SocialNetworkMixes();
    TextTable t({"mix", "min", "p25", "p50", "p75", "p95", "max",
                 "P(meet QoS)"});
    for (size_t w = 0; w < mixes.size(); ++w) {
        SetRequestMix(app, mixes[w]);
        std::vector<double> pooled;
        double met = 0.0, total = 0.0;
        for (double users : bench::SocialLoads()) {
            SinanScheduler sinan(*trained.model, SchedulerConfig{});
            ConstantLoad load(users);
            RunConfig cfg;
            cfg.duration_s = bench::RunSeconds(80.0);
            cfg.warmup_s = 20.0;
            cfg.cluster = gce;
            cfg.seed = 60 + static_cast<uint64_t>(w);
            const RunResult r = RunManaged(app, sinan, load, cfg);
            pooled.insert(pooled.end(), r.p99_series_ms.begin(),
                          r.p99_series_ms.end());
            met += r.qos_meet_prob *
                   static_cast<double>(r.p99_series_ms.size());
            total += static_cast<double>(r.p99_series_ms.size());
            std::printf("  W%zu users=%3.0f done (P(meet)=%.2f)\n", w,
                        users, r.qos_meet_prob);
        }
        t.Row()
            .Add("W" + std::to_string(w))
            .Add(VectorQuantile(pooled, 0.0), 1)
            .Add(VectorQuantile(pooled, 0.25), 1)
            .Add(VectorQuantile(pooled, 0.5), 1)
            .Add(VectorQuantile(pooled, 0.75), 1)
            .Add(VectorQuantile(pooled, 0.95), 1)
            .Add(VectorQuantile(pooled, 1.0), 1)
            .Add(met / total, 3);
    }
    std::printf("\nper-interval p99 latency distribution (ms), pooled "
                "over 50..450 users:\n%s",
                t.Render().c_str());
    return 0;
}
