/**
 * @file
 * Reproduces Figure 3 (the motivation figure): the delayed queueing
 * effect. A single-tier service is driven slightly above its capacity;
 * one run upscales eagerly as soon as latency starts climbing (the
 * paper's blue line), the other only after QoS is already violated (the
 * red line). The late reaction pays a long recovery because the built-up
 * queue must drain even after resources are restored.
 */
#include <cstdio>

#include "cluster/cluster.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {
namespace {

Application
SingleTierApp()
{
    Application app;
    app.name = "single-tier";
    app.qos_ms = 100.0;
    TierSpec t;
    t.name = "service";
    t.concurrency_per_replica = 256;
    t.init_cpu = 2.0;
    t.min_cpu = 0.5;
    t.max_cpu = 16.0;
    app.tiers.push_back(t);
    RequestType rt;
    rt.name = "req";
    rt.root.tier = 0;
    rt.root.demand_s = 0.010;
    rt.root.demand_cv = 0.1;
    app.request_types.push_back(rt);
    return app;
}

/** Runs the overload scenario; upscale triggers per the policy. */
std::vector<std::pair<double, double>>
Run(bool eager)
{
    const Application app = SingleTierApp();
    ClusterConfig ccfg;
    Cluster cluster(app, ccfg, 3);
    // Capacity at 2 cores and 10 ms demand is 200 rps; offer 280. The
    // upscale target (3.6 cores) restores only modest headroom, so any
    // queue built up before the reaction drains slowly — the essence of
    // the delayed queueing effect.
    StepLoad load({{0.0, 120.0}, {20.0, 280.0}});
    WorkloadGenerator gen(cluster, load, 5);
    Simulator sim;
    std::vector<std::pair<double, double>> series;
    bool upscaled = false;
    int bad_streak = 0;
    sim.AddTickable([&](double now, double dt) { gen.Tick(now, dt); });
    sim.AddTickable([&](double now, double dt) { cluster.Tick(now, dt); });
    sim.AddIntervalListener([&](int64_t, double now) {
        const IntervalObservation obs = cluster.Harvest(now, 1.0);
        series.emplace_back(now, obs.P99());
        if (upscaled)
            return;
        // The eager policy reacts to the input-load signal itself (the
        // paper's blue line: act before the queue builds). The late one
        // is a conventional alarm: it requires the QoS violation to be
        // sustained for three evaluation periods before acting (red
        // line) — by which time the queue has been building the whole
        // while.
        bad_streak = obs.P99() > app.qos_ms ? bad_streak + 1 : 0;
        const bool trigger = eager ? obs.rps > 240.0 : bad_streak >= 3;
        if (trigger) {
            cluster.SetCpuLimit(0, 3.6);
            upscaled = true;
            std::printf("  %s upscale at t=%.0f s (p99=%.0f ms)\n",
                        eager ? "eager" : "late", now, obs.P99());
        }
    });
    sim.RunFor(90.0);
    return series;
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    std::printf("Figure 3 — the delayed queueing effect\n");
    std::printf("Single tier, capacity 200 rps, load steps 120->280 rps "
                "at t=20 s; QoS 100 ms\n\n");

    const auto eager = Run(true);
    const auto late = Run(false);

    TextTable t({"t(s)", "eager p99(ms)", "late p99(ms)"});
    for (size_t i = 0; i < eager.size(); i += 5) {
        t.Row()
            .Add(eager[i].first, 0)
            .Add(eager[i].second, 1)
            .Add(late[i].second, 1);
    }
    std::printf("%s", t.Render().c_str());

    auto recovery = [&](const std::vector<std::pair<double, double>>& s) {
        double last_bad = 0.0;
        for (const auto& [time, p99] : s) {
            if (time > 20.0 && p99 > 100.0)
                last_bad = time;
        }
        return last_bad;
    };
    std::printf("\nlast interval above QoS: eager t=%.0f s, late t=%.0f s\n",
                recovery(eager), recovery(late));
    std::printf("(the late reaction keeps violating long after upscaling "
                "— queues must drain first)\n");
    return 0;
}
