/**
 * @file
 * Reproduces Table 4 and the Sec. 5.6 debugging story: with the
 * social-graph Redis minutely log synchronization enabled, LIME on the
 * latency predictor ranks graph-redis among the most important tiers for
 * QoS, and its memory channels (RSS / cache) as the critical resources —
 * pointing at the logging pathology. After "disabling" the logging and
 * retraining, graph-redis's importance collapses.
 */
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "explain/lime.h"
#include "models/hybrid.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace sinan {
namespace {

const char* kChannelNames[] = {"cpu limit", "cpu used", "RSS",
                               "cache memory", "rx packets",
                               "tx packets"};

struct Trained {
    FeatureConfig features;
    std::unique_ptr<HybridModel> model;
    Dataset data;
};

Trained
TrainVariant(bool log_sync, const PipelineConfig& pcfg)
{
    SocialOptions opts;
    opts.redis_log_sync = log_sync;
    const Application app = BuildSocialNetwork(opts);

    Trained out;
    out.features.n_tiers = static_cast<int>(app.tiers.size());
    out.features.history = pcfg.history;
    out.features.violation_lookahead = pcfg.violation_lookahead;
    out.features.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = pcfg.collect_s;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = out.features;
    col.seed = pcfg.seed;
    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    out.data = Collect(app, bandit, col);
    Rng rng(pcfg.seed ^ 0x5eed);
    auto [train, valid] = out.data.Split(0.9, rng);
    out.model = std::make_unique<HybridModel>(out.features, pcfg.hybrid,
                                              pcfg.seed ^ 0xcafe);
    out.model->Train(train, valid);
    return out;
}

/** Picks samples from timesteps where QoS violations occur
 *  (Sec. 5.6.1's "we choose samples X from the timesteps where QoS
 *  violations occur"). */
std::vector<Sample>
ViolationSamples(const Dataset& data, double qos_ms, size_t max_n)
{
    std::vector<Sample> out;
    for (const Sample& s : data.samples) {
        if (s.p99_ms > qos_ms) {
            out.push_back(s);
            if (out.size() >= max_n)
                break;
        }
    }
    return out;
}

void
Explain(const char* label, Trained& t, const Application& app)
{
    LimeExplainer lime(t.model->Cnn(), t.features);
    const std::vector<Sample> xs =
        ViolationSamples(t.data, t.features.qos_ms, 24);
    if (xs.empty()) {
        std::printf("%s: no violation samples to explain\n", label);
        return;
    }
    const LimeExplanation tiers = lime.ExplainTiersAveraged(xs);

    std::printf("\n%s — top-5 tiers by LIME weight:\n", label);
    TextTable tt({"rank", "tier", "weight"});
    int rank = 1;
    for (int idx : tiers.TopK(5)) {
        tt.Row()
            .Add(static_cast<long long>(rank++))
            .Add(app.tiers[idx].name)
            .Add(tiers.weights[idx], 4);
    }
    std::printf("%s", tt.Render().c_str());

    const int redis = app.TierIndex("graph-redis");
    std::printf("graph-redis weight: %.4f (rank ", tiers.weights[redis]);
    const auto order = tiers.TopK(static_cast<int>(app.tiers.size()));
    for (size_t r = 0; r < order.size(); ++r) {
        if (order[r] == redis) {
            std::printf("%zu of %zu)\n", r + 1, order.size());
            break;
        }
    }

    const LimeExplanation res = lime.ExplainResources(xs.front(), redis);
    std::printf("\n%s — graph-redis resource importance:\n", label);
    TextTable rt({"resource", "weight"});
    for (int idx : res.TopK(FeatureConfig::kChannels))
        rt.Row().Add(kChannelNames[idx]).Add(res.weights[idx], 4);
    std::printf("%s", rt.Render().c_str());
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Table 4 — explainable ML: the Redis log-sync diagnosis",
        "Table 4: top-5 critical tiers/resources with and without log "
        "synchronization");

    const PipelineConfig pcfg = bench::SocialPipeline(17);
    SocialOptions sync_opts;
    sync_opts.redis_log_sync = true;
    const Application app_sync = BuildSocialNetwork(sync_opts);
    const Application app_fixed = BuildSocialNetwork();

    std::printf("training on the deployment WITH Redis log sync...\n");
    Trained with_sync = TrainVariant(true, pcfg);
    Explain("w/ sync", with_sync, app_sync);

    std::printf("\ntraining on the deployment WITHOUT log sync...\n");
    Trained without_sync = TrainVariant(false, pcfg);
    Explain("w/o sync", without_sync, app_fixed);

    std::printf("\nExpected shape: with sync enabled, graph-redis ranks "
                "among the top tiers and its memory channels dominate; "
                "without it, its importance drops sharply (paper Table 4 "
                "and Fig. 16).\n");
    return 0;
}
