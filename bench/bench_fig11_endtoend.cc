/**
 * @file
 * Reproduces Figure 11: mean and max aggregate CPU allocation and the
 * probability of meeting QoS for Sinan, AutoScaleOpt, AutoScaleCons,
 * and PowerChief, across the load sweep of both applications.
 *
 * Expected shape (paper Sec. 5.3): only Sinan and AutoScaleCons meet QoS
 * across all loads; Sinan uses substantially less CPU than
 * AutoScaleCons (paper: -25.9% avg hotel, -59.0% avg social);
 * AutoScaleOpt and PowerChief start violating QoS as load grows.
 */
#include <cstdio>
#include <map>
#include <memory>

#include "baselines/autoscale.h"
#include "baselines/powerchief.h"
#include "bench_util.h"
#include "common/table.h"
#include "core/scheduler.h"
#include "harness/telemetry_log.h"

namespace sinan {
namespace {

using bench::GetTrainedSinan;
using bench::PrintHeader;
using bench::RunSeconds;

struct SweepResult {
    std::map<std::string, std::vector<RunResult>> by_manager;
};

SweepResult
SweepApp(const Application& app, TrainedSinan& trained,
         const std::vector<double>& loads)
{
    // All manager × load runs execute concurrently on the global
    // thread pool (SINAN_THREADS); each run owns its manager (Sinan
    // runs clone the model), and every run is seeded, so the figures
    // match a serial sweep.
    SweepResult out;
    out.by_manager = bench::SweepManagersAcrossLoads(
        app, trained, loads, RunSeconds(100.0));
    return out;
}

void
PrintTables(const Application& app, const std::vector<double>& loads,
            const SweepResult& sweep)
{
    std::vector<std::string> headers = {"manager"};
    for (double u : loads)
        headers.push_back(FormatDouble(u, 0));

    auto emit = [&](const char* title, auto getter) {
        std::printf("\n%s — %s\n", app.name.c_str(), title);
        TextTable t(headers);
        for (const auto& [name, results] : sweep.by_manager) {
            t.Row().Add(name);
            for (const RunResult& r : results)
                t.Add(getter(r), 2);
        }
        std::printf("%s", t.Render().c_str());
    };
    emit("mean CPU allocation (cores)",
         [](const RunResult& r) { return r.mean_cpu; });
    emit("max CPU allocation (cores)",
         [](const RunResult& r) { return r.max_cpu; });
    emit("P(meet QoS)",
         [](const RunResult& r) { return r.qos_meet_prob; });

    // Decision telemetry from the per-run metric registries; only
    // Sinan's scheduler emits it, so the table is Sinan-only.
    {
        std::printf("\n%s — Sinan decision telemetry (per load)\n",
                    app.name.c_str());
        std::vector<std::string> tel_headers = headers;
        tel_headers[0] = "metric";
        TextTable t(tel_headers);
        const auto& sinan_runs = sweep.by_manager.at("Sinan");
        auto emit_tel = [&](const char* name, auto getter) {
            t.Row().Add(std::string(name));
            for (const RunResult& r : sinan_runs)
                t.Add(getter(SummarizeTelemetry(r.metrics)), 3);
        };
        emit_tel("prediction accuracy", [](const TelemetrySummary& s) {
            return s.PredictionAccuracy();
        });
        emit_tel("fallback rate", [](const TelemetrySummary& s) {
            return s.FallbackRate();
        });
        emit_tel("escalations", [](const TelemetrySummary& s) {
            return static_cast<double>(s.escalations);
        });
        std::printf("%s", t.Render().c_str());
    }

    // Headline claim: Sinan's CPU savings vs the other QoS-meeting
    // manager (AutoScaleCons), over loads where both meet QoS >= 95%.
    const auto& sinan_r = sweep.by_manager.at("Sinan");
    const auto& cons_r = sweep.by_manager.at("AutoScaleCons");
    double sum_save = 0.0, max_save = 0.0;
    int n = 0;
    for (size_t i = 0; i < loads.size(); ++i) {
        if (sinan_r[i].qos_meet_prob < 0.95 ||
            cons_r[i].qos_meet_prob < 0.95) {
            continue;
        }
        const double save = 1.0 - sinan_r[i].mean_cpu /
                                      cons_r[i].mean_cpu;
        sum_save += save;
        max_save = std::max(max_save, save);
        ++n;
    }
    if (n) {
        std::printf("\nSinan CPU savings vs AutoScaleCons (QoS-meeting "
                    "loads): avg %.1f%%, max %.1f%%\n",
                    100.0 * sum_save / n, 100.0 * max_save);
    }
}

/**
 * Fault-scenario columns: Sinan, Sinan-U (same model with the
 * uncertainty-aware decision policy enabled), and AutoScaleCons run
 * once per named chaos scenario at a mid-range load. Reported per
 * scenario: P(meet QoS), mean CPU, how many decisions ran degraded /
 * on the graded-confidence path, watchdog upscales, and the recovery
 * time (intervals past the last fault until p99 is back under QoS;
 * 0 = immediate).
 */
void
PrintChaosTable(const Application& app, TrainedSinan& trained,
                double users)
{
    std::printf("\n%s — resilience under chaos scenarios "
                "(users=%.0f)\n", app.name.c_str(), users);
    const auto by_manager = bench::SweepManagersAcrossFaults(
        app, trained, users, RunSeconds(60.0));
    const std::vector<ChaosScenario>& scenarios = ChaosScenarios();

    TextTable t({"scenario", "manager", "P(meetQoS)", "meanCPU",
                 "degraded", "uncertain", "watchdog", "recovery"});
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const ChaosScenario& sc = scenarios[i];
        const double fault_end_s =
            static_cast<double>(ParseFaultSpec(sc.spec).EndInterval()) *
            SimConfig{}.interval_s; // the sweep runs default intervals
        for (const auto& [name, results] : by_manager) {
            const RunResult& r = results[i];
            const TelemetrySummary s = SummarizeTelemetry(r.metrics);
            const int rec =
                RecoveryIntervals(r, fault_end_s, app.qos_ms);
            t.Row()
                .Add(sc.name)
                .Add(name)
                .Add(r.qos_meet_prob, 3)
                .Add(r.mean_cpu, 1)
                .Add(static_cast<double>(s.degraded), 0)
                .Add(static_cast<double>(s.uncertain), 0)
                .Add(static_cast<double>(s.watchdog_upscales), 0)
                .Add(rec < 0 ? std::string("never")
                             : std::to_string(rec) + " iv");
        }
    }
    std::printf("%s", t.Render().c_str());
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader("Figure 11 — end-to-end manager comparison",
                       "Fig. 11 (a) Hotel Reservation, (b) Social "
                       "Network: mean/max CPU allocation and P(meet QoS)");

    {
        const Application app = BuildHotelReservation();
        std::printf("[hotel] training Sinan (bandit collection + hybrid "
                    "model)...\n");
        TrainedSinan trained =
            bench::GetTrainedSinan(app, bench::HotelPipeline(), "hotel");
        std::printf("[hotel] CNN val RMSE: %.1f ms\n",
                    trained.model->ValRmseMs());
        const auto loads = bench::HotelLoads();
        const auto sweep = SweepApp(app, trained, loads);
        PrintTables(app, loads, sweep);
    }
    {
        const Application app = BuildSocialNetwork();
        std::printf("\n[social] training Sinan...\n");
        TrainedSinan trained = bench::GetTrainedSinan(
            app, bench::SocialPipeline(), "social");
        std::printf("[social] CNN val RMSE: %.1f ms\n",
                    trained.model->ValRmseMs());
        const auto loads = bench::SocialLoads();
        const auto sweep = SweepApp(app, trained, loads);
        PrintTables(app, loads, sweep);
        // Mid-range load: heavy enough that blind intervals cost real
        // QoS, so the graded-confidence policy separates from the
        // binary ladder on the correlated scenarios.
        PrintChaosTable(app, trained, 250.0);
    }
    return 0;
}
