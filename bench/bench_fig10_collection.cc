/**
 * @file
 * Reproduces Figure 10: prediction quality when the training data comes
 * from (a) autoscaling-driven collection — too few violations, so the
 * model underestimates latency — and (b) random allocation exploration —
 * dominated by pathological states, so the model overestimates latency
 * and blocks all reclamation. The bandit-collected dataset is shown as
 * the reference.
 */
#include <cstdio>

#include "baselines/autoscale.h"
#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "models/sinan_cnn.h"
#include "models/trainer.h"

namespace sinan {
namespace {

struct Scheme {
    const char* name;
    Dataset data;
};

/** Signed mean error of p99 predictions on the reference validation set,
 *  split by whether the true latency met QoS. */
void
Evaluate(const char* name, SinanCnn& model, const Dataset& valid,
         const FeatureConfig& f, TextTable& out)
{
    const std::vector<double> preds = PredictP99Ms(model, valid, f);
    double bias_ok = 0.0, bias_viol = 0.0;
    int n_ok = 0, n_viol = 0;
    for (size_t i = 0; i < valid.samples.size(); ++i) {
        const double truth =
            std::min(valid.samples[i].p99_ms, 2.0 * f.qos_ms);
        const double err = preds[i] - truth;
        if (valid.samples[i].p99_ms > f.qos_ms) {
            bias_viol += err;
            ++n_viol;
        } else {
            bias_ok += err;
            ++n_ok;
        }
    }
    out.Row()
        .Add(name)
        .Add(n_ok ? bias_ok / n_ok : 0.0, 1)
        .Add(n_viol ? bias_viol / n_viol : 0.0, 1);
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 10 — autoscaling vs random vs bandit data collection",
        "Fig. 10: predicted-vs-true latency under each collection scheme");

    const Application app = BuildSocialNetwork();
    const PipelineConfig pcfg = bench::SocialPipeline();
    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = pcfg.collect_s;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = f;
    col.seed = pcfg.seed;

    std::vector<Scheme> schemes;
    {
        AutoScaler cons = MakeAutoScaleCons();
        std::printf("collecting with autoscaling policy...\n");
        schemes.push_back({"autoscaling", Collect(app, cons, col)});
    }
    {
        RandomExplorer rnd(17);
        std::printf("collecting with random allocations...\n");
        schemes.push_back({"random", Collect(app, rnd, col)});
    }
    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    std::printf("collecting with the bandit explorer...\n");
    const Dataset bandit_all = Collect(app, bandit, col);
    schemes.push_back({"bandit (Sinan)", bandit_all});

    // Reference evaluation set: held-out bandit data (it covers both the
    // nominal and the violation regions).
    Rng rng(pcfg.seed ^ 0x5eed);
    const auto [bandit_train, reference] = bandit_all.Split(0.9, rng);

    std::printf("\nper-scheme dataset shape:\n");
    TextTable shape({"scheme", "#samples", "violation-label rate",
                     "frac p99>QoS"});
    for (const Scheme& s : schemes) {
        size_t viol = 0;
        for (const Sample& x : s.data.samples)
            viol += x.p99_ms > f.qos_ms;
        shape.Row()
            .Add(s.name)
            .Add(static_cast<long long>(s.data.samples.size()))
            .Add(s.data.ViolationRate(), 2)
            .Add(static_cast<double>(viol) /
                     static_cast<double>(s.data.samples.size()),
                 3);
    }
    std::printf("%s", shape.Render().c_str());

    TextTable result({"training data", "bias on QoS-met samples (ms)",
                      "bias on violating samples (ms)"});
    for (Scheme& s : schemes) {
        SinanCnn model(f, SinanCnnConfig{}, 7);
        // The bandit scheme must not train on its own held-out
        // reference rows; the other schemes use their full datasets.
        const bool is_bandit =
            std::string(s.name).rfind("bandit", 0) == 0;
        const Dataset& train_set = is_bandit ? bandit_train : s.data;
        TrainLatencyModel(model, train_set, reference, f,
                          pcfg.hybrid.train);
        Evaluate(s.name, model, reference, f, result);
        std::printf("trained on %s data\n", s.name);
    }
    std::printf("\n%s", result.Render().c_str());
    std::printf(
        "\nExpected shape: autoscaling-trained models underestimate "
        "violating samples (large negative bias there); random-trained "
        "models overestimate nominal samples (positive bias on QoS-met "
        "rows); the bandit stays near zero on both.\n");
    return 0;
}
