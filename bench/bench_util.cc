#include "bench_util.h"

#include "baselines/autoscale.h"
#include "baselines/powerchief.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "core/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <fstream>
#include <stdexcept>

namespace sinan {
namespace bench {

namespace {

/** The single wall-clock read of the bench suite (see Stopwatch's
 *  header comment and tools/analyze/timing_quarantine.txt). */
int64_t
NowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Stopwatch::Stopwatch() : start_ns_(NowNs()) {}

void
Stopwatch::Restart()
{
    start_ns_ = NowNs();
}

double
Stopwatch::Seconds() const
{
    return static_cast<double>(NowNs() - start_ns_) * 1e-9;
}

double
Stopwatch::Millis() const
{
    return static_cast<double>(NowNs() - start_ns_) * 1e-6;
}

bool
FastMode()
{
    const char* v = std::getenv("SINAN_BENCH_FAST");
    return v != nullptr && v[0] == '1';
}

double
RunSeconds(double full)
{
    return FastMode() ? std::max(30.0, full * 0.4) : full;
}

namespace {

void
ApplyFastMode(PipelineConfig& cfg)
{
    if (FastMode()) {
        cfg.collect_s = 600.0;
        cfg.hybrid.train.epochs = 6;
    }
}

} // namespace

PipelineConfig
SocialPipeline(uint64_t seed)
{
    PipelineConfig cfg;
    cfg.collect_s = 2200.0;
    cfg.users_min = 50.0;
    cfg.users_max = 450.0;
    cfg.hybrid = DefaultHybridConfig();
    cfg.seed = seed;
    ApplyFastMode(cfg);
    return cfg;
}

PipelineConfig
HotelPipeline(uint64_t seed)
{
    PipelineConfig cfg;
    cfg.collect_s = 2200.0;
    cfg.users_min = 500.0;
    cfg.users_max = 3700.0;
    cfg.hybrid = DefaultHybridConfig();
    cfg.seed = seed;
    ApplyFastMode(cfg);
    return cfg;
}

TrainedSinan
GetTrainedSinan(const Application& app, const PipelineConfig& cfg,
                const std::string& cache_key)
{
    const std::string path = "bench_cache/" + cache_key + ".model";
    if (!cache_key.empty() && std::filesystem::exists(path)) {
        // Re-collect the dataset (fast) and load the trained weights.
        TrainedSinan out;
        out.features.n_tiers = static_cast<int>(app.tiers.size());
        out.features.history = cfg.history;
        out.features.violation_lookahead = cfg.violation_lookahead;
        out.features.qos_ms = app.qos_ms;
        out.model = std::make_unique<HybridModel>(out.features,
                                                  cfg.hybrid,
                                                  cfg.seed ^ 0xcafe);
        std::ifstream in(path, std::ios::binary);
        try {
            out.model->Load(in);
            if (out.model->Int8Calibrated()) {
                std::printf("[cache] loaded %s\n", path.c_str());
                return out;
            }
            // Pre-quantization legacy file: retrain so the cache picks
            // up activation scales (the int8 benches and parity tests
            // need a calibrated model).
            std::printf("[cache] %s lacks quant calibration; retraining\n",
                        path.c_str());
        } catch (const std::exception&) {
            std::printf("[cache] %s corrupt; retraining\n", path.c_str());
        }
    }
    TrainedSinan out = TrainSinanForApp(app, cfg);
    if (!cache_key.empty()) {
        std::filesystem::create_directories("bench_cache");
        std::ofstream outf(path, std::ios::binary);
        out.model->Save(outf);
    }
    return out;
}

TrainedSinan
GceFineTunedSinan(const Application& app, ClusterConfig gce)
{
    const PipelineConfig pcfg = SocialPipeline();
    TrainedSinan base = GetTrainedSinan(app, pcfg, "social");

    FeatureConfig f = base.features;
    CollectionConfig col;
    col.duration_s = FastMode() ? 300.0 : 800.0;
    col.users_min = 50;
    col.users_max = 450;
    col.features = f;
    col.cluster = gce;
    col.seed = 333;
    BanditConfig bcfg;
    bcfg.qos_ms = f.qos_ms;
    bcfg.seed = 334;
    BanditExplorer bandit(bcfg);
    std::printf("collecting GCE fine-tuning data...\n");
    const Dataset fresh = Collect(app, bandit, col);
    Rng rng(335);
    const auto [train, valid] = fresh.Split(0.9, rng);

    TrainOptions ft = pcfg.hybrid.train;
    ft.lr = pcfg.hybrid.train.lr / 100.0;
    const HybridReport rep = base.model->FineTune(train, valid, ft);
    std::printf("fine-tuned: CNN val RMSE %.1f ms, BT val acc %.1f%%\n",
                rep.cnn.val_rmse_ms, 100.0 * rep.bt_val_accuracy);
    return base;
}


namespace {

/** Owns a cloned hybrid model together with its scheduler so each
 *  concurrent sweep run has private model state (Evaluate mutates the
 *  CNN's forward caches). */
class OwningSinan : public ResourceManager {
  public:
    explicit OwningSinan(std::unique_ptr<HybridModel> model,
                         const SchedulerConfig& cfg = SchedulerConfig{})
        : model_(std::move(model)), sched_(*model_, cfg)
    {
    }

    std::vector<double>
    Decide(const IntervalObservation& obs,
           const std::vector<double>& alloc,
           const Application& app) override
    {
        return sched_.Decide(obs, alloc, app);
    }

    const char* Name() const override { return sched_.Name(); }
    void Reset() override { sched_.Reset(); }

    double
    LastPredictedP99() const override
    {
        return sched_.LastPredictedP99();
    }

    double
    LastViolationProb() const override
    {
        return sched_.LastViolationProb();
    }

    void
    AttachTelemetry(DecisionTrace* trace,
                    MetricsRegistry* metrics) override
    {
        sched_.AttachTelemetry(trace, metrics);
    }

  private:
    std::unique_ptr<HybridModel> model_;
    SinanScheduler sched_;
};

} // namespace

std::map<std::string, std::vector<RunResult>>
SweepManagersAcrossLoads(const Application& app,
                         const TrainedSinan& trained,
                         const std::vector<double>& loads,
                         double duration_s, uint64_t seed)
{
    struct ManagerSpec {
        std::string name;
        std::function<std::unique_ptr<ResourceManager>()> make;
    };
    const std::vector<ManagerSpec> specs = {
        {"Sinan",
         [&] {
             return std::make_unique<OwningSinan>(trained.model->Clone());
         }},
        {"AutoScaleOpt",
         [] { return std::make_unique<AutoScaler>(MakeAutoScaleOpt()); }},
        {"AutoScaleCons",
         [] { return std::make_unique<AutoScaler>(MakeAutoScaleCons()); }},
        {"PowerChief", [] { return std::make_unique<PowerChief>(); }},
    };

    std::vector<SweepJob> jobs;
    for (const ManagerSpec& spec : specs) {
        for (double users : loads) {
            SweepJob job;
            job.make_manager = spec.make;
            job.make_load = [users] {
                return std::make_unique<ConstantLoad>(users);
            };
            job.cfg.duration_s = duration_s;
            job.cfg.warmup_s = 20.0;
            job.cfg.seed = seed;
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<RunResult> results = RunSweep(app, jobs);

    std::map<std::string, std::vector<RunResult>> by_manager;
    size_t idx = 0;
    for (const ManagerSpec& spec : specs) {
        for (double users : loads) {
            const RunResult& r = results[idx++];
            by_manager[spec.name].push_back(r);
            std::printf("  %-14s users=%5.0f  meanCPU=%7.1f  "
                        "maxCPU=%7.1f  P(meet QoS)=%.3f\n",
                        spec.name.c_str(), users, r.mean_cpu, r.max_cpu,
                        r.qos_meet_prob);
        }
    }
    return by_manager;
}

std::map<std::string, std::vector<RunResult>>
SweepManagersAcrossFaults(const Application& app,
                          const TrainedSinan& trained, double users,
                          double duration_s, uint64_t seed)
{
    struct ManagerSpec {
        std::string name;
        std::function<std::unique_ptr<ResourceManager>()> make;
    };
    const std::vector<ManagerSpec> specs = {
        {"Sinan",
         [&] {
             return std::make_unique<OwningSinan>(trained.model->Clone());
         }},
        // Same model, uncertainty-aware decision policy: graded
        // telemetry confidence instead of the binary ladder.
        {"Sinan-U",
         [&] {
             SchedulerConfig cfg;
             cfg.uncertainty.enabled = true;
             return std::make_unique<OwningSinan>(trained.model->Clone(),
                                                  cfg);
         }},
        {"AutoScaleCons",
         [] { return std::make_unique<AutoScaler>(MakeAutoScaleCons()); }},
    };
    const std::vector<ChaosScenario>& scenarios = ChaosScenarios();

    std::vector<SweepJob> jobs;
    for (const ManagerSpec& spec : specs) {
        for (const ChaosScenario& sc : scenarios) {
            SweepJob job;
            job.make_manager = spec.make;
            job.make_load = [users] {
                return std::make_unique<ConstantLoad>(users);
            };
            job.cfg.duration_s = duration_s;
            job.cfg.warmup_s = 5.0;
            job.cfg.seed = seed;
            job.cfg.faults = ParseFaultSpec(sc.spec);
            ValidateFaultSchedule(job.cfg.faults,
                                  static_cast<int>(app.tiers.size()));
            jobs.push_back(std::move(job));
        }
    }
    const std::vector<RunResult> results = RunSweep(app, jobs);

    std::map<std::string, std::vector<RunResult>> by_manager;
    size_t idx = 0;
    for (const ManagerSpec& spec : specs) {
        for (const ChaosScenario& sc : scenarios) {
            (void)sc;
            by_manager[spec.name].push_back(results[idx++]);
        }
    }
    return by_manager;
}

std::vector<double>
HotelLoads()
{
    return {1000, 1300, 1600, 1900, 2200, 2500, 2800, 3100, 3400, 3700};
}

std::vector<double>
SocialLoads()
{
    return {50, 100, 150, 200, 250, 300, 350, 400, 450};
}

void
WriteInferenceJson(const std::string& path, const std::string& model_name,
                   const std::string& kernel_id,
                   const std::string& int8_kernel_id, bool int8_measured,
                   double interval_budget_ms,
                   const std::vector<InferenceBenchRow>& rows)
{
    std::ofstream out(path);
    if (!out)
        throw std::runtime_error("WriteInferenceJson: cannot open " + path);

    char buf[512];
    out << "{\n";
    out << "  \"schema\": 3,\n";
    out << "  \"model\": \"" << model_name << "\",\n";
    out << "  \"kernel_id\": \"" << kernel_id << "\",\n";
    out << "  \"int8_kernel_id\": \"" << int8_kernel_id << "\",\n";
    out << "  \"int8_measured\": " << (int8_measured ? "true" : "false")
        << ",\n";
    std::snprintf(buf, sizeof(buf), "  \"interval_budget_ms\": %.3f,\n",
                  interval_budget_ms);
    out << buf;
    out << "  \"sweep\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const InferenceBenchRow& r = rows[i];
        const double speedup =
            r.cached_ms > 0.0 ? r.legacy_ms / r.cached_ms : 0.0;
        std::snprintf(
            buf, sizeof(buf),
            "    {\"candidates\": %d, \"legacy_ms\": %.6f, "
            "\"cached_ms\": %.6f, \"speedup\": %.3f, \"stages_ms\": "
            "{\"feature_build\": %.6f, \"trunk\": %.6f, \"head\": %.6f, "
            "\"bt\": %.6f}, \"scalar_trunk_ms\": %.6f, \"int8\": "
            "{\"cached_ms\": %.6f, \"trunk_ms\": %.6f, "
            "\"scalar_trunk_ms\": %.6f}}%s\n",
            r.candidates, r.legacy_ms, r.cached_ms, speedup, r.feature_ms,
            r.trunk_ms, r.head_ms, r.bt_ms, r.scalar_trunk_ms,
            r.int8_cached_ms, r.int8_trunk_ms, r.int8_scalar_trunk_ms,
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n";
    out << "}\n";
}

void
PrintHeader(const std::string& title, const std::string& paper_ref)
{
    std::printf("\n==========================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s\n", paper_ref.c_str());
    std::printf("==========================================================\n\n");
}

} // namespace bench
} // namespace sinan
