/**
 * @file
 * Reproduces Figure 4: a multi-task NN jointly predicting next-interval
 * latency and the QoS-violation probability considerably overpredicts
 * tail latency, which the paper attributes to the semantic gap between
 * the bounded probability and the unbounded latency. Sinan's two-stage
 * CNN does not exhibit the bias.
 *
 * We train both on the same Social Network dataset and report the mean
 * signed prediction error (bias) and mean absolute error on validation
 * samples whose true latency met QoS.
 */
#include <cstdio>
#include <numeric>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "models/multitask.h"
#include "models/sinan_cnn.h"
#include "models/trainer.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace sinan {
namespace {

/** Trains the multi-task net with the joint latency+violation loss. */
void
TrainMultiTask(MultiTaskNn& net, const Dataset& train,
               const TrainOptions& opts)
{
    Sgd sgd(net.Params(), opts.lr, opts.momentum, opts.weight_decay);
    Rng rng(opts.seed);
    std::vector<int> order(train.samples.size());
    std::iota(order.begin(), order.end(), 0);
    for (int epoch = 0; epoch < opts.epochs; ++epoch) {
        for (size_t i = order.size(); i > 1; --i) {
            const size_t j = rng.UniformInt(static_cast<uint64_t>(i));
            std::swap(order[i - 1], order[j]);
        }
        for (size_t begin = 0; begin < order.size();
             begin += opts.batch_size) {
            const size_t end =
                std::min(begin + opts.batch_size, order.size());
            const Batch batch = train.MakeBatch(order, begin, end);
            const Tensor lat_target =
                train.MakeLatencyTargets(order, begin, end);
            Tensor viol_target({static_cast<int>(end - begin), 1});
            for (size_t i = begin; i < end; ++i) {
                viol_target.At(static_cast<int>(i - begin), 0) =
                    train.samples[order[i]].violation;
            }
            Tensor lat_pred, viol_logit;
            net.Forward(batch, lat_pred, viol_logit);
            const LossResult lat_loss =
                ScaledMseLoss(lat_pred, lat_target, opts.loss_knee,
                              opts.loss_alpha, opts.loss_leak);
            LossResult viol_loss =
                BceWithLogitsLoss(viol_logit, viol_target);
            // Joint objective: the classification head's gradient is
            // weighted up, as tuning it for violation recall requires —
            // which is what interferes with the latency head.
            viol_loss.grad.Scale(3.0f);
            sgd.ZeroGrad();
            net.Backward(lat_loss.grad, viol_loss.grad);
            sgd.Step();
        }
        sgd.SetLearningRate(sgd.LearningRate() * opts.lr_decay);
    }
}

} // namespace
} // namespace sinan

int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 4 — multi-task NN latency overprediction",
        "Fig. 4: joint latency+violation model vs Sinan's two-stage CNN");

    const Application app = BuildSocialNetwork();
    const PipelineConfig pcfg = bench::SocialPipeline();

    FeatureConfig f;
    f.n_tiers = static_cast<int>(app.tiers.size());
    f.history = pcfg.history;
    f.violation_lookahead = pcfg.violation_lookahead;
    f.qos_ms = app.qos_ms;

    CollectionConfig col;
    col.duration_s = pcfg.collect_s;
    col.users_min = pcfg.users_min;
    col.users_max = pcfg.users_max;
    col.features = f;
    col.seed = pcfg.seed;
    BanditConfig bcfg;
    bcfg.qos_ms = app.qos_ms;
    BanditExplorer bandit(bcfg);
    std::printf("collecting dataset...\n");
    const Dataset all = Collect(app, bandit, col);
    Rng rng(pcfg.seed ^ 0x5eed);
    const auto [train, valid] = all.Split(0.9, rng);

    std::printf("training multi-task NN and CNN (%zu samples)...\n",
                train.samples.size());
    MultiTaskNn multitask(f, 7);
    // The multi-task baseline is trained the way the paper describes:
    // the pure Eq. 2 scaling (no gradient leak above the knee) jointly
    // with the violation head. The vanishing gradient above the knee is
    // exactly what lets overpredictions persist; Sinan's production CNN
    // uses the leak (see DESIGN.md item 3).
    TrainOptions mt_opts = pcfg.hybrid.train;
    mt_opts.loss_leak = 0.0;
    TrainMultiTask(multitask, train, mt_opts);

    SinanCnn cnn(f, SinanCnnConfig{}, 7);
    TrainLatencyModel(cnn, train, valid, f, pcfg.hybrid.train);

    // Evaluate p99 predictions on validation samples that met QoS (the
    // region where Fig. 4's overprediction is visible).
    double mt_bias = 0.0, mt_abs = 0.0, cnn_bias = 0.0, cnn_abs = 0.0;
    int n = 0;
    std::vector<int> idx(valid.samples.size());
    std::iota(idx.begin(), idx.end(), 0);
    for (size_t begin = 0; begin < idx.size(); begin += 128) {
        const size_t end = std::min(begin + 128, idx.size());
        const Batch batch = valid.MakeBatch(idx, begin, end);
        Tensor mt_lat, mt_viol;
        multitask.Forward(batch, mt_lat, mt_viol);
        const Tensor cnn_lat = cnn.Forward(batch);
        const int m = mt_lat.Dim(1);
        for (size_t i = begin; i < end; ++i) {
            const Sample& s = valid.samples[idx[i]];
            if (s.p99_ms > app.qos_ms)
                continue;
            const int row = static_cast<int>(i - begin);
            const double truth =
                static_cast<double>(s.y_latency.back()) * f.qos_ms;
            const double mt =
                static_cast<double>(mt_lat.At(row, m - 1)) * f.qos_ms;
            const double cn =
                static_cast<double>(cnn_lat.At(row, m - 1)) *
                f.qos_ms;
            mt_bias += mt - truth;
            mt_abs += std::abs(mt - truth);
            cnn_bias += cn - truth;
            cnn_abs += std::abs(cn - truth);
            ++n;
        }
    }
    TextTable t({"model", "mean bias(ms)", "mean |err|(ms)"});
    t.Row().Add("multi-task NN").Add(mt_bias / n, 1).Add(mt_abs / n, 1);
    t.Row().Add("Sinan CNN").Add(cnn_bias / n, 1).Add(cnn_abs / n, 1);
    std::printf("\nvalidation samples meeting QoS (n=%d):\n%s", n,
                t.Render().c_str());
    std::printf(
        "\nPaper's shape: the multi-task model overpredicts latency "
        "(large positive bias). In this reproduction the clipped "
        "training targets and bounded feature ranges largely suppress "
        "the pathology (see DESIGN.md item 3/7) — the joint model's "
        "bias stays moderate. The structural remedy the paper draws "
        "from this figure (separate CNN + BT stages) is validated "
        "end-to-end by Table 3 and the Figure 11 runs instead.\n");
    return 0;
}
