/**
 * @file
 * Reproduces Figure 14: average CPU allocation of Sinan on the
 * "GCE-scale" Social Network deployment (slower cores, scaled-out
 * replicas, fine-tuned model per Sec. 5.4) for the four request mixes
 * W0..W3 across the user sweep.
 *
 * Expected shape: allocation grows with load for every mix; W1
 * (compose-heavy) needs the most CPU, W2 (read-heavy) the least.
 */
#include <cstdio>

#include "bench_util.h"
#include "collect/bandit.h"
#include "collect/collector.h"
#include "common/table.h"
#include "core/scheduler.h"


int
main()
{
    using namespace sinan;
    bench::PrintHeader(
        "Figure 14 — Sinan on GCE: CPU allocation per request mix",
        "Fig. 14: mean CPU allocation, mixes W0..W3, 50..450 users");

    Application app = BuildSocialNetwork();
    ClusterConfig gce;
    gce.speed_factor = 0.85;
    gce.replica_scale = 2;
    TrainedSinan trained = bench::GceFineTunedSinan(app, gce);

    const auto mixes = SocialNetworkMixes();
    const auto loads = bench::SocialLoads();
    std::vector<std::string> headers = {"mix"};
    for (double u : loads)
        headers.push_back(FormatDouble(u, 0));
    TextTable mean_cpu(headers);
    TextTable meet(headers);

    for (size_t w = 0; w < mixes.size(); ++w) {
        SetRequestMix(app, mixes[w]);
        mean_cpu.Row().Add("W" + std::to_string(w));
        meet.Row().Add("W" + std::to_string(w));
        for (double users : loads) {
            SinanScheduler sinan(*trained.model, SchedulerConfig{});
            ConstantLoad load(users);
            RunConfig cfg;
            cfg.duration_s = bench::RunSeconds(80.0);
            cfg.warmup_s = 20.0;
            cfg.cluster = gce;
            cfg.seed = 40 + static_cast<uint64_t>(w);
            const RunResult r = RunManaged(app, sinan, load, cfg);
            mean_cpu.Add(r.mean_cpu, 1);
            meet.Add(r.qos_meet_prob, 2);
            std::printf("  W%zu users=%3.0f meanCPU=%6.1f P(meet)=%.2f\n",
                        w, users, r.mean_cpu, r.qos_meet_prob);
        }
    }
    std::printf("\nmean CPU allocation (cores):\n%s",
                mean_cpu.Render().c_str());
    std::printf("\nP(meet QoS):\n%s", meet.Render().c_str());
    return 0;
}
