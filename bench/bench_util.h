/**
 * @file
 * Shared infrastructure for the reproduction benches: canonical
 * pipeline configurations for both applications, a disk cache for
 * trained hybrid models (several benches need the same model; training
 * it once keeps the suite's runtime reasonable), and small printing
 * helpers.
 *
 * Every bench binary regenerates one table or figure of the paper; see
 * DESIGN.md's experiment index for the mapping.
 */
#ifndef SINAN_BENCH_BENCH_UTIL_H
#define SINAN_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <map>
#include <string>

#include "app/apps.h"
#include "harness/harness.h"

namespace sinan {
namespace bench {

/**
 * Wall-clock stopwatch for bench measurement. Every bench binary times
 * through this type so the actual clock reads stay inside
 * bench/bench_util.cc — the one bench file on the analyzer's timing
 * quarantine (tools/analyze/timing_quarantine.txt). Measured values
 * are reporting-only and must never reach a deterministic
 * serialization.
 */
class Stopwatch {
  public:
    /** Construction starts the watch. */
    Stopwatch();

    /** Restarts the watch (for lap-style segment timing). */
    void Restart();

    /** Seconds elapsed since construction / the last Restart(). */
    double Seconds() const;

    /** Milliseconds elapsed since construction / the last Restart(). */
    double Millis() const;

  private:
    int64_t start_ns_ = 0;
};

/** Canonical collection/training pipeline for the Social Network. */
PipelineConfig SocialPipeline(uint64_t seed = 42);

/** Canonical collection/training pipeline for Hotel Reservation. */
PipelineConfig HotelPipeline(uint64_t seed = 42);

/**
 * Returns a trained Sinan for @p app, loading the hybrid-model weights
 * from `bench_cache/<cache_key>.model` when present. On a cache hit the
 * returned datasets and report are empty — benches that need them
 * collect their own data. Pass an empty key to disable caching.
 */
TrainedSinan GetTrainedSinan(const Application& app,
                             const PipelineConfig& cfg,
                             const std::string& cache_key);

/**
 * Loads the cached base Social Network model and fine-tunes it for the
 * GCE platform (Sec. 5.4's transfer-learning step). Shared by the
 * Figure 14 and Figure 15 benches.
 */
TrainedSinan GceFineTunedSinan(const Application& app, ClusterConfig gce);

/** The paper's Figure 11 load points (emulated users). */
std::vector<double> HotelLoads();
std::vector<double> SocialLoads();

/**
 * Runs the canonical four-manager comparison (Sinan, AutoScaleOpt,
 * AutoScaleCons, PowerChief) across @p loads, concurrently on the
 * global thread pool (each run gets a private manager — Sinan runs
 * clone the hybrid model). Results per manager are ordered like
 * @p loads; every run is seeded, so output matches a serial sweep.
 */
std::map<std::string, std::vector<RunResult>>
SweepManagersAcrossLoads(const Application& app, const TrainedSinan& trained,
                         const std::vector<double>& loads,
                         double duration_s, uint64_t seed = 7);

/**
 * Runs Sinan and AutoScaleCons (the QoS-meeting managers of Fig. 11)
 * under every named chaos scenario (see sim/fault_injector.h) at a
 * fixed load. Results per manager are ordered like ChaosScenarios().
 * Seeded and deterministic like the load sweep.
 */
std::map<std::string, std::vector<RunResult>>
SweepManagersAcrossFaults(const Application& app,
                          const TrainedSinan& trained, double users,
                          double duration_s, uint64_t seed = 7);

/** Prints a section header for bench output. */
void PrintHeader(const std::string& title, const std::string& paper_ref);

/** One candidate-count point of the inference-speed sweep. */
struct InferenceBenchRow {
    int candidates = 0;
    /** Legacy full-batch Evaluate, per call. */
    double legacy_ms = 0.0;
    /** Cached-trunk fast-path Evaluate, per call. */
    double cached_ms = 0.0;
    /** Fast-path stage breakdown, per call. */
    double feature_ms = 0.0;
    double trunk_ms = 0.0;
    double head_ms = 0.0;
    double bt_ms = 0.0;
    /** Trunk stage re-measured under forced-scalar dispatch (equals
     *  trunk_ms when the active kernel is already scalar). */
    double scalar_trunk_ms = 0.0;
    /** Quantized (--quant int8) fast path, per call; 0 when the model
     *  carries no calibration. */
    double int8_cached_ms = 0.0;
    double int8_trunk_ms = 0.0;
    /** Int8 trunk under forced-scalar dispatch. */
    double int8_scalar_trunk_ms = 0.0;
};

/**
 * Writes the machine-readable inference-speed dump (consumed by the
 * CI perf-smoke job and the README perf table). Deterministic
 * formatting; one object with a "sweep" array ordered like @p rows.
 * Schema 2 adds the microkernel id that produced the timings (see
 * common/cpu_features.h) and the per-row forced-scalar trunk time.
 * Schema 3 adds the int8 kernel id and a per-row "int8" object
 * (cached/trunk/scalar-trunk times of the quantized path); int8_measured
 * is false (and the per-row objects hold zeros) when the model carries
 * no calibration.
 */
void WriteInferenceJson(const std::string& path,
                        const std::string& model_name,
                        const std::string& kernel_id,
                        const std::string& int8_kernel_id,
                        bool int8_measured,
                        double interval_budget_ms,
                        const std::vector<InferenceBenchRow>& rows);

/**
 * True when SINAN_BENCH_FAST=1: benches shrink collection time, training
 * epochs, and run durations for quick iteration. The shipped numbers in
 * EXPERIMENTS.md come from full (non-fast) runs.
 */
bool FastMode();

/** Managed-run duration in seconds (shorter in fast mode). */
double RunSeconds(double full = 100.0);

} // namespace bench
} // namespace sinan

#endif // SINAN_BENCH_BENCH_UTIL_H
