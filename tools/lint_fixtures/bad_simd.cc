// lint-expect: raw-simd-intrinsic
// Vector intrinsics outside the blessed kernel TU: everything except
// src/tensor/gemm_avx2.cc must call the dispatched kernels in
// tensor/gemm_kernels.h instead.
void
LoadEight(const float* p, float* out)
{
    __m256 v = _mm256_loadu_ps(p);
    _mm256_storeu_ps(out, v);
}
