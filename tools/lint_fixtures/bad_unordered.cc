// lint-expect: no-unordered-container
#include <string>
#include <unordered_map>

std::unordered_map<std::string, int> counters;
