// lint-expect: narrowing-cast-in-header
#ifndef SINAN_TOOLS_LINT_FIXTURES_BAD_CAST_H
#define SINAN_TOOLS_LINT_FIXTURES_BAD_CAST_H

inline int
Truncate(float v)
{
    return (int)v;
}

#endif
