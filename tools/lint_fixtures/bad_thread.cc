// lint-expect: no-raw-thread
#include <thread>

void
Spawn()
{
    std::thread t([] {});
    t.join();
}
