// lint-expect: no-raw-assert
#include <cassert>

void
Check(int n)
{
    assert(n > 0);
}
