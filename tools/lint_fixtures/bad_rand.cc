// lint-expect: no-std-rand
#include <cstdlib>

int
Roll()
{
    return std::rand() % 6;
}
