// lint-expect: missing-include-guard

inline int
Answer()
{
    return 42;
}
