/**
 * @file
 * Loaders for the three sinan_analyze configuration files under
 * tools/analyze/:
 *
 *  - layers.txt: one layer per non-comment line, bottom first; each
 *    line lists the src/ subdirectories of that layer.
 *  - timing_quarantine.txt: `<path> -- <justification>` — the files
 *    blessed to read the wall clock.
 *  - allowlist.txt: `<rule> <path> -- <justification>` — scoped
 *    exceptions to any rule.
 *
 * Every exception entry must carry a justification after ` -- `; a
 * missing or empty justification, an unknown rule id, or an unreadable
 * file is a config error and fails the run exactly like a finding.
 */
#include "analyze.h"

#include <fstream>
#include <sstream>

namespace sinan {
namespace analyze {

namespace {

/** Splits `head -- justification`; returns false when the separator
 *  or the justification is missing. */
bool
SplitJustified(const std::string& line, std::string* head,
               std::string* justification)
{
    const size_t sep = line.find(" -- ");
    if (sep == std::string::npos)
        return false;
    *head = line.substr(0, sep);
    *justification = line.substr(sep + 4);
    while (!justification->empty() && justification->front() == ' ')
        justification->erase(justification->begin());
    while (!head->empty() && head->back() == ' ')
        head->pop_back();
    return !justification->empty();
}

bool
KnownRule(const std::string& rule)
{
    for (const RuleInfo& r : Rules()) {
        if (rule == r.id)
            return true;
    }
    return false;
}

} // namespace

Config
LoadConfig(const std::filesystem::path& root)
{
    Config cfg;
    const std::filesystem::path dir = root / "tools" / "analyze";

    // layers.txt
    {
        std::ifstream in(dir / "layers.txt");
        if (!in) {
            cfg.errors.push_back(
                "cannot read tools/analyze/layers.txt");
        } else {
            std::string line;
            while (std::getline(in, line)) {
                if (line.empty() || line[0] == '#')
                    continue;
                std::istringstream row(line);
                std::vector<std::string> group;
                std::string dir_name;
                while (row >> dir_name)
                    group.push_back(dir_name);
                if (group.empty())
                    continue;
                const int level =
                    static_cast<int>(cfg.layers.size());
                for (const std::string& d : group) {
                    if (!cfg.layer_of.emplace(d, level).second)
                        cfg.errors.push_back(
                            "layers.txt: directory '" + d +
                            "' appears in more than one layer");
                }
                cfg.layers.push_back(std::move(group));
            }
            if (cfg.layers.empty())
                cfg.errors.push_back(
                    "tools/analyze/layers.txt declares no layers");
        }
    }

    // timing_quarantine.txt
    {
        std::ifstream in(dir / "timing_quarantine.txt");
        if (!in) {
            cfg.errors.push_back(
                "cannot read tools/analyze/timing_quarantine.txt");
        } else {
            std::string line;
            while (std::getline(in, line)) {
                if (line.empty() || line[0] == '#')
                    continue;
                std::string path, why;
                if (!SplitJustified(line, &path, &why)) {
                    cfg.errors.push_back(
                        "timing_quarantine.txt entry missing "
                        "justification: " + line);
                    continue;
                }
                cfg.timing_quarantine.emplace(path, why);
            }
        }
    }

    // allowlist.txt
    {
        std::ifstream in(dir / "allowlist.txt");
        if (!in) {
            cfg.errors.push_back(
                "cannot read tools/analyze/allowlist.txt");
        } else {
            std::string line;
            while (std::getline(in, line)) {
                if (line.empty() || line[0] == '#')
                    continue;
                std::string head, why;
                if (!SplitJustified(line, &head, &why)) {
                    cfg.errors.push_back(
                        "allowlist.txt entry missing justification: " +
                        line);
                    continue;
                }
                std::istringstream row(head);
                std::string rule, path, extra;
                if (!(row >> rule >> path) || (row >> extra)) {
                    cfg.errors.push_back(
                        "allowlist.txt entry is not '<rule> <path> -- "
                        "<justification>': " + line);
                    continue;
                }
                if (!KnownRule(rule)) {
                    cfg.errors.push_back(
                        "allowlist.txt names unknown rule '" + rule +
                        "'");
                    continue;
                }
                cfg.allowlist.emplace(std::make_pair(rule, path), why);
            }
        }
    }

    return cfg;
}

} // namespace analyze
} // namespace sinan
