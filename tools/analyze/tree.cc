/**
 * @file
 * The full-tree driver of sinan_analyze: walks the first-party roots,
 * tokenizes every .cc/.h/.cpp, runs the per-file passes, collects the
 * src/-internal include graph for the layering passes, then applies
 * the two suppression layers —
 *
 *  1. the timing quarantine (wall-clock-read findings in blessed
 *     files), and
 *  2. the allowlist (any rule, scoped to one file) —
 *
 * tracking which entries matched. An exception that no longer matches
 * any finding is stale and fails the run: exceptions must not outlive
 * the code they excuse.
 */
#include "analyze.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace sinan {
namespace analyze {

namespace {

namespace fs = std::filesystem;

std::string
ReadFile(const fs::path& p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
AnalyzableFile(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp";
}

bool
IsHeader(const std::string& rel)
{
    return rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
}

/** Project include targets look like "dir/file.h" and resolve against
 *  src/; system and third-party includes are angled or have no '/'. */
bool
ProjectInclude(const Token& t)
{
    return t.kind == TokenKind::kIncludePath && !t.angled &&
           t.text.find('/') != std::string::npos;
}

} // namespace

Report
AnalyzeTree(const fs::path& root)
{
    Report report;
    const Config cfg = LoadConfig(root);
    report.errors = cfg.errors;

    std::vector<Finding> raw;
    std::vector<IncludeEdge> edges;

    static const char* kRoots[] = {"src", "tools", "tests", "bench",
                                   "examples"};
    for (const char* dir : kRoots) {
        const fs::path base = root / dir;
        if (!fs::exists(base))
            continue;
        std::vector<fs::path> files;
        for (const auto& ent : fs::recursive_directory_iterator(base)) {
            if (ent.is_regular_file() && AnalyzableFile(ent.path()))
                files.push_back(ent.path());
        }
        // Directory iteration order is filesystem-dependent; sort so
        // the report (and the SARIF bytes) never depend on it.
        std::sort(files.begin(), files.end());
        for (const fs::path& p : files) {
            const std::string rel =
                fs::relative(p, root).generic_string();
            // Fixtures violate rules on purpose (the self-test is
            // their enforcement point).
            if (rel.find("tools/analyze/fixtures") != std::string::npos)
                continue;
            ++report.files_scanned;
            const std::vector<Token> tokens = Tokenize(ReadFile(p));
            FileContext ctx;
            ctx.rel = rel;
            ctx.is_header = IsHeader(rel);
            std::vector<Finding> fs_ = RunFilePasses(ctx, tokens);
            raw.insert(raw.end(),
                       std::make_move_iterator(fs_.begin()),
                       std::make_move_iterator(fs_.end()));
            if (rel.compare(0, 4, "src/") == 0) {
                const std::string src_rel = rel.substr(4);
                for (const Token& t : tokens) {
                    if (!ProjectInclude(t))
                        continue;
                    IncludeEdge e;
                    e.from = src_rel;
                    e.to = t.text;
                    e.line = t.line;
                    edges.push_back(std::move(e));
                }
            }
        }
    }

    {
        std::vector<Finding> graph = RunGraphPasses(cfg, edges);
        raw.insert(raw.end(),
                   std::make_move_iterator(graph.begin()),
                   std::make_move_iterator(graph.end()));
    }

    // Suppression layer 1: the timing quarantine.
    std::set<std::string> quarantine_used;
    // Suppression layer 2: the allowlist.
    std::set<std::pair<std::string, std::string>> allowlist_used;
    for (Finding& f : raw) {
        if (f.rule == "wall-clock-read" &&
            cfg.timing_quarantine.count(f.path) != 0) {
            quarantine_used.insert(f.path);
            continue;
        }
        const std::pair<std::string, std::string> key{f.rule, f.path};
        if (cfg.allowlist.count(key) != 0) {
            allowlist_used.insert(key);
            continue;
        }
        report.findings.push_back(std::move(f));
    }
    std::sort(report.findings.begin(), report.findings.end(),
              FindingLess);

    for (const auto& [path, why] : cfg.timing_quarantine) {
        (void)why;
        if (quarantine_used.count(path) == 0)
            report.errors.push_back(
                "stale timing-quarantine entry (no wall-clock read "
                "left in file): " + path);
    }
    for (const auto& [key, why] : cfg.allowlist) {
        (void)why;
        if (allowlist_used.count(key) == 0)
            report.errors.push_back("stale allowlist entry: " +
                                    key.first + " " + key.second);
    }
    return report;
}

} // namespace analyze
} // namespace sinan
