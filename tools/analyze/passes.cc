/**
 * @file
 * Per-file token passes of sinan_analyze: the seven legacy project
 * rules re-hosted on the token stream, the determinism-source audit,
 * and the header hygiene rules. Scope policy (which roots a rule
 * applies to, which files are blessed in-rule) lives here next to each
 * rule; per-file exceptions live in the allowlist and the timing
 * quarantine, applied by AnalyzeTree.
 */
#include "analyze.h"

#include <algorithm>

namespace sinan {
namespace analyze {

bool
FindingLess(const Finding& a, const Finding& b)
{
    if (a.path != b.path)
        return a.path < b.path;
    if (a.line != b.line)
        return a.line < b.line;
    return a.rule < b.rule;
}

const std::vector<RuleInfo>&
Rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"no-std-rand",
         "rand()/std::rand share hidden global state; all randomness "
         "flows through common/rng.h so runs are replayable."},
        {"no-raw-assert",
         "assert() vanishes under NDEBUG and ctest runs Release; use "
         "SINAN_CHECK / SINAN_DCHECK (common/check.h)."},
        {"no-unordered-container",
         "unordered_{map,set} iteration order is implementation-"
         "defined and breaks byte-determinism on any log path; use "
         "std::map / std::set."},
        {"no-raw-thread",
         "every thread is owned by the shared pool in "
         "common/thread_pool; ad-hoc std::thread breaks the pool's "
         "determinism and TSan story."},
        {"narrowing-cast-in-header",
         "C-style numeric casts in public headers hide float<->int "
         "narrowing from -Wconversion; use static_cast."},
        {"missing-include-guard",
         "every header needs #ifndef/#define or #pragma once."},
        {"raw-simd-intrinsic",
         "vector intrinsics are confined to src/tensor/gemm_avx2.cc "
         "and src/tensor/gemm_int8_avx2.cc; everywhere else goes "
         "through the dispatched kernels so the scalar bit-parity "
         "contract stays auditable in one place."},
        {"no-random-device",
         "std::random_device is a nondeterministic entropy source; "
         "seeds come from configuration so runs are replayable."},
        {"wall-clock-read",
         "wall-clock reads outside the timing quarantine "
         "(tools/analyze/timing_quarantine.txt) can leak "
         "nondeterminism into telemetry; measurement code must be "
         "quarantined with a justification."},
        {"getenv-outside-config",
         "environment reads in src/ are confined to "
         "common/cpu_features.cc and the CLI so a run's behaviour is "
         "fully determined by its flags and seeds."},
        {"thread-local-outside-pool",
         "thread_local state outside common/thread_pool makes results "
         "depend on which worker ran a task."},
        {"volatile-outside-pool",
         "volatile is not a synchronization primitive; concurrency "
         "goes through the pool and std::atomic."},
        {"pointer-keyed-container",
         "std::map/std::set keyed by pointers iterate in allocation-"
         "address order, which varies run to run; key by index or id."},
        {"header-non-inline-definition",
         "non-inline, non-template function definitions at namespace "
         "scope in a header violate the ODR once the header has two "
         "includers; mark inline or move to a .cc."},
        {"missing-namespace-sinan",
         "every src/ header contributes to namespace sinan; a header "
         "without it leaks symbols into the global namespace."},
        {"layering-upward-include",
         "include edge points to a higher layer than the including "
         "directory (see tools/analyze/layers.txt); invert the "
         "dependency or move the shared type down."},
        {"layering-unknown-dir",
         "src/ directory is not declared in tools/analyze/layers.txt; "
         "add it to a layer."},
        {"include-cycle",
         "project headers include each other in a cycle."},
    };
    return kRules;
}

namespace {

bool
StartsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

bool
PathContains(const std::string& path, const std::string& part)
{
    return path.find(part) != std::string::npos;
}

bool
IsIdent(const Token& t, const char* text)
{
    return t.kind == TokenKind::kIdent && t.text == text;
}

bool
IsPunct(const Token& t, const char* text)
{
    return t.kind == TokenKind::kPunct && t.text == text;
}

/** Matches `std :: name` ending at index @p i of `name`. */
bool
IsStdQualified(const std::vector<Token>& toks, size_t i)
{
    return i >= 2 && IsPunct(toks[i - 1], "::") &&
           IsIdent(toks[i - 2], "std");
}

class FilePass {
  public:
    FilePass(const FileContext& ctx, const std::vector<Token>& toks)
        : ctx_(ctx), toks_(toks)
    {
    }

    std::vector<Finding>
    Run()
    {
        const bool in_thread_pool =
            PathContains(ctx_.rel, "common/thread_pool");
        const bool in_simd_kernel =
            PathContains(ctx_.rel, "tensor/gemm_avx2.cc") ||
            PathContains(ctx_.rel, "tensor/gemm_int8_avx2.cc");
        const bool in_src = StartsWith(ctx_.rel, "src/");
        const bool getenv_blessed =
            ctx_.rel == "src/common/cpu_features.cc" ||
            StartsWith(ctx_.rel, "src/cli/");

        for (size_t i = 0; i < toks_.size(); ++i) {
            const Token& t = toks_[i];
            if (t.kind != TokenKind::kIdent)
                continue;
            const std::string& id = t.text;

            if ((id == "rand" || id == "srand") &&
                (NextIsPunct(i, "(") || IsStdQualified(toks_, i)))
                Add("no-std-rand", t.line,
                    "call to " + id + "(); use common/rng.h");
            if (id == "assert" && NextIsPunct(i, "("))
                Add("no-raw-assert", t.line,
                    "raw assert(); use SINAN_CHECK / SINAN_DCHECK");
            if (id == "unordered_map" || id == "unordered_set")
                Add("no-unordered-container", t.line,
                    "std::" + id + " has nondeterministic iteration "
                    "order; use the ordered container");
            if (!in_thread_pool && id == "thread" &&
                IsStdQualified(toks_, i) &&
                !(NextIsPunct(i, "::") &&
                  IsIdentAt(i + 2, "hardware_concurrency")))
                Add("no-raw-thread", t.line,
                    "raw std::thread; use the shared pool in "
                    "common/thread_pool.h");
            if (!in_simd_kernel && IsIntrinsic(id))
                Add("raw-simd-intrinsic", t.line,
                    "vector intrinsic '" + id + "' outside the "
                    "src/tensor intrinsics TUs (gemm_avx2.cc, "
                    "gemm_int8_avx2.cc)");
            if (id == "random_device")
                Add("no-random-device", t.line,
                    "std::random_device is nondeterministic; seed "
                    "from configuration");
            if (IsClockIdent(id))
                Add("wall-clock-read", t.line,
                    "wall-clock source '" + id + "' outside the "
                    "timing quarantine");
            if (in_src && !getenv_blessed &&
                (id == "getenv" || id == "secure_getenv"))
                Add("getenv-outside-config", t.line,
                    "getenv outside common/cpu_features.cc and "
                    "src/cli/");
            if (in_src && !in_thread_pool && id == "thread_local")
                Add("thread-local-outside-pool", t.line,
                    "thread_local outside common/thread_pool");
            if (in_src && !in_thread_pool && id == "volatile")
                Add("volatile-outside-pool", t.line,
                    "volatile outside common/thread_pool");
            if ((id == "map" || id == "set") &&
                IsStdQualified(toks_, i) && NextIsPunct(i, "<") &&
                PointerFirstArg(i + 1))
                Add("pointer-keyed-container", t.line,
                    "std::" + id + " keyed by a pointer type iterates "
                    "in address order");
        }

        if (ctx_.is_header && in_src)
            NumericCastPass();
        if (ctx_.is_header)
            IncludeGuardPass();
        if (ctx_.is_header)
            HeaderDefinitionPass();
        if (ctx_.is_header && in_src && !AnyNamespaceSinan())
            Add("missing-namespace-sinan", 1,
                "src/ header does not open namespace sinan");

        std::sort(findings_.begin(), findings_.end(), FindingLess);
        return std::move(findings_);
    }

  private:
    void
    Add(const char* rule, int line, std::string message)
    {
        Finding f;
        f.rule = rule;
        f.path = ctx_.rel;
        f.line = line;
        f.message = std::move(message);
        findings_.push_back(std::move(f));
    }

    bool
    IsIdentAt(size_t i, const char* text) const
    {
        return i < toks_.size() && IsIdent(toks_[i], text);
    }

    bool
    NextIsPunct(size_t i, const char* text) const
    {
        return i + 1 < toks_.size() && IsPunct(toks_[i + 1], text);
    }

    static bool
    IsIntrinsic(const std::string& id)
    {
        return StartsWith(id, "_mm_") || StartsWith(id, "_mm256_") ||
               StartsWith(id, "_mm512_") || StartsWith(id, "__m128") ||
               StartsWith(id, "__m256") || StartsWith(id, "__m512");
    }

    static bool
    IsClockIdent(const std::string& id)
    {
        return id == "steady_clock" || id == "system_clock" ||
               id == "high_resolution_clock" || id == "clock_gettime" ||
               id == "gettimeofday" || id == "timespec_get";
    }

    /** With toks_[open] == '<' after std::map/std::set: true when the
     *  first template argument is a pointer type ('*' at depth 1). */
    bool
    PointerFirstArg(size_t open) const
    {
        int depth = 1;
        for (size_t j = open + 1; j < toks_.size() && depth > 0; ++j) {
            const Token& t = toks_[j];
            if (t.kind != TokenKind::kPunct)
                continue;
            if (t.text == "<")
                ++depth;
            else if (t.text == ">")
                --depth;
            else if (t.text == ";" || t.text == "{")
                break; // not a template argument list after all
            else if (depth == 1 && t.text == ",")
                break; // end of the key argument
            else if (depth == 1 && t.text == "*")
                return true;
        }
        return false;
    }

    bool
    AnyNamespaceSinan() const
    {
        for (size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (IsIdent(toks_[i], "namespace") &&
                IsIdent(toks_[i + 1], "sinan"))
                return true;
        }
        return false;
    }

    /**
     * C-style numeric casts in src/ headers, including namespace-
     * qualified forms like (std::size_t)x: a parenthesized run of
     * type tokens applied to an operand and not preceded by a call or
     * template-argument context.
     */
    void
    NumericCastPass()
    {
        static const std::set<std::string> kNumericTypes = {
            "int",      "float",    "double",   "long",     "short",
            "char",     "unsigned", "signed",   "size_t",   "ssize_t",
            "ptrdiff_t", "int8_t",  "int16_t",  "int32_t",  "int64_t",
            "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "intptr_t",
            "uintptr_t"};
        for (size_t i = 0; i + 2 < toks_.size(); ++i) {
            if (!IsPunct(toks_[i], "("))
                continue;
            // Collect up to five type tokens inside the parens.
            size_t j = i + 1;
            bool numeric = false, only_type_tokens = true;
            size_t n_tokens = 0;
            while (j < toks_.size() && n_tokens < 5) {
                const Token& t = toks_[j];
                if (IsPunct(t, ")"))
                    break;
                const bool type_tok =
                    IsPunct(t, "::") || IsIdent(t, "std") ||
                    (t.kind == TokenKind::kIdent &&
                     kNumericTypes.count(t.text) != 0);
                if (!type_tok) {
                    only_type_tokens = false;
                    break;
                }
                if (t.kind == TokenKind::kIdent &&
                    kNumericTypes.count(t.text) != 0)
                    numeric = true;
                ++j;
                ++n_tokens;
            }
            if (!only_type_tokens || !numeric || n_tokens == 0 ||
                j >= toks_.size() || !IsPunct(toks_[j], ")"))
                continue;
            // Applied to an operand: next token is a value, not ',',
            // ')' or ';' (which would make this a parameter list).
            const bool applied =
                j + 1 < toks_.size() &&
                (toks_[j + 1].kind == TokenKind::kIdent ||
                 toks_[j + 1].kind == TokenKind::kNumber ||
                 IsPunct(toks_[j + 1], "("));
            // Not a call `F(int)` / cast result `(x)(int)` / template
            // context `Foo<int>(int)`.
            const bool preceded =
                i > 0 && (toks_[i - 1].kind == TokenKind::kIdent ||
                          toks_[i - 1].kind == TokenKind::kNumber ||
                          IsPunct(toks_[i - 1], ")") ||
                          IsPunct(toks_[i - 1], ">") ||
                          IsPunct(toks_[i - 1], "]"));
            if (applied && !preceded)
                Add("narrowing-cast-in-header", toks_[i].line,
                    "C-style numeric cast in a src/ header; use "
                    "static_cast");
        }
    }

    void
    IncludeGuardPass()
    {
        bool has_ifndef = false, has_define = false, pragma_once = false;
        for (size_t i = 0; i < toks_.size(); ++i) {
            const Token& t = toks_[i];
            if (t.kind != TokenKind::kDirective)
                continue;
            if (t.text == "ifndef")
                has_ifndef = true;
            else if (t.text == "define")
                has_define = true;
            else if (t.text == "pragma" && IsIdentAt(i + 1, "once"))
                pragma_once = true;
        }
        if (!pragma_once && !(has_ifndef && has_define))
            Add("missing-include-guard", 1,
                "header lacks #ifndef/#define or #pragma once");
    }

    /**
     * Flags non-inline, non-template function definitions at namespace
     * scope in headers. Token heuristic: track a scope stack; at
     * namespace scope a '{' terminating a statement that contains a
     * parameter list — and none of the markers that make a definition
     * ODR-safe (inline/constexpr/consteval/template/static) or turn
     * the brace into something else (class key, enum, '=') — is a
     * function definition.
     */
    void
    HeaderDefinitionPass()
    {
        enum class Scope { kNamespace, kClass, kOther };
        std::vector<Scope> scopes; // file scope behaves as kNamespace

        // Statement window since the last boundary (; { } or
        // directive), kept as flags plus the brace's predecessor.
        bool has_paren_pair = false;
        bool safe_marker = false; // inline/constexpr/template/static...
        bool class_key = false, enum_key = false, namespace_key = false;
        bool has_assign = false;
        int paren_depth = 0;
        int stmt_line = 0;
        const Token* prev_sig = nullptr; // last non-directive token

        auto reset = [&]() {
            has_paren_pair = safe_marker = class_key = enum_key =
                namespace_key = has_assign = false;
            paren_depth = 0;
            stmt_line = 0;
        };

        auto at_namespace_scope = [&]() {
            return scopes.empty() || scopes.back() == Scope::kNamespace;
        };

        for (size_t i = 0; i < toks_.size(); ++i) {
            const Token& t = toks_[i];
            if (t.kind == TokenKind::kDirective ||
                t.kind == TokenKind::kIncludePath) {
                reset();
                continue;
            }
            if (stmt_line == 0)
                stmt_line = t.line;
            if (t.kind == TokenKind::kIdent) {
                if (t.text == "inline" || t.text == "constexpr" ||
                    t.text == "consteval" || t.text == "template" ||
                    t.text == "static" || t.text == "extern" ||
                    t.text == "friend" || t.text == "using" ||
                    t.text == "typedef" || t.text == "requires" ||
                    t.text == "concept")
                    safe_marker = true;
                else if (t.text == "class" || t.text == "struct" ||
                         t.text == "union")
                    class_key = true;
                else if (t.text == "enum")
                    enum_key = true;
                else if (t.text == "namespace")
                    namespace_key = true;
            } else if (t.kind == TokenKind::kPunct) {
                if (t.text == "(") {
                    ++paren_depth;
                } else if (t.text == ")") {
                    if (paren_depth > 0) {
                        --paren_depth;
                        if (paren_depth == 0)
                            has_paren_pair = true;
                    }
                } else if (t.text == "=") {
                    if (paren_depth == 0)
                        has_assign = true;
                } else if (t.text == ";" && paren_depth == 0) {
                    reset();
                    prev_sig = &t;
                    continue;
                } else if (t.text == "{" && paren_depth == 0) {
                    Scope entered = Scope::kOther;
                    if (namespace_key) {
                        entered = Scope::kNamespace;
                    } else if (enum_key) {
                        entered = Scope::kOther;
                    } else if (class_key && !has_paren_pair) {
                        entered = Scope::kClass;
                    } else if (!has_assign && has_paren_pair &&
                               at_namespace_scope() && prev_sig &&
                               FunctionBraceContext(*prev_sig)) {
                        if (!safe_marker)
                            Add("header-non-inline-definition",
                                stmt_line,
                                "non-inline function definition at "
                                "namespace scope in a header");
                        entered = Scope::kOther; // function body
                    }
                    scopes.push_back(entered);
                    reset();
                    prev_sig = &t;
                    continue;
                } else if (t.text == "}" && paren_depth == 0) {
                    // The paren_depth guard mirrors the '{' case: a
                    // default braced argument `= {}` inside a
                    // parameter list must not pop the class scope.
                    if (!scopes.empty())
                        scopes.pop_back();
                    reset();
                    prev_sig = &t;
                    continue;
                }
            }
            prev_sig = &t;
        }
    }

    /** The token immediately before a candidate function-body '{':
     *  ')' or a trailing qualifier/specifier chain. */
    static bool
    FunctionBraceContext(const Token& prev)
    {
        if (IsPunct(prev, ")"))
            return true;
        return prev.kind == TokenKind::kIdent &&
               (prev.text == "const" || prev.text == "noexcept" ||
                prev.text == "override" || prev.text == "final" ||
                prev.text == "try");
    }

    const FileContext& ctx_;
    const std::vector<Token>& toks_;
    std::vector<Finding> findings_;
};

} // namespace

std::vector<Finding>
RunFilePasses(const FileContext& ctx, const std::vector<Token>& tokens)
{
    return FilePass(ctx, tokens).Run();
}

} // namespace analyze
} // namespace sinan
