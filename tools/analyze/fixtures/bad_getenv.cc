// lint-expect: getenv-outside-config
#include <cstdlib>

namespace sinan {

inline bool
GetenvBad()
{
    return std::getenv("SINAN_FIXTURE") != nullptr;
}

} // namespace sinan
