// Tricky-but-legal constructs that must not produce findings: rule
// patterns inside strings, chars, and comments; digit separators;
// encoding-prefixed and raw literals; the blessed
// std::thread::hardware_concurrency query; static_assert (which is
// not assert); static_cast (which is not a C cast).
// lint-expect: none
#include <string>
#include <thread>

namespace sinan {

// std::rand() assert( steady_clock unordered_map — comment, ignored.

inline constexpr long long kBigCount = 1'000'000'000LL;
inline constexpr double kScaled = 0x1.8p3;

static_assert(sizeof(int) >= 4, "ILP32 or wider");

inline std::string
CleanPayload()
{
    std::string s = "std::rand() assert(1) volatile thread_local";
    s += u8"getenv(\"HOME\") std::random_device";
    s += R"(unordered_map<int,int> steady_clock::now() __m256)";
    s += 'x';
    return s;
}

inline unsigned
CleanWorkers()
{
    return std::thread::hardware_concurrency();
}

inline int
CleanCast(double v)
{
    return static_cast<int>(v);
}

} // namespace sinan
