// lint-expect: no-random-device
#include <random>

namespace sinan {

inline unsigned
RandomDeviceBad()
{
    std::random_device rd;
    return rd();
}

} // namespace sinan
