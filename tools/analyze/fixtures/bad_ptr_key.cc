// lint-expect: pointer-keyed-container
#include <map>

namespace sinan {

struct Node;

inline int
PtrKeyBad()
{
    std::map<Node*, int> by_address;
    return static_cast<int>(by_address.size());
}

} // namespace sinan
