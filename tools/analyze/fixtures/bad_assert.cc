// lint-expect: no-raw-assert
#include <cassert>

namespace sinan {

inline int
AssertBad(int v)
{
    assert(v > 0);
    return v;
}

} // namespace sinan
