// lint-expect: no-unordered-container
#include <unordered_map>

namespace sinan {

inline int
UnorderedBad()
{
    std::unordered_map<int, int> m;
    return static_cast<int>(m.size());
}

} // namespace sinan
