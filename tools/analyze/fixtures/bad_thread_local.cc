// lint-expect: thread-local-outside-pool

namespace sinan {

thread_local int per_worker_counter = 0;

inline int
ThreadLocalBad()
{
    return ++per_worker_counter;
}

} // namespace sinan
