// Regression for the raw-string handling bug in the legacy linter's
// StripCommentsAndStrings: the `/*`, `*/` and `//` inside the raw
// strings must not derail scanning, the multi-line raw string must
// advance the line counter, and the std::rand() below must be flagged
// on exactly the right line.
// lint-expect: no-std-rand
// lint-expect-line: 21
namespace sinan {

inline const char*
RawPayload()
{
    return R"sql(SELECT 1 /* not a comment */ -- // also not
FROM t WHERE s = ")still-inside"
)sql";
}

inline int
RawBad()
{
    return std::rand();
}

} // namespace sinan
