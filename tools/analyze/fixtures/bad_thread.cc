// lint-expect: no-raw-thread
#include <thread>

namespace sinan {

inline void
ThreadBad(void (*fn)())
{
    std::thread worker(fn);
    worker.join();
}

} // namespace sinan
