// lint-expect: none
#ifndef SINAN_ANALYZE_TREE_FIXTURE_COMMON_BASE_H
#define SINAN_ANALYZE_TREE_FIXTURE_COMMON_BASE_H

namespace sinan {

struct Base {
    int value = 0;
};

} // namespace sinan

#endif
