// Half of an include cycle; the finding is anchored here because this
// is the lexicographically smallest member.
// lint-expect: include-cycle
#ifndef SINAN_ANALYZE_TREE_FIXTURE_COMMON_CYCLE_A_H
#define SINAN_ANALYZE_TREE_FIXTURE_COMMON_CYCLE_A_H

#include "common/cycle_b.h"

namespace sinan {

struct CycleA {
    int a = 0;
};

} // namespace sinan

#endif
