// Other half of the include cycle: reported once, at the anchor, so
// this file must stay clean.
// lint-expect: none
#ifndef SINAN_ANALYZE_TREE_FIXTURE_COMMON_CYCLE_B_H
#define SINAN_ANALYZE_TREE_FIXTURE_COMMON_CYCLE_B_H

#include "common/cycle_a.h"

namespace sinan {

struct CycleB {
    int b = 0;
};

} // namespace sinan

#endif
