// src/rogue is not declared in the tree's layers.txt: new subsystems
// must declare a layer before they can include anything.
// lint-expect: layering-unknown-dir
#include "common/base.h"

namespace sinan {

inline int
RogueValue()
{
    return Base{}.value;
}

} // namespace sinan
