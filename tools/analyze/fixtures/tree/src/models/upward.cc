// models (layer 1) reaching up into app (layer 2): the dependency
// inversion the layering pass exists to catch.
// lint-expect: layering-upward-include
#include "app/top.h"

namespace sinan {

inline int
UpwardBad()
{
    return TopValue();
}

} // namespace sinan
