// Unquarantined wall-clock read: must fire.
// lint-expect: wall-clock-read
#include <chrono>

namespace sinan {

inline long long
ClockyNs()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace sinan
