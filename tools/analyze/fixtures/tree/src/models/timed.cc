// Quarantined measurement file: the steady_clock reads below must be
// suppressed by the tree's timing_quarantine.txt entry (and keep that
// entry non-stale).
// lint-expect: none
#include <chrono>

namespace sinan {

inline long long
TimedNs()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::steady_clock::now();
    return (t1 - t0).count();
}

} // namespace sinan
