// Allowlisted finding: the std::rand() here is suppressed by the
// tree's allowlist.txt entry (and keeps that entry non-stale).
// lint-expect: none
#include <cstdlib>

namespace sinan {

inline int
RngAppDraw()
{
    return std::rand();
}

} // namespace sinan
