// lint-expect: none
#ifndef SINAN_ANALYZE_TREE_FIXTURE_APP_TOP_H
#define SINAN_ANALYZE_TREE_FIXTURE_APP_TOP_H

namespace sinan {

inline int
TopValue()
{
    return 7;
}

} // namespace sinan

#endif
