// Namespace-qualified C-style cast: the satellite case the legacy
// linter's HasCStyleNumericCast missed.
// lint-expect: narrowing-cast-in-header
#ifndef SINAN_TOOLS_ANALYZE_FIXTURES_BAD_CAST_STD_H
#define SINAN_TOOLS_ANALYZE_FIXTURES_BAD_CAST_STD_H

#include <cstddef>

namespace sinan {

inline std::size_t
CastStdBad(long x)
{
    std::size_t v = (std::size_t)x;
    return v;
}

} // namespace sinan

#endif
