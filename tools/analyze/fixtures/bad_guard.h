// lint-expect: missing-include-guard

namespace sinan {

struct Unguarded {
    int value = 0;
};

} // namespace sinan
