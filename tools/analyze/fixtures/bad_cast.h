// lint-expect: narrowing-cast-in-header
#ifndef SINAN_TOOLS_ANALYZE_FIXTURES_BAD_CAST_H
#define SINAN_TOOLS_ANALYZE_FIXTURES_BAD_CAST_H

namespace sinan {

inline int
CastBad(double x)
{
    int v = (int)x;
    return v;
}

} // namespace sinan

#endif
