// lint-expect: missing-namespace-sinan
#ifndef SINAN_TOOLS_ANALYZE_FIXTURES_BAD_NAMESPACE_H
#define SINAN_TOOLS_ANALYZE_FIXTURES_BAD_NAMESPACE_H

struct Orphan {
    int value = 0;
};

#endif
