// Phase-2 line splicing: the backslash-newline inside the identifier
// below must be spliced away so `std::rand()` is recognized, and the
// finding must land on the line where the token started.
// lint-expect: no-std-rand
// lint-expect-line: 11
namespace sinan {

inline int
SpliceBad()
{
    return std::ra\
nd();
}

} // namespace sinan
