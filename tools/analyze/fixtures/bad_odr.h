// lint-expect: header-non-inline-definition
#ifndef SINAN_TOOLS_ANALYZE_FIXTURES_BAD_ODR_H
#define SINAN_TOOLS_ANALYZE_FIXTURES_BAD_ODR_H

namespace sinan {

int
OdrViolation(int v)
{
    return v + 1;
}

} // namespace sinan

#endif
