// Header constructs the hygiene passes must accept: inline, template,
// and constexpr definitions; in-class member definitions; enums;
// aliases; namespace-scope constants. None of these are ODR hazards.
// lint-expect: none
#ifndef SINAN_TOOLS_ANALYZE_FIXTURES_CLEAN_H
#define SINAN_TOOLS_ANALYZE_FIXTURES_CLEAN_H

namespace sinan {

inline constexpr int kThree = 3;

template <typename T>
T
TwiceT(T v)
{
    return v + v;
}

inline int
Twice(int v)
{
    return 2 * v;
}

constexpr int
Thrice(int v)
{
    return 3 * v;
}

struct Holder {
    int Get() const { return value; }
    void Set(int v) { value = v; }
    // Default braced argument: the `{}` inside the parameter list must
    // not unbalance the scope stack...
    void Fill(int v = {}) { value = v; }
    // ...or this in-class definition would look namespace-scoped.
    int Tail() const { return value; }
    int value = 0;
};

enum class Mode { kFast, kExact };

using HolderAlias = Holder;

inline double
Halve(double v) noexcept
{
    return v / 2.0;
}

} // namespace sinan

#endif
