// lint-expect: no-std-rand
#include <cstdlib>

namespace sinan {

inline int
RandBad()
{
    std::srand(42);
    return std::rand();
}

} // namespace sinan
