// lint-expect: raw-simd-intrinsic
#include <immintrin.h>

namespace sinan {

inline float
SimdBad(const float* p)
{
    __m256 v = _mm256_loadu_ps(p);
    (void)v;
    return p[0];
}

} // namespace sinan
