// lint-expect: volatile-outside-pool

namespace sinan {

volatile int spin_flag = 0;

inline int
VolatileBad()
{
    return spin_flag;
}

} // namespace sinan
