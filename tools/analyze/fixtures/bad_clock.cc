// Flat fixtures run through the per-file passes only, so this fires
// regardless of the quarantine; the tree fixture covers suppression.
// lint-expect: wall-clock-read
#include <chrono>

namespace sinan {

inline long long
ClockBad()
{
    return std::chrono::steady_clock::now().time_since_epoch().count();
}

} // namespace sinan
