// lint-expect: raw-simd-intrinsic
// Extending the raw-simd-intrinsic allowlist to gemm_int8_avx2.cc must
// not blanket-allow the int8 intrinsics anywhere else.
#include <immintrin.h>

namespace sinan {

inline int
SimdInt8Bad(const void* p)
{
    __m256i v = _mm256_maddubs_epi16(_mm256_setzero_si256(),
                                     _mm256_loadu_si256(
                                         static_cast<const __m256i*>(p)));
    (void)v;
    return 0;
}

} // namespace sinan
