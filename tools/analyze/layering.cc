/**
 * @file
 * Include-graph passes of sinan_analyze. The project's `#include
 * "dir/file.h"` sites inside src/ form two graphs:
 *
 *  - a directory-level graph checked against the layer spec
 *    (tools/analyze/layers.txt, bottom layer first): an include whose
 *    target directory sits in a *higher* layer than the including
 *    directory is an upward edge — the dependency inversion the layer
 *    architecture forbids. Directories missing from the spec are
 *    their own finding so new subsystems must declare a layer.
 *
 *  - a file-level graph searched for cycles. Each strongly connected
 *    component with more than one file (or a self-include) is reported
 *    once, anchored at its lexicographically smallest member so the
 *    report is deterministic.
 */
#include "analyze.h"

#include <algorithm>

namespace sinan {
namespace analyze {

namespace {

std::string
DirOf(const std::string& src_rel)
{
    const size_t slash = src_rel.find('/');
    return slash == std::string::npos ? std::string()
                                      : src_rel.substr(0, slash);
}

/**
 * Tarjan's strongly-connected-components over the file graph,
 * iterative so fixture trees with deep chains cannot overflow the
 * stack. Nodes and adjacency are index-based over @p names.
 */
std::vector<std::vector<int>>
StronglyConnected(const std::vector<std::vector<int>>& adj)
{
    const int n = static_cast<int>(adj.size());
    std::vector<int> index(static_cast<size_t>(n), -1);
    std::vector<int> low(static_cast<size_t>(n), 0);
    std::vector<bool> on_stack(static_cast<size_t>(n), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> sccs;
    int next_index = 0;

    struct Frame {
        int v;
        size_t edge;
    };
    for (int root = 0; root < n; ++root) {
        if (index[static_cast<size_t>(root)] != -1)
            continue;
        std::vector<Frame> frames;
        frames.push_back({root, 0});
        index[static_cast<size_t>(root)] =
            low[static_cast<size_t>(root)] = next_index++;
        stack.push_back(root);
        on_stack[static_cast<size_t>(root)] = true;
        while (!frames.empty()) {
            Frame& f = frames.back();
            const size_t v = static_cast<size_t>(f.v);
            if (f.edge < adj[v].size()) {
                const int w = adj[v][f.edge++];
                const size_t wu = static_cast<size_t>(w);
                if (index[wu] == -1) {
                    index[wu] = low[wu] = next_index++;
                    stack.push_back(w);
                    on_stack[wu] = true;
                    frames.push_back({w, 0});
                } else if (on_stack[wu]) {
                    low[v] = std::min(low[v], index[wu]);
                }
                continue;
            }
            if (low[v] == index[v]) {
                std::vector<int> scc;
                int w = -1;
                do {
                    w = stack.back();
                    stack.pop_back();
                    on_stack[static_cast<size_t>(w)] = false;
                    scc.push_back(w);
                } while (w != f.v);
                sccs.push_back(std::move(scc));
            }
            const int done = f.v;
            frames.pop_back();
            if (!frames.empty()) {
                const size_t p = static_cast<size_t>(frames.back().v);
                low[p] = std::min(low[p],
                                  low[static_cast<size_t>(done)]);
            }
        }
    }
    return sccs;
}

} // namespace

std::vector<Finding>
RunGraphPasses(const Config& cfg, const std::vector<IncludeEdge>& edges)
{
    std::vector<Finding> out;
    auto add = [&](const char* rule, const std::string& src_rel,
                   int line, std::string message) {
        Finding f;
        f.rule = rule;
        f.path = "src/" + src_rel;
        f.line = line;
        f.message = std::move(message);
        out.push_back(std::move(f));
    };

    // --- Directory layering against the spec. ---
    std::set<std::string> reported_unknown;
    for (const IncludeEdge& e : edges) {
        const std::string from_dir = DirOf(e.from);
        const std::string to_dir = DirOf(e.to);
        const auto from_it = cfg.layer_of.find(from_dir);
        const auto to_it = cfg.layer_of.find(to_dir);
        if (from_it == cfg.layer_of.end()) {
            if (reported_unknown.insert(from_dir).second)
                add("layering-unknown-dir", e.from, e.line,
                    "src/" + from_dir + " is not declared in "
                    "tools/analyze/layers.txt");
            continue;
        }
        if (to_it == cfg.layer_of.end()) {
            if (reported_unknown.insert(to_dir).second)
                add("layering-unknown-dir", e.from, e.line,
                    "src/" + to_dir + " is not declared in "
                    "tools/analyze/layers.txt");
            continue;
        }
        if (to_it->second > from_it->second)
            add("layering-upward-include", e.from, e.line,
                "src/" + from_dir + " (layer " +
                    std::to_string(from_it->second) + ") includes \"" +
                    e.to + "\" from higher layer src/" + to_dir +
                    " (layer " + std::to_string(to_it->second) + ")");
    }

    // --- File-level include cycles. ---
    std::vector<std::string> names;
    std::map<std::string, int> id_of;
    auto intern = [&](const std::string& name) {
        const auto it = id_of.find(name);
        if (it != id_of.end())
            return it->second;
        const int id = static_cast<int>(names.size());
        names.push_back(name);
        id_of.emplace(name, id);
        return id;
    };
    for (const IncludeEdge& e : edges) {
        (void)intern(e.from);
        (void)intern(e.to);
    }
    std::vector<std::vector<int>> adj(names.size());
    std::set<std::pair<int, int>> seen_edges;
    bool self_loop_possible = false;
    for (const IncludeEdge& e : edges) {
        const int a = intern(e.from), b = intern(e.to);
        if (a == b)
            self_loop_possible = true;
        if (seen_edges.emplace(a, b).second)
            adj[static_cast<size_t>(a)].push_back(b);
    }
    (void)self_loop_possible;

    for (std::vector<int>& scc : StronglyConnected(adj)) {
        const bool self_cycle =
            scc.size() == 1 &&
            seen_edges.count({scc.front(), scc.front()}) != 0;
        if (scc.size() < 2 && !self_cycle)
            continue;
        std::vector<std::string> members;
        members.reserve(scc.size());
        for (int v : scc)
            members.push_back(names[static_cast<size_t>(v)]);
        std::sort(members.begin(), members.end());
        const std::string& anchor = members.front();
        // Anchor line: the first include in the anchor file that stays
        // inside the component.
        int line = 1;
        const std::set<std::string> in_scc(members.begin(),
                                           members.end());
        for (const IncludeEdge& e : edges) {
            if (e.from == anchor && in_scc.count(e.to) != 0) {
                line = e.line;
                break;
            }
        }
        std::string chain;
        for (const std::string& m : members)
            chain += (chain.empty() ? "" : " <-> ") + m;
        add("include-cycle", anchor, line,
            "include cycle among: " + chain);
    }

    std::sort(out.begin(), out.end(), FindingLess);
    return out;
}

} // namespace analyze
} // namespace sinan
