/**
 * @file
 * Token model for sinan_analyze. The tokenizer (tokenizer.cc) turns a
 * C++ source file into a flat token stream with physical line numbers,
 * so analysis passes match real identifiers and punctuation instead of
 * line substrings. The lexer understands exactly the constructs that
 * broke the old line-regex linter:
 *
 *  - raw string literals, including delimited forms R"xy(...)xy" whose
 *    bodies may contain `//`, `* /`, and quotes;
 *  - encoding prefixes (u8/u/U/L) on string and character literals;
 *  - digit separators (1'000'000), which are not char literals;
 *  - line splices (backslash-newline), joined before lexing while
 *    physical line numbers are preserved;
 *  - preprocessor directives: the directive name and #include targets
 *    are lifted into dedicated token kinds (the layering pass consumes
 *    kIncludePath), while macro bodies and #if conditions are lexed
 *    normally so the rule passes see them.
 *
 * Comment and literal *contents* never reach the identifier/punct
 * stream, so the analyzer's own sources can spell out rule patterns in
 * string literals without flagging themselves — the string-splice
 * hacks of the old linter are gone.
 */
#ifndef SINAN_TOOLS_ANALYZE_TOKEN_H
#define SINAN_TOOLS_ANALYZE_TOKEN_H

#include <string>
#include <vector>

namespace sinan {
namespace analyze {

enum class TokenKind {
    /** Identifier or keyword. */
    kIdent,
    /** pp-number (integer or floating literal, separators included). */
    kNumber,
    /** String literal (raw or not); text is not preserved. */
    kString,
    /** Character literal; text is not preserved. */
    kChar,
    /** Punctuation. "::" and "->" are fused; all others are single. */
    kPunct,
    /** Directive name at the start of a preprocessor line ("include",
     *  "ifndef", "pragma", ...), without the '#'. */
    kDirective,
    /** The target of an #include directive, without quotes/brackets.
     *  `angled` distinguishes <...> from "...". */
    kIncludePath,
};

struct Token {
    TokenKind kind = TokenKind::kPunct;
    std::string text;
    /** 1-based physical line of the token's first character. */
    int line = 0;
    /** Only meaningful for kIncludePath: true for <...> includes. */
    bool angled = false;
};

/** Lexes @p source into tokens. Never fails: unterminated literals and
 *  comments are consumed to end-of-line or end-of-file. */
std::vector<Token> Tokenize(const std::string& source);

} // namespace analyze
} // namespace sinan

#endif // SINAN_TOOLS_ANALYZE_TOKEN_H
