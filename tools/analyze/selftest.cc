/**
 * @file
 * Fixture self-test of sinan_analyze: proves every rule actually
 * fires, so a silently-disabled pass fails CI.
 *
 * Three fixture shapes live under tools/analyze/fixtures/:
 *
 *  - flat files (.cc / .h) declaring `// lint-expect: <rule>` — the
 *    per-file passes must report exactly that rule on the file, posed
 *    as `src/<name>` so src-scoped rules apply. An optional
 *    `// lint-expect-line: <n>` additionally pins the finding's line,
 *    which is how the raw-string and line-splice regressions assert
 *    the tokenizer resynchronized correctly;
 *  - flat files declaring `// lint-expect: none` — tricky-but-legal
 *    constructs that must stay clean (no false positives);
 *  - a mini repository under fixtures/tree/ with its own
 *    tools/analyze/ configs, run through the full AnalyzeTree
 *    pipeline: its files carry the same annotations, covering the
 *    layering, cycle, and timing-quarantine passes end to end
 *    (`none` there asserts quarantine suppression worked).
 *
 * Finally, the union of expected rules across all fixtures must cover
 * the entire rule registry.
 */
#include "analyze.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sinan {
namespace analyze {

namespace {

namespace fs = std::filesystem;

std::string
ReadFile(const fs::path& p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Extracts the value after @p tag on its line, or "" when absent. */
std::string
Annotation(const std::string& contents, const std::string& tag)
{
    const size_t at = contents.find(tag);
    if (at == std::string::npos)
        return "";
    size_t end = contents.find('\n', at);
    if (end == std::string::npos)
        end = contents.size();
    std::string value = contents.substr(at + tag.size(),
                                        end - at - tag.size());
    while (!value.empty() &&
           (value.back() == ' ' || value.back() == '\r'))
        value.pop_back();
    return value;
}

bool
FixtureFile(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp";
}

struct Expectation {
    std::string file; // display name
    std::string rule; // "none" = must be clean
    int line = 0;     // 0 = any line
};

/** Checks one expectation against the findings for its file. */
bool
Check(const Expectation& e, const std::vector<Finding>& findings)
{
    if (e.rule == "none") {
        if (findings.empty())
            return true;
        std::fprintf(stderr,
                     "%s: expected no findings, got %zu:\n",
                     e.file.c_str(), findings.size());
        for (const Finding& f : findings)
            std::fprintf(stderr, "  fired: %s at line %d (%s)\n",
                         f.rule.c_str(), f.line, f.message.c_str());
        return false;
    }
    const bool hit = std::any_of(
        findings.begin(), findings.end(), [&](const Finding& f) {
            return f.rule == e.rule &&
                   (e.line == 0 || f.line == e.line);
        });
    if (!hit) {
        const std::string where =
            e.line ? " at line " + std::to_string(e.line) : "";
        std::fprintf(stderr,
                     "%s: expected rule '%s'%s did not fire "
                     "(%zu findings)\n",
                     e.file.c_str(), e.rule.c_str(), where.c_str(),
                     findings.size());
        for (const Finding& f : findings)
            std::fprintf(stderr, "  fired: %s at line %d\n",
                         f.rule.c_str(), f.line);
    }
    return hit;
}

} // namespace

int
SelfTest(const fs::path& fixtures_dir)
{
    int failures = 0;
    std::set<std::string> covered;

    // --- Flat fixtures through the per-file passes. ---
    std::vector<fs::path> flat;
    for (const auto& ent : fs::directory_iterator(fixtures_dir)) {
        if (ent.is_regular_file() && FixtureFile(ent.path()))
            flat.push_back(ent.path());
    }
    std::sort(flat.begin(), flat.end());
    int checked = 0;
    for (const fs::path& p : flat) {
        const std::string contents = ReadFile(p);
        const std::string name = p.filename().string();
        Expectation e;
        e.file = name;
        e.rule = Annotation(contents, "// lint-expect: ");
        const std::string line_s =
            Annotation(contents, "// lint-expect-line: ");
        if (!line_s.empty())
            e.line = std::atoi(line_s.c_str());
        if (e.rule.empty()) {
            std::fprintf(stderr, "%s: missing lint-expect header\n",
                         name.c_str());
            ++failures;
            continue;
        }
        FileContext ctx;
        ctx.rel = "src/" + name; // pose as src/ so scoped rules apply
        ctx.is_header = name.size() > 2 &&
                        name.compare(name.size() - 2, 2, ".h") == 0;
        const std::vector<Finding> findings =
            RunFilePasses(ctx, Tokenize(contents));
        ++checked;
        if (!Check(e, findings))
            ++failures;
        covered.insert(e.rule);
    }

    // --- The mini tree through the full pipeline. ---
    const fs::path tree = fixtures_dir / "tree";
    int tree_checked = 0;
    if (fs::exists(tree)) {
        const Report report = AnalyzeTree(tree);
        for (const std::string& err : report.errors) {
            std::fprintf(stderr, "tree fixture: unexpected error: %s\n",
                         err.c_str());
            ++failures;
        }
        std::vector<fs::path> files;
        for (const auto& ent :
             fs::recursive_directory_iterator(tree)) {
            if (ent.is_regular_file() && FixtureFile(ent.path()))
                files.push_back(ent.path());
        }
        std::sort(files.begin(), files.end());
        for (const fs::path& p : files) {
            const std::string contents = ReadFile(p);
            const std::string rel =
                fs::relative(p, tree).generic_string();
            const std::string rule =
                Annotation(contents, "// lint-expect: ");
            if (rule.empty())
                continue;
            Expectation e;
            e.file = "tree/" + rel;
            e.rule = rule;
            std::vector<Finding> file_findings;
            for (const Finding& f : report.findings) {
                if (f.path == rel)
                    file_findings.push_back(f);
            }
            ++tree_checked;
            if (!Check(e, file_findings))
                ++failures;
            covered.insert(rule);
        }
    } else {
        std::fprintf(stderr, "missing mini-tree fixture at %s\n",
                     tree.string().c_str());
        ++failures;
    }

    // --- Every registered rule must have a firing fixture. ---
    for (const RuleInfo& r : Rules()) {
        if (covered.count(r.id) == 0) {
            std::fprintf(stderr, "no fixture covers rule '%s'\n",
                         r.id);
            ++failures;
        }
    }

    std::fprintf(stderr,
                 "sinan_analyze self-test: %d flat + %d tree fixtures, "
                 "%d failures\n",
                 checked, tree_checked, failures);
    return failures;
}

} // namespace analyze
} // namespace sinan
