/**
 * @file
 * CLI entry point of sinan_analyze.
 *
 * Usage:
 *   sinan_analyze <repo_root> [--sarif <out.json>]
 *       analyze the tree; exit 0 only with zero findings, zero stale
 *       exception entries, and a well-formed config. The SARIF log is
 *       written in both outcomes so CI can upload it as an artifact.
 *
 *   sinan_analyze --self-test <fixtures_dir>
 *       run the fixture self-test (every rule must fire).
 */
#include "analyze.h"

#include <cstdio>
#include <fstream>
#include <string>

int
main(int argc, char** argv)
{
    using namespace sinan::analyze;

    if (argc == 3 && std::string(argv[1]) == "--self-test")
        return SelfTest(argv[2]) == 0 ? 0 : 1;

    std::string root, sarif_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sarif" && i + 1 < argc) {
            sarif_path = argv[++i];
        } else if (!arg.empty() && arg[0] != '-' && root.empty()) {
            root = arg;
        } else {
            root.clear();
            break;
        }
    }
    if (root.empty()) {
        std::fprintf(stderr,
                     "usage: sinan_analyze <repo_root> "
                     "[--sarif <out.json>] | "
                     "sinan_analyze --self-test <fixtures_dir>\n");
        return 2;
    }

    const Report report = AnalyzeTree(root);
    for (const Finding& f : report.findings)
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.path.c_str(),
                     f.line, f.rule.c_str(), f.message.c_str());
    for (const std::string& err : report.errors)
        std::fprintf(stderr, "error: %s\n", err.c_str());
    if (!sarif_path.empty()) {
        std::ofstream out(sarif_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "cannot write SARIF to %s\n",
                         sarif_path.c_str());
            return 2;
        }
        out << ToSarif(report);
    }
    std::fprintf(stderr,
                 "sinan_analyze: %d files, %zu findings, %zu errors\n",
                 report.files_scanned, report.findings.size(),
                 report.errors.size());
    return report.Clean() ? 0 : 1;
}
