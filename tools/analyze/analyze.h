/**
 * @file
 * sinan_analyze — multi-pass determinism & layering static analyzer.
 *
 * Four pass families over the token streams of every first-party
 * source file (src/, tools/, tests/, bench/, examples/):
 *
 *  1. project rules re-hosted from the old sinan_lint (no-std-rand,
 *     no-raw-assert, no-unordered-container, no-raw-thread,
 *     narrowing-cast-in-header, missing-include-guard,
 *     raw-simd-intrinsic);
 *  2. a determinism-source audit (wall-clock reads outside the timing
 *     quarantine, std::random_device, getenv outside cpu_features/the
 *     CLI, pointer-keyed ordered containers, thread_local/volatile
 *     outside the thread pool);
 *  3. header hygiene (non-inline non-template function definitions in
 *     headers, src/ headers missing `namespace sinan`);
 *  4. include-graph passes over src/: the directory DAG is checked
 *     against the declared layer spec (tools/analyze/layers.txt) and
 *     file-level include cycles are reported.
 *
 * Exceptions live in tools/analyze/allowlist.txt as
 * `<rule> <path> -- <justification>`; wall-clock reads are separately
 * blessed per file in tools/analyze/timing_quarantine.txt. Both lists
 * fail the run when an entry is stale or missing its justification.
 *
 * Findings are reported as human-readable text and, on request, as a
 * SARIF 2.1.0 log (deterministic byte-for-byte; pinned by
 * tests/analyze_sarif_test).
 */
#ifndef SINAN_TOOLS_ANALYZE_ANALYZE_H
#define SINAN_TOOLS_ANALYZE_ANALYZE_H

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "token.h"

namespace sinan {
namespace analyze {

/** One rule violation at a source location. */
struct Finding {
    std::string rule;
    std::string path; // repo-relative, '/'-separated
    int line = 0;
    std::string message;
};

/** Deterministic ordering: path, then line, then rule. */
bool FindingLess(const Finding& a, const Finding& b);

/** Static metadata for one rule (drives SARIF's rule table). */
struct RuleInfo {
    const char* id;
    const char* description;
};

/** Every rule the analyzer can emit, in stable registry order. The
 *  self-test requires a firing fixture for each. */
const std::vector<RuleInfo>& Rules();

/** Parsed tools/analyze/ configuration of a tree under analysis. */
struct Config {
    /** Layer groups, bottom (index 0) to top; each group is a set of
     *  src/ subdirectories that may include each other freely. */
    std::vector<std::vector<std::string>> layers;
    /** dir -> layer index, derived from `layers`. */
    std::map<std::string, int> layer_of;
    /** Files blessed to read the wall clock: path -> justification. */
    std::map<std::string, std::string> timing_quarantine;
    /** (rule, path) -> justification. */
    std::map<std::pair<std::string, std::string>, std::string> allowlist;
    /** Malformed-config messages (missing justification, unknown rule,
     *  unreadable file); any entry fails the run. */
    std::vector<std::string> errors;
};

/** Loads layers.txt / timing_quarantine.txt / allowlist.txt from
 *  @p root / tools/analyze. Missing files are config errors. */
Config LoadConfig(const std::filesystem::path& root);

/** Per-file context handed to the token passes. */
struct FileContext {
    std::string rel; // repo-relative path
    bool is_header = false;
};

/** Runs every per-file token pass. Suppression (quarantine, allowlist)
 *  is applied later by AnalyzeTree; fixtures call this raw. */
std::vector<Finding> RunFilePasses(const FileContext& ctx,
                                   const std::vector<Token>& tokens);

/** One project `#include "dir/file.h"` site inside src/. */
struct IncludeEdge {
    std::string from; // src-relative includer, e.g. "models/features.h"
    std::string to;   // src-relative target, e.g. "common/telemetry.h"
    int line = 0;
};

/** Include-graph passes: layer check + cycle detection. @p edges must
 *  only contain src/-internal includes. */
std::vector<Finding> RunGraphPasses(const Config& cfg,
                                    const std::vector<IncludeEdge>& edges);

/** Outcome of a full tree analysis. */
struct Report {
    /** Findings that survived quarantine and allowlist, sorted. */
    std::vector<Finding> findings;
    /** Stale/malformed exception entries and config errors; any entry
     *  fails the run, same as a finding. */
    std::vector<std::string> errors;
    int files_scanned = 0;

    bool Clean() const { return findings.empty() && errors.empty(); }
};

/** Analyzes the repository at @p root (scans src/, tools/, tests/,
 *  bench/, examples/; skips tools/analyze/fixtures). */
Report AnalyzeTree(const std::filesystem::path& root);

/** Renders @p report as a SARIF 2.1.0 log. Deterministic: results are
 *  sorted, no timestamps or absolute paths. */
std::string ToSarif(const Report& report);

/** Fixture self-test over @p fixtures_dir (see fixtures/README in the
 *  directory): every rule must fire on its fixture, `none` fixtures
 *  must stay clean, and the embedded mini-tree exercises the graph and
 *  quarantine passes end to end. @returns the number of failures. */
int SelfTest(const std::filesystem::path& fixtures_dir);

} // namespace analyze
} // namespace sinan

#endif // SINAN_TOOLS_ANALYZE_ANALYZE_H
