/**
 * @file
 * The sinan_analyze lexer. See token.h for the contract. Two stages:
 * a splice pass joins backslash-newline pairs while recording each
 * character's physical line, then a single-pass scanner produces the
 * token stream. The scanner is deliberately forgiving — analysis runs
 * on sources that may not compile (fixtures), so nothing here throws.
 */
#include "token.h"

#include <cctype>

namespace sinan {
namespace analyze {

namespace {

bool
IsIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
IsIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
IsDigit(char c)
{
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/** Spliced source: logical characters plus their physical lines. */
struct Spliced {
    std::string text;
    std::vector<int> line;
};

/**
 * Phase-2 splicing: `\` immediately followed by a newline (optionally
 * `\r\n`) joins the two physical lines. Raw-string bodies are lexed
 * from this joined text too; their *content* is discarded by the
 * scanner, so reverting the splice (as a real compiler must) would
 * change nothing the analyzer looks at.
 */
Spliced
SpliceLines(const std::string& src)
{
    Spliced out;
    out.text.reserve(src.size());
    out.line.reserve(src.size());
    int line = 1;
    for (size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        if (c == '\\') {
            size_t j = i + 1;
            if (j < src.size() && src[j] == '\r')
                ++j;
            if (j < src.size() && src[j] == '\n') {
                i = j;
                ++line;
                continue;
            }
        }
        out.text.push_back(c);
        out.line.push_back(line);
        if (c == '\n')
            ++line;
    }
    return out;
}

class Scanner {
  public:
    explicit Scanner(const Spliced& s) : s_(s) {}

    std::vector<Token>
    Run()
    {
        while (!AtEnd()) {
            const char c = Peek();
            if (c == '\n') {
                at_line_start_ = true;
                Advance();
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r' || c == '\f' ||
                c == '\v') {
                Advance();
                continue;
            }
            if (c == '/' && Peek(1) == '/') {
                SkipLineComment();
                continue;
            }
            if (c == '/' && Peek(1) == '*') {
                SkipBlockComment();
                continue;
            }
            if (c == '#' && at_line_start_) {
                LexDirective();
                continue;
            }
            at_line_start_ = false;
            if (IsIdentStart(c)) {
                LexIdentOrPrefixedLiteral();
                continue;
            }
            if (IsDigit(c) || (c == '.' && IsDigit(Peek(1)))) {
                LexNumber();
                continue;
            }
            if (c == '"') {
                LexString();
                continue;
            }
            if (c == '\'') {
                LexChar();
                continue;
            }
            LexPunct();
        }
        return std::move(tokens_);
    }

  private:
    bool AtEnd() const { return i_ >= s_.text.size(); }

    char
    Peek(size_t ahead = 0) const
    {
        const size_t j = i_ + ahead;
        return j < s_.text.size() ? s_.text[j] : '\0';
    }

    int Line() const
    {
        return i_ < s_.line.size() ? s_.line[i_]
                                   : (s_.line.empty() ? 1 : s_.line.back());
    }

    void Advance(size_t n = 1) { i_ += n; }

    void
    Emit(TokenKind kind, std::string text, int line, bool angled = false)
    {
        Token t;
        t.kind = kind;
        t.text = std::move(text);
        t.line = line;
        t.angled = angled;
        tokens_.push_back(std::move(t));
    }

    void
    SkipLineComment()
    {
        while (!AtEnd() && Peek() != '\n')
            Advance();
    }

    void
    SkipBlockComment()
    {
        Advance(2);
        while (!AtEnd()) {
            if (Peek() == '*' && Peek(1) == '/') {
                Advance(2);
                return;
            }
            Advance();
        }
    }

    /** `#  name ...` — emits kDirective(name); #include additionally
     *  emits the target as kIncludePath. The rest of the directive is
     *  then lexed normally so rules see macro bodies and conditions. */
    void
    LexDirective()
    {
        const int line = Line();
        Advance(); // '#'
        while (Peek() == ' ' || Peek() == '\t')
            Advance();
        std::string name;
        while (IsIdentChar(Peek())) {
            name.push_back(Peek());
            Advance();
        }
        Emit(TokenKind::kDirective, name, line);
        at_line_start_ = false;
        if (name != "include" && name != "include_next")
            return;
        while (Peek() == ' ' || Peek() == '\t')
            Advance();
        const char open = Peek();
        if (open != '<' && open != '"')
            return; // computed include (#include MACRO): lexed normally
        const char close = open == '<' ? '>' : '"';
        const int path_line = Line();
        Advance();
        std::string path;
        while (!AtEnd() && Peek() != close && Peek() != '\n') {
            path.push_back(Peek());
            Advance();
        }
        if (Peek() == close)
            Advance();
        Emit(TokenKind::kIncludePath, path, path_line, open == '<');
    }

    /**
     * An identifier — unless it is a literal prefix glued to a quote
     * (R"...", u8"...", L'x', ...), in which case the whole thing is
     * one literal token.
     */
    void
    LexIdentOrPrefixedLiteral()
    {
        const int line = Line();
        std::string text;
        while (IsIdentChar(Peek())) {
            text.push_back(Peek());
            Advance();
        }
        const bool raw_prefix = text == "R" || text == "u8R" ||
                                text == "uR" || text == "UR" ||
                                text == "LR";
        const bool enc_prefix =
            text == "u8" || text == "u" || text == "U" || text == "L";
        if (Peek() == '"' && raw_prefix) {
            LexRawString(line);
            return;
        }
        if (Peek() == '"' && enc_prefix) {
            LexString();
            return;
        }
        if (Peek() == '\'' && enc_prefix) {
            LexChar();
            return;
        }
        Emit(TokenKind::kIdent, std::move(text), line);
    }

    /** Ordinary "..." literal with escape handling; unterminated
     *  literals end at the newline. Content is discarded. */
    void
    LexString()
    {
        const int line = Line();
        Advance(); // opening quote
        while (!AtEnd() && Peek() != '\n') {
            if (Peek() == '\\') {
                Advance(2);
                continue;
            }
            if (Peek() == '"') {
                Advance();
                break;
            }
            Advance();
        }
        Emit(TokenKind::kString, "", line);
    }

    /** R"delim( ... )delim" — no escapes; the body may span lines and
     *  contain comment markers and quotes. This is the construct the
     *  old linter's StripCommentsAndStrings corrupted. */
    void
    LexRawString(int line)
    {
        Advance(); // opening quote
        std::string delim;
        while (!AtEnd() && Peek() != '(' && Peek() != '\n' &&
               delim.size() < 16) {
            delim.push_back(Peek());
            Advance();
        }
        if (Peek() != '(') { // malformed; treat as ordinary string tail
            Emit(TokenKind::kString, "", line);
            return;
        }
        Advance(); // '('
        const std::string closer = ")" + delim + "\"";
        const size_t at = s_.text.find(closer, i_);
        i_ = at == std::string::npos ? s_.text.size() : at + closer.size();
        Emit(TokenKind::kString, "", line);
    }

    void
    LexChar()
    {
        const int line = Line();
        Advance(); // opening quote
        while (!AtEnd() && Peek() != '\n') {
            if (Peek() == '\\') {
                Advance(2);
                continue;
            }
            if (Peek() == '\'') {
                Advance();
                break;
            }
            Advance();
        }
        Emit(TokenKind::kChar, "", line);
    }

    /** pp-number: digits, identifier chars, '.', digit separators, and
     *  signed exponents — one token for 1'000'000, 0x1.8p-3, 1e6f. */
    void
    LexNumber()
    {
        const int line = Line();
        std::string text;
        while (!AtEnd()) {
            const char c = Peek();
            if (IsIdentChar(c) || c == '.') {
                text.push_back(c);
                Advance();
                if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
                    (Peek() == '+' || Peek() == '-')) {
                    text.push_back(Peek());
                    Advance();
                }
                continue;
            }
            if (c == '\'' && IsIdentChar(Peek(1))) { // digit separator
                Advance();
                continue;
            }
            break;
        }
        Emit(TokenKind::kNumber, std::move(text), line);
    }

    /** "::" and "->" are fused (rule patterns need them); everything
     *  else is a single character, so template scans see '>' '>'
     *  rather than a fused ">>". */
    void
    LexPunct()
    {
        const int line = Line();
        const char c = Peek();
        if (c == ':' && Peek(1) == ':') {
            Advance(2);
            Emit(TokenKind::kPunct, "::", line);
            return;
        }
        if (c == '-' && Peek(1) == '>') {
            Advance(2);
            Emit(TokenKind::kPunct, "->", line);
            return;
        }
        Advance();
        Emit(TokenKind::kPunct, std::string(1, c), line);
    }

    const Spliced& s_;
    size_t i_ = 0;
    bool at_line_start_ = true;
    std::vector<Token> tokens_;
};

} // namespace

std::vector<Token>
Tokenize(const std::string& source)
{
    const Spliced spliced = SpliceLines(source);
    return Scanner(spliced).Run();
}

} // namespace analyze
} // namespace sinan
