/**
 * @file
 * SARIF 2.1.0 rendering of an analysis report, for the CI `analyze`
 * job's artifact upload and any SARIF-consuming code-scanning UI.
 *
 * The output is a deterministic byte-for-byte function of the report:
 * one run, the full rule table in registry order, results in
 * (path, line, rule) order, repo-relative URIs, no timestamps. The
 * exact bytes are pinned by tests/analyze_sarif_test against
 * tests/golden/analyze.sarif.
 *
 * Config errors (stale exceptions, malformed entries) have no source
 * location; they are emitted as toolExecutionNotifications on the
 * run's invocation, which also carries executionSuccessful.
 */
#include "analyze.h"

#include <cstdio>
#include <sstream>

namespace sinan {
namespace analyze {

namespace {

/** JSON string escaping (control chars, quote, backslash). */
std::string
Escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
ToSarif(const Report& report)
{
    std::ostringstream out;
    out << "{\n"
        << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-"
           "tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n"
        << "    {\n"
        << "      \"tool\": {\n"
        << "        \"driver\": {\n"
        << "          \"name\": \"sinan_analyze\",\n"
        << "          \"version\": \"1.0.0\",\n"
        << "          \"rules\": [\n";
    const std::vector<RuleInfo>& rules = Rules();
    for (size_t i = 0; i < rules.size(); ++i) {
        out << "            {\n"
            << "              \"id\": \"" << rules[i].id << "\",\n"
            << "              \"shortDescription\": { \"text\": \""
            << Escape(rules[i].description) << "\" }\n"
            << "            }" << (i + 1 < rules.size() ? "," : "")
            << "\n";
    }
    out << "          ]\n"
        << "        }\n"
        << "      },\n"
        << "      \"columnKind\": \"utf16CodeUnits\",\n"
        << "      \"invocations\": [\n"
        << "        {\n"
        << "          \"executionSuccessful\": "
        << (report.Clean() ? "true" : "false");
    if (!report.errors.empty()) {
        out << ",\n          \"toolExecutionNotifications\": [\n";
        for (size_t i = 0; i < report.errors.size(); ++i) {
            out << "            { \"level\": \"error\", \"message\": "
                   "{ \"text\": \""
                << Escape(report.errors[i]) << "\" } }"
                << (i + 1 < report.errors.size() ? "," : "") << "\n";
        }
        out << "          ]";
    }
    out << "\n        }\n"
        << "      ],\n"
        << "      \"results\": [\n";
    for (size_t i = 0; i < report.findings.size(); ++i) {
        const Finding& f = report.findings[i];
        out << "        {\n"
            << "          \"ruleId\": \"" << Escape(f.rule) << "\",\n"
            << "          \"level\": \"error\",\n"
            << "          \"message\": { \"text\": \""
            << Escape(f.message) << "\" },\n"
            << "          \"locations\": [\n"
            << "            {\n"
            << "              \"physicalLocation\": {\n"
            << "                \"artifactLocation\": { \"uri\": \""
            << Escape(f.path) << "\" },\n"
            << "                \"region\": { \"startLine\": "
            << f.line << " }\n"
            << "              }\n"
            << "            }\n"
            << "          ]\n"
            << "        }"
            << (i + 1 < report.findings.size() ? "," : "") << "\n";
    }
    out << "      ]\n"
        << "    }\n"
        << "  ]\n"
        << "}\n";
    return out.str();
}

} // namespace analyze
} // namespace sinan
