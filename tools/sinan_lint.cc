/**
 * @file
 * Project-rule linter, run as a ctest over src/, tools/, and tests/.
 *
 * The rules encode invariants that neither the compiler nor the
 * sanitizers check, most of them in service of the repo's
 * byte-determinism guarantee (identical telemetry at any thread
 * count):
 *
 *  - no-std-rand          `rand()`/`std::rand` share hidden global
 *                         state; all randomness flows through
 *                         common/rng.h so runs are replayable.
 *  - no-raw-assert        `assert(` vanishes under NDEBUG, and ctest
 *                         runs Release; contracts use SINAN_CHECK /
 *                         SINAN_DCHECK (common/check.h) instead.
 *  - no-unordered-container
 *                         unordered_{map,set} iteration order is
 *                         implementation-defined, so anything that
 *                         ever reaches a log/CSV/JSON path breaks
 *                         byte-determinism; use std::map/std::set.
 *  - no-raw-thread        every thread is owned by the shared pool in
 *                         src/common/thread_pool; ad-hoc std::thread
 *                         breaks the pool's determinism and TSan
 *                         story.
 *  - narrowing-cast-in-header
 *                         C-style numeric casts in public headers hide
 *                         float<->int narrowing from -Wconversion
 *                         (the warning fires in the header's *users*);
 *                         use static_cast, which the flag can see
 *                         through.
 *  - missing-include-guard
 *                         every header needs `#ifndef`/`#define` or
 *                         `#pragma once`.
 *  - raw-simd-intrinsic   vector intrinsics (`_mm*`/`__m256`) are
 *                         confined to the blessed kernel TU
 *                         (src/tensor/gemm_avx2.cc); everywhere else
 *                         must go through the dispatched kernels in
 *                         tensor/gemm_kernels.h so the scalar
 *                         bit-parity contract stays auditable in one
 *                         place.
 *
 * Deliberate exceptions live in tools/lint_allowlist.txt as
 * `<rule> <repo-relative-path>` lines.
 *
 * Usage:
 *   sinan_lint <repo_root>               lint the tree
 *   sinan_lint --self-test <fixtures>    each fixture's first line is
 *                                        `// lint-expect: <rule>`; the
 *                                        linter asserts exactly that
 *                                        rule fires on the file
 */
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
    std::string rule;
    std::string path; // repo-relative
    int line = 0;
    std::string text;
};

bool
IsWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/**
 * True when @p token occurs in @p line at a position not preceded by
 * an identifier character (so `static_assert(` does not match
 * `assert(`).
 */
bool
ContainsToken(const std::string& line, const std::string& token)
{
    size_t pos = 0;
    while ((pos = line.find(token, pos)) != std::string::npos) {
        if (pos == 0 || !IsWordChar(line[pos - 1]))
            return true;
        ++pos;
    }
    return false;
}

/**
 * Strips // and block comments and the contents of string/char
 * literals, so rule patterns only match code. Preserves line
 * structure (1 output line per input line).
 */
std::vector<std::string>
StripCommentsAndStrings(const std::string& src)
{
    std::vector<std::string> lines;
    std::string cur;
    bool in_block = false, in_str = false, in_char = false;
    for (size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        const char next = i + 1 < src.size() ? src[i + 1] : '\0';
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
            in_str = in_char = false; // unterminated literals don't leak
            continue;
        }
        if (in_block) {
            if (c == '*' && next == '/') {
                in_block = false;
                ++i;
            }
            continue;
        }
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
            continue;
        }
        if (in_char) {
            if (c == '\\')
                ++i;
            else if (c == '\'')
                in_char = false;
            continue;
        }
        if (c == '/' && next == '/') {
            // Drop the rest of the line.
            while (i < src.size() && src[i] != '\n')
                ++i;
            lines.push_back(cur);
            cur.clear();
            continue;
        }
        if (c == '/' && next == '*') {
            in_block = true;
            ++i;
            continue;
        }
        if (c == '"') {
            in_str = true;
            cur += '"';
            continue;
        }
        if (c == '\'' && i > 0 && !IsWordChar(src[i - 1])) {
            in_char = true;
            cur += '\'';
            continue;
        }
        cur += c;
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

bool
IsHeader(const std::string& path)
{
    return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

bool
PathContains(const std::string& path, const std::string& part)
{
    return path.find(part) != std::string::npos;
}

/** C-style numeric cast heuristic for the header-narrowing rule. */
bool
HasCStyleNumericCast(const std::string& line)
{
    static const std::vector<std::string> kTypes = {
        "(int)",      "(float)",   "(double)",  "(long)",
        "(short)",    "(char)",    "(unsigned)", "(size_t)",
        "(int32_t)",  "(int64_t)", "(uint32_t)", "(uint64_t)",
        "(uint8_t)",  "(int8_t)",  "(uint16_t)", "(int16_t)",
    };
    for (const std::string& t : kTypes) {
        size_t pos = 0;
        while ((pos = line.find(t, pos)) != std::string::npos) {
            // `static_cast<...>(int)` can't occur; what we must NOT
            // flag is a parameter list like `void F(int);` — require
            // the cast to be applied to something: next non-space char
            // is an identifier char or '('.
            size_t after = pos + t.size();
            while (after < line.size() && line[after] == ' ')
                ++after;
            const bool applied =
                after < line.size() &&
                (IsWordChar(line[after]) || line[after] == '(');
            // ...and not itself preceded by an identifier (a call like
            // `F(int)` has `F` right before the paren).
            const bool preceded =
                pos > 0 && (IsWordChar(line[pos - 1]) ||
                            line[pos - 1] == '>' || line[pos - 1] == ')');
            if (applied && !preceded)
                return true;
            ++pos;
        }
    }
    return false;
}

/** Lints one file; @p rel is the repo-relative path used in reports. */
std::vector<Finding>
LintFile(const std::string& rel, const std::string& contents)
{
    std::vector<Finding> out;
    const std::vector<std::string> code =
        StripCommentsAndStrings(contents);
    auto add = [&](const char* rule, int line_no,
                   const std::string& text) {
        Finding f;
        f.rule = rule;
        f.path = rel;
        f.line = line_no;
        f.text = text;
        out.push_back(std::move(f));
    };

    // Tokens are spliced so this file does not flag itself.
    const std::string kRand = std::string("rand") + "(";
    const std::string kStdRand = std::string("std::") + "rand";
    const std::string kAssert = std::string("assert") + "(";
    const std::string kUMap = std::string("std::") + "unordered_map";
    const std::string kUSet = std::string("std::") + "unordered_set";
    const std::string kThread = std::string("std::") + "thread";
    const std::string kMm256 = std::string("_mm") + "256_";
    const std::string kM256Type = std::string("__m") + "256";
    const std::string kMm128 = std::string("_mm") + "_";
    const std::string kMm512 = std::string("_mm") + "512_";

    const bool in_thread_pool =
        PathContains(rel, "common/thread_pool");
    const bool in_simd_kernel =
        PathContains(rel, "tensor/gemm_avx2.cc");
    for (size_t i = 0; i < code.size(); ++i) {
        const std::string& line = code[i];
        const int no = static_cast<int>(i) + 1;
        if (ContainsToken(line, kRand) || ContainsToken(line, kStdRand))
            add("no-std-rand", no, line);
        if (ContainsToken(line, kAssert))
            add("no-raw-assert", no, line);
        if (ContainsToken(line, kUMap) || ContainsToken(line, kUSet))
            add("no-unordered-container", no, line);
        if (!in_thread_pool && ContainsToken(line, kThread) &&
            !PathContains(line, kThread + "::hardware_concurrency"))
            add("no-raw-thread", no, line);
        if (IsHeader(rel) && PathContains(rel, "src/") &&
            HasCStyleNumericCast(line))
            add("narrowing-cast-in-header", no, line);
        if (!in_simd_kernel &&
            (ContainsToken(line, kMm256) ||
             ContainsToken(line, kM256Type) ||
             ContainsToken(line, kMm128) ||
             ContainsToken(line, kMm512)))
            add("raw-simd-intrinsic", no, line);
    }

    if (IsHeader(rel)) {
        const bool guarded =
            contents.find("#pragma once") != std::string::npos ||
            (contents.find("#ifndef") != std::string::npos &&
             contents.find("#define") != std::string::npos);
        if (!guarded)
            add("missing-include-guard", 1, "");
    }
    return out;
}

std::string
ReadFile(const fs::path& p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** `<rule> <path>` pairs from tools/lint_allowlist.txt. */
std::set<std::pair<std::string, std::string>>
LoadAllowlist(const fs::path& root)
{
    std::set<std::pair<std::string, std::string>> allow;
    std::ifstream in(root / "tools" / "lint_allowlist.txt");
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream row(line);
        std::string rule, path;
        if (row >> rule >> path)
            allow.emplace(rule, path);
    }
    return allow;
}

bool
LintableFile(const fs::path& p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h";
}

int
LintTree(const fs::path& root)
{
    const auto allow = LoadAllowlist(root);
    std::set<std::pair<std::string, std::string>> used;
    std::vector<Finding> findings;
    int files = 0;
    for (const char* dir : {"src", "tools", "tests"}) {
        const fs::path base = root / dir;
        if (!fs::exists(base))
            continue;
        for (const auto& ent : fs::recursive_directory_iterator(base)) {
            if (!ent.is_regular_file() || !LintableFile(ent.path()))
                continue;
            const std::string rel =
                fs::relative(ent.path(), root).generic_string();
            if (PathContains(rel, "lint_fixtures"))
                continue;
            ++files;
            for (Finding& f : LintFile(rel, ReadFile(ent.path()))) {
                if (allow.count({f.rule, f.path})) {
                    used.emplace(f.rule, f.path);
                    continue;
                }
                findings.push_back(std::move(f));
            }
        }
    }
    for (const Finding& f : findings) {
        std::fprintf(stderr, "%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                     f.rule.c_str(), f.text.c_str());
    }
    // A stale allowlist entry is itself an error: exceptions must not
    // outlive the code they excuse.
    int stale = 0;
    for (const auto& a : allow) {
        if (!used.count(a)) {
            std::fprintf(stderr,
                         "stale allowlist entry: %s %s\n",
                         a.first.c_str(), a.second.c_str());
            ++stale;
        }
    }
    std::fprintf(stderr, "sinan_lint: %d files, %zu findings, %d stale\n",
                 files, findings.size(), stale);
    return findings.empty() && stale == 0 ? 0 : 1;
}

/**
 * Every fixture declares the one rule it violates in its first line:
 * `// lint-expect: <rule>`. The self-test proves each rule fires (and
 * fires as the right rule), so a silently-disabled rule fails CI.
 */
int
SelfTest(const fs::path& fixtures)
{
    int checked = 0, failures = 0;
    std::set<std::string> covered;
    for (const auto& ent : fs::directory_iterator(fixtures)) {
        if (!ent.is_regular_file() || !LintableFile(ent.path()))
            continue;
        const std::string contents = ReadFile(ent.path());
        const std::string tag = "// lint-expect: ";
        const size_t at = contents.find(tag);
        const std::string name = ent.path().filename().string();
        if (at == std::string::npos) {
            std::fprintf(stderr, "%s: missing lint-expect header\n",
                         name.c_str());
            ++failures;
            continue;
        }
        size_t end = contents.find('\n', at);
        if (end == std::string::npos)
            end = contents.size();
        const std::string expected =
            contents.substr(at + tag.size(), end - at - tag.size());
        // Fixtures pose as src/ files so header-only rules apply.
        const std::vector<Finding> fs_ =
            LintFile("src/" + name, contents);
        ++checked;
        const bool hit =
            std::any_of(fs_.begin(), fs_.end(), [&](const Finding& f) {
                return f.rule == expected;
            });
        if (!hit) {
            std::fprintf(stderr,
                         "%s: expected rule '%s' did not fire "
                         "(%zu findings)\n",
                         name.c_str(), expected.c_str(), fs_.size());
            for (const Finding& f : fs_)
                std::fprintf(stderr, "  fired: %s\n", f.rule.c_str());
            ++failures;
        }
        covered.insert(expected);
    }
    // The fixture set must exercise every rule.
    for (const char* rule :
         {"no-std-rand", "no-raw-assert", "no-unordered-container",
          "no-raw-thread", "narrowing-cast-in-header",
          "missing-include-guard", "raw-simd-intrinsic"}) {
        if (!covered.count(rule)) {
            std::fprintf(stderr, "no fixture covers rule '%s'\n", rule);
            ++failures;
        }
    }
    std::fprintf(stderr, "sinan_lint self-test: %d fixtures, %d failures\n",
                 checked, failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 3 && std::string(argv[1]) == "--self-test")
        return SelfTest(argv[2]);
    if (argc == 2)
        return LintTree(argv[1]);
    std::fprintf(stderr,
                 "usage: sinan_lint <repo_root> | "
                 "sinan_lint --self-test <fixtures_dir>\n");
    return 2;
}
