/**
 * @file
 * Command-line driver: run any resource manager against either
 * application under a configurable load and emit the execution log
 * (CSV) plus a summary — the equivalent of the paper artifact's
 * deployment scripts. With --fleet N it instead steps N clusters
 * concurrently under the centralized FleetManager (src/fleet).
 *
 * Flag parsing and validation live in src/cli/sim_cli.h (strict:
 * anything malformed prints usage and exits 2).
 *
 * Examples:
 *   sinan_sim --app social --manager cons --users 250 --duration 120
 *   sinan_sim --app hotel --manager sinan --users 2500 --collect 800 \
 *             --epochs 8 --log hotel_sinan.csv \
 *             --decision-log decisions.csv --metrics metrics.json
 *   sinan_sim --manager sinan --faults chaos:telemetry-blackout
 *   sinan_sim --faults 'stall@10+5:tier=2;drop@12+3'
 *   sinan_sim --faults list
 *   sinan_sim --fleet 100 --manager sinan --duration 60 \
 *             --fleet-shard '7:app=hotel,users=2500' \
 *             --fleet-shard '12:faults=chaos:tier-stall' \
 *             --fleet-log fleet.csv --fleet-report fleet.json
 */
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/apps.h"
#include "cli/sim_cli.h"
#include "common/thread_pool.h"
#include "core/scheduler.h"
#include "fleet/fleet.h"
#include "harness/harness.h"
#include "harness/runlog.h"
#include "harness/telemetry_log.h"
#include "sim/fault_injector.h"

using namespace sinan;

int
main(int argc, char** argv)
{
    const SimOptions opt = ParseSimArgs(argc, argv);
    if (opt.threads > 0)
        SetNumThreads(opt.threads);

    if (opt.fleet > 0)
        return RunFleetMode(opt);

    Application app = opt.app == "hotel" ? BuildHotelReservation()
                                         : BuildSocialNetwork();
    if (!opt.mix_weights.empty()) {
        try {
            SetRequestMix(app, opt.mix_weights);
        } catch (const std::exception& e) {
            SimUsage(e.what());
        }
    }

    RunConfig cfg;
    cfg.duration_s = opt.duration_s;
    cfg.warmup_s = opt.warmup_s;
    cfg.seed = opt.seed;
    cfg.faults = opt.faults;
    if (!opt.faults.Empty()) {
        try {
            ValidateFaultSchedule(
                opt.faults, static_cast<int>(app.tiers.size()));
        } catch (const std::exception& e) {
            SimUsage(e.what());
        }
    }

    std::unique_ptr<ResourceManager> manager;
    std::unique_ptr<TrainedSinan> trained;
    if (opt.manager == "sinan") {
        std::printf("training Sinan (%.0f s collection, %d epochs)...\n",
                    opt.collect_s, opt.epochs);
        PipelineConfig pcfg;
        pcfg.collect_s = opt.collect_s;
        pcfg.users_min = opt.app == "hotel" ? 500.0 : 50.0;
        pcfg.users_max = opt.app == "hotel" ? 3700.0 : 450.0;
        pcfg.hybrid = DefaultHybridConfig();
        pcfg.hybrid.train.epochs = opt.epochs;
        pcfg.seed = opt.seed;
        trained = std::make_unique<TrainedSinan>(
            TrainSinanForApp(app, pcfg));
        std::printf("CNN val RMSE %.1f ms, BT val acc %.1f%%\n",
                    trained->report.cnn.val_rmse_ms,
                    100.0 * trained->report.bt_val_accuracy);
        SchedulerConfig scfg;
        scfg.uncertainty = opt.uncertainty;
        scfg.quant = opt.quant;
        manager = std::make_unique<SinanScheduler>(*trained->model,
                                                   scfg);
    } else {
        manager = MakeBaselineManager(opt.manager);
    }

    std::unique_ptr<LoadShape> load;
    if (opt.diurnal) {
        load = std::make_unique<DiurnalLoad>(
            opt.diurnal_low, opt.diurnal_high, opt.diurnal_period);
    } else {
        load = std::make_unique<ConstantLoad>(opt.users);
    }

    const RunResult r = RunManaged(app, *manager, *load, cfg);

    std::printf("\n%s on %s for %.0f s:\n", manager->Name(),
                app.name.c_str(), opt.duration_s);
    std::printf("  P(meet QoS)       : %.3f\n", r.qos_meet_prob);
    std::printf("  mean / max CPU    : %.1f / %.1f cores\n", r.mean_cpu,
                r.max_cpu);
    std::printf("  mean p99          : %.1f ms (QoS %.0f ms)\n",
                r.mean_p99_ms, app.qos_ms);

    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    if (tel.decisions > 0) {
        std::printf("  decisions         : %llu (%llu warmup, %llu "
                    "model, %llu no-feasible)\n",
                    static_cast<unsigned long long>(tel.decisions),
                    static_cast<unsigned long long>(tel.warmup),
                    static_cast<unsigned long long>(tel.model_decisions),
                    static_cast<unsigned long long>(tel.no_feasible));
        std::printf("  fallbacks         : %llu (%llu escalated), rate "
                    "%.3f\n",
                    static_cast<unsigned long long>(tel.fallbacks),
                    static_cast<unsigned long long>(tel.escalations),
                    tel.FallbackRate());
        std::printf("  prediction acc.   : %.3f (%llu mispredictions / "
                    "%llu predictions)\n",
                    tel.PredictionAccuracy(),
                    static_cast<unsigned long long>(tel.mispredictions),
                    static_cast<unsigned long long>(tel.predictions));
        std::printf("  trust events      : %llu lost, %llu restored\n",
                    static_cast<unsigned long long>(tel.trust_lost),
                    static_cast<unsigned long long>(tel.trust_restored));
        if (tel.uncertain > 0) {
            std::printf("  uncertain decis.  : %llu (%llu model)\n",
                        static_cast<unsigned long long>(tel.uncertain),
                        static_cast<unsigned long long>(
                            tel.uncertain_model));
        }
    }
    if (!opt.faults.Empty()) {
        std::printf("  fault intervals   : %llu injected\n",
                    static_cast<unsigned long long>(r.metrics.Counter(
                        "sinan.faults.active_intervals")));
        if (tel.degraded > 0) {
            std::printf("  degraded decisions: %llu (%llu model, %llu "
                        "heuristic, %llu hold), %llu watchdog "
                        "upscales\n",
                        static_cast<unsigned long long>(tel.degraded),
                        static_cast<unsigned long long>(
                            tel.degraded_model),
                        static_cast<unsigned long long>(
                            tel.degraded_heuristic),
                        static_cast<unsigned long long>(
                            tel.degraded_hold),
                        static_cast<unsigned long long>(
                            tel.watchdog_upscales));
        }
        const double fault_end_s =
            static_cast<double>(opt.faults.EndInterval()) *
            cfg.sim.interval_s;
        const int rec = RecoveryIntervals(r, fault_end_s, app.qos_ms);
        if (rec < 0)
            std::printf("  recovery          : not within the run\n");
        else
            std::printf("  recovery          : %d interval%s after the "
                        "last fault\n",
                        rec, rec == 1 ? "" : "s");
    }

    if (!opt.log_path.empty()) {
        WriteRunLog(opt.log_path, r, app);
        std::printf("  execution log     : %s\n", opt.log_path.c_str());
    }
    if (!opt.decision_log_path.empty()) {
        WriteDecisionTrace(opt.decision_log_path, r.decision_trace);
        std::printf("  decision log      : %s (%zu intervals)\n",
                    opt.decision_log_path.c_str(),
                    r.decision_trace.intervals.size());
    }
    if (!opt.metrics_path.empty()) {
        WriteMetrics(opt.metrics_path, r.metrics);
        std::printf("  metrics           : %s\n",
                    opt.metrics_path.c_str());
    }
    return 0;
}
