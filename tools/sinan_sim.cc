/**
 * @file
 * Command-line driver: run any resource manager against either
 * application under a configurable load and emit the execution log
 * (CSV) plus a summary — the equivalent of the paper artifact's
 * deployment scripts.
 *
 * Usage:
 *   sinan_sim [--app hotel|social] [--manager sinan|opt|cons|powerchief|hold]
 *             [--users N | --diurnal LO:HI:PERIOD] [--duration S]
 *             [--warmup S] [--seed N] [--collect S] [--epochs N]
 *             [--mix W0,W1,...] [--log FILE] [--threads N]
 *             [--decision-log FILE] [--metrics FILE] [--faults SPEC]
 *
 * Examples:
 *   sinan_sim --app social --manager cons --users 250 --duration 120
 *   sinan_sim --app hotel --manager sinan --users 2500 --collect 800 \
 *             --epochs 8 --log hotel_sinan.csv \
 *             --decision-log decisions.csv --metrics metrics.json
 *   sinan_sim --manager sinan --faults chaos:telemetry-blackout
 *   sinan_sim --faults 'stall@10+5:tier=2;drop@12+3'
 *   sinan_sim --faults list
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "common/thread_pool.h"
#include "baselines/powerchief.h"
#include "core/scheduler.h"
#include "harness/harness.h"
#include "harness/runlog.h"
#include "harness/telemetry_log.h"
#include "sim/fault_injector.h"

namespace {

using namespace sinan;

struct CliOptions {
    std::string app = "social";
    std::string manager = "cons";
    double users = 200.0;
    bool users_set = false;
    bool diurnal = false;
    double diurnal_low = 100.0;
    double diurnal_high = 300.0;
    double diurnal_period = 600.0;
    double duration_s = 120.0;
    double warmup_s = 20.0;
    uint64_t seed = 1;
    double collect_s = 800.0;
    int epochs = 8;
    std::string mix;
    std::string log_path;
    /** Decision-trace / metrics output (".json" selects JSON). */
    std::string decision_log_path;
    std::string metrics_path;
    /** 0 = keep the default (SINAN_THREADS or hardware concurrency). */
    int threads = 0;
    /** Fault-injection schedule (see sim/fault_injector.h). */
    FaultSchedule faults;
    double fault_end_s = 0.0;
};

[[noreturn]] void
Usage(const char* msg)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n", msg);
    std::fprintf(
        stderr,
        "usage: sinan_sim [--app hotel|social]\n"
        "                 [--manager sinan|opt|cons|powerchief|hold]\n"
        "                 [--users N | --diurnal LO:HI:PERIOD]\n"
        "                 [--duration S] [--warmup S] [--seed N]\n"
        "                 [--collect S] [--epochs N] [--mix W,W,...]\n"
        "                 [--log FILE] [--threads N]\n"
        "                 [--decision-log FILE] [--metrics FILE]\n"
        "                 [--faults SPEC]\n"
        "\n"
        "  --faults accepts 'kind@start[+dur][:tier=N][:mag=X]' events\n"
        "  joined with ';' (kinds: stall caploss spike steal drop delay\n"
        "  nan), a named scenario 'chaos:NAME', or 'list' to print the\n"
        "  scenario catalog and exit.\n");
    std::exit(2);
}

/** Strict numeric parsers: the whole argument must be consumed.
 *  (std::atof-style parsing turned typos like `--users 2oo` into 2 —
 *  or 0 — and silently ran the wrong experiment.) */
double
ParseDoubleArg(const char* flag, const std::string& v)
{
    char* end = nullptr;
    const double out = std::strtod(v.c_str(), &end);
    if (v.empty() || end != v.c_str() + v.size())
        Usage((std::string(flag) + " expects a number, got '" + v + "'")
                  .c_str());
    return out;
}

int
ParseIntArg(const char* flag, const std::string& v)
{
    char* end = nullptr;
    const long out = std::strtol(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size())
        Usage((std::string(flag) + " expects an integer, got '" + v +
               "'")
                  .c_str());
    return static_cast<int>(out);
}

uint64_t
ParseU64Arg(const char* flag, const std::string& v)
{
    char* end = nullptr;
    const unsigned long long out = std::strtoull(v.c_str(), &end, 10);
    if (v.empty() || end != v.c_str() + v.size())
        Usage((std::string(flag) + " expects an unsigned integer, got '" +
               v + "'")
                  .c_str());
    return out;
}

[[noreturn]] void
ListChaosScenarios()
{
    std::printf("named chaos scenarios (--faults chaos:NAME):\n");
    for (const ChaosScenario& s : ChaosScenarios()) {
        std::printf("  %-18s %-40s %s\n", s.name.c_str(),
                    s.spec.c_str(), s.description.c_str());
    }
    std::exit(0);
}

CliOptions
Parse(int argc, char** argv)
{
    CliOptions opt;
    // Accept both `--flag value` and `--flag=value`.
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        const size_t eq = a.find('=');
        if (a.rfind("--", 0) == 0 && eq != std::string::npos) {
            args.push_back(a.substr(0, eq));
            args.push_back(a.substr(eq + 1));
        } else {
            args.push_back(a);
        }
    }

    const size_t n = args.size();
    auto need = [&](size_t i) -> const std::string& {
        if (i + 1 >= n)
            Usage(("missing value for " + args[i]).c_str());
        return args[i + 1];
    };
    for (size_t i = 0; i < n; ++i) {
        const std::string& a = args[i];
        if (a == "--app") {
            opt.app = need(i++);
        } else if (a == "--manager") {
            opt.manager = need(i++);
        } else if (a == "--users") {
            opt.users = ParseDoubleArg("--users", need(i++));
            opt.users_set = true;
        } else if (a == "--diurnal") {
            opt.diurnal = true;
            const std::string v = need(i++);
            char lo[64], hi[64], period[64];
            if (std::sscanf(v.c_str(), "%63[^:]:%63[^:]:%63s", lo, hi,
                            period) != 3) {
                Usage("--diurnal expects LO:HI:PERIOD");
            }
            opt.diurnal_low = ParseDoubleArg("--diurnal LO", lo);
            opt.diurnal_high = ParseDoubleArg("--diurnal HI", hi);
            opt.diurnal_period =
                ParseDoubleArg("--diurnal PERIOD", period);
        } else if (a == "--duration") {
            opt.duration_s = ParseDoubleArg("--duration", need(i++));
        } else if (a == "--warmup") {
            opt.warmup_s = ParseDoubleArg("--warmup", need(i++));
        } else if (a == "--seed") {
            opt.seed = ParseU64Arg("--seed", need(i++));
        } else if (a == "--collect") {
            opt.collect_s = ParseDoubleArg("--collect", need(i++));
        } else if (a == "--epochs") {
            opt.epochs = ParseIntArg("--epochs", need(i++));
        } else if (a == "--mix") {
            opt.mix = need(i++);
        } else if (a == "--log") {
            opt.log_path = need(i++);
        } else if (a == "--decision-log") {
            opt.decision_log_path = need(i++);
        } else if (a == "--metrics") {
            opt.metrics_path = need(i++);
        } else if (a == "--threads") {
            opt.threads = ParseIntArg("--threads", need(i++));
            if (opt.threads < 0)
                Usage("--threads must be >= 0");
        } else if (a == "--faults") {
            const std::string spec = need(i++);
            if (spec == "list")
                ListChaosScenarios();
            try {
                opt.faults = ParseFaultSpec(spec);
            } catch (const std::exception& e) {
                Usage(e.what());
            }
        } else if (a == "--help" || a == "-h") {
            Usage(nullptr);
        } else {
            Usage(("unknown flag " + a).c_str());
        }
    }
    if (opt.app != "hotel" && opt.app != "social")
        Usage("--app must be hotel or social");
    if (opt.users_set && opt.diurnal)
        Usage("--users and --diurnal are mutually exclusive");
    if (opt.duration_s <= 0 || opt.users <= 0)
        Usage("durations and users must be positive");
    if (opt.diurnal &&
        (opt.diurnal_low <= 0 || opt.diurnal_high < opt.diurnal_low ||
         opt.diurnal_period <= 0))
        Usage("--diurnal expects 0 < LO <= HI and PERIOD > 0");
    if (opt.warmup_s < 0)
        Usage("--warmup must be >= 0");
    if (opt.epochs <= 0)
        Usage("--epochs must be > 0");
    if (opt.collect_s <= 0)
        Usage("--collect must be > 0");
    return opt;
}

/** A do-nothing manager, handy as a control. */
class HoldManager : public ResourceManager {
  public:
    std::vector<double>
    Decide(const IntervalObservation&, const std::vector<double>& alloc,
           const Application&) override
    {
        return alloc;
    }
    const char* Name() const override { return "Hold"; }
};

} // namespace

int
main(int argc, char** argv)
{
    const CliOptions opt = Parse(argc, argv);
    if (opt.threads > 0)
        SetNumThreads(opt.threads);

    Application app = opt.app == "hotel" ? BuildHotelReservation()
                                         : BuildSocialNetwork();
    if (!opt.mix.empty()) {
        std::vector<double> weights;
        const char* p = opt.mix.c_str();
        char* end = nullptr;
        while (*p) {
            const double w = std::strtod(p, &end);
            if (end == p)
                Usage(("--mix expects numbers, got '" + opt.mix + "'")
                          .c_str());
            weights.push_back(w);
            p = *end == ',' ? end + 1 : end;
        }
        SetRequestMix(app, weights);
    }

    RunConfig cfg;
    cfg.duration_s = opt.duration_s;
    cfg.warmup_s = opt.warmup_s;
    cfg.seed = opt.seed;
    cfg.faults = opt.faults;
    if (!opt.faults.Empty()) {
        try {
            ValidateFaultSchedule(
                opt.faults, static_cast<int>(app.tiers.size()));
        } catch (const std::exception& e) {
            Usage(e.what());
        }
    }

    std::unique_ptr<ResourceManager> manager;
    std::unique_ptr<TrainedSinan> trained;
    if (opt.manager == "sinan") {
        std::printf("training Sinan (%.0f s collection, %d epochs)...\n",
                    opt.collect_s, opt.epochs);
        PipelineConfig pcfg;
        pcfg.collect_s = opt.collect_s;
        pcfg.users_min = opt.app == "hotel" ? 500.0 : 50.0;
        pcfg.users_max = opt.app == "hotel" ? 3700.0 : 450.0;
        pcfg.hybrid = DefaultHybridConfig();
        pcfg.hybrid.train.epochs = opt.epochs;
        pcfg.seed = opt.seed;
        trained = std::make_unique<TrainedSinan>(
            TrainSinanForApp(app, pcfg));
        std::printf("CNN val RMSE %.1f ms, BT val acc %.1f%%\n",
                    trained->report.cnn.val_rmse_ms,
                    100.0 * trained->report.bt_val_accuracy);
        manager = std::make_unique<SinanScheduler>(*trained->model,
                                                   SchedulerConfig{});
    } else if (opt.manager == "opt") {
        manager = std::make_unique<AutoScaler>(MakeAutoScaleOpt());
    } else if (opt.manager == "cons") {
        manager = std::make_unique<AutoScaler>(MakeAutoScaleCons());
    } else if (opt.manager == "powerchief") {
        manager = std::make_unique<PowerChief>();
    } else if (opt.manager == "hold") {
        manager = std::make_unique<HoldManager>();
    } else {
        Usage("unknown --manager");
    }

    std::unique_ptr<LoadShape> load;
    if (opt.diurnal) {
        load = std::make_unique<DiurnalLoad>(
            opt.diurnal_low, opt.diurnal_high, opt.diurnal_period);
    } else {
        load = std::make_unique<ConstantLoad>(opt.users);
    }

    const RunResult r = RunManaged(app, *manager, *load, cfg);

    std::printf("\n%s on %s for %.0f s:\n", manager->Name(),
                app.name.c_str(), opt.duration_s);
    std::printf("  P(meet QoS)       : %.3f\n", r.qos_meet_prob);
    std::printf("  mean / max CPU    : %.1f / %.1f cores\n", r.mean_cpu,
                r.max_cpu);
    std::printf("  mean p99          : %.1f ms (QoS %.0f ms)\n",
                r.mean_p99_ms, app.qos_ms);

    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    if (tel.decisions > 0) {
        std::printf("  decisions         : %llu (%llu warmup, %llu "
                    "model, %llu no-feasible)\n",
                    static_cast<unsigned long long>(tel.decisions),
                    static_cast<unsigned long long>(tel.warmup),
                    static_cast<unsigned long long>(tel.model_decisions),
                    static_cast<unsigned long long>(tel.no_feasible));
        std::printf("  fallbacks         : %llu (%llu escalated), rate "
                    "%.3f\n",
                    static_cast<unsigned long long>(tel.fallbacks),
                    static_cast<unsigned long long>(tel.escalations),
                    tel.FallbackRate());
        std::printf("  prediction acc.   : %.3f (%llu mispredictions / "
                    "%llu predictions)\n",
                    tel.PredictionAccuracy(),
                    static_cast<unsigned long long>(tel.mispredictions),
                    static_cast<unsigned long long>(tel.predictions));
        std::printf("  trust events      : %llu lost, %llu restored\n",
                    static_cast<unsigned long long>(tel.trust_lost),
                    static_cast<unsigned long long>(tel.trust_restored));
    }
    if (!opt.faults.Empty()) {
        std::printf("  fault intervals   : %llu injected\n",
                    static_cast<unsigned long long>(r.metrics.Counter(
                        "sinan.faults.active_intervals")));
        if (tel.degraded > 0) {
            std::printf("  degraded decisions: %llu (%llu model, %llu "
                        "heuristic, %llu hold), %llu watchdog "
                        "upscales\n",
                        static_cast<unsigned long long>(tel.degraded),
                        static_cast<unsigned long long>(
                            tel.degraded_model),
                        static_cast<unsigned long long>(
                            tel.degraded_heuristic),
                        static_cast<unsigned long long>(
                            tel.degraded_hold),
                        static_cast<unsigned long long>(
                            tel.watchdog_upscales));
        }
        const double fault_end_s =
            static_cast<double>(opt.faults.EndInterval()) *
            cfg.sim.interval_s;
        const int rec = RecoveryIntervals(r, fault_end_s, app.qos_ms);
        if (rec < 0)
            std::printf("  recovery          : not within the run\n");
        else
            std::printf("  recovery          : %d interval%s after the "
                        "last fault\n",
                        rec, rec == 1 ? "" : "s");
    }

    if (!opt.log_path.empty()) {
        WriteRunLog(opt.log_path, r, app);
        std::printf("  execution log     : %s\n", opt.log_path.c_str());
    }
    if (!opt.decision_log_path.empty()) {
        WriteDecisionTrace(opt.decision_log_path, r.decision_trace);
        std::printf("  decision log      : %s (%zu intervals)\n",
                    opt.decision_log_path.c_str(),
                    r.decision_trace.intervals.size());
    }
    if (!opt.metrics_path.empty()) {
        WriteMetrics(opt.metrics_path, r.metrics);
        std::printf("  metrics           : %s\n",
                    opt.metrics_path.c_str());
    }
    return 0;
}
