/**
 * @file
 * Command-line driver: run any resource manager against either
 * application under a configurable load and emit the execution log
 * (CSV) plus a summary — the equivalent of the paper artifact's
 * deployment scripts.
 *
 * Usage:
 *   sinan_sim [--app hotel|social] [--manager sinan|opt|cons|powerchief|hold]
 *             [--users N | --diurnal LO:HI:PERIOD] [--duration S]
 *             [--warmup S] [--seed N] [--collect S] [--epochs N]
 *             [--mix W0,W1,...] [--log FILE] [--threads N]
 *             [--decision-log FILE] [--metrics FILE]
 *
 * Examples:
 *   sinan_sim --app social --manager cons --users 250 --duration 120
 *   sinan_sim --app hotel --manager sinan --users 2500 --collect 800 \
 *             --epochs 8 --log hotel_sinan.csv \
 *             --decision-log decisions.csv --metrics metrics.json
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "app/apps.h"
#include "baselines/autoscale.h"
#include "common/thread_pool.h"
#include "baselines/powerchief.h"
#include "core/scheduler.h"
#include "harness/harness.h"
#include "harness/runlog.h"
#include "harness/telemetry_log.h"

namespace {

using namespace sinan;

struct CliOptions {
    std::string app = "social";
    std::string manager = "cons";
    double users = 200.0;
    bool diurnal = false;
    double diurnal_low = 100.0;
    double diurnal_high = 300.0;
    double diurnal_period = 600.0;
    double duration_s = 120.0;
    double warmup_s = 20.0;
    uint64_t seed = 1;
    double collect_s = 800.0;
    int epochs = 8;
    std::string mix;
    std::string log_path;
    /** Decision-trace / metrics output (".json" selects JSON). */
    std::string decision_log_path;
    std::string metrics_path;
    /** 0 = keep the default (SINAN_THREADS or hardware concurrency). */
    int threads = 0;
};

[[noreturn]] void
Usage(const char* msg)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n", msg);
    std::fprintf(
        stderr,
        "usage: sinan_sim [--app hotel|social]\n"
        "                 [--manager sinan|opt|cons|powerchief|hold]\n"
        "                 [--users N | --diurnal LO:HI:PERIOD]\n"
        "                 [--duration S] [--warmup S] [--seed N]\n"
        "                 [--collect S] [--epochs N] [--mix W,W,...]\n"
        "                 [--log FILE] [--threads N]\n"
        "                 [--decision-log FILE] [--metrics FILE]\n");
    std::exit(2);
}

CliOptions
Parse(int argc, char** argv)
{
    CliOptions opt;
    auto need = [&](int i) {
        if (i + 1 >= argc)
            Usage("missing argument value");
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--app") {
            opt.app = need(i++);
        } else if (a == "--manager") {
            opt.manager = need(i++);
        } else if (a == "--users") {
            opt.users = std::atof(need(i++));
        } else if (a == "--diurnal") {
            opt.diurnal = true;
            const std::string v = need(i++);
            if (std::sscanf(v.c_str(), "%lf:%lf:%lf", &opt.diurnal_low,
                            &opt.diurnal_high,
                            &opt.diurnal_period) != 3) {
                Usage("--diurnal expects LO:HI:PERIOD");
            }
        } else if (a == "--duration") {
            opt.duration_s = std::atof(need(i++));
        } else if (a == "--warmup") {
            opt.warmup_s = std::atof(need(i++));
        } else if (a == "--seed") {
            opt.seed = std::strtoull(need(i++), nullptr, 10);
        } else if (a == "--collect") {
            opt.collect_s = std::atof(need(i++));
        } else if (a == "--epochs") {
            opt.epochs = std::atoi(need(i++));
        } else if (a == "--mix") {
            opt.mix = need(i++);
        } else if (a == "--log") {
            opt.log_path = need(i++);
        } else if (a == "--decision-log") {
            opt.decision_log_path = need(i++);
        } else if (a == "--metrics") {
            opt.metrics_path = need(i++);
        } else if (a == "--threads") {
            opt.threads = std::atoi(need(i++));
            if (opt.threads < 0)
                Usage("--threads must be >= 0");
        } else if (a == "--help" || a == "-h") {
            Usage(nullptr);
        } else {
            Usage(("unknown flag " + a).c_str());
        }
    }
    if (opt.app != "hotel" && opt.app != "social")
        Usage("--app must be hotel or social");
    if (opt.duration_s <= 0 || opt.users <= 0)
        Usage("durations and users must be positive");
    return opt;
}

/** A do-nothing manager, handy as a control. */
class HoldManager : public ResourceManager {
  public:
    std::vector<double>
    Decide(const IntervalObservation&, const std::vector<double>& alloc,
           const Application&) override
    {
        return alloc;
    }
    const char* Name() const override { return "Hold"; }
};

} // namespace

int
main(int argc, char** argv)
{
    const CliOptions opt = Parse(argc, argv);
    if (opt.threads > 0)
        SetNumThreads(opt.threads);

    Application app = opt.app == "hotel" ? BuildHotelReservation()
                                         : BuildSocialNetwork();
    if (!opt.mix.empty()) {
        std::vector<double> weights;
        const char* p = opt.mix.c_str();
        char* end = nullptr;
        while (*p) {
            weights.push_back(std::strtod(p, &end));
            p = *end == ',' ? end + 1 : end;
        }
        SetRequestMix(app, weights);
    }

    std::unique_ptr<ResourceManager> manager;
    std::unique_ptr<TrainedSinan> trained;
    if (opt.manager == "sinan") {
        std::printf("training Sinan (%.0f s collection, %d epochs)...\n",
                    opt.collect_s, opt.epochs);
        PipelineConfig pcfg;
        pcfg.collect_s = opt.collect_s;
        pcfg.users_min = opt.app == "hotel" ? 500.0 : 50.0;
        pcfg.users_max = opt.app == "hotel" ? 3700.0 : 450.0;
        pcfg.hybrid = DefaultHybridConfig();
        pcfg.hybrid.train.epochs = opt.epochs;
        pcfg.seed = opt.seed;
        trained = std::make_unique<TrainedSinan>(
            TrainSinanForApp(app, pcfg));
        std::printf("CNN val RMSE %.1f ms, BT val acc %.1f%%\n",
                    trained->report.cnn.val_rmse_ms,
                    100.0 * trained->report.bt_val_accuracy);
        manager = std::make_unique<SinanScheduler>(*trained->model,
                                                   SchedulerConfig{});
    } else if (opt.manager == "opt") {
        manager = std::make_unique<AutoScaler>(MakeAutoScaleOpt());
    } else if (opt.manager == "cons") {
        manager = std::make_unique<AutoScaler>(MakeAutoScaleCons());
    } else if (opt.manager == "powerchief") {
        manager = std::make_unique<PowerChief>();
    } else if (opt.manager == "hold") {
        manager = std::make_unique<HoldManager>();
    } else {
        Usage("unknown --manager");
    }

    std::unique_ptr<LoadShape> load;
    if (opt.diurnal) {
        load = std::make_unique<DiurnalLoad>(
            opt.diurnal_low, opt.diurnal_high, opt.diurnal_period);
    } else {
        load = std::make_unique<ConstantLoad>(opt.users);
    }

    RunConfig cfg;
    cfg.duration_s = opt.duration_s;
    cfg.warmup_s = opt.warmup_s;
    cfg.seed = opt.seed;
    const RunResult r = RunManaged(app, *manager, *load, cfg);

    std::printf("\n%s on %s for %.0f s:\n", manager->Name(),
                app.name.c_str(), opt.duration_s);
    std::printf("  P(meet QoS)       : %.3f\n", r.qos_meet_prob);
    std::printf("  mean / max CPU    : %.1f / %.1f cores\n", r.mean_cpu,
                r.max_cpu);
    std::printf("  mean p99          : %.1f ms (QoS %.0f ms)\n",
                r.mean_p99_ms, app.qos_ms);

    const TelemetrySummary tel = SummarizeTelemetry(r.metrics);
    if (tel.decisions > 0) {
        std::printf("  decisions         : %llu (%llu warmup, %llu "
                    "model, %llu no-feasible)\n",
                    static_cast<unsigned long long>(tel.decisions),
                    static_cast<unsigned long long>(tel.warmup),
                    static_cast<unsigned long long>(tel.model_decisions),
                    static_cast<unsigned long long>(tel.no_feasible));
        std::printf("  fallbacks         : %llu (%llu escalated), rate "
                    "%.3f\n",
                    static_cast<unsigned long long>(tel.fallbacks),
                    static_cast<unsigned long long>(tel.escalations),
                    tel.FallbackRate());
        std::printf("  prediction acc.   : %.3f (%llu mispredictions / "
                    "%llu predictions)\n",
                    tel.PredictionAccuracy(),
                    static_cast<unsigned long long>(tel.mispredictions),
                    static_cast<unsigned long long>(tel.predictions));
        std::printf("  trust events      : %llu lost, %llu restored\n",
                    static_cast<unsigned long long>(tel.trust_lost),
                    static_cast<unsigned long long>(tel.trust_restored));
    }

    if (!opt.log_path.empty()) {
        WriteRunLog(opt.log_path, r, app);
        std::printf("  execution log     : %s\n", opt.log_path.c_str());
    }
    if (!opt.decision_log_path.empty()) {
        WriteDecisionTrace(opt.decision_log_path, r.decision_trace);
        std::printf("  decision log      : %s (%zu intervals)\n",
                    opt.decision_log_path.c_str(),
                    r.decision_trace.intervals.size());
    }
    if (!opt.metrics_path.empty()) {
        WriteMetrics(opt.metrics_path, r.metrics);
        std::printf("  metrics           : %s\n",
                    opt.metrics_path.c_str());
    }
    return 0;
}
