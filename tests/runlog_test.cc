/**
 * @file
 * Tests for the execution-log writer/parser and its summary processing.
 */
#include <gtest/gtest.h>

#include <filesystem>

#include "app/apps.h"
#include "harness/runlog.h"

namespace sinan {
namespace {

RunResult
ToyResult(int intervals)
{
    RunResult r;
    for (int i = 0; i < intervals; ++i) {
        IntervalRecord rec;
        rec.time_s = i + 1.0;
        rec.rps = 100.0 + i;
        rec.p99_ms = 100.0 + 10.0 * i;
        rec.predicted_p99_ms = 95.0 + 10.0 * i;
        rec.predicted_violation = 0.05 * i;
        rec.alloc = {1.0 + i, 2.0, 3.0};
        rec.total_cpu = rec.alloc[0] + 5.0;
        r.timeline.push_back(rec);
    }
    return r;
}

Application
ToyApp()
{
    Application app;
    app.name = "toy";
    app.qos_ms = 150.0;
    for (const char* n : {"a", "b", "c"}) {
        TierSpec t;
        t.name = n;
        app.tiers.push_back(t);
    }
    RequestType rt;
    rt.root.tier = 0;
    app.request_types.push_back(rt);
    return app;
}

TEST(RunLog, CsvRoundTrip)
{
    const Application app = ToyApp();
    const RunResult r = ToyResult(4);
    const std::string csv = RunLogToCsv(r, app);
    EXPECT_NE(csv.find("cpu:a"), std::string::npos);

    const std::vector<RunLogRow> rows = ParseRunLog(csv);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_NEAR(rows[2].time_s, 3.0, 1e-9);
    EXPECT_NEAR(rows[2].p99_ms, 120.0, 1e-9);
    EXPECT_NEAR(rows[2].predicted_p99_ms, 115.0, 1e-9);
    ASSERT_EQ(rows[2].alloc.size(), 3u);
    EXPECT_NEAR(rows[2].alloc[0], 3.0, 1e-9);
}

TEST(RunLog, FileRoundTrip)
{
    const Application app = ToyApp();
    const RunResult r = ToyResult(3);
    const std::string path = "/tmp/sinan_runlog_test/run.csv";
    WriteRunLog(path, r, app);
    const std::vector<RunLogRow> rows = LoadRunLog(path);
    EXPECT_EQ(rows.size(), 3u);
    std::filesystem::remove_all("/tmp/sinan_runlog_test");
    EXPECT_THROW(LoadRunLog(path), std::runtime_error);
}

TEST(RunLog, ParserRejectsGarbage)
{
    EXPECT_THROW(ParseRunLog(""), std::invalid_argument);
    EXPECT_THROW(ParseRunLog("not,a,header\n1,2,3\n"),
                 std::invalid_argument);
    EXPECT_THROW(
        ParseRunLog("time_s,rps,p99_ms,predicted_p99_ms,"
                    "predicted_violation,total_cpu\n1,2,3\n"),
        std::invalid_argument);
}

TEST(RunLog, MalformedCellReportsLineAndColumn)
{
    const std::string csv =
        "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
        "total_cpu,cpu:a\n"
        "1,100,50,45,0.1,6,2\n"
        "2,100,oops,45,0.1,6,2\n";
    try {
        ParseRunLog(csv);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("column 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'oops'"), std::string::npos) << msg;
    }
}

TEST(RunLog, RejectsTrailingGarbageInCell)
{
    // std::stod would parse the "1.5" prefix and silently drop "x".
    const std::string csv =
        "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
        "total_cpu,cpu:a\n"
        "1.5x,100,50,45,0.1,6,2\n";
    EXPECT_THROW(ParseRunLog(csv), std::invalid_argument);
}

TEST(RunLog, RejectsEmptyCell)
{
    const std::string csv =
        "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
        "total_cpu,cpu:a\n"
        "1,100,,45,0.1,6,2\n";
    EXPECT_THROW(ParseRunLog(csv), std::invalid_argument);
}

TEST(RunLog, RejectsAllocColumnCountMismatch)
{
    // Header declares two tiers; rows with one or three alloc cells
    // must be rejected rather than silently shifting allocations.
    const std::string header =
        "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
        "total_cpu,cpu:a,cpu:b\n";
    EXPECT_NO_THROW(ParseRunLog(header + "1,100,50,45,0.1,6,2,3\n"));
    try {
        ParseRunLog(header + "1,100,50,45,0.1,6,2\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("7 columns"), std::string::npos) << msg;
        EXPECT_NE(msg.find("header has 8"), std::string::npos) << msg;
    }
    EXPECT_THROW(ParseRunLog(header + "1,100,50,45,0.1,6,2,3,4\n"),
                 std::invalid_argument);
}

TEST(RunLog, AcceptsCrlfLineEndings)
{
    // Logs round-tripped through Windows tooling arrive with CRLF;
    // the '\r' used to stick to the last cell and fail numeric
    // parsing.
    const std::string csv =
        "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
        "total_cpu,cpu:a\r\n"
        "1,100,50,45,0.1,6,2\r\n"
        "2,100,60,55,0.1,6,2\r\n";
    const std::vector<RunLogRow> rows = ParseRunLog(csv);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_NEAR(rows[1].p99_ms, 60.0, 1e-9);
    ASSERT_EQ(rows[1].alloc.size(), 1u);
    EXPECT_NEAR(rows[1].alloc[0], 2.0, 1e-9);
}

TEST(RunLog, TruncatedFinalLineGetsAClearError)
{
    // A run cut short mid-write ends without a newline; the error must
    // say so instead of reporting a bare cell/column mismatch.
    const std::string header =
        "time_s,rps,p99_ms,predicted_p99_ms,predicted_violation,"
        "total_cpu,cpu:a\n";
    // Row cut mid-cell: the partial "0." still parses, so the column
    // count check fires — with the truncation hint.
    try {
        ParseRunLog(header + "1,100,50,45,0.1,6,2\n2,100,60,55,0.");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    }
    // Row cut mid-number leaving garbage: the cell error carries the
    // hint too.
    try {
        ParseRunLog(header + "1,100,50,45,0.1,6,2\n2,100,6e");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
    }
    // A complete final row without a trailing newline still parses:
    // truncation is only reported when the row is actually malformed.
    const std::vector<RunLogRow> rows =
        ParseRunLog(header + "1,100,50,45,0.1,6,2\n2,100,60,55,0.1,6,3");
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_NEAR(rows[1].alloc[0], 3.0, 1e-9);
    // An intact file never mentions truncation.
    try {
        ParseRunLog(header + "1,100,oops,45,0.1,6,2\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST(RunLog, SummaryMatchesDirectComputation)
{
    const RunResult r = ToyResult(10); // p99: 100..190, QoS 150
    const Application app = ToyApp();
    const auto rows = ParseRunLog(RunLogToCsv(r, app));
    const RunLogSummary s = SummarizeRunLog(rows, app.qos_ms, 0.0);
    EXPECT_EQ(s.intervals, 10u);
    // p99 <= 150 for i=0..5 -> 6 of 10.
    EXPECT_NEAR(s.qos_meet_prob, 0.6, 1e-9);
    EXPECT_NEAR(s.max_p99_ms, 190.0, 1e-9);
    EXPECT_NEAR(s.max_cpu, 15.0, 1e-9);
}

TEST(RunLog, SummaryRespectsWarmup)
{
    const RunResult r = ToyResult(10);
    const Application app = ToyApp();
    const auto rows = ParseRunLog(RunLogToCsv(r, app));
    const RunLogSummary s = SummarizeRunLog(rows, app.qos_ms, 5.0);
    EXPECT_EQ(s.intervals, 5u); // t=6..10
    const RunLogSummary empty = SummarizeRunLog(rows, app.qos_ms, 100.0);
    EXPECT_EQ(empty.intervals, 0u);
    EXPECT_DOUBLE_EQ(empty.qos_meet_prob, 0.0);
}

TEST(RunLog, EndToEndWithRealRun)
{
    // A tiny real run through the harness must serialize cleanly.
    const Application app = BuildSocialNetwork();
    class Hold : public ResourceManager {
      public:
        std::vector<double>
        Decide(const IntervalObservation&,
               const std::vector<double>& alloc,
               const Application&) override
        {
            return alloc;
        }
        const char* Name() const override { return "Hold"; }
    } hold;
    ConstantLoad load(80.0);
    RunConfig cfg;
    cfg.duration_s = 8.0;
    const RunResult r = RunManaged(app, hold, load, cfg);
    const auto rows = ParseRunLog(RunLogToCsv(r, app));
    ASSERT_EQ(rows.size(), 8u);
    EXPECT_EQ(rows[0].alloc.size(), app.tiers.size());
}

} // namespace
} // namespace sinan
